"""Repo-wide fixtures shared by ``tests/`` and ``benchmarks/``.

Zoo model construction — and, much more importantly, random weight
initialization (VGG-16 is 138 M parameters, ~3 s to materialize) — is
cached once per pytest session.  ``zoo_model`` hands out a *fresh deep
copy* per call so a test may mutate its model freely; ``zoo_weights``
hands out the cached :class:`~repro.frontend.weights.WeightStore` itself,
which callers must treat as read-only (every consumer in the repo does —
the stores are only ever read by engines/simulators).
"""

from __future__ import annotations

import copy

import pytest

_MODEL_CACHE: dict = {}
_WEIGHT_CACHE: dict = {}


@pytest.fixture(autouse=True)
def _tsan_gate(request):
    """Under ``REPRO_TSAN=1`` every factory-made lock reports into the
    process-wide sanitizer realm; any *new* error finding (lock-order
    inversion, double acquire) fails the test that produced it.  Tests
    that provoke findings on purpose use a private ``SanitizerState``,
    so they never trip this gate."""
    from repro.util.sync import tsan_enabled

    if not tsan_enabled():
        yield
        return
    from repro.sanitizer import STATE

    before = STATE.error_count()
    yield
    new = STATE.findings(severity="error")[before:]
    if new:
        pytest.fail(
            "runtime lock sanitizer findings:\n"
            + "\n".join(f.render() for f in new))


@pytest.fixture(autouse=True)
def _obs_enabled(monkeypatch):
    """Strip the ``REPRO_NO_OBS`` kill switch from the environment so
    telemetry assertions see the default (enabled) behaviour regardless
    of the invoking shell; tests that cover the switch set it back
    explicitly via ``monkeypatch.setenv``."""
    monkeypatch.delenv("REPRO_NO_OBS", raising=False)


def _builders():
    from repro.frontend.zoo import (
        cifar10_model,
        lenet_model,
        tc1_model,
        vgg16_model,
    )
    return {"tc1": tc1_model, "lenet": lenet_model,
            "cifar10": cifar10_model, "vgg16": vgg16_model}


def _cached_model(name: str):
    if name not in _MODEL_CACHE:
        builders = _builders()
        if name not in builders:
            raise KeyError(f"unknown zoo model {name!r};"
                           f" known: {sorted(builders)}")
        _MODEL_CACHE[name] = builders[name]()
    return _MODEL_CACHE[name]


@pytest.fixture(scope="session")
def zoo_model():
    """``zoo_model(name)`` → a fresh copy of the named zoo model."""

    def get(name: str):
        return copy.deepcopy(_cached_model(name))

    return get


@pytest.fixture(scope="session")
def zoo_weights():
    """``zoo_weights(name, seed=0)`` → the session-cached weight store
    for the named zoo model (shared: treat as read-only)."""

    def get(name: str, seed: int = 0):
        key = (name, seed)
        if key not in _WEIGHT_CACHE:
            from repro.frontend.weights import WeightStore
            net = _cached_model(name).network
            _WEIGHT_CACHE[key] = WeightStore.initialize(net, seed)
        return _WEIGHT_CACHE[key]

    return get
