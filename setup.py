"""Setup shim: enables `pip install -e .` / `setup.py develop` on
environments without the `wheel` package (offline, PEP 660 unavailable)."""
from setuptools import setup

setup()
