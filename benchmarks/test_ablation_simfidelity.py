"""Ablation A4 — discrete-event simulator vs closed-form model.

Every performance number in Tables 1/2 and Figure 5 comes from the
closed-form pipeline model; this bench validates that model against the
event-driven execution of the same accelerators (randomized small networks
plus TC1), requiring total batch cycles to agree within 25% and the
functional outputs to match the reference engine.
"""

import numpy as np

from repro.frontend.condor_format import CondorModel
from repro.frontend.weights import WeightStore
from repro.frontend.zoo import tc1_model
from repro.hw.accelerator import build_accelerator
from repro.hw.perf import estimate_performance
from repro.ir.layers import (
    Activation,
    ConvLayer,
    FullyConnectedLayer,
    PoolLayer,
    SoftmaxLayer,
)
from repro.ir.network import chain
from repro.nn.engine import ReferenceEngine
from repro.sim.dataflow import simulate_accelerator
from repro.util.tables import TextTable


def _random_network(seed: int):
    rng = np.random.default_rng(seed)
    size = int(rng.choice([10, 12, 16]))
    channels = int(rng.choice([1, 2, 3]))
    layers = [
        ConvLayer("c1", num_output=int(rng.integers(2, 8)),
                  kernel=int(rng.choice([3, 5])),
                  activation=Activation.RELU),
        PoolLayer("p1", kernel=2),
    ]
    layers.append(FullyConnectedLayer("fc", num_output=5))
    layers.append(SoftmaxLayer("sm", log=False))
    return chain(f"rand{seed}", (channels, size, size), layers)


def _run_case(net, batch, seed):
    model = CondorModel(network=net)
    acc = build_accelerator(model)
    weights = WeightStore.initialize(net, seed)
    rng = np.random.default_rng(seed + 1)
    images = rng.normal(size=(batch,) + net.input_shape().as_tuple()) \
        .astype(np.float32)
    sim = simulate_accelerator(acc, weights, images)
    analytic = estimate_performance(acc).batch_cycles(batch)
    ref = ReferenceEngine(net, weights).forward_batch(images)
    func_err = max(float(np.abs(sim.outputs[i] - ref[i]).max())
                   for i in range(batch))
    return sim.total_cycles, analytic, func_err


def _run_parallel_case():
    """A Table-2-style inter-layer-parallel configuration."""
    from repro.frontend.condor_format import LayerHints

    model = tc1_model()
    model.hints = {
        "conv1": LayerHints(out_ports=4),
        "pool1": LayerHints(in_ports=4, out_ports=4),
        "conv2": LayerHints(in_ports=4, out_ports=4),
        "pool2": LayerHints(in_ports=4, out_ports=4),
    }
    acc = build_accelerator(model)
    net = model.network
    weights = WeightStore.initialize(net, 11)
    images = np.random.default_rng(12).normal(
        size=(6,) + net.input_shape().as_tuple()).astype(np.float32)
    sim = simulate_accelerator(acc, weights, images)
    analytic = estimate_performance(acc).batch_cycles(6)
    ref = ReferenceEngine(net, weights).forward_batch(images)
    err = max(float(np.abs(sim.outputs[i] - ref[i]).max())
              for i in range(6))
    return sim.total_cycles, analytic, err


def _run_all():
    cases = []
    for seed in (1, 2, 3, 4):
        net = _random_network(seed)
        cases.append((net.name, *_run_case(net, batch=4, seed=seed)))
    cases.append(("tc1", *_run_case(tc1_model().network, batch=6,
                                    seed=9)))
    cases.append(("tc1 4x4-parallel", *_run_parallel_case()))
    return cases


def test_event_sim_matches_analytic_model(benchmark, report):
    cases = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    table = TextTable(["network", "sim cycles", "model cycles", "ratio",
                       "max |err|"])
    for name, sim_cycles, analytic, err in cases:
        table.add_row([name, sim_cycles, analytic,
                       sim_cycles / analytic, f"{err:.1e}"])
    report("Ablation A4 - event simulator vs closed-form model",
           table.render())

    for name, sim_cycles, analytic, err in cases:
        ratio = sim_cycles / analytic
        assert 0.75 < ratio < 1.25, f"{name}: ratio {ratio}"
        assert err < 1e-3, f"{name}: functional divergence {err}"
