"""Benchmark-suite fixtures.

Every bench both times its experiment (pytest-benchmark) and *prints the
rows the paper reports*; the ``report`` fixture additionally appends each
rendered table to ``benchmarks/results.txt`` so the regenerated numbers
survive output capturing.
"""

from __future__ import annotations

from pathlib import Path

import pytest

_RESULTS = Path(__file__).parent / "results.txt"


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    if _RESULTS.exists():
        _RESULTS.unlink()
    yield


@pytest.fixture
def report():
    """Call ``report(title, text)`` to print + persist a result table."""

    def _report(title: str, text: str) -> None:
        block = f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{text}\n"
        print(block)
        with _RESULTS.open("a") as fh:
            fh.write(block)

    return _report
