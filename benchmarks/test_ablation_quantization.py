"""Ablation A6 — datapath precision (extension; cf. Qiu et al. [14]).

"Data quantization is performed to reduce bandwidth requirements and
resource utilization, with negligible impact on the resulting accuracy"
— quantify that trade on LeNet: fp32 vs int16 vs int8 resource
utilization through the full estimator, plus the accuracy proxy (top-1
agreement with the fp32 engine on synthetic digits).
"""

from repro.frontend.weights import WeightStore
from repro.frontend.zoo import lenet_model, synthetic_digits
from repro.hw.accelerator import build_accelerator
from repro.hw.estimate import estimate_accelerator
from repro.hw.resources import device_for_board
from repro.quant import QuantScheme
from repro.quant.apply import top1_agreement
from repro.util.tables import TextTable

PRECISIONS = ("fp32", "int16", "int8")


def _run():
    cap = device_for_board("aws-f1-xcvu9p").capacity
    net = lenet_model().network
    weights = WeightStore.initialize(net, 0)
    images, _ = synthetic_digits(24, size=28, seed=3)
    rows = []
    for precision in PRECISIONS:
        model = lenet_model()
        model.precision = precision
        acc = build_accelerator(model)
        util = estimate_accelerator(acc).utilization(cap)
        if precision == "fp32":
            agreement = 1.0
        else:
            scheme = QuantScheme.for_precision(precision)
            agreement = top1_agreement(net, weights, scheme, images)
        rows.append((precision, util, agreement))
    return rows


def test_quantization_tradeoff(benchmark, report):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = TextTable(["precision", "LUT %", "DSP %", "BRAM %",
                       "top-1 agreement vs fp32"])
    for precision, util, agreement in rows:
        table.add_row([precision, util["lut"], util["dsp"],
                       util["bram_18k"], agreement])
    report("Ablation A6 - datapath precision (LeNet)", table.render())

    by_precision = {p: (u, a) for p, u, a in rows}
    fp32_util, _ = by_precision["fp32"]
    int16_util, int16_agree = by_precision["int16"]
    int8_util, int8_agree = by_precision["int8"]

    # resource claims
    assert int16_util["dsp"] < 0.35 * fp32_util["dsp"]
    assert int8_util["dsp"] < int16_util["dsp"]
    assert int8_util["bram_18k"] < 0.5 * fp32_util["bram_18k"]
    # "negligible impact on the resulting accuracy"
    assert int16_agree >= 0.95
    assert int8_agree >= 0.75
