"""Ablation A5 — inter-PE decoupling FIFO sizing.

The generator sizes each inter-PE FIFO to two of the consumer's ingest
units (feature maps, or the whole vector for classifier PEs).  This bench
measures, on the event simulator, what happens with minimal FIFOs
instead: the PEs' burst-ingest/replay phases couple, and the pipeline
initiation interval degrades well beyond the bottleneck stage — the
effect that motivated the sizing rule (see
``repro/hw/accelerator.py::_stream_depth``).
"""

import dataclasses

import numpy as np

from repro.frontend.weights import WeightStore
from repro.frontend.zoo import tc1_model
from repro.hw.accelerator import build_accelerator
from repro.hw.components import Fifo
from repro.hw.estimate import estimate_fifo
from repro.hw.perf import estimate_performance
from repro.sim.dataflow import simulate_accelerator
from repro.util.tables import TextTable

BATCH = 8


def _run_with_depth_policy(scale: float | None):
    """scale=None keeps the generator's sizes; otherwise each stream FIFO
    depth becomes max(2 rows, scale * generated depth)."""
    model = tc1_model()
    acc = build_accelerator(model)
    if scale is not None:
        for i, edge in enumerate(acc.edges):
            new_depth = max(8, int(edge.fifo.depth * scale))
            acc.edges[i] = dataclasses.replace(
                edge, fifo=Fifo(edge.fifo.name, new_depth))
    weights = WeightStore.initialize(model.network, 0)
    images = np.zeros((BATCH, 1, 16, 16), dtype=np.float32)
    result = simulate_accelerator(acc, weights, images)
    done = result.image_done_cycles
    ii = done[-1] - done[-2]
    bram = sum(estimate_fifo(e.fifo).bram_18k for e in acc.edges)
    lut = sum(estimate_fifo(e.fifo).lut for e in acc.edges)
    return ii, bram, lut


def test_fifo_sizing_tradeoff(benchmark, report):
    def run_all():
        rows = []
        for label, scale in [("minimal (x1/16)", 1 / 16.0),
                             ("quarter (x1/4)", 0.25),
                             ("generated (2 maps)", None),
                             ("double (x2)", 2.0)]:
            ii, bram, lut = _run_with_depth_policy(scale)
            rows.append((label, ii, bram, lut))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    analytic = estimate_performance(
        build_accelerator(tc1_model())).ii_cycles

    table = TextTable(["stream FIFO policy", "measured II (cycles)",
                       "FIFO BRAM18", "FIFO LUT"])
    for label, ii, bram, lut in rows:
        table.add_row([label, ii, bram, lut])
    report("Ablation A5 - inter-PE FIFO sizing (TC1, event sim,"
           f" analytic II {analytic})", table.render())

    by_label = {label: ii for label, ii, _, _ in rows}
    # starving the FIFOs couples the pipeline phases: >= 40% worse II
    assert by_label["minimal (x1/16)"] > 1.4 * by_label["generated (2 maps)"]
    # the generated sizing is already at the knee: doubling buys < 5%
    assert by_label["double (x2)"] > 0.95 * by_label["generated (2 maps)"]
    # and the generated sizing tracks the analytic model closely
    assert by_label["generated (2 maps)"] < 1.15 * analytic
