"""Figure 5 — mean time to process an image vs batch size.

Regenerates both curves (TC1, LeNet) from the deployed accelerators and
checks the claims the figure makes:

* the mean time per image decreases monotonically with the batch size;
* it converges to the bottleneck-stage asymptote;
* "for both cases convergence is reached approximately when the batch
  size is bigger than the total number of layers of the network";
* a subset of TC1 points re-measured on the discrete-event simulator
  agrees with the analytic curve.
"""

import pytest

from repro.eval.figure5 import (
    figure5_event_points,
    figure5_series,
    render_figure5,
)


def test_figure5_curves(benchmark, report):
    series = benchmark(figure5_series)
    report("Figure 5 - mean time per image vs batch size",
           render_figure5(series))

    for curve in series:
        values = curve.mean_us_per_image
        # monotone decrease
        assert all(a >= b for a, b in zip(values, values[1:]))
        # converges to the asymptote from above
        assert values[-1] >= curve.asymptote_us
        assert values[-1] <= 1.05 * curve.asymptote_us
        # convergence point is a small multiple of the stage count
        assert curve.convergence_batch(0.10) <= 4 * curve.n_pipeline_stages
        # batch 1 pays the full pipeline fill: visibly above the asymptote
        assert values[0] > 1.2 * curve.asymptote_us


def test_figure5_event_sim_crosscheck(benchmark, report):
    sim_curve = benchmark.pedantic(figure5_event_points, rounds=1,
                                   iterations=1)
    analytic = next(c for c in figure5_series(tuple(sim_curve.batches))
                    if c.name == "TC1")
    report("Figure 5 - event-simulator cross-check (TC1)",
           render_figure5([analytic, sim_curve]))
    for a, s in zip(analytic.mean_us_per_image,
                    sim_curve.mean_us_per_image):
        assert s == pytest.approx(a, rel=0.20)
