"""Ablation A3 — non-uniform memory partitioning vs full line buffering.

§3.2: the filter/FIFO structure "reduces the on-chip storage requirements,
as only the elements that are spatially located in between the first and
the last access are buffered on-chip".  This bench sweeps window and image
sizes and reports the buffered words of the partitioned chain against a
conventional K-row line buffer, plus the resulting BRAM difference for a
VGG-scale layer.
"""

from repro.hw.calibration import DEFAULT_CALIBRATION as CAL
from repro.hw.components import Fifo
from repro.hw.estimate import estimate_fifo
from repro.hw.partitioning import partition_window_accesses
from repro.util.tables import TextTable

SWEEP = [
    (3, 28), (5, 28), (3, 56), (5, 56), (7, 56),
    (3, 224), (5, 224), (7, 224), (11, 224),
]


def _run():
    rows = []
    for k, width in SWEEP:
        spec = partition_window_accesses((k, k), width)
        rows.append((k, width, spec.buffered_words,
                     spec.full_linebuffer_words))
    return rows


def test_partitioning_savings(benchmark, report):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = TextTable(["window", "row width", "partitioned (words)",
                       "line buffer (words)", "saved %"])
    for k, width, part, full in rows:
        table.add_row([f"{k}x{k}", width, part, full,
                       100.0 * (full - part) / full])
    report("Ablation A3 - non-uniform partitioning vs line buffer",
           table.render())

    for k, width, part, full in rows:
        assert part == (k - 1) * width + (k - 1)
        assert part < full
        # the saving is exactly one row minus (K-1) elements
        assert full - part == width - k + 1

    # BRAM impact at VGG scale (3x3 over 224-wide rows): the partitioned
    # chain stores its words across K*K-1 small FIFOs, the line buffer in
    # one deep FIFO.
    spec = partition_window_accesses((3, 3), 224)
    chain_bram = sum(
        estimate_fifo(Fifo(f"f{i}", depth=d)).bram_18k
        for i, d in enumerate(spec.fifo_depths))
    line_bram = estimate_fifo(
        Fifo("lb", depth=spec.full_linebuffer_words)).bram_18k
    report("Ablation A3 - BRAM at VGG scale (3x3 window, 224 rows)",
           f"partitioned chain: {chain_bram} BRAM18,"
           f" full line buffer: {line_bram} BRAM18")
    assert chain_bram <= line_bram
