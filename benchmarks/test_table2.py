"""Table 2 — improved methodology, features extraction only (GFLOPS).

Regenerates the three cells with the automated DSE standing in for the
authors' manual configuration choice, and checks the shape claims:

* ordering VGG-16 > LeNet > TC1 (paper: 113.30 > 53.51 > 16.56);
* every cell improves on the corresponding full-network Table 1 number;
* the fully-connected layers of VGG-16 are NOT synthesizable with the
  current (no-spill) methodology — the paper's stated negative result.
"""

from repro.eval.table2 import (
    PAPER_TABLE2,
    render_table2,
    table2_rows,
    vgg16_classifier_is_unsynthesizable,
)


def test_table2(benchmark, report):
    rows = benchmark.pedantic(table2_rows, rounds=1, iterations=1)
    report("Table 2 - improved methodology (features extraction)",
           render_table2(rows))

    by_name = {row.name: row.gflops for row in rows}
    # ordering claim
    assert by_name["VGG-16"] > by_name["LeNet"] > by_name["TC1"]
    # the improved methodology beats the Table 1 full-network numbers
    assert by_name["TC1"] > 8.36
    assert by_name["LeNet"] > 3.35
    # magnitudes stay within a single order of magnitude of the paper
    for name, gflops in by_name.items():
        assert 0.3 < gflops / PAPER_TABLE2[name] < 10.0, \
            f"{name}: {gflops} vs paper {PAPER_TABLE2[name]}"


def test_vgg16_classifier_negative_result(benchmark, report):
    result = benchmark.pedantic(vgg16_classifier_is_unsynthesizable,
                                rounds=1, iterations=1)
    report("Table 2 - footnote", "VGG-16 fully-connected layers"
           f" unsynthesizable with current methodology: {result}")
    assert result is True
