"""Ablation A8 — accelerator vs the software reference engine.

The motivation of the whole line of work: compare the modeled accelerator
throughput against the numpy reference engine actually *measured* on this
host (pytest-benchmark times the software side for real).  The software
engine is a vectorized im2col/GEMM implementation — a reasonable
single-core CPU stand-in.
"""

import numpy as np
import pytest

from repro.frontend.weights import WeightStore
from repro.frontend.zoo import lenet_model, tc1_model
from repro.hw.accelerator import build_accelerator
from repro.hw.perf import estimate_performance
from repro.nn.engine import ReferenceEngine
from repro.util.tables import TextTable


@pytest.mark.parametrize("model_factory,name", [
    (tc1_model, "TC1"), (lenet_model, "LeNet")])
def test_software_vs_accelerator(model_factory, name, benchmark, report):
    model = model_factory()
    net = model.network
    weights = WeightStore.initialize(net, 0)
    engine = ReferenceEngine(net, weights)
    image = np.random.default_rng(0).normal(
        size=net.input_shape().as_tuple()).astype(np.float32)

    benchmark(engine.forward, image)
    sw_seconds = benchmark.stats["mean"]

    perf = estimate_performance(build_accelerator(model))
    hw_seconds = perf.ii_cycles / perf.frequency_hz

    table = TextTable(["engine", "time/image (us)", "images/s"])
    table.add_row([f"numpy reference (measured)", sw_seconds * 1e6,
                   1.0 / sw_seconds])
    table.add_row([f"accelerator @ "
                   f"{perf.frequency_hz / 1e6:.0f} MHz (modeled)",
                   hw_seconds * 1e6, 1.0 / hw_seconds])
    table.add_row(["speedup", sw_seconds / hw_seconds, ""])
    report(f"Ablation A8 - software baseline vs accelerator ({name})",
           table.render())

    assert sw_seconds > 0 and hw_seconds > 0
    if name == "TC1":
        # the tiny TC1 pipeline at 1728 cycles/image beats per-call
        # numpy overhead comfortably
        assert hw_seconds < sw_seconds
