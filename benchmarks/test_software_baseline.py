"""Ablation A8 — accelerator vs the software reference engine.

The motivation of the whole line of work: compare the modeled accelerator
throughput against the numpy reference engine actually *measured* on this
host (pytest-benchmark times the software side for real).  The software
engine is a vectorized im2col/GEMM implementation — a reasonable
single-core CPU stand-in; its batched path (one stacked GEMM per layer for
the whole batch) is the fairest software number, so both are reported.
"""

import numpy as np
import pytest

from repro.hw.accelerator import build_accelerator
from repro.hw.perf import estimate_performance
from repro.nn.engine import ReferenceEngine
from repro.util.tables import TextTable

_BATCH = 32


@pytest.mark.parametrize("model_name,name", [
    ("tc1", "TC1"), ("lenet", "LeNet")])
def test_software_vs_accelerator(model_name, name, benchmark, report,
                                 zoo_model, zoo_weights):
    model = zoo_model(model_name)
    net = model.network
    weights = zoo_weights(model_name)
    engine = ReferenceEngine(net, weights)
    rng = np.random.default_rng(0)
    image = rng.normal(size=net.input_shape().as_tuple()) \
        .astype(np.float32)
    batch = rng.normal(size=(_BATCH,) + net.input_shape().as_tuple()) \
        .astype(np.float32)

    benchmark(engine.forward, image)
    sw_seconds = benchmark.stats["mean"]

    # batched software path: time a few whole-batch passes by hand
    # (pytest-benchmark owns the single-sample measurement above)
    import timeit
    reps = 5
    batch_total = timeit.timeit(lambda: engine.run_batch(batch),
                                number=reps)
    sw_batch_seconds = batch_total / reps / _BATCH

    perf = estimate_performance(build_accelerator(model))
    hw_seconds = perf.ii_cycles / perf.frequency_hz

    table = TextTable(["engine", "time/image (us)", "images/s"])
    table.add_row(["numpy reference (measured)", sw_seconds * 1e6,
                   1.0 / sw_seconds])
    table.add_row([f"numpy reference, batch {_BATCH} (measured)",
                   sw_batch_seconds * 1e6, 1.0 / sw_batch_seconds])
    table.add_row([f"accelerator @ "
                   f"{perf.frequency_hz / 1e6:.0f} MHz (modeled)",
                   hw_seconds * 1e6, 1.0 / hw_seconds])
    table.add_row(["speedup vs single-sample", sw_seconds / hw_seconds,
                   ""])
    report(f"Ablation A8 - software baseline vs accelerator ({name})",
           table.render())

    assert sw_seconds > 0 and sw_batch_seconds > 0 and hw_seconds > 0
    if name == "TC1":
        # the tiny TC1 pipeline at 1728 cycles/image beats per-call
        # numpy overhead comfortably
        assert hw_seconds < sw_seconds
