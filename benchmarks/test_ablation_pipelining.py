"""Ablation A7 — the high-level pipeline vs non-pipelined execution.

Figure 5's batch behaviour exists because "the PEs are arranged as a
high-level pipeline where the output of a PE is the input to the next
one" with every PE "concurrently active".  This bench quantifies what
that concurrency buys: a non-pipelined executor (each image traverses
all stages exclusively — what a single time-shared engine would do)
against the pipelined accelerator, across batch sizes.
"""

from repro.frontend.zoo import lenet_model, tc1_model
from repro.hw.accelerator import build_accelerator
from repro.hw.perf import estimate_performance
from repro.util.tables import TextTable

BATCHES = (1, 4, 16, 64)


def _run():
    rows = []
    for name, model in (("TC1", tc1_model()), ("LeNet", lenet_model())):
        perf = estimate_performance(build_accelerator(model))
        # non-pipelined: every image pays the full stage sum
        sequential = sum(perf.stage_latency)
        for batch in BATCHES:
            pipelined = perf.batch_cycles(batch) / batch
            rows.append((name, batch, sequential, pipelined,
                         sequential / pipelined))
    return rows


def test_pipelining_benefit(benchmark, report):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = TextTable(["net", "batch", "sequential (cyc/img)",
                       "pipelined (cyc/img)", "speedup"])
    for name, batch, seq, pipe, speedup in rows:
        table.add_row([name, batch, seq, pipe, speedup])
    report("Ablation A7 - pipelined vs non-pipelined execution",
           table.render())

    by_key = {(name, batch): (seq, pipe, sp)
              for name, batch, seq, pipe, sp in rows}
    for name in ("TC1", "LeNet"):
        # at batch 1 the pipeline is no better (same full traversal)
        seq, pipe, speedup = by_key[(name, 1)]
        assert speedup == 1.0
        # speedup grows with batch and approaches sum(stages)/bottleneck
        speedups = [by_key[(name, b)][2] for b in BATCHES]
        assert all(a <= b for a, b in zip(speedups, speedups[1:]))
    # TC1's 6 near-balanced stages pipeline well
    assert by_key[("TC1", 64)][2] > 2.0
    # LeNet is dominated by the serial ip1 stage: pipelining helps less
    assert by_key[("LeNet", 64)][2] < by_key[("TC1", 64)][2]
