"""Ablation A1 — layer fusion vs 1:1 layer-to-PE mapping.

§3.2: "for large CNNs [a 1:1 mapping] might not be possible given the
available resources.  For this reason, our methodology includes the
possibility to map multiple logical layers onto a single PE."  This bench
quantifies the trade: fused configurations must use fewer LUT/FF (fewer
PEs, fewer ports) at the cost of a larger initiation interval (the fused
PE works through its layers sequentially).
"""

from repro.dse.space import fusion_candidates
from repro.frontend.condor_format import CondorModel, DeploymentOption
from repro.frontend.zoo import lenet_model
from repro.hw.accelerator import build_accelerator
from repro.hw.estimate import estimate_accelerator
from repro.hw.perf import estimate_performance
from repro.util.tables import TextTable


def _run():
    base = lenet_model()
    model = CondorModel(network=base.network.features_subnetwork(),
                        board=base.board, frequency_hz=base.frequency_hz,
                        deployment=DeploymentOption.ON_PREMISE)
    results = []
    for config in fusion_candidates(model.network):
        acc = build_accelerator(model, config)
        perf = estimate_performance(acc)
        est = estimate_accelerator(acc, include_shell=False)
        results.append((len(config.pes), perf, est.total))
    return results


def test_fusion_tradeoff(benchmark, report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = TextTable(["PEs", "II cycles", "latency", "LUT", "FF", "DSP"])
    for n_pes, perf, res in results:
        table.add_row([n_pes, perf.ii_cycles,
                       perf.pipeline_latency_cycles, res.lut, res.ff,
                       res.dsp])
    report("Ablation A1 - fusion vs 1:1 mapping (LeNet features)",
           table.render())

    results.sort(key=lambda r: r[0], reverse=True)  # most PEs first
    unfolded = results[0]
    fully_fused = results[-1]
    assert unfolded[0] > fully_fused[0]
    # fusion saves logic ...
    assert fully_fused[2].lut < unfolded[2].lut
    assert fully_fused[2].ff < unfolded[2].ff
    # ... and costs throughput (II grows: layers run sequentially)
    assert fully_fused[1].ii_cycles > unfolded[1].ii_cycles
    # II of the fully fused design is (close to) the sum of the stages
    assert fully_fused[1].ii_cycles >= 0.9 * sum(unfolded[1].stage_cycles)
