"""Table 1 — AWS F1 deployment results (resource %, GFLOPS, GFLOPS/W).

Regenerates both rows through the complete flow (frontend → DSE-less
mapping → HLS → IPI → .xo → xocc → xclbin) and checks the paper's shape
claims:

* LeNet's BRAM% dominates everything else in the table (24.38 vs 0.97);
* TC1 beats LeNet on GFLOPS (8.36 vs 3.35) despite the lower clock;
* TC1 beats LeNet on GFLOPS/W (1.56 vs 0.78);
* LUT/FF% are similar for both (shell-dominated), around 10%.
"""

from repro.eval.table1 import PAPER_TABLE1, render_table1, table1_rows


def test_table1(benchmark, report):
    rows = benchmark.pedantic(table1_rows, rounds=1, iterations=1)
    report("Table 1 - AWS F1 deployment results", render_table1(rows))

    measured = {row.name: row for row in rows}
    tc1, lenet = measured["TC1"], measured["LeNet"]

    # -- shape claims ------------------------------------------------------
    assert lenet.bram > 10 * tc1.bram
    assert tc1.gflops > lenet.gflops
    assert tc1.gflops_per_w > lenet.gflops_per_w
    assert 0.5 < tc1.lut / lenet.lut < 2.0
    assert 0.5 < tc1.ff / lenet.ff < 2.0

    # -- magnitude claims (within ~2x of the published cells) ---------------
    for name, row in measured.items():
        paper = PAPER_TABLE1[name]
        for key, value in row.as_dict().items():
            published = paper[key]
            assert value < 4.0 * published + 2.0, \
                f"{name}.{key}: {value} vs paper {published}"
    assert 0.4 < tc1.gflops / PAPER_TABLE1["TC1"]["gflops"] < 2.5
    assert 0.3 < lenet.gflops / PAPER_TABLE1["LeNet"]["gflops"] < 2.5
