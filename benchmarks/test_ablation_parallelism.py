"""Ablation A2 — inter-layer parallelism sweep.

§3.2: a layer can be implemented "as a single-input/single-output port PE,
where input feature maps are read sequentially and output feature maps are
equally serially computed, or increase the level of parallelism reading
and processing multiple feature maps at once."  Sweeping the LeNet conv2
PE's (in, out) port counts must show: stage cycles drop with the product
of the degrees until ingest-bound, while DSP cost grows linearly with it.
"""

from repro.frontend.condor_format import CondorModel, LayerHints
from repro.frontend.zoo import lenet_model
from repro.hw.accelerator import build_accelerator
from repro.hw.estimate import estimate_pe
from repro.hw.perf import layer_cycles
from repro.util.tables import TextTable

SWEEP = [(1, 1), (1, 2), (2, 2), (2, 5), (4, 5), (4, 10), (8, 10),
         (10, 25), (20, 50)]


def _run():
    rows = []
    for in_ports, out_ports in SWEEP:
        model = lenet_model()
        model.hints = {"conv2": LayerHints(in_ports=in_ports,
                                           out_ports=out_ports)}
        acc = build_accelerator(model)
        pe = acc.pe_for_layer("conv2")
        cycles = layer_cycles(acc.network, acc.network["conv2"],
                              in_ports, out_ports)
        rows.append(((in_ports, out_ports), cycles, estimate_pe(pe)))
    return rows


def test_parallelism_sweep(benchmark, report):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = TextTable(["(in, out)", "conv2 cycles", "speedup", "DSP",
                       "DSP x cycles"])
    base_cycles = rows[0][1]
    base_dsp = rows[0][2].dsp
    for (ports, cycles, res) in rows:
        table.add_row([f"{ports[0]}x{ports[1]}", cycles,
                       base_cycles / cycles, res.dsp, res.dsp * cycles])
    report("Ablation A2 - inter-layer parallelism (LeNet conv2)",
           table.render())

    cycles_list = [cycles for _, cycles, _ in rows]
    dsp_list = [res.dsp for _, _, res in rows]
    # more ports never slow the PE down, and always cost more DSP
    assert all(a >= b for a, b in zip(cycles_list, cycles_list[1:]))
    assert all(a <= b for a, b in zip(dsp_list, dsp_list[1:]))
    # the first doubling is near-ideal (compute-bound region)
    assert rows[1][1] <= 0.55 * base_cycles
    # DSP grows with the port product
    product = SWEEP[-1][0] * SWEEP[-1][1]
    assert dsp_list[-1] >= 0.8 * product * base_dsp
    # the fully unfolded configuration is ingest-bound: cycles equal the
    # time to stream the input maps in
    net = build_accelerator(lenet_model()).network
    in_shape = net.input_shape("conv2")
    assert cycles_list[-1] == in_shape.spatial_size
