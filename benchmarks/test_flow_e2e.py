"""Flow F1 — end-to-end automation cost.

Times the full eight-step flow (Caffe LeNet → AFI) and reports per-step
wall time, validating that every artifact of §3.3 is produced: the Condor
JSON, the generated sources, the resource report, kernel.xml, the .xo,
the .xclbin, the default host code, and the AFI record.
"""

import tempfile
from pathlib import Path

from repro.cloud.client import AWSSession
from repro.flow import CondorFlow, FlowInputs
from repro.frontend.condor_format import DeploymentOption
from repro.frontend.zoo import lenet_caffe_files
from repro.util.tables import TextTable


def _run():
    tmp = Path(tempfile.mkdtemp(prefix="condor-bench-flow-"))
    prototxt, caffemodel = lenet_caffe_files(tmp / "caffe")
    aws = AWSSession()
    flow = CondorFlow(tmp / "work", aws=aws)
    result = flow.run(FlowInputs(
        prototxt=prototxt, caffemodel=caffemodel,
        deployment=DeploymentOption.AWS_F1, frequency_hz=180e6))
    return result


def test_flow_end_to_end(benchmark, report):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = TextTable(["step", "seconds"], float_format="{:.3f}")
    for step in result.steps:
        table.add_row([step.name, step.seconds])
    report("Flow F1 - end-to-end (Caffe LeNet -> AFI)",
           table.render() + "\n\n" + result.summary())

    # all eight steps ran
    names = [s.name for s in result.steps]
    assert names == [
        "1-input-analysis", "2-design-space-exploration",
        "3-5-hardware-generation", "6-sdaccel-integration",
        "7-deployment-on-board", "8-afi-creation",
    ]
    # every artifact exists
    workdir = result.workdir
    assert (workdir / "network.condor.json").is_file()
    assert (workdir / "weights" / "weights.json").is_file()
    assert (workdir / "kernel.xml").is_file()
    assert result.xclbin_path.is_file()
    assert result.host_path.is_file()
    assert (workdir / "afi.json").is_file()
    assert any((workdir / "sources").rglob("*.cpp"))
    assert result.agfi_id and result.agfi_id.startswith("agfi-")
