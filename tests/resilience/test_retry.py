"""RetryPolicy: deterministic backoff, typed retryability, virtual
sleeps."""

import itertools

import pytest

from repro.errors import LinkError, TransientError
from repro.resilience import RetryPolicy, VirtualClock, is_transient


def take(iterator, n):
    return list(itertools.islice(iterator, n))


class TestSchedule:
    def test_deterministic_per_boundary(self):
        policy = RetryPolicy(seed=3)
        a = take(policy.delays("cloud.upload"), 6)
        b = take(policy.delays("cloud.upload"), 6)
        assert a == b

    def test_decorrelated_across_boundaries(self):
        policy = RetryPolicy()
        assert take(policy.delays("cloud.upload"), 4) != \
            take(policy.delays("toolchain.xocc-link"), 4)

    def test_seed_changes_schedule(self):
        assert take(RetryPolicy(seed=0).delays("x"), 4) != \
            take(RetryPolicy(seed=1).delays("x"), 4)

    def test_exponential_within_jitter_bounds(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=2.0,
                             max_delay_s=60.0, jitter=0.25)
        delays = take(policy.delays("b"), 10)
        for attempt, delay in enumerate(delays):
            base = min(60.0, 2.0 ** attempt)
            assert base * 0.75 <= delay <= base * 1.25

    def test_cap(self):
        policy = RetryPolicy(base_delay_s=10.0, multiplier=10.0,
                             max_delay_s=30.0, jitter=0.0)
        assert take(policy.delays("b"), 4) == [10.0, 30.0, 30.0, 30.0]

    def test_no_jitter_is_exact(self):
        policy = RetryPolicy(jitter=0.0)
        assert take(policy.delays("b"), 3) == [1.0, 2.0, 4.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestCall:
    def test_retries_transient_until_success(self):
        clock = VirtualClock()
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientError("weather")
            return "done"

        policy = RetryPolicy(max_attempts=3, jitter=0.0)
        assert policy.call(flaky, boundary="b", clock=clock) == "done"
        assert len(calls) == 3
        assert clock.sleeps == [1.0, 2.0]

    def test_exhaustion_reraises_unchanged(self):
        clock = VirtualClock()
        original = TransientError("persistent weather")

        def always():
            raise original

        policy = RetryPolicy(max_attempts=2, jitter=0.0)
        with pytest.raises(TransientError) as info:
            policy.call(always, boundary="b", clock=clock)
        assert info.value is original
        assert clock.sleeps == [1.0]  # one retry, then give up

    def test_deterministic_errors_not_retried(self):
        clock = VirtualClock()
        calls = []

        def broken():
            calls.append(1)
            raise LinkError("kernel does not fit")

        with pytest.raises(LinkError):
            RetryPolicy().call(broken, boundary="b", clock=clock)
        assert len(calls) == 1
        assert clock.sleeps == []

    def test_transient_attribute_flag(self):
        exc = LinkError("flaky license server")
        exc.transient = True
        assert is_transient(exc)
        assert not is_transient(LinkError("real failure"))
        assert is_transient(TransientError("weather"))

    def test_on_retry_hook(self):
        seen = []

        def flaky():
            if not seen:
                raise TransientError("once")
            return 1

        RetryPolicy().call(
            flaky, boundary="b", clock=VirtualClock(),
            on_retry=lambda attempt, exc: seen.append((attempt,
                                                       str(exc))))
        assert seen == [(1, "once")]
