"""Checkpoint store: digests, artifact integrity, staleness."""

import json

import pytest

from repro.errors import CheckpointError
from repro.resilience import CheckpointStore, chain_digest, file_digest


@pytest.fixture
def store(tmp_path):
    return CheckpointStore(tmp_path)


class TestChainDigest:
    def test_deterministic(self):
        assert chain_digest(None, "a", "b") == chain_digest(None, "a",
                                                            "b")

    def test_order_and_boundaries_matter(self):
        assert chain_digest(None, "a", "b") != chain_digest(None, "b",
                                                            "a")
        assert chain_digest(None, "ab") != chain_digest(None, "a", "b")

    def test_chaining(self):
        d1 = chain_digest(None, "step1")
        assert chain_digest(d1, "step2") != chain_digest(None, "step2")


class TestStore:
    def test_round_trip(self, store, tmp_path):
        (tmp_path / "out.bin").write_bytes(b"artifact")
        saved = store.save("step1", "d" * 64,
                           artifacts=["out.bin"],
                           state={"key": "value"})
        loaded = store.load("step1")
        assert loaded.digest == saved.digest
        assert loaded.state == {"key": "value"}
        assert loaded.artifacts == {"out.bin": file_digest(
            tmp_path / "out.bin")}

    def test_valid_happy_path(self, store, tmp_path):
        (tmp_path / "out.bin").write_bytes(b"artifact")
        store.save("step1", "d" * 64, artifacts=["out.bin"])
        assert store.valid("step1", "d" * 64) is not None

    def test_missing_checkpoint(self, store):
        assert store.load("nope") is None
        assert store.valid("nope", "x") is None

    def test_stale_digest_rejected(self, store):
        store.save("step1", "old-digest")
        assert store.valid("step1", "new-digest") is None

    def test_modified_artifact_rejected(self, store, tmp_path):
        (tmp_path / "out.bin").write_bytes(b"artifact")
        store.save("step1", "d" * 64, artifacts=["out.bin"])
        (tmp_path / "out.bin").write_bytes(b"tampered")
        assert store.valid("step1", "d" * 64) is None

    def test_deleted_artifact_rejected(self, store, tmp_path):
        (tmp_path / "out.bin").write_bytes(b"artifact")
        store.save("step1", "d" * 64, artifacts=["out.bin"])
        (tmp_path / "out.bin").unlink()
        assert store.valid("step1", "d" * 64) is None

    def test_absolute_and_relative_paths_agree(self, store, tmp_path):
        (tmp_path / "out.bin").write_bytes(b"artifact")
        by_rel = store.save("a", "d", artifacts=["out.bin"])
        by_abs = store.save("b", "d",
                            artifacts=[tmp_path / "out.bin"])
        assert by_rel.artifacts == by_abs.artifacts

    def test_discard(self, store):
        store.save("step1", "d")
        store.discard("step1")
        assert store.load("step1") is None
        store.discard("step1")  # idempotent

    def test_steps_listing(self, store):
        assert store.steps() == []
        store.save("b-step", "d")
        store.save("a-step", "d")
        assert store.steps() == ["a-step", "b-step"]

    def test_corrupt_json_ignored_by_valid(self, store, tmp_path):
        store.save("step1", "d")
        (store.directory / "step1.json").write_text("{not json")
        with pytest.raises(CheckpointError):
            store.load("step1")
        assert store.valid("step1", "d") is None

    def test_bad_schema_rejected(self, store):
        store.save("step1", "d")
        doc = json.loads((store.directory / "step1.json").read_text())
        doc["schema"] = 999
        (store.directory / "step1.json").write_text(json.dumps(doc))
        with pytest.raises(CheckpointError):
            store.load("step1")
