"""CircuitBreaker state machine over the virtual clock."""

import pytest

from repro.errors import CircuitOpenError
from repro.resilience import CircuitBreaker, VirtualClock


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker("cloud.upload", failure_threshold=3,
                          recovery_s=60.0, clock=clock)


def trip(breaker, n=3):
    for _ in range(n):
        breaker.record_failure()


class TestStates:
    def test_starts_closed(self, breaker):
        assert breaker.state == "closed"
        breaker.allow()  # no raise

    def test_opens_at_threshold(self, breaker):
        trip(breaker, 2)
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError) as info:
            breaker.allow()
        assert info.value.boundary == "cloud.upload"

    def test_success_resets_count(self, breaker):
        trip(breaker, 2)
        breaker.record_success()
        trip(breaker, 2)
        assert breaker.state == "closed"

    def test_half_open_after_recovery(self, breaker, clock):
        trip(breaker)
        clock.sleep(59.9)
        with pytest.raises(CircuitOpenError):
            breaker.allow()
        clock.sleep(0.2)
        assert breaker.state == "half-open"
        breaker.allow()  # the probe is admitted

    def test_probe_success_recloses(self, breaker, clock):
        trip(breaker)
        clock.sleep(60.0)
        breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.consecutive_failures == 0

    def test_probe_failure_reopens_fresh_window(self, breaker, clock):
        trip(breaker)
        clock.sleep(60.0)
        breaker.allow()
        breaker.record_failure()  # probe fails -> reopen
        assert breaker.state == "open"
        clock.sleep(59.0)
        assert breaker.state == "open"  # window restarted at reopen
        clock.sleep(1.0)
        assert breaker.state == "half-open"

    def test_reset(self, breaker):
        trip(breaker)
        breaker.reset()
        assert breaker.state == "closed"
        breaker.allow()

    def test_threshold_validation(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker("b", failure_threshold=0, clock=clock)


class TestTripAccounting:
    def test_opened_count_tracks_trips(self, breaker, clock):
        assert breaker.opened_count == 0
        trip(breaker)
        assert breaker.opened_count == 1
        trip(breaker, 5)  # already open: no double counting
        assert breaker.opened_count == 1
        clock.sleep(60.0)
        breaker.allow()
        breaker.record_failure()  # probe fails -> second trip
        assert breaker.opened_count == 2

    def test_reset_keeps_history(self, breaker):
        trip(breaker)
        breaker.reset()
        # the trip count is an odometer, not current state
        assert breaker.opened_count == 1


class TestBreakerStates:
    def test_registry_snapshot(self, clock):
        from repro.resilience import breaker_states
        from repro.resilience.boundary import breaker_for, reset_breakers

        reset_breakers()
        breaker_for("cloud.upload", clock=clock)
        hot = breaker_for("cloud.build", clock=clock)
        for _ in range(hot.failure_threshold):
            hot.record_failure()
        snap = breaker_states()
        assert list(snap) == ["cloud.build", "cloud.upload"]  # sorted
        assert snap["cloud.build"] == {
            "state": "open", "opened_count": 1,
            "consecutive_failures": hot.failure_threshold}
        assert snap["cloud.upload"] == {
            "state": "closed", "opened_count": 0,
            "consecutive_failures": 0}
        reset_breakers()
