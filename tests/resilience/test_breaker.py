"""CircuitBreaker state machine over the virtual clock."""

import pytest

from repro.errors import CircuitOpenError
from repro.resilience import CircuitBreaker, VirtualClock


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker("cloud.upload", failure_threshold=3,
                          recovery_s=60.0, clock=clock)


def trip(breaker, n=3):
    for _ in range(n):
        breaker.record_failure()


class TestStates:
    def test_starts_closed(self, breaker):
        assert breaker.state == "closed"
        breaker.allow()  # no raise

    def test_opens_at_threshold(self, breaker):
        trip(breaker, 2)
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError) as info:
            breaker.allow()
        assert info.value.boundary == "cloud.upload"

    def test_success_resets_count(self, breaker):
        trip(breaker, 2)
        breaker.record_success()
        trip(breaker, 2)
        assert breaker.state == "closed"

    def test_half_open_after_recovery(self, breaker, clock):
        trip(breaker)
        clock.sleep(59.9)
        with pytest.raises(CircuitOpenError):
            breaker.allow()
        clock.sleep(0.2)
        assert breaker.state == "half-open"
        breaker.allow()  # the probe is admitted

    def test_probe_success_recloses(self, breaker, clock):
        trip(breaker)
        clock.sleep(60.0)
        breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.consecutive_failures == 0

    def test_probe_failure_reopens_fresh_window(self, breaker, clock):
        trip(breaker)
        clock.sleep(60.0)
        breaker.allow()
        breaker.record_failure()  # probe fails -> reopen
        assert breaker.state == "open"
        clock.sleep(59.0)
        assert breaker.state == "open"  # window restarted at reopen
        clock.sleep(1.0)
        assert breaker.state == "half-open"

    def test_reset(self, breaker):
        trip(breaker)
        breaker.reset()
        assert breaker.state == "closed"
        breaker.allow()

    def test_threshold_validation(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker("b", failure_threshold=0, clock=clock)
