"""Fault plans: seeded determinism, boundary hooks, realm isolation."""

import pytest

from repro.errors import AFIError, CircuitOpenError, TransientError
from repro.resilience import (
    ALL_BOUNDARIES,
    CLOUD_BOUNDARIES,
    FaultKind,
    FaultPlan,
    FaultSpec,
    VirtualClock,
    active_plan,
    breaker_for,
    inject_faults,
    run_boundary,
)
from repro.resilience.faults import BOUNDARY_ERRORS


class TestSpecs:
    def test_exact_match(self):
        spec = FaultSpec("cloud.upload", FaultKind.TRANSIENT)
        assert spec.matches("cloud.upload")
        assert not spec.matches("cloud.wait-for-afi")

    def test_glob_match(self):
        spec = FaultSpec("cloud.*", FaultKind.TRANSIENT)
        assert all(spec.matches(b) for b in CLOUD_BOUNDARIES)
        assert not spec.matches("toolchain.hls-csynth")

    def test_every_boundary_has_a_native_error(self):
        for boundary in ALL_BOUNDARIES:
            assert issubclass(BOUNDARY_ERRORS[boundary], Exception)


class TestInjection:
    def test_transient_clears_after_times(self):
        plan = FaultPlan([FaultSpec("b", FaultKind.TRANSIENT, times=2)])
        clock = VirtualClock()
        for _ in range(2):
            with pytest.raises(TransientError):
                plan.on_attempt("b", clock)
        plan.on_attempt("b", clock)  # cleared
        assert plan.injected[("b", "transient")] == 2

    def test_permanent_never_clears_and_is_native(self):
        plan = FaultPlan([FaultSpec("cloud.create-fpga-image",
                                    FaultKind.PERMANENT)])
        clock = VirtualClock()
        for _ in range(5):
            with pytest.raises(AFIError):
                plan.on_attempt("cloud.create-fpga-image", clock)

    def test_slow_advances_clock(self):
        plan = FaultPlan([FaultSpec("b", FaultKind.SLOW, delay_s=30.0)])
        clock = VirtualClock()
        plan.on_attempt("b", clock)
        assert clock.now == 30.0
        plan.on_attempt("b", clock)  # times=1: fired once
        assert clock.now == 30.0

    def test_corrupt_is_deterministic_and_bounded(self):
        payload = bytes(range(256)) * 64
        a = FaultPlan([FaultSpec("cloud.upload", FaultKind.CORRUPT)],
                      seed=5)
        b = FaultPlan([FaultSpec("cloud.upload", FaultKind.CORRUPT)],
                      seed=5)
        mutated = a.corrupt("cloud.upload", payload)
        assert mutated != payload
        assert len(mutated) == len(payload)
        assert mutated == b.corrupt("cloud.upload", payload)
        # exhausted after `times`
        assert a.corrupt("cloud.upload", payload) == payload

    def test_corrupt_other_boundary_untouched(self):
        plan = FaultPlan([FaultSpec("cloud.upload", FaultKind.CORRUPT)])
        assert plan.corrupt("toolchain.hls-csynth", b"abc") == b"abc"


class TestDeterminism:
    def test_random_plan_reproducible(self):
        a, b = FaultPlan.random(11), FaultPlan.random(11)
        assert [s.to_dict() for s in a.specs] == \
            [s.to_dict() for s in b.specs]

    def test_random_plans_differ_across_seeds(self):
        plans = [[s.to_dict() for s in FaultPlan.random(seed).specs]
                 for seed in range(8)]
        assert len({str(p) for p in plans}) > 1

    def test_permanent_confined_to_cloud(self):
        for seed in range(64):
            for spec in FaultPlan.random(seed).specs:
                if spec.kind is FaultKind.PERMANENT:
                    assert spec.boundary in CLOUD_BOUNDARIES

    def test_transient_counts_stay_survivable(self):
        for seed in range(64):
            for spec in FaultPlan.random(seed).specs:
                if spec.kind is FaultKind.TRANSIENT:
                    assert spec.times <= 2  # below max_attempts=3

    def test_replay_identical_injection_sequence(self):
        clock = VirtualClock()
        outcomes = []
        for _ in range(2):
            plan = FaultPlan.random(23)
            seen = []
            for boundary in ALL_BOUNDARIES * 3:
                try:
                    plan.on_attempt(boundary, clock)
                    seen.append((boundary, None))
                except Exception as exc:
                    seen.append((boundary, type(exc).__name__))
            outcomes.append(seen)
        assert outcomes[0] == outcomes[1]


class TestHarness:
    def test_inject_faults_activates_plan(self):
        plan = FaultPlan()
        assert active_plan() is None
        with inject_faults(plan):
            assert active_plan() is plan
        assert active_plan() is None

    def test_run_boundary_retries_injected_transients(self):
        plan = FaultPlan([FaultSpec("b", FaultKind.TRANSIENT, times=2)])
        calls = []
        with inject_faults(plan):
            result = run_boundary("b", lambda: calls.append(1) or "ok")
        assert result == "ok"
        assert len(calls) == 1  # faults fired before fn on 2 attempts
        assert plan.injected[("b", "transient")] == 2

    def test_breaker_realm_isolated(self):
        outside = breaker_for("realm-test")
        with inject_faults(FaultPlan()):
            inside = breaker_for("realm-test")
            assert inside is not outside
        assert breaker_for("realm-test") is outside

    def test_breaker_opens_under_sustained_transients(self):
        plan = FaultPlan([FaultSpec("b", FaultKind.TRANSIENT,
                                    times=100)])
        with inject_faults(plan):
            # call 1: three transient failures, retry budget exhausted
            with pytest.raises(TransientError):
                run_boundary("b", lambda: "never")
            # call 2: failures 4 and 5 trip the breaker (threshold 5);
            # the third attempt is rejected by the open circuit
            with pytest.raises(CircuitOpenError):
                run_boundary("b", lambda: "never")
            with pytest.raises(CircuitOpenError):
                run_boundary("b", lambda: "never")
