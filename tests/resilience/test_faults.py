"""Fault plans: seeded determinism, boundary hooks, realm isolation."""

import pytest

from repro.errors import AFIError, CircuitOpenError, TransientError
from repro.resilience import (
    ALL_BOUNDARIES,
    CLOUD_BOUNDARIES,
    FaultKind,
    FaultPlan,
    FaultSpec,
    VirtualClock,
    active_plan,
    breaker_for,
    inject_faults,
    run_boundary,
)
from repro.resilience.faults import BOUNDARY_ERRORS


class TestSpecs:
    def test_exact_match(self):
        spec = FaultSpec("cloud.upload", FaultKind.TRANSIENT)
        assert spec.matches("cloud.upload")
        assert not spec.matches("cloud.wait-for-afi")

    def test_glob_match(self):
        spec = FaultSpec("cloud.*", FaultKind.TRANSIENT)
        assert all(spec.matches(b) for b in CLOUD_BOUNDARIES)
        assert not spec.matches("toolchain.hls-csynth")

    def test_every_boundary_has_a_native_error(self):
        for boundary in ALL_BOUNDARIES:
            assert issubclass(BOUNDARY_ERRORS[boundary], Exception)


class TestInjection:
    def test_transient_clears_after_times(self):
        plan = FaultPlan([FaultSpec("b", FaultKind.TRANSIENT, times=2)])
        clock = VirtualClock()
        for _ in range(2):
            with pytest.raises(TransientError):
                plan.on_attempt("b", clock)
        plan.on_attempt("b", clock)  # cleared
        assert plan.injected[("b", "transient")] == 2

    def test_permanent_never_clears_and_is_native(self):
        plan = FaultPlan([FaultSpec("cloud.create-fpga-image",
                                    FaultKind.PERMANENT)])
        clock = VirtualClock()
        for _ in range(5):
            with pytest.raises(AFIError):
                plan.on_attempt("cloud.create-fpga-image", clock)

    def test_slow_advances_clock(self):
        plan = FaultPlan([FaultSpec("b", FaultKind.SLOW, delay_s=30.0)])
        clock = VirtualClock()
        plan.on_attempt("b", clock)
        assert clock.now == 30.0
        plan.on_attempt("b", clock)  # times=1: fired once
        assert clock.now == 30.0

    def test_corrupt_is_deterministic_and_bounded(self):
        payload = bytes(range(256)) * 64
        a = FaultPlan([FaultSpec("cloud.upload", FaultKind.CORRUPT)],
                      seed=5)
        b = FaultPlan([FaultSpec("cloud.upload", FaultKind.CORRUPT)],
                      seed=5)
        mutated = a.corrupt("cloud.upload", payload)
        assert mutated != payload
        assert len(mutated) == len(payload)
        assert mutated == b.corrupt("cloud.upload", payload)
        # exhausted after `times`
        assert a.corrupt("cloud.upload", payload) == payload

    def test_corrupt_other_boundary_untouched(self):
        plan = FaultPlan([FaultSpec("cloud.upload", FaultKind.CORRUPT)])
        assert plan.corrupt("toolchain.hls-csynth", b"abc") == b"abc"


class TestDeterminism:
    def test_random_plan_reproducible(self):
        a, b = FaultPlan.random(11), FaultPlan.random(11)
        assert [s.to_dict() for s in a.specs] == \
            [s.to_dict() for s in b.specs]

    def test_random_plans_differ_across_seeds(self):
        plans = [[s.to_dict() for s in FaultPlan.random(seed).specs]
                 for seed in range(8)]
        assert len({str(p) for p in plans}) > 1

    def test_permanent_confined_to_cloud(self):
        for seed in range(64):
            for spec in FaultPlan.random(seed).specs:
                if spec.kind is FaultKind.PERMANENT:
                    assert spec.boundary in CLOUD_BOUNDARIES

    def test_transient_counts_stay_survivable(self):
        for seed in range(64):
            for spec in FaultPlan.random(seed).specs:
                if spec.kind is FaultKind.TRANSIENT:
                    assert spec.times <= 2  # below max_attempts=3

    def test_replay_identical_injection_sequence(self):
        clock = VirtualClock()
        outcomes = []
        for _ in range(2):
            plan = FaultPlan.random(23)
            seen = []
            for boundary in ALL_BOUNDARIES * 3:
                try:
                    plan.on_attempt(boundary, clock)
                    seen.append((boundary, None))
                except Exception as exc:
                    seen.append((boundary, type(exc).__name__))
            outcomes.append(seen)
        assert outcomes[0] == outcomes[1]


class TestHarness:
    def test_inject_faults_activates_plan(self):
        plan = FaultPlan()
        assert active_plan() is None
        with inject_faults(plan):
            assert active_plan() is plan
        assert active_plan() is None

    def test_run_boundary_retries_injected_transients(self):
        plan = FaultPlan([FaultSpec("b", FaultKind.TRANSIENT, times=2)])
        calls = []
        with inject_faults(plan):
            result = run_boundary("b", lambda: calls.append(1) or "ok")
        assert result == "ok"
        assert len(calls) == 1  # faults fired before fn on 2 attempts
        assert plan.injected[("b", "transient")] == 2

    def test_breaker_realm_isolated(self):
        outside = breaker_for("realm-test")
        with inject_faults(FaultPlan()):
            inside = breaker_for("realm-test")
            assert inside is not outside
        assert breaker_for("realm-test") is outside

    def test_breaker_opens_under_sustained_transients(self):
        plan = FaultPlan([FaultSpec("b", FaultKind.TRANSIENT,
                                    times=100)])
        with inject_faults(plan):
            # call 1: three transient failures, retry budget exhausted
            with pytest.raises(TransientError):
                run_boundary("b", lambda: "never")
            # call 2: failures 4 and 5 trip the breaker (threshold 5);
            # the third attempt is rejected by the open circuit
            with pytest.raises(CircuitOpenError):
                run_boundary("b", lambda: "never")
            with pytest.raises(CircuitOpenError):
                run_boundary("b", lambda: "never")


class TestDeviceFaults:
    """The device-level kinds fire only through the device hooks."""

    def _device(self):
        from repro.hw.resources import device_for_board
        from repro.runtime.opencl import SimDevice
        return SimDevice("card", device_for_board("aws-f1-xcvu9p"))

    def test_on_attempt_ignores_device_kinds(self):
        from repro.resilience import DEVICE_PATTERN
        clock = VirtualClock()
        plan = FaultPlan([
            FaultSpec(DEVICE_PATTERN, FaultKind.SLOT_CRASH),
            FaultSpec(DEVICE_PATTERN, FaultKind.KERNEL_HANG),
            FaultSpec(DEVICE_PATTERN, FaultKind.SLOW_DEVICE),
        ])
        plan.on_attempt("device.i-1.slot0", clock)  # no raise, no sleep
        assert clock.now == 0.0
        assert plan.total_injected == 0

    def test_device_hook_ignores_build_kinds(self):
        clock = VirtualClock()
        plan = FaultPlan([FaultSpec("device.*", FaultKind.TRANSIENT),
                          FaultSpec("device.*", FaultKind.SLOW)])
        plan.on_device_attempt("device.i-1.slot0", clock)
        assert clock.now == 0.0
        assert plan.total_injected == 0

    def test_slot_crash_kills_the_card_once(self):
        clock = VirtualClock()
        device = self._device()
        plan = FaultPlan([FaultSpec("device.*", FaultKind.SLOT_CRASH)])
        from repro.errors import DeviceLostError
        with pytest.raises(DeviceLostError):
            plan.on_device_attempt("device.i-1.slot0", clock,
                                   device=device)
        assert device.alive is False
        # cleared after `times`
        plan.on_device_attempt("device.i-1.slot0", clock, device=device)

    def test_permanent_device_loss_never_clears(self):
        clock = VirtualClock()
        device = self._device()
        plan = FaultPlan([FaultSpec("device.*", FaultKind.PERMANENT)])
        from repro.errors import DeviceLostError
        for _ in range(3):
            device.alive = True
            with pytest.raises(DeviceLostError):
                plan.on_device_attempt("device.i-1.slot0", clock,
                                       device=device)
            assert device.alive is False

    def test_hang_and_slow_advance_the_clock(self):
        clock = VirtualClock()
        plan = FaultPlan([
            FaultSpec("device.*", FaultKind.KERNEL_HANG, delay_s=600.0),
            FaultSpec("device.*", FaultKind.SLOW_DEVICE, delay_s=20.0),
        ])
        plan.on_device_attempt("device.i-1.slot0", clock)
        assert clock.now == 620.0
        plan.on_device_attempt("device.i-1.slot0", clock)  # exhausted
        assert clock.now == 620.0

    def test_bitflip_corrupts_in_place_and_is_seeded(self):
        import numpy as np
        a = FaultPlan([FaultSpec("device.*", FaultKind.BITFLIP)], seed=9)
        b = FaultPlan([FaultSpec("device.*", FaultKind.BITFLIP)], seed=9)
        buf_a = np.arange(512, dtype=np.float32)
        buf_b = np.arange(512, dtype=np.float32)
        assert a.corrupt_device_weights("device.i-1.slot0", buf_a) > 0
        assert not np.array_equal(buf_a, np.arange(512,
                                                   dtype=np.float32))
        b.corrupt_device_weights("device.i-1.slot0", buf_b)
        assert np.array_equal(buf_a, buf_b)  # same seed, same flips
        # exhausted after `times`
        before = buf_a.copy()
        assert a.corrupt_device_weights("device.i-1.slot0", buf_a) == 0
        assert np.array_equal(buf_a, before)

    def test_random_with_devices_is_recoverable_only(self):
        from repro.resilience import DEVICE_FAULT_KINDS, DEVICE_PATTERN
        saw_device_spec = False
        for seed in range(64):
            plan = FaultPlan.random(seed, include_devices=True)
            for spec in plan.specs:
                if spec.boundary == DEVICE_PATTERN:
                    saw_device_spec = True
                    assert spec.kind in DEVICE_FAULT_KINDS
                    if spec.kind is FaultKind.SLOW_DEVICE:
                        assert spec.delay_s < 60.0  # under the watchdog
                    if spec.kind is FaultKind.KERNEL_HANG:
                        assert spec.delay_s > 60.0  # trips the watchdog
        assert saw_device_spec

    def test_random_without_devices_unchanged(self):
        a = FaultPlan.random(17)
        b = FaultPlan.random(17, include_devices=False)
        assert [s.to_dict() for s in a.specs] == \
            [s.to_dict() for s in b.specs]
        assert all(not s.boundary.startswith("device")
                   for s in a.specs)
