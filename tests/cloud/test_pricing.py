"""F1 cost model tests."""

import pytest

from repro.cloud.pricing import (
    F1_HOURLY_USD,
    ON_PREMISE_BOARD_USD,
    break_even_hours,
    estimate_costs,
    render_cost_table,
)
from repro.errors import CloudError
from repro.frontend.zoo import tc1_model
from repro.hw.accelerator import build_accelerator
from repro.hw.perf import estimate_performance


@pytest.fixture(scope="module")
def perf():
    return estimate_performance(build_accelerator(tc1_model()))


class TestEstimates:
    def test_all_instance_types_covered(self, perf):
        estimates = estimate_costs(perf)
        assert {e.instance_type for e in estimates} == \
            set(F1_HOURLY_USD)

    def test_aggregate_scales_with_slots(self, perf):
        by_type = {e.instance_type: e for e in estimate_costs(perf)}
        small = by_type["f1.2xlarge"]
        big = by_type["f1.16xlarge"]
        assert big.aggregate_images_per_second == \
            8 * small.aggregate_images_per_second

    def test_16x_is_cheapest_per_image(self, perf):
        """The 8-slot instance costs 8x the 1-slot but its hourly rate is
        exactly 8x too, so $/image matches; per-slot-hour it is never
        worse.  With 2018 rates the family is linear."""
        estimates = estimate_costs(perf)
        per_image = [e.usd_per_million_images for e in estimates]
        assert max(per_image) / min(per_image) < 1.01

    def test_batch_affects_cost(self, perf):
        batch1 = estimate_costs(perf, batch=1)[0]
        steady = estimate_costs(perf)[0]
        assert batch1.usd_per_million_images > \
            steady.usd_per_million_images

    def test_magnitudes_sane(self, perf):
        est = estimate_costs(perf)[0]
        # TC1 at ~58k images/s on one slot: cents per million images
        assert 0.001 < est.usd_per_million_images < 1.0

    def test_custom_rates(self, perf):
        estimates = estimate_costs(perf, rates={
            "f1.2xlarge": 10.0, "f1.4xlarge": 20.0, "f1.16xlarge": 80.0})
        assert estimates[0].hourly_usd in (10.0, 80.0, 20.0)

    def test_missing_rate(self, perf):
        with pytest.raises(CloudError, match="no rate"):
            estimate_costs(perf, rates={"f1.2xlarge": 1.0})


class TestBreakEven:
    def test_default(self):
        hours = break_even_hours()
        assert hours == pytest.approx(ON_PREMISE_BOARD_USD / 1.65)
        # renting pays off for months of continuous use
        assert hours > 24 * 30 * 5

    def test_unknown_type(self):
        with pytest.raises(CloudError):
            break_even_hours("f1.32xlarge")

    def test_bad_rate(self):
        with pytest.raises(CloudError):
            break_even_hours(rates={"f1.2xlarge": 0.0})


class TestRendering:
    def test_table(self, perf):
        text = render_cost_table(estimate_costs(perf))
        assert "f1.16xlarge" in text
        assert "$/1M images" in text
