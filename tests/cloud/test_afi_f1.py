"""AFI service + F1 instance tests."""

import pytest

from repro.cloud.afi import AFIService, AFIState, PENDING_TICKS
from repro.cloud.client import AWSSession
from repro.cloud.f1 import F1Instance, F1_INSTANCE_TYPES
from repro.cloud.s3 import S3Store
from repro.errors import AFIError, InstanceError
from repro.frontend.condor_format import DeploymentOption
from repro.frontend.zoo import tc1_model
from repro.hw.accelerator import build_accelerator
from repro.hw.resources import device_for_board
from repro.toolchain.assemble import build_network_ip
from repro.toolchain.hls import VivadoHLS
from repro.toolchain.sdaccel import (
    generate_kernel_xml,
    package_xo,
    xocc_link,
)
from repro.toolchain.xclbin import write_xclbin


@pytest.fixture(scope="module")
def xclbin_bytes():
    model = tc1_model(DeploymentOption.AWS_F1)
    acc = build_accelerator(model)
    hls = VivadoHLS("xcvu9p", model.frequency_hz)
    assembly = build_network_ip(acc, hls)
    xo = package_xo(assembly.accelerator_ip,
                    generate_kernel_xml(assembly.accelerator_ip),
                    model=model)
    return write_xclbin(
        xocc_link(xo, device_for_board("aws-f1-xcvu9p"),
                  model.frequency_hz))


@pytest.fixture
def service(xclbin_bytes):
    s3 = S3Store()
    s3.create_bucket("bkt")
    s3.put_object("bkt", "dcp/tc1.xclbin", xclbin_bytes)
    return AFIService(s3)


class TestAFILifecycle:
    def test_creation_is_asynchronous(self, service):
        record = service.create_fpga_image(
            name="tc1", input_storage_location="s3://bkt/dcp/tc1.xclbin")
        assert record.afi_id.startswith("afi-")
        assert record.agfi_id.startswith("agfi-")
        assert record.state is AFIState.PENDING
        for _ in range(PENDING_TICKS - 1):
            service.tick()
            assert record.state is AFIState.PENDING
        service.tick()
        assert record.state is AFIState.AVAILABLE
        assert record.xclbin_bytes is not None

    def test_wait_until_available(self, service):
        record = service.create_fpga_image(
            name="tc1", input_storage_location="s3://bkt/dcp/tc1.xclbin")
        done = service.wait_until_available(record.afi_id)
        assert done.state is AFIState.AVAILABLE

    def test_ids_are_content_derived(self, service):
        a = service.create_fpga_image(
            name="a", input_storage_location="s3://bkt/dcp/tc1.xclbin")
        b = service.create_fpga_image(
            name="b", input_storage_location="s3://bkt/dcp/tc1.xclbin")
        assert a.afi_id == b.afi_id  # same bytes -> same image id

    def test_corrupt_payload_fails(self, service):
        service.s3.put_object("bkt", "bad", b"garbage")
        record = service.create_fpga_image(
            name="bad", input_storage_location="s3://bkt/bad")
        with pytest.raises(AFIError, match="failed"):
            service.wait_until_available(record.afi_id)
        assert record.state is AFIState.FAILED
        assert "invalid design checkpoint" in record.error

    def test_wrong_part_fails(self, service):
        from repro.toolchain.xclbin import Xclbin, write_xclbin as wx
        zynq = Xclbin(kernel_name="k", part="xc7z020",
                      frequency_hz=100e6,
                      sections={b"META": b"{}", b"BITS": b"\x00"})
        service.s3.put_object("bkt", "zynq", wx(zynq))
        record = service.create_fpga_image(
            name="z", input_storage_location="s3://bkt/zynq")
        with pytest.raises(AFIError):
            service.wait_until_available(record.afi_id)
        assert "requires xcvu9p" in record.error

    def test_missing_input(self, service):
        with pytest.raises(AFIError, match="unreadable"):
            service.create_fpga_image(
                name="x", input_storage_location="s3://bkt/missing")

    def test_unknown_ids(self, service):
        with pytest.raises(AFIError):
            service.describe_fpga_image("afi-zzz")
        with pytest.raises(AFIError):
            service.resolve_agfi("agfi-zzz")

    def test_empty_name_rejected(self, service):
        with pytest.raises(AFIError, match="name"):
            service.create_fpga_image(
                name="", input_storage_location="s3://bkt/dcp/tc1.xclbin")


class TestF1Instances:
    def test_slot_counts(self, service):
        for itype, slots in F1_INSTANCE_TYPES.items():
            instance = F1Instance(itype, service)
            assert len(instance.slots) == slots

    def test_unknown_type(self, service):
        with pytest.raises(InstanceError, match="unknown F1"):
            F1Instance("f1.32xlarge", service)

    def test_load_available_afi(self, service):
        record = service.create_fpga_image(
            name="tc1", input_storage_location="s3://bkt/dcp/tc1.xclbin")
        service.wait_until_available(record.afi_id)
        instance = F1Instance("f1.2xlarge", service)
        slot = instance.load_afi(0, record.agfi_id)
        assert slot.device.programmed is not None
        assert slot.device.programmed.kernel_name == "tc1"
        assert instance.describe_slots()[0]["programmed"] is True

    def test_pending_afi_cannot_load(self, service):
        record = service.create_fpga_image(
            name="tc1", input_storage_location="s3://bkt/dcp/tc1.xclbin")
        instance = F1Instance("f1.2xlarge", service)
        with pytest.raises(InstanceError, match="pending"):
            instance.load_afi(0, record.agfi_id)

    def test_bad_slot_index(self, service):
        instance = F1Instance("f1.2xlarge", service)
        with pytest.raises(InstanceError, match="slot"):
            instance.slot(1)

    def test_clear_slot(self, service):
        record = service.create_fpga_image(
            name="tc1", input_storage_location="s3://bkt/dcp/tc1.xclbin")
        service.wait_until_available(record.afi_id)
        instance = F1Instance("f1.2xlarge", service)
        instance.load_afi(0, record.agfi_id)
        instance.clear_slot(0)
        assert instance.describe_slots()[0]["programmed"] is False

    def test_load_afi_unknown_slot_index(self, service):
        record = service.create_fpga_image(
            name="tc1", input_storage_location="s3://bkt/dcp/tc1.xclbin")
        service.wait_until_available(record.afi_id)
        instance = F1Instance("f1.2xlarge", service)
        with pytest.raises(InstanceError, match="no slot 3"):
            instance.load_afi(3, record.agfi_id)

    def test_load_afi_unknown_agfi(self, service):
        instance = F1Instance("f1.2xlarge", service)
        with pytest.raises(AFIError, match="unknown AGFI"):
            instance.load_afi(0, "agfi-doesnotexist")

    def test_load_afi_failed_image_cannot_load(self, service):
        service.s3.put_object("bkt", "bad", b"garbage")
        record = service.create_fpga_image(
            name="bad", input_storage_location="s3://bkt/bad")
        for _ in range(PENDING_TICKS):
            service.tick()
        assert record.state is AFIState.FAILED
        instance = F1Instance("f1.2xlarge", service)
        with pytest.raises(InstanceError, match="failed"):
            instance.load_afi(0, record.agfi_id)

    def test_double_clear_is_an_error(self, service):
        record = service.create_fpga_image(
            name="tc1", input_storage_location="s3://bkt/dcp/tc1.xclbin")
        service.wait_until_available(record.afi_id)
        instance = F1Instance("f1.2xlarge", service)
        instance.load_afi(0, record.agfi_id)
        instance.clear_slot(0)
        with pytest.raises(InstanceError, match="no image loaded"):
            instance.clear_slot(0)

    def test_clear_never_loaded_slot_is_an_error(self, service):
        instance = F1Instance("f1.2xlarge", service)
        with pytest.raises(InstanceError, match="no image loaded"):
            instance.clear_slot(0)

    def test_clear_slot_unknown_index(self, service):
        instance = F1Instance("f1.2xlarge", service)
        with pytest.raises(InstanceError, match="no slot 5"):
            instance.clear_slot(5)

    def test_instance_ids_are_unique(self, service):
        ids = {F1Instance("f1.2xlarge", service).instance_id
               for _ in range(16)}
        assert len(ids) == 16
        for instance_id in ids:
            assert instance_id.startswith("i-")
            assert len(instance_id) == len("i-") + 17

    def test_explicit_instance_id_is_kept(self, service):
        instance = F1Instance("f1.2xlarge", service,
                              instance_id="i-deadbeef")
        assert instance.instance_id == "i-deadbeef"

    def test_slot_fault_boundaries_name_the_instance(self, service):
        instance = F1Instance("f1.4xlarge", service)
        boundaries = [s.device.fault_boundary for s in instance.slots]
        assert boundaries == [
            f"device.{instance.instance_id}.slot0",
            f"device.{instance.instance_id}.slot1",
        ]


class TestAWSSession:
    def test_end_to_end_verbs(self, xclbin_bytes):
        aws = AWSSession()
        uri = aws.upload("condor-bucket", "dcp/x.xclbin", xclbin_bytes)
        assert uri == "s3://condor-bucket/dcp/x.xclbin"
        record = aws.create_fpga_image(name="x", bucket="condor-bucket",
                                       key="dcp/x.xclbin")
        done = aws.wait_for_afi(record.afi_id)
        assert done.state is AFIState.AVAILABLE
        instance = aws.run_f1_instance("f1.16xlarge")
        assert len(instance.slots) == 8
        slot = instance.load_afi(3, done.agfi_id)
        assert slot.agfi_id == done.agfi_id
        assert aws.instances == [instance]

    def test_session_instance_ids_never_collide(self):
        # two sessions used to hand out the same per-session sequence
        # ids; the process-wide launch sequence makes them unique
        a, b = AWSSession(), AWSSession()
        ids = [a.run_f1_instance().instance_id for _ in range(3)]
        ids += [b.run_f1_instance().instance_id for _ in range(3)]
        assert len(set(ids)) == 6

    def test_upload_creates_bucket(self):
        aws = AWSSession()
        aws.upload("new-bucket", "k", b"x")
        assert aws.s3.bucket_exists("new-bucket")
        aws.upload("new-bucket", "k2", b"y")  # idempotent ensure
