"""S3 object store tests."""

import pytest

from repro.cloud.s3 import S3Store
from repro.errors import S3Error


@pytest.fixture
def s3():
    store = S3Store()
    store.create_bucket("my-bucket")
    return store


class TestBuckets:
    def test_create_and_list(self, s3):
        s3.create_bucket("another")
        assert s3.list_buckets() == ["another", "my-bucket"]
        assert s3.bucket_exists("my-bucket")
        assert not s3.bucket_exists("nope")

    @pytest.mark.parametrize("bad", ["UPPER", "a", "-start", "end-",
                                     "has_underscore", ""])
    def test_invalid_names(self, s3, bad):
        with pytest.raises(S3Error, match="invalid bucket name"):
            s3.create_bucket(bad)

    def test_duplicate_rejected(self, s3):
        with pytest.raises(S3Error, match="already exists"):
            s3.create_bucket("my-bucket")


class TestObjects:
    def test_put_get(self, s3):
        obj = s3.put_object("my-bucket", "dcp/design.xclbin", b"data")
        assert obj.uri == "s3://my-bucket/dcp/design.xclbin"
        assert obj.size == 4
        assert s3.get_object("my-bucket", "dcp/design.xclbin").data == \
            b"data"

    def test_etag_is_md5(self, s3):
        import hashlib
        obj = s3.put_object("my-bucket", "k", b"hello")
        assert obj.etag == hashlib.md5(b"hello").hexdigest()

    def test_missing_bucket_vs_key(self, s3):
        with pytest.raises(S3Error, match="NoSuchBucket"):
            s3.get_object("other", "k")
        with pytest.raises(S3Error, match="NoSuchKey"):
            s3.get_object("my-bucket", "k")

    def test_head(self, s3):
        s3.put_object("my-bucket", "k", b"12345")
        assert s3.head_object("my-bucket", "k")["ContentLength"] == 5

    def test_delete_idempotent(self, s3):
        s3.put_object("my-bucket", "k", b"x")
        s3.delete_object("my-bucket", "k")
        s3.delete_object("my-bucket", "k")  # no error
        with pytest.raises(S3Error):
            s3.get_object("my-bucket", "k")

    def test_list_with_prefix(self, s3):
        s3.put_object("my-bucket", "a/1", b"")
        s3.put_object("my-bucket", "a/2", b"")
        s3.put_object("my-bucket", "b/1", b"")
        assert s3.list_objects("my-bucket", "a/") == ["a/1", "a/2"]
        assert len(s3.list_objects("my-bucket")) == 3

    def test_invalid_key(self, s3):
        with pytest.raises(S3Error, match="invalid key"):
            s3.put_object("my-bucket", "", b"")
        with pytest.raises(S3Error, match="invalid key"):
            s3.put_object("my-bucket", "/abs", b"")

    def test_overwrite_replaces(self, s3):
        s3.put_object("my-bucket", "k", b"v1")
        s3.put_object("my-bucket", "k", b"v2")
        assert s3.get_object("my-bucket", "k").data == b"v2"


class TestUriParsing:
    def test_parse(self, s3):
        assert s3.parse_uri("s3://b/k/x") == ("b", "k/x")

    @pytest.mark.parametrize("bad", ["http://b/k", "s3://", "s3://bucket",
                                     "bucket/key"])
    def test_malformed(self, s3, bad):
        with pytest.raises(S3Error):
            s3.parse_uri(bad)
