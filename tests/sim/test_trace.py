"""Trace / profiling tests."""

import numpy as np
import pytest

from repro.frontend.weights import WeightStore
from repro.frontend.zoo import tc1_model
from repro.hw.accelerator import build_accelerator
from repro.sim.core import Delay, Get, Put, Simulator
from repro.sim.dataflow import simulate_accelerator
from repro.sim.trace import StallInterval, Trace


def traced_producer_consumer(capacity=2, produce=6, consumer_lag=10):
    sim = Simulator()
    trace = Trace().attach(sim)
    ch = sim.channel("c", capacity=capacity)

    def producer():
        for i in range(produce):
            yield Put(ch, i)

    def consumer():
        yield Delay(consumer_lag)
        for _ in range(produce):
            value = yield Get(ch)
            yield Delay(1)

    sim.process("prod", producer())
    sim.process("cons", consumer())
    sim.run()
    return sim, trace


class TestTraceRecording:
    def test_occupancy_samples(self):
        _, trace = traced_producer_consumer()
        assert trace.channels() == ["c"]
        assert trace.max_occupancy("c") == 2
        # occupancy never exceeds capacity and never goes negative
        assert all(0 <= occ <= 2 for _, occ in trace.occupancy["c"])

    def test_stalls_recorded(self):
        sim, trace = traced_producer_consumer(capacity=2, produce=6,
                                              consumer_lag=10)
        # producer blocks on the full channel until the consumer starts
        prod_stalls = [s for s in trace.stalls if s.process == "prod"]
        assert prod_stalls
        assert prod_stalls[0].reason == "put:c"
        assert trace.stall_cycles("prod") == sim.blocked_cycles("prod")

    def test_stall_breakdown(self):
        _, trace = traced_producer_consumer()
        breakdown = trace.stall_breakdown("prod")
        assert set(breakdown) == {"put:c"}
        assert breakdown["put:c"] > 0

    def test_bottleneck_ranking(self):
        _, trace = traced_producer_consumer()
        ranked = trace.bottleneck_channels()
        assert ranked[0][0] == "c"

    def test_mean_occupancy_bounded(self):
        _, trace = traced_producer_consumer()
        assert 0.0 <= trace.mean_occupancy("c") <= 2.0

    def test_empty_channel_stats(self):
        trace = Trace()
        assert trace.max_occupancy("x") == 0
        assert trace.mean_occupancy("x") == 0.0
        assert trace.stall_cycles("p") == 0


class TestExport:
    def test_csv_formats(self):
        _, trace = traced_producer_consumer()
        occ = trace.occupancy_csv()
        assert occ.startswith("channel,time,occupancy\n")
        assert "c," in occ
        stalls = trace.stalls_csv()
        assert stalls.startswith("process,reason,start,end,cycles\n")
        assert "prod,put:c," in stalls

    def test_report_renders(self):
        _, trace = traced_producer_consumer()
        text = trace.report()
        assert "channel" in text and "c" in text


class TestAcceleratorTracing:
    def test_trace_through_simulate(self):
        model = tc1_model()
        acc = build_accelerator(model)
        weights = WeightStore.initialize(model.network, 0)
        trace = Trace()
        images = np.zeros((3, 1, 16, 16), dtype=np.float32)
        result = simulate_accelerator(acc, weights, images, trace=trace)
        # every pipeline channel saw traffic
        assert len(trace.channels()) == len(
            [e for e in acc.edges
             if not e.fifo.name.endswith("weights")])
        # trace stall totals equal the kernel's blocked accounting
        for pe in acc.pes:
            assert trace.stall_cycles(pe.name) == \
                result.pe_blocked_cycles[pe.name]
        # the non-bottleneck PEs starve on their input: get-stalls exist
        reasons = {s.reason.split(":")[0] for s in trace.stalls}
        assert "get" in reasons

    def test_trace_identifies_bottleneck_feeder(self):
        """Downstream PEs spend their stall time waiting on the stream
        out of the bottleneck region."""
        model = tc1_model()
        acc = build_accelerator(model)
        weights = WeightStore.initialize(model.network, 0)
        trace = Trace()
        simulate_accelerator(acc, weights,
                             np.zeros((4, 1, 16, 16), dtype=np.float32),
                             trace=trace)
        top_channel, cycles = trace.bottleneck_channels(1)[0]
        assert cycles > 0


class TestStallInterval:
    def test_cycles(self):
        stall = StallInterval("p", "get:c", 5, 12)
        assert stall.cycles == 7
