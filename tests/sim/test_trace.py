"""Trace / profiling tests."""

import numpy as np
import pytest

from repro.frontend.weights import WeightStore
from repro.frontend.zoo import tc1_model
from repro.hw.accelerator import build_accelerator
from repro.sim.core import Delay, Get, Put, Simulator
from repro.sim.dataflow import simulate_accelerator
from repro.sim.trace import StallInterval, Trace


def traced_producer_consumer(capacity=2, produce=6, consumer_lag=10):
    sim = Simulator()
    trace = Trace().attach(sim)
    ch = sim.channel("c", capacity=capacity)

    def producer():
        for i in range(produce):
            yield Put(ch, i)

    def consumer():
        yield Delay(consumer_lag)
        for _ in range(produce):
            value = yield Get(ch)
            yield Delay(1)

    sim.process("prod", producer())
    sim.process("cons", consumer())
    sim.run()
    return sim, trace


class TestTraceRecording:
    def test_occupancy_samples(self):
        _, trace = traced_producer_consumer()
        assert trace.channels() == ["c"]
        assert trace.max_occupancy("c") == 2
        # occupancy never exceeds capacity and never goes negative
        assert all(0 <= occ <= 2 for _, occ in trace.occupancy["c"])

    def test_stalls_recorded(self):
        sim, trace = traced_producer_consumer(capacity=2, produce=6,
                                              consumer_lag=10)
        # producer blocks on the full channel until the consumer starts
        prod_stalls = [s for s in trace.stalls if s.process == "prod"]
        assert prod_stalls
        assert prod_stalls[0].reason == "put:c"
        assert trace.stall_cycles("prod") == sim.blocked_cycles("prod")

    def test_stall_breakdown(self):
        _, trace = traced_producer_consumer()
        breakdown = trace.stall_breakdown("prod")
        assert set(breakdown) == {"put:c"}
        assert breakdown["put:c"] > 0

    def test_bottleneck_ranking(self):
        _, trace = traced_producer_consumer()
        ranked = trace.bottleneck_channels()
        assert ranked[0][0] == "c"

    def test_mean_occupancy_bounded(self):
        _, trace = traced_producer_consumer()
        assert 0.0 <= trace.mean_occupancy("c") <= 2.0

    def test_empty_channel_stats(self):
        trace = Trace()
        assert trace.max_occupancy("x") == 0
        assert trace.mean_occupancy("x") == 0.0
        assert trace.stall_cycles("p") == 0


class TestExport:
    def test_csv_formats(self):
        _, trace = traced_producer_consumer()
        occ = trace.occupancy_csv()
        assert occ.startswith("channel,time,occupancy\n")
        assert "c," in occ
        stalls = trace.stalls_csv()
        assert stalls.startswith("process,reason,start,end,cycles\n")
        assert "prod,put:c," in stalls

    def test_report_renders(self):
        _, trace = traced_producer_consumer()
        text = trace.report()
        assert "channel" in text and "c" in text


class TestAcceleratorTracing:
    def test_trace_through_simulate(self):
        model = tc1_model()
        acc = build_accelerator(model)
        weights = WeightStore.initialize(model.network, 0)
        trace = Trace()
        images = np.zeros((3, 1, 16, 16), dtype=np.float32)
        result = simulate_accelerator(acc, weights, images, trace=trace)
        # every pipeline channel saw traffic
        assert len(trace.channels()) == len(
            [e for e in acc.edges
             if not e.fifo.name.endswith("weights")])
        # trace stall totals equal the kernel's blocked accounting
        for pe in acc.pes:
            assert trace.stall_cycles(pe.name) == \
                result.pe_blocked_cycles[pe.name]
        # the non-bottleneck PEs starve on their input: get-stalls exist
        reasons = {s.reason.split(":")[0] for s in trace.stalls}
        assert "get" in reasons

    def test_trace_identifies_bottleneck_feeder(self):
        """Downstream PEs spend their stall time waiting on the stream
        out of the bottleneck region."""
        model = tc1_model()
        acc = build_accelerator(model)
        weights = WeightStore.initialize(model.network, 0)
        trace = Trace()
        simulate_accelerator(acc, weights,
                             np.zeros((4, 1, 16, 16), dtype=np.float32),
                             trace=trace)
        top_channel, cycles = trace.bottleneck_channels(1)[0]
        assert cycles > 0


def two_pe_pipeline(batch=6, pe2_cost=5):
    """A hand-built two-PE pipeline with a deliberate bottleneck in pe2:
    pe1 (1 cycle/item) feeds pe2 (``pe2_cost`` cycles/item) over a
    shallow FIFO, so ``pe1_to_pe2`` backs up and pe1 blocks on put while
    the sink starves on get."""
    sim = Simulator()
    trace = Trace().attach(sim)
    ch_in = sim.channel("dm_to_pe1", capacity=2)
    ch_mid = sim.channel("pe1_to_pe2", capacity=2)
    ch_out = sim.channel("pe2_to_dm", capacity=2)

    def source():
        for i in range(batch):
            yield Put(ch_in, float(i))

    def pe1():
        for _ in range(batch):
            value = yield Get(ch_in)
            yield Delay(1)
            yield Put(ch_mid, value + 1.0)

    def pe2():
        for _ in range(batch):
            value = yield Get(ch_mid)
            yield Delay(pe2_cost)
            yield Put(ch_out, value * 2.0)

    def sink():
        for _ in range(batch):
            yield Get(ch_out)

    sim.process("source", source())
    sim.process("pe1", pe1())
    sim.process("pe2", pe2())
    sim.process("sink", sink())
    sim.run()
    return sim, trace


class TestTwoPEPipelineAnalytics:
    """The satellite coverage: analytics on a small two-PE pipeline."""

    def test_stall_breakdown_per_reason(self):
        sim, trace = two_pe_pipeline()
        pe1 = trace.stall_breakdown("pe1")
        # pe1 blocks only pushing into the slow pe2
        assert set(pe1) == {"put:pe1_to_pe2"}
        assert pe1["put:pe1_to_pe2"] == sim.blocked_cycles("pe1")
        sink = trace.stall_breakdown("sink")
        assert set(sink) == {"get:pe2_to_dm"}
        # pe2 is the bottleneck: it never blocks long on its output
        pe2 = trace.stall_breakdown("pe2")
        assert sum(pe2.values()) <= pe1["put:pe1_to_pe2"]

    def test_bottleneck_channels_point_at_the_slow_pe(self):
        _, trace = two_pe_pipeline()
        ranked = trace.bottleneck_channels()
        channels = [c for c, _ in ranked]
        # the slow PE starves its consumer: its output FIFO causes the
        # most blocked cycles, with its backed-up input FIFO next
        assert channels[:2] == ["pe2_to_dm", "pe1_to_pe2"]
        cycles = [c for _, c in ranked]
        assert cycles == sorted(cycles, reverse=True)
        # top-N truncation works
        assert len(trace.bottleneck_channels(1)) == 1

    def test_occupancy_csv_parses_and_matches_samples(self):
        _, trace = two_pe_pipeline()
        lines = trace.occupancy_csv().strip().splitlines()
        assert lines[0] == "channel,time,occupancy"
        rows = [line.split(",") for line in lines[1:]]
        total_samples = sum(len(v) for v in trace.occupancy.values())
        assert len(rows) == total_samples
        for channel, t, occ in rows:
            assert channel in trace.channels()
            assert 0 <= int(occ) <= 2
            assert 0 <= int(t) <= trace.end_time

    def test_chrome_trace_round_trip(self, tmp_path):
        """Satellite: export round-trips as valid trace-event JSON with
        ordered timestamps and complete (X) duration events."""
        import json

        _, trace = two_pe_pipeline()
        path = trace.write_chrome_trace(tmp_path / "pipeline.json")
        doc = json.loads(path.read_text())
        timed = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        ts = [e["ts"] for e in timed]
        assert ts == sorted(ts)
        x_events = [e for e in timed if e["ph"] == "X"]
        assert len(x_events) == len(trace.stalls)
        for event in x_events:
            assert event["dur"] >= 0
            assert {"pid", "tid", "name", "ts"} <= set(event)
        counters = [e for e in timed if e["ph"] == "C"]
        assert {e["name"] for e in counters} == \
            {f"fifo {c}" for c in trace.channels()}


class TestStallInterval:
    def test_cycles(self):
        stall = StallInterval("p", "get:c", 5, 12)
        assert stall.cycles == 7
