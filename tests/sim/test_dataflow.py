"""Accelerator simulation tests: functional equivalence with the reference
engine and cycle fidelity against the analytic model."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.frontend.condor_format import CondorModel, LayerHints
from repro.frontend.weights import WeightStore
from repro.frontend.zoo import tc1_model
from repro.hw.accelerator import build_accelerator
from repro.hw.perf import estimate_performance
from repro.ir.layers import (
    Activation,
    ActivationLayer,
    ConvLayer,
    FullyConnectedLayer,
    PoolLayer,
    PoolOp,
    SoftmaxLayer,
)
from repro.ir.network import chain
from repro.nn.engine import ReferenceEngine
from repro.sim.dataflow import simulate_accelerator


def run_both(net, batch=2, seed=0):
    """Simulate and run the reference engine on the same inputs."""
    model = CondorModel(network=net)
    acc = build_accelerator(model)
    weights = WeightStore.initialize(net, seed)
    rng = np.random.default_rng(seed + 1)
    images = rng.normal(size=(batch,) + net.input_shape().as_tuple()) \
        .astype(np.float32)
    result = simulate_accelerator(acc, weights, images)
    reference = ReferenceEngine(net, weights).forward_batch(images)
    return result, reference, acc


class TestFunctionalEquivalence:
    def test_single_conv(self):
        net = chain("c", (1, 8, 8), [ConvLayer("conv", num_output=3,
                                               kernel=3)])
        result, reference, _ = run_both(net)
        for out, ref in zip(result.outputs, reference):
            np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)

    def test_conv_with_stride_and_pad(self):
        net = chain("c", (2, 9, 9), [
            ConvLayer("conv", num_output=4, kernel=3, stride=2, pad=1,
                      activation=Activation.RELU)])
        result, reference, _ = run_both(net)
        for out, ref in zip(result.outputs, reference):
            np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)

    def test_conv_no_bias_tanh(self):
        net = chain("c", (1, 6, 6), [
            ConvLayer("conv", num_output=2, kernel=3, bias=False,
                      activation=Activation.TANH)])
        result, reference, _ = run_both(net)
        for out, ref in zip(result.outputs, reference):
            np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)

    def test_pool_avg_and_max(self):
        for op in (PoolOp.MAX, PoolOp.AVG):
            net = chain("p", (3, 8, 8), [PoolLayer("pool", op=op,
                                                   kernel=2)])
            result, reference, _ = run_both(net)
            for out, ref in zip(result.outputs, reference):
                np.testing.assert_allclose(out, ref, rtol=1e-5)

    def test_standalone_activation(self):
        net = chain("a", (2, 5, 5), [
            ActivationLayer("act", kind=Activation.SIGMOID)])
        result, reference, _ = run_both(net)
        for out, ref in zip(result.outputs, reference):
            np.testing.assert_allclose(out, ref, rtol=1e-5)

    def test_fc_and_softmax(self):
        net = chain("f", (4, 3, 3), [
            FullyConnectedLayer("fc", num_output=6,
                                activation=Activation.RELU),
            SoftmaxLayer("prob", log=True)])
        result, reference, _ = run_both(net)
        for out, ref in zip(result.outputs, reference):
            np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)

    def test_full_tc1(self):
        model = tc1_model()
        net = model.network
        acc = build_accelerator(model)
        weights = WeightStore.initialize(net, 7)
        images = np.random.default_rng(1).normal(
            size=(3, 1, 16, 16)).astype(np.float32)
        result = simulate_accelerator(acc, weights, images)
        reference = ReferenceEngine(net, weights).forward_batch(images)
        for out, ref in zip(result.outputs, reference):
            np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-5)

    def test_fused_pe(self):
        net = chain("fused", (1, 10, 10), [
            ConvLayer("conv", num_output=3, kernel=3),
            PoolLayer("pool", kernel=2),
        ])
        model = CondorModel(network=net, hints={
            "conv": LayerHints(cluster="pe0"),
            "pool": LayerHints(cluster="pe0"),
        })
        acc = build_accelerator(model)
        assert len(acc.pes) == 1
        weights = WeightStore.initialize(net, 0)
        images = np.random.default_rng(2).normal(
            size=(2, 1, 10, 10)).astype(np.float32)
        result = simulate_accelerator(acc, weights, images)
        reference = ReferenceEngine(net, weights).forward_batch(images)
        for out, ref in zip(result.outputs, reference):
            np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)


class TestCycleFidelity:
    def test_tc1_within_tolerance_of_analytic(self):
        model = tc1_model()
        acc = build_accelerator(model)
        weights = WeightStore.initialize(model.network, 0)
        images = np.zeros((8, 1, 16, 16), dtype=np.float32)
        result = simulate_accelerator(acc, weights, images)
        perf = estimate_performance(acc)
        ratio = result.total_cycles / perf.batch_cycles(8)
        assert 0.85 < ratio < 1.15

    def test_sim_ii_tracks_bottleneck(self):
        model = tc1_model()
        acc = build_accelerator(model)
        weights = WeightStore.initialize(model.network, 0)
        images = np.zeros((6, 1, 16, 16), dtype=np.float32)
        result = simulate_accelerator(acc, weights, images)
        done = result.image_done_cycles
        deltas = [b - a for a, b in zip(done, done[1:])]
        perf = estimate_performance(acc)
        # steady-state image period within 15% of analytic II
        assert deltas[-1] == pytest.approx(perf.ii_cycles, rel=0.15)

    def test_batch_amortizes_latency(self):
        """Figure 5 behaviour measured by the event simulator itself."""
        model = tc1_model()
        acc = build_accelerator(model)
        weights = WeightStore.initialize(model.network, 0)
        mean = []
        for batch in (1, 4, 8):
            images = np.zeros((batch, 1, 16, 16), dtype=np.float32)
            result = simulate_accelerator(acc, weights, images)
            mean.append(result.mean_cycles_per_image())
        assert mean[0] > mean[1] > mean[2]

    def test_bottleneck_pe_least_blocked(self):
        model = tc1_model()
        acc = build_accelerator(model)
        weights = WeightStore.initialize(model.network, 0)
        images = np.zeros((6, 1, 16, 16), dtype=np.float32)
        result = simulate_accelerator(acc, weights, images)
        busiest = max(result.pe_busy_cycles, key=result.pe_busy_cycles.get)
        assert busiest in ("pe_conv1", "pe_pool1")


class TestParallelConfigs:
    def test_parallel_conv_matches_reference(self):
        model = tc1_model()
        model.hints = {"conv2": LayerHints(in_ports=4, out_ports=4)}
        acc = build_accelerator(model)
        weights = WeightStore.initialize(model.network, 0)
        images = np.random.default_rng(0).normal(
            size=(2, 1, 16, 16)).astype(np.float32)
        result = simulate_accelerator(acc, weights, images)
        ref = ReferenceEngine(model.network, weights) \
            .forward_batch(images)
        for out, expected in zip(result.outputs, ref):
            np.testing.assert_allclose(out, expected, rtol=1e-3,
                                       atol=1e-5)

    def test_parallelism_speeds_up_simulated_run(self):
        weights = WeightStore.initialize(tc1_model().network, 0)
        images = np.zeros((6, 1, 16, 16), dtype=np.float32)

        def ii_for(hints):
            model = tc1_model()
            model.hints = hints
            acc = build_accelerator(model)
            result = simulate_accelerator(acc, weights, images)
            done = result.image_done_cycles
            return done[-1] - done[-2]

        serial = ii_for({})
        parallel = ii_for({
            "conv1": LayerHints(out_ports=4),
            "pool1": LayerHints(in_ports=4, out_ports=4),
            "conv2": LayerHints(in_ports=4, out_ports=4),
            "pool2": LayerHints(in_ports=4, out_ports=4),
        })
        assert parallel < serial / 2

    def test_parallel_ii_tracks_analytic(self):
        model = tc1_model()
        model.hints = {
            "conv1": LayerHints(out_ports=2),
            "pool1": LayerHints(in_ports=2, out_ports=2),
            "conv2": LayerHints(in_ports=2, out_ports=2),
            "pool2": LayerHints(in_ports=2, out_ports=2),
        }
        acc = build_accelerator(model)
        weights = WeightStore.initialize(model.network, 0)
        result = simulate_accelerator(
            acc, weights, np.zeros((6, 1, 16, 16), dtype=np.float32))
        done = result.image_done_cycles
        perf = estimate_performance(acc)
        assert done[-1] - done[-2] == pytest.approx(perf.ii_cycles,
                                                    rel=0.25)


class TestValidation:

    def test_wrong_image_shape_rejected(self):
        model = tc1_model()
        acc = build_accelerator(model)
        weights = WeightStore.initialize(model.network, 0)
        with pytest.raises(SimulationError, match="shape"):
            simulate_accelerator(acc, weights,
                                 np.zeros((1, 1, 8, 8), dtype=np.float32))

    def test_empty_batch_rejected(self):
        model = tc1_model()
        acc = build_accelerator(model)
        weights = WeightStore.initialize(model.network, 0)
        with pytest.raises(SimulationError):
            simulate_accelerator(acc, weights, [])

    def test_result_metadata(self):
        model = tc1_model()
        acc = build_accelerator(model)
        weights = WeightStore.initialize(model.network, 0)
        images = np.zeros((2, 1, 16, 16), dtype=np.float32)
        result = simulate_accelerator(acc, weights, images)
        assert result.batch == 2
        assert len(result.image_done_cycles) == 2
        assert result.image_done_cycles[-1] == result.total_cycles
        assert result.mean_time_per_image(100e6) == \
            result.total_cycles / 2 / 100e6
        assert set(result.pe_busy_cycles) == {pe.name for pe in acc.pes}
