"""Sliding-window chain model tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.hw.partitioning import partition_window_accesses
from repro.nn.functional import sliding_windows
from repro.sim.window import SlidingWindowBuffer


def collect_windows(x: np.ndarray, window: tuple[int, int]) -> np.ndarray:
    """Push a (H, W) map through the buffer, return stacked windows."""
    h, w = x.shape
    spec = partition_window_accesses(window, w)
    swb = SlidingWindowBuffer(spec, h)
    windows = []
    for value in x.reshape(-1):
        out = swb.push(value)
        if out is not None:
            windows.append(out)
    return np.array(windows)


class TestWindows:
    def test_3x3_matches_stride_tricks(self):
        x = np.arange(64, dtype=np.float32).reshape(8, 8)
        got = collect_windows(x, (3, 3))
        want = sliding_windows(x[None], (3, 3), (1, 1))[0].reshape(-1, 3, 3)
        assert got.shape == want.shape
        np.testing.assert_array_equal(got, want)

    def test_window_count(self):
        x = np.zeros((6, 7), dtype=np.float32)
        assert len(collect_windows(x, (2, 3))) == 5 * 5

    def test_1x1_window_every_element(self):
        x = np.arange(12, dtype=np.float32).reshape(3, 4)
        got = collect_windows(x, (1, 1))
        np.testing.assert_array_equal(got.reshape(-1), x.reshape(-1))

    @settings(max_examples=25, deadline=None)
    @given(h=st.integers(3, 10), w=st.integers(3, 10),
           kh=st.integers(1, 3), kw=st.integers(1, 3),
           seed=st.integers(0, 2**31))
    def test_matches_stride_tricks_property(self, h, w, kh, kw, seed):
        if kh > h or kw > w:
            return
        x = np.random.default_rng(seed).normal(size=(h, w)) \
            .astype(np.float32)
        got = collect_windows(x, (kh, kw))
        want = sliding_windows(x[None], (kh, kw), (1, 1))[0] \
            .reshape(-1, kh, kw)
        np.testing.assert_array_equal(got, want)


class TestBufferBound:
    def test_capacity_is_partitioning_bound(self):
        spec = partition_window_accesses((5, 5), 28)
        swb = SlidingWindowBuffer(spec, 28)
        # span + the in-flight element
        assert swb.capacity_words == 4 * 28 + 4 + 1

    def test_never_exceeds_bound(self):
        spec = partition_window_accesses((3, 3), 16)
        swb = SlidingWindowBuffer(spec, 16)
        for value in range(16 * 16):
            swb.push(float(value))
            assert len(swb._buffer) <= swb.capacity_words

    def test_overrun_rejected(self):
        spec = partition_window_accesses((2, 2), 4)
        swb = SlidingWindowBuffer(spec, 4)
        for value in range(16):
            swb.push(float(value))
        with pytest.raises(SimulationError, match="reset"):
            swb.push(0.0)

    def test_reset_allows_next_map(self):
        spec = partition_window_accesses((2, 2), 4)
        swb = SlidingWindowBuffer(spec, 4)
        for value in range(16):
            swb.push(float(value))
        swb.reset()
        assert swb.push(1.0) is None  # first element never completes

    def test_too_short_input_rejected(self):
        spec = partition_window_accesses((4, 4), 8)
        with pytest.raises(SimulationError):
            SlidingWindowBuffer(spec, 3)
