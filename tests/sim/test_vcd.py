"""VCD export tests."""

import re

import numpy as np
import pytest

from repro.frontend.weights import WeightStore
from repro.frontend.zoo import tc1_model
from repro.hw.accelerator import build_accelerator
from repro.sim.dataflow import simulate_accelerator
from repro.sim.trace import Trace
from repro.sim.vcd import _identifiers, trace_to_vcd, write_vcd


@pytest.fixture(scope="module")
def traced_run():
    model = tc1_model()
    acc = build_accelerator(model)
    weights = WeightStore.initialize(model.network, 0)
    trace = Trace()
    simulate_accelerator(acc, weights,
                         np.zeros((2, 1, 16, 16), dtype=np.float32),
                         trace=trace)
    return acc, trace


class TestVcdStructure:
    def test_header(self, traced_run):
        _, trace = traced_run
        vcd = trace_to_vcd(trace)
        assert "$timescale 1 ns $end" in vcd
        assert "$enddefinitions $end" in vcd
        assert "$dumpvars" in vcd

    def test_every_channel_and_pe_declared(self, traced_run):
        acc, trace = traced_run
        vcd = trace_to_vcd(trace)
        for channel in trace.channels():
            assert f"{channel}_occ" in vcd
        stalled = {s.process for s in trace.stalls}
        for pe in acc.pes:
            if pe.name in stalled:
                assert f"{pe.name}_stalled" in vcd

    def test_identifiers_unique(self, traced_run):
        _, trace = traced_run
        vcd = trace_to_vcd(trace)
        ids = re.findall(r"\$var wire \d+ (\S+) ", vcd)
        assert len(ids) == len(set(ids))

    def test_timestamps_monotonic(self, traced_run):
        _, trace = traced_run
        vcd = trace_to_vcd(trace)
        times = [int(m) for m in re.findall(r"^#(\d+)$", vcd, re.M)]
        assert times == sorted(times)
        assert times[-1] == trace.end_time

    def test_binary_values_wellformed(self, traced_run):
        _, trace = traced_run
        vcd = trace_to_vcd(trace)
        for match in re.findall(r"^b([01]+) \S+$", vcd, re.M):
            assert set(match) <= {"0", "1"}

    def test_write_to_file(self, traced_run, tmp_path):
        _, trace = traced_run
        path = write_vcd(trace, tmp_path / "run.vcd", module="tc1")
        text = path.read_text()
        assert "$scope module tc1 $end" in text

    def test_stall_edges_paired(self, traced_run):
        """Every 1-edge on a stall wire is followed by a 0-edge."""
        _, trace = traced_run
        vcd = trace_to_vcd(trace)
        state: dict[str, str] = {}
        ok = True
        for match in re.finditer(r"^([01])(\S+)$", vcd, re.M):
            value, ident = match.groups()
            previous = state.get(ident)
            if previous == value == "1":
                ok = False  # double-rise without fall
            state[ident] = value
        assert ok


class TestIdentifierGenerator:
    def test_uniqueness_over_many(self):
        gen = _identifiers()
        ids = [next(gen) for _ in range(500)]
        assert len(ids) == len(set(ids))

    def test_empty_trace(self):
        vcd = trace_to_vcd(Trace())
        assert "$enddefinitions $end" in vcd
