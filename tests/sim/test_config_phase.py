"""Configuration-phase simulation tests."""

import pytest

from repro.frontend.zoo import lenet_model, tc1_model, vgg16_model
from repro.hw.accelerator import build_accelerator
from repro.hw.perf import estimate_performance
from repro.sim.config_phase import simulate_config_phase


class TestConfigPhase:
    def test_tc1_matches_analytic(self):
        acc = build_accelerator(tc1_model())
        result = simulate_config_phase(acc)
        perf = estimate_performance(acc)
        # all TC1 weights are on chip: measured == analytic preload
        assert result.total_words == sum(pe.weight_words
                                         for pe in acc.pes)
        assert result.total_cycles == pytest.approx(perf.config_cycles,
                                                    rel=0.02)

    def test_lenet_dominated_by_ip1(self):
        acc = build_accelerator(lenet_model())
        result = simulate_config_phase(acc)
        assert result.per_pe_words["pe_ip1"] == 500 * 800 + 500
        assert result.per_pe_words["pe_ip1"] > \
            0.9 * 0.95 * result.total_words  # ip1 is ~93% of the weights

    def test_only_weighted_pes_participate(self):
        acc = build_accelerator(tc1_model())
        result = simulate_config_phase(acc)
        assert set(result.per_pe_words) == {"pe_conv1", "pe_conv2",
                                            "pe_fc"}

    def test_spilled_weights_only_stage(self):
        """VGG's spilled conv weights must not be preloaded in full."""
        acc = build_accelerator(vgg16_model(frequency_hz=180e6))
        result = simulate_config_phase(acc)
        spilled = [pe for pe in acc.pes
                   if pe.weight_words and not pe.weights_on_chip]
        assert spilled
        for pe in spilled:
            assert result.per_pe_words[pe.name] < pe.weight_words

    def test_config_amortized_over_batches(self):
        """The one-off preload is negligible against a large batch —
        the reason Table 1 reports steady-state GFLOPS."""
        acc = build_accelerator(tc1_model())
        perf = estimate_performance(acc)
        config = simulate_config_phase(acc).total_cycles
        assert config < 0.01 * perf.batch_cycles(512)
