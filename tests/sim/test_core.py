"""Simulation kernel tests: channels, blocking, determinism, deadlock."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim.core import Channel, Delay, Get, Put, Simulator


def make_sim():
    return Simulator()


class TestBasics:
    def test_delay_advances_time(self):
        sim = make_sim()

        def proc():
            yield Delay(5)
            yield Delay(3)

        sim.process("p", proc())
        assert sim.run() == 8

    def test_zero_delay_is_free(self):
        sim = make_sim()

        def proc():
            yield Delay(0)

        sim.process("p", proc())
        assert sim.run() == 0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Delay(-1)

    def test_non_generator_rejected(self):
        sim = make_sim()
        with pytest.raises(SimulationError):
            sim.process("p", lambda: None)  # type: ignore[arg-type]

    def test_unknown_command_rejected(self):
        sim = make_sim()

        def proc():
            yield "what"

        sim.process("p", proc())
        with pytest.raises(SimulationError, match="unknown command"):
            sim.run()

    def test_busy_cycles_tracked(self):
        sim = make_sim()

        def proc():
            yield Delay(7)

        sim.process("p", proc())
        sim.run()
        assert sim.busy_cycles("p") == 7
        with pytest.raises(KeyError):
            sim.busy_cycles("q")


class TestChannels:
    def test_put_get_fifo_order(self):
        sim = make_sim()
        ch = sim.channel("c", capacity=8)
        received = []

        def producer():
            for i in range(5):
                yield Put(ch, i)

        def consumer():
            for _ in range(5):
                value = yield Get(ch)
                received.append(value)

        sim.process("prod", producer())
        sim.process("cons", consumer())
        sim.run()
        assert received == [0, 1, 2, 3, 4]

    def test_capacity_blocks_producer(self):
        sim = make_sim()
        ch = sim.channel("c", capacity=2)
        log = []

        def producer():
            for i in range(4):
                yield Put(ch, i)
                log.append(("put", i, sim.now))

        def consumer():
            yield Delay(10)
            for _ in range(4):
                value = yield Get(ch)
                log.append(("get", value, sim.now))

        sim.process("prod", producer())
        sim.process("cons", consumer())
        sim.run()
        puts = [t for op, _, t in log if op == "put"]
        # first two puts happen at t=0; the rest wait for the consumer
        assert puts[0] == 0 and puts[1] == 0
        assert puts[2] >= 10

    def test_empty_blocks_consumer(self):
        sim = make_sim()
        ch = sim.channel("c", capacity=2)
        times = []

        def producer():
            yield Delay(5)
            yield Put(ch, "x")

        def consumer():
            value = yield Get(ch)
            times.append((value, sim.now))

        sim.process("prod", producer())
        sim.process("cons", consumer())
        sim.run()
        assert times == [("x", 5)]

    def test_blocked_time_measured(self):
        sim = make_sim()
        ch = sim.channel("c", capacity=1)

        def producer():
            yield Delay(9)
            yield Put(ch, 1)

        def consumer():
            yield Get(ch)

        sim.process("prod", producer())
        sim.process("cons", consumer())
        sim.run()
        assert sim.blocked_cycles("cons") == 9
        assert sim.blocked_cycles("prod") == 0

    def test_max_occupancy(self):
        sim = make_sim()
        ch = sim.channel("c", capacity=8)

        def producer():
            for i in range(5):
                yield Put(ch, i)

        def consumer():
            yield Delay(5)
            for _ in range(5):
                yield Get(ch)

        sim.process("prod", producer())
        sim.process("cons", consumer())
        sim.run()
        assert ch.max_occupancy == 5
        assert ch.total_puts == 5

    def test_invalid_capacity(self):
        sim = make_sim()
        with pytest.raises(SimulationError):
            sim.channel("c", capacity=0)

    def test_multiple_getters_fifo_fairness(self):
        sim = make_sim()
        ch = sim.channel("c", capacity=4)
        got = {}

        def getter(name):
            value = yield Get(ch)
            got[name] = (value, sim.now)

        def producer():
            yield Delay(2)
            yield Put(ch, "a")
            yield Delay(2)
            yield Put(ch, "b")

        sim.process("g1", getter("g1"))
        sim.process("g2", getter("g2"))
        sim.process("prod", producer())
        sim.run()
        # first blocked getter gets the first value
        assert got["g1"] == ("a", 2)
        assert got["g2"] == ("b", 4)


class TestDeadlock:
    def test_get_on_never_filled_channel(self):
        sim = make_sim()
        ch = sim.channel("c", capacity=1)

        def consumer():
            yield Get(ch)

        sim.process("cons", consumer())
        with pytest.raises(DeadlockError, match="cons waiting on get:c"):
            sim.run()

    def test_mutual_wait(self):
        sim = make_sim()
        a = sim.channel("a", capacity=1)
        b = sim.channel("b", capacity=1)

        def p1():
            yield Get(a)
            yield Put(b, 1)

        def p2():
            yield Get(b)
            yield Put(a, 1)

        sim.process("p1", p1())
        sim.process("p2", p2())
        with pytest.raises(DeadlockError):
            sim.run()

    def test_max_cycles_guard(self):
        sim = make_sim()

        def forever():
            while True:
                yield Delay(10)

        sim.process("p", forever())
        with pytest.raises(SimulationError, match="exceeded"):
            sim.run(max_cycles=100)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        def build():
            sim = make_sim()
            ch = sim.channel("c", capacity=3)
            trace = []

            def producer(n):
                def gen():
                    for i in range(10):
                        yield Put(ch, (n, i))
                        yield Delay(1)
                return gen()

            def consumer():
                for _ in range(20):
                    value = yield Get(ch)
                    trace.append((sim.now, value))
            sim.process("p1", producer(1))
            sim.process("p2", producer(2))
            sim.process("cons", consumer())
            sim.run()
            return trace

        assert build() == build()
