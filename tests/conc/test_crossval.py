"""Static/runtime cross-validation: the lock-order graph the sanitizer
*observes* while driving real code paths must be a subgraph of the one
``condor audit`` derives from the source.

The instrumentation here is surgical: a private
:class:`~repro.sanitizer.SanitizerState` plus instrumented locks swapped
into real objects (a plan cache, a registry, a sampler and the metrics
they touch), so the test is deterministic and independent of the
``REPRO_TSAN`` environment.  A final test covers the other direction:
when the whole suite runs under ``REPRO_TSAN=1``, everything the global
realm observed must also be statically derivable.
"""

import numpy as np
import pytest

from repro.analysis.conc import audit_tree
from repro.frontend.weights import WeightStore
from repro.ir.layers import ConvLayer
from repro.sanitizer import (
    STATE,
    InstrumentedLock,
    InstrumentedRLock,
    SanitizerState,
)
from repro.util.sync import tsan_enabled

METRIC = "obs.metrics.Metric"


@pytest.fixture(scope="module")
def static_edges():
    return audit_tree().lock_order_edges()


def _conv_setup(hw=6):
    layer = ConvLayer(name="conv", num_output=2, kernel=(3, 3))
    store = WeightStore()
    rng = np.random.default_rng(5)
    store.set("conv", "weights",
              rng.normal(size=(2, 1, 3, 3)).astype(np.float32))
    store.set("conv", "bias", rng.normal(size=(2,)).astype(np.float32))
    return layer, store, (1, hw, hw)


def test_plan_cache_edge_observed_and_static(static_edges, monkeypatch):
    from repro.nn import plan as plan_mod

    state = SanitizerState()
    cache = plan_mod.PlanCache(capacity=2)
    cache._lock = InstrumentedRLock("nn.plan.PlanCache", state)
    for metric in (plan_mod.PLAN_HITS, plan_mod.PLAN_MISSES,
                   plan_mod.PLAN_ENTRIES, plan_mod.PLAN_EVICTIONS):
        monkeypatch.setattr(metric, "_lock",
                            InstrumentedLock(METRIC, state))
    layer, store, in_shape = _conv_setup()
    cache.lookup(layer, in_shape, store)   # miss: inc under cache lock
    cache.lookup(layer, in_shape, store)   # hit: inc under cache lock
    cache.lookup(layer, (1, 8, 8), store)
    cache.lookup(layer, (1, 10, 10), store)  # eviction path
    observed = state.order_edges()
    assert ("nn.plan.PlanCache", METRIC) in observed
    assert observed <= static_edges
    assert state.error_count() == 0


def test_registry_reset_edge_observed_and_static(static_edges):
    from repro.obs.metrics import MetricsRegistry

    state = SanitizerState()
    registry = MetricsRegistry(gated=False)
    registry._lock = InstrumentedLock("obs.metrics.MetricsRegistry",
                                      state)
    counter = registry.counter("x_total", "probe")
    counter._lock = InstrumentedLock(METRIC, state)
    counter.inc(3)
    registry.reset()  # clear_values under the registry lock
    observed = state.order_edges()
    assert ("obs.metrics.MetricsRegistry", METRIC) in observed
    assert observed <= static_edges
    assert state.error_count() == 0


def test_sampler_drop_edge_observed_and_static(static_edges, monkeypatch):
    from repro.obs import sampler as sampler_mod
    from repro.obs.metrics import MetricsRegistry

    state = SanitizerState()
    sampler = sampler_mod.TelemetrySampler(
        registry=MetricsRegistry(gated=False), period=60.0, capacity=1)
    sampler._lock = InstrumentedLock("obs.sampler.TelemetrySampler",
                                     state)
    monkeypatch.setattr(sampler_mod.SAMPLER_DROPPED, "_lock",
                        InstrumentedLock(METRIC, state))
    sampler._sample()
    sampler._sample()  # ring full: SAMPLER_DROPPED.inc under the lock
    assert sampler.overhead()["dropped"] == 1
    observed = state.order_edges()
    assert ("obs.sampler.TelemetrySampler", METRIC) in observed
    assert observed <= static_edges
    assert state.error_count() == 0


def test_export_paths_do_not_nest_registry_over_metric(static_edges):
    # scalars()/to_prometheus() snapshot under the registry lock and
    # then let each metric lock itself: no registry -> metric edge
    from repro.obs.metrics import MetricsRegistry

    state = SanitizerState()
    registry = MetricsRegistry(gated=False)
    registry._lock = InstrumentedLock("obs.metrics.MetricsRegistry",
                                      state)
    counter = registry.counter("y_total", "probe")
    counter._lock = InstrumentedLock(METRIC, state)
    counter.inc()
    registry.scalars()
    registry.to_prometheus()
    registry.to_dict()
    assert state.order_edges() == set()
    assert state.error_count() == 0


def test_global_realm_is_subgraph_of_static(static_edges):
    """Under ``REPRO_TSAN=1`` (the CI sanitizer run) every edge the
    process-wide realm has seen so far must be statically predicted."""
    if not tsan_enabled():
        pytest.skip("REPRO_TSAN not enabled in this run")
    observed = STATE.order_edges()
    unexpected = observed - static_edges
    assert not unexpected, (
        f"runtime observed lock-order edges the static analysis does"
        f" not predict: {sorted(unexpected)}")
