"""Each CONC rule catches its synthetic offender and stays quiet on the
equivalent correct code."""

import textwrap

from repro.analysis.conc import audit_tree


def _audit(tmp_path, source, name="mod.py", select=None):
    (tmp_path / name).write_text(textwrap.dedent(source))
    return audit_tree(tmp_path, select=select)


def _codes(result):
    return [d.code for d in result.report]


def test_conc001_unguarded_global_write(tmp_path):
    result = _audit(tmp_path, """
        REGISTRY = {}

        def register(key, value):
            REGISTRY[key] = value
        """, select={"CONC001"})
    (diag,) = result.report
    assert diag.code == "CONC001"
    assert "REGISTRY" in diag.message
    assert diag.location.path == "mod.py"


def test_conc001_guarded_write_is_clean(tmp_path):
    result = _audit(tmp_path, """
        from repro.util.sync import new_lock

        REGISTRY = {}
        _LOCK = new_lock("mod.registry")

        def register(key, value):
            with _LOCK:
                REGISTRY[key] = value
        """, select={"CONC001"})
    assert _codes(result) == []


def test_conc001_global_statement_rebind(tmp_path):
    result = _audit(tmp_path, """
        STATE = {}

        def swap():
            global STATE
            STATE = {}
        """, select={"CONC001"})
    assert _codes(result) == ["CONC001"]


def test_conc002_inconsistent_guard(tmp_path):
    result = _audit(tmp_path, """
        from repro.util.sync import new_lock

        class Box:
            def __init__(self):
                self._lock = new_lock("Box")
                self.items = []

            def add(self, x):
                with self._lock:
                    self.items.append(x)

            def rogue(self, x):
                self.items.append(x)
        """, select={"CONC002"})
    (diag,) = result.report
    assert diag.code == "CONC002"
    assert "Box.items" in diag.message
    assert "rogue" in diag.message


def test_conc002_init_only_attrs_exempt(tmp_path):
    result = _audit(tmp_path, """
        from repro.util.sync import new_lock

        class Box:
            def __init__(self, size):
                self._lock = new_lock("Box")
                self.size = size
                self.items = []

            def add(self, x):
                with self._lock:
                    self.items.append(x)

            def capacity(self):
                return self.size
        """, select={"CONC002"})
    assert _codes(result) == []


def test_conc002_worker_reachable_unguarded_write(tmp_path):
    result = _audit(tmp_path, """
        import threading

        from repro.util.sync import new_lock

        class Worker:
            def __init__(self):
                self._lock = new_lock("Worker")
                self.done = []

            def start(self):
                threading.Thread(target=self._run).start()

            def _run(self):
                self.done.append(1)
        """, select={"CONC002"})
    (diag,) = result.report
    assert diag.code == "CONC002"
    assert "thread-entry" in diag.message


def test_conc002_safe_primitives_exempt(tmp_path):
    result = _audit(tmp_path, """
        import threading

        from repro.util.sync import new_lock

        class Worker:
            def __init__(self):
                self._lock = new_lock("Worker")
                self._stop = threading.Event()
                self.jobs = []

            def halt(self):
                self._stop.set()

            def add(self, j):
                with self._lock:
                    self.jobs.append(j)
        """, select={"CONC002"})
    assert _codes(result) == []


def test_conc003_lock_order_cycle_is_error(tmp_path):
    result = _audit(tmp_path, """
        from repro.util.sync import new_lock

        _A = new_lock("A")
        _B = new_lock("B")

        def forward():
            with _A:
                with _B:
                    pass

        def backward():
            with _B:
                with _A:
                    pass
        """, select={"CONC003"})
    (diag,) = result.report
    assert diag.code == "CONC003"
    assert diag.severity.value == "error"
    assert "A" in diag.message and "B" in diag.message
    assert not result.report.ok


def test_conc004_blocking_under_lock(tmp_path):
    result = _audit(tmp_path, """
        import time

        from repro.util.sync import new_lock

        _LOCK = new_lock("mod.lock")

        def poll():
            with _LOCK:
                time.sleep(0.1)
        """, select={"CONC004"})
    (diag,) = result.report
    assert diag.code == "CONC004"
    assert "sleep" in diag.message


def test_conc004_plain_dict_get_not_blocking(tmp_path):
    result = _audit(tmp_path, """
        from repro.util.sync import new_lock

        _LOCK = new_lock("mod.lock")
        TABLE = {}

        def fetch(key):
            with _LOCK:
                return TABLE.get(key)
        """, select={"CONC004"})
    assert _codes(result) == []


def test_conc005_foreign_private_lock(tmp_path):
    result = _audit(tmp_path, """
        def poke(other):
            with other._lock:
                return other.value
        """, select={"CONC005"})
    (diag,) = result.report
    assert diag.code == "CONC005"
    assert "other._lock" in diag.message


def test_conc006_raw_threading_lock(tmp_path):
    result = _audit(tmp_path, """
        import threading

        _LOCK = threading.Lock()
        """, select={"CONC006"})
    (diag,) = result.report
    assert diag.code == "CONC006"
    assert "new_lock" in diag.hint


def test_waiver_suppresses_and_survives_in_payload(tmp_path):
    result = _audit(tmp_path, """
        REGISTRY = {}

        def register(key, value):
            # conc: allow CONC001 -- import-time only
            REGISTRY[key] = value
        """, select={"CONC001"})
    assert _codes(result) == []
    (waived,) = result.waived
    assert waived.code == "CONC001"
    (waiver,) = result.waivers
    assert waiver.reason == "import-time only"


def test_waiver_on_same_line(tmp_path):
    result = _audit(tmp_path, """
        REGISTRY = {}

        def register(key, value):
            REGISTRY[key] = value  # conc: allow CONC001 -- boot only
        """, select={"CONC001"})
    assert _codes(result) == []


def test_dead_waiver_reported_as_info(tmp_path):
    result = _audit(tmp_path, """
        # conc: allow CONC001 -- nothing here to waive
        VALUE = 3
        """, select={"CONC001"})
    (diag,) = result.report
    assert diag.code == "CONC000"
    assert diag.severity.value == "info"
    assert "suppressed nothing" in diag.message


def test_waiver_in_docstring_does_not_count(tmp_path):
    result = _audit(tmp_path, '''
        REGISTRY = {}

        def register(key, value):
            """Next line is hot.  # conc: allow CONC001 -- not a comment"""
            REGISTRY[key] = value
        ''', select={"CONC001"})
    assert _codes(result) == ["CONC001"]


def test_waiver_does_not_leak_to_other_codes(tmp_path):
    result = _audit(tmp_path, """
        import threading

        # conc: allow CONC001 -- wrong code on purpose
        _LOCK = threading.Lock()
        """, select={"CONC001", "CONC006"})
    codes = _codes(result)
    assert "CONC006" in codes      # still flagged
    assert "CONC000" in codes      # and the waiver is dead
