"""The ``condor audit`` surface, including THE acceptance bar: the
shipped ``src/repro`` tree must audit clean (zero unwaived findings at
warning level or above)."""

import json
import textwrap

from repro.analysis.conc import audit_tree, default_audit_root
from repro.cli import main


def test_default_root_is_the_shipped_package():
    root = default_audit_root()
    assert root.name == "repro"
    assert (root / "cli.py").is_file()


def test_shipped_tree_audits_clean():
    # the acceptance criterion: no unwaived CONC diagnostics on src/repro
    result = audit_tree()
    assert result.report.errors == []
    assert result.report.warnings == [], "\n".join(
        d.render() for d in result.report.warnings)
    # every waiver must carry a reason
    for waiver in result.waivers:
        assert waiver.reason, f"waiver without reason at {waiver.path}"


def test_shipped_lock_order_graph_is_acyclic_and_documented():
    result = audit_tree()
    assert result.program.lock_cycles() == []
    # the documented hierarchy (docs/INTERNALS.md): every nested
    # acquisition bottoms out in the Metric leaf lock
    edges = result.lock_order_edges()
    assert edges == {
        ("nn.plan.PlanCache", "obs.metrics.Metric"),
        ("obs.metrics.MetricsRegistry", "obs.metrics.Metric"),
        ("obs.sampler.TelemetrySampler", "obs.metrics.Metric"),
    }


def test_cli_audit_clean_exit(capsys):
    rc = main(["audit", "--fail-on", "warning"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "0 error(s), 0 warning(s)" in out


def test_cli_audit_graph_flag(capsys):
    rc = main(["audit", "--graph"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "static lock-order graph:" in out
    assert "obs.metrics.MetricsRegistry -> obs.metrics.Metric" in out


def test_cli_audit_list_rules(capsys):
    rc = main(["audit", "--list-rules"])
    out = capsys.readouterr().out
    assert rc == 0
    for code in ("CONC001", "CONC002", "CONC003", "CONC004", "CONC005",
                 "CONC006"):
        assert code in out


def test_cli_audit_json_payload(capsys):
    rc = main(["audit", "--format", "json"])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert doc["summary"]["errors"] == 0
    assert doc["summary"]["warnings"] == 0
    assert ["obs.sampler.TelemetrySampler", "obs.metrics.Metric"] \
        in doc["lock_order"]
    assert any(w["code"] == "CONC001" for w in doc["waived"])


def test_cli_audit_foreign_root_failure(tmp_path, capsys):
    (tmp_path / "bad.py").write_text(textwrap.dedent("""
        from repro.util.sync import new_lock

        _A = new_lock("A")
        _B = new_lock("B")

        def forward():
            with _A:
                with _B:
                    pass

        def backward():
            with _B:
                with _A:
                    pass
        """))
    rc = main(["audit", "--root", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "CONC003" in out
    assert "lock-order cycle" in out


def test_cli_audit_select_filters_codes(tmp_path, capsys):
    (tmp_path / "bad.py").write_text(
        "import threading\nREG = {}\n_L = threading.Lock()\n"
        "def add(k, v):\n    REG[k] = v\n")
    rc = main(["audit", "--root", str(tmp_path), "--select", "CONC006",
               "--fail-on", "warning"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "CONC006" in out
    assert "CONC001" not in out


def test_cli_audit_fail_on_threshold(tmp_path, capsys):
    (tmp_path / "warn.py").write_text(
        "REG = {}\ndef add(k, v):\n    REG[k] = v\n")
    assert main(["audit", "--root", str(tmp_path)]) == 0  # errors only
    capsys.readouterr()
    assert main(["audit", "--root", str(tmp_path),
                 "--fail-on", "warning"]) == 1
