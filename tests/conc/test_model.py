"""The whole-program model behind ``condor audit``: lock discovery,
guard inference, call resolution, the static lock-order graph and
thread-entry reachability — all on synthetic source trees."""

import textwrap

from repro.analysis.conc.model import build_program


def _tree(tmp_path, **files):
    for name, source in files.items():
        path = tmp_path.joinpath(*name.split(".")).with_suffix(".py")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return build_program(tmp_path)


def test_lock_discovery_module_and_attr(tmp_path):
    program = _tree(tmp_path, mod="""
        from repro.util.sync import new_lock, new_rlock

        _GUARD = new_lock("mod.guard")

        class Box:
            def __init__(self):
                self._lock = new_rlock("mod.Box")
                self.items = []
        """)
    assert program.locks == {"mod.guard": False, "mod.Box": True}
    box = program.classes["mod.Box"]
    assert box.lock_attrs["_lock"].name == "mod.Box"
    assert box.lock_attrs["_lock"].reentrant


def test_guard_inference_from_with_blocks(tmp_path):
    program = _tree(tmp_path, mod="""
        from repro.util.sync import new_lock

        class Box:
            def __init__(self):
                self._lock = new_lock("mod.Box")
                self.items = []

            def add(self, x):
                with self._lock:
                    self.items.append(x)

            def peek(self):
                return self.items
        """)
    add = program.functions["mod.Box.add"]
    peek = program.functions["mod.Box.peek"]
    (write,) = [a for a in add.accesses if a.attr == "items"
                and a.is_write]
    assert write.guards == frozenset({"mod.Box"})
    (read,) = [a for a in peek.accesses if a.attr == "items"]
    assert read.guards == frozenset()


def test_direct_nested_acquisition_edge(tmp_path):
    program = _tree(tmp_path, mod="""
        from repro.util.sync import new_lock

        _A = new_lock("A")
        _B = new_lock("B")

        def nested():
            with _A:
                with _B:
                    pass
        """)
    assert program.edge_set() == {("A", "B")}


def test_edge_through_resolved_call(tmp_path):
    # holding the Outer lock while calling a method whose lock closure
    # acquires the Inner lock adds Outer -> Inner
    program = _tree(tmp_path, mod="""
        from repro.util.sync import new_lock

        class Inner:
            def __init__(self):
                self._lock = new_lock("Inner")
                self.n = 0

            def bump(self):
                with self._lock:
                    self.n += 1

        INSTANCE = Inner()

        class Outer:
            def __init__(self):
                self._lock = new_lock("Outer")

            def work(self):
                with self._lock:
                    INSTANCE.bump()
        """)
    assert ("Outer", "Inner") in program.edge_set()


def test_reentrant_self_nesting_is_not_an_edge(tmp_path):
    program = _tree(tmp_path, mod="""
        from repro.util.sync import new_rlock

        class Box:
            def __init__(self):
                self._lock = new_rlock("Box")

            def outer(self):
                with self._lock:
                    self.inner()

            def inner(self):
                with self._lock:
                    pass
        """)
    assert program.edge_set() == set()
    assert program.lock_cycles() == []


def test_cycle_detection(tmp_path):
    program = _tree(tmp_path, mod="""
        from repro.util.sync import new_lock

        _A = new_lock("A")
        _B = new_lock("B")

        def forward():
            with _A:
                with _B:
                    pass

        def backward():
            with _B:
                with _A:
                    pass
        """)
    (cycle,) = program.lock_cycles()
    assert set(cycle) == {"A", "B"}


def test_thread_entry_and_reachability(tmp_path):
    program = _tree(tmp_path, mod="""
        import threading

        def helper():
            pass

        class Worker:
            def start(self):
                self._thread = threading.Thread(target=self._run)
                self._thread.start()

            def _run(self):
                helper()
        """)
    assert "mod.Worker._run" in program.entries
    assert "mod.helper" in program.worker_reachable


def test_submit_args_are_entries(tmp_path):
    program = _tree(tmp_path, mod="""
        class Pool:
            def go(self, pool, ctx):
                pool.submit(ctx.run, self._work, 1)

            def _work(self, x):
                return x
        """)
    assert "mod.Pool._work" in program.entries


def test_unique_name_fallback_excludes_builtin_names(tmp_path):
    # `self.data.clear()` (a dict) must NOT resolve to Other.clear even
    # though Other is the only program class defining `clear`
    program = _tree(tmp_path, mod="""
        from repro.util.sync import new_lock

        class Other:
            def __init__(self):
                self._lock = new_lock("Other")

            def clear(self):
                with self._lock:
                    pass

        class Box:
            def __init__(self):
                self._lock = new_lock("Box")
                self.data = {}

            def wipe(self):
                with self._lock:
                    self.data.clear()
        """)
    assert ("Box", "Other") not in program.edge_set()


def test_unique_name_fallback_resolves_distinctive_method(tmp_path):
    program = _tree(tmp_path, mod="""
        from repro.util.sync import new_lock

        class Leaf:
            def __init__(self):
                self._lock = new_lock("Leaf")

            def drain_values(self):
                with self._lock:
                    pass

        class Root:
            def __init__(self):
                self._lock = new_lock("Root")
                self.kids = []

            def sweep(self):
                with self._lock:
                    for kid in self.kids:
                        kid.drain_values()
        """)
    assert ("Root", "Leaf") in program.edge_set()


def test_locked_suffix_convention_seeds_guards(tmp_path):
    # *_locked methods are documented to run under the class's own lock
    program = _tree(tmp_path, mod="""
        from repro.util.sync import new_lock

        class Box:
            def __init__(self):
                self._lock = new_lock("Box")
                self.n = 0

            def bump(self):
                with self._lock:
                    self._bump_locked()

            def _bump_locked(self):
                self.n += 1
        """)
    helper = program.functions["mod.Box._bump_locked"]
    (write,) = [a for a in helper.accesses if a.attr == "n"]
    assert write.guards == frozenset({"Box"})


def test_global_instance_typing_via_factory_annotation(tmp_path):
    # X = REGISTRY.make(...) types X by make()'s return annotation
    program = _tree(tmp_path, mod="""
        from repro.util.sync import new_lock

        class Counter:
            def __init__(self):
                self._lock = new_lock("Counter")

            def inc(self):
                with self._lock:
                    pass

        class Registry:
            def make(self) -> Counter:
                return Counter()

        REGISTRY = Registry()
        HITS = REGISTRY.make()

        class Cache:
            def __init__(self):
                self._lock = new_lock("Cache")

            def lookup(self):
                with self._lock:
                    HITS.inc()
        """)
    assert ("Cache", "Counter") in program.edge_set()


def test_inherited_lock_attr_guards_subclass(tmp_path):
    program = _tree(tmp_path, mod="""
        from repro.util.sync import new_lock

        class Base:
            def __init__(self):
                self._lock = new_lock("Base")
                self.n = 0

        class Child(Base):
            def bump(self):
                with self._lock:
                    self.n += 1
        """)
    bump = program.functions["mod.Child.bump"]
    (write,) = [a for a in bump.accesses if a.attr == "n"]
    assert write.guards == frozenset({"Base"})
