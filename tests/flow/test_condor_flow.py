"""End-to-end flow tests."""

import json

import numpy as np
import pytest

from repro.cloud.afi import AFIState
from repro.cloud.client import AWSSession
from repro.errors import FlowError
from repro.flow import CondorFlow, FlowInputs
from repro.frontend.condor_format import (
    DeploymentOption,
    load_condor_json,
    save_condor_json,
)
from repro.frontend.weights import WeightStore
from repro.frontend.zoo import lenet_caffe_files, tc1_model
from repro.toolchain.xclbin import read_xclbin


@pytest.fixture(scope="module")
def tc1_result(tmp_path_factory):
    flow = CondorFlow(tmp_path_factory.mktemp("tc1"))
    return flow.run(FlowInputs(
        model=tc1_model(DeploymentOption.ON_PREMISE)))


class TestOnPremiseFlow:
    def test_steps_without_afi(self, tc1_result):
        names = [s.name for s in tc1_result.steps]
        assert names[-1] == "7-deployment-on-board"
        assert tc1_result.afi_id is None

    def test_artifacts_written(self, tc1_result):
        workdir = tc1_result.workdir
        assert (workdir / "network.condor.json").is_file()
        assert (workdir / "reports" / "resources.txt").is_file()
        assert tc1_result.xclbin_path.is_file()
        assert tc1_result.host_path.read_text().startswith("//")
        assert len(list((workdir / "sources").rglob("*.cpp"))) > 50

    def test_xclbin_readable(self, tc1_result):
        xclbin = read_xclbin(tc1_result.xclbin_path)
        assert xclbin.kernel_name == "tc1"
        assert xclbin.network_json["name"] == "tc1"

    def test_summary(self, tc1_result):
        text = tc1_result.summary()
        assert "GFLOPS" in text and "100 MHz" in text

    def test_condor_json_artifact_reloadable(self, tc1_result):
        model = load_condor_json(
            tc1_result.workdir / "network.condor.json")
        assert model.network.name == "tc1"

    def test_weights_artifact_reloadable(self, tc1_result):
        store = WeightStore.load(tc1_result.workdir / "weights")
        store.validate(tc1_result.model.network)


class TestCloudFlow:
    def test_afi_created(self, tmp_path):
        aws = AWSSession()
        flow = CondorFlow(tmp_path, aws=aws)
        result = flow.run(FlowInputs(
            model=tc1_model(DeploymentOption.AWS_F1),
            s3_bucket="test-bucket"))
        assert result.afi_id and result.agfi_id
        record = aws.afi.describe_fpga_image(result.afi_id)
        assert record.state is AFIState.AVAILABLE
        assert aws.s3.list_objects("test-bucket") == ["dcp/tc1.xclbin"]
        doc = json.loads((tmp_path / "afi.json").read_text())
        assert doc["agfi_id"] == result.agfi_id


class TestInputVariants:
    def test_caffe_input(self, tmp_path):
        prototxt, caffemodel = lenet_caffe_files(tmp_path / "caffe",
                                                 seed=2)
        flow = CondorFlow(tmp_path / "flow")
        result = flow.run(FlowInputs(prototxt=prototxt,
                                     caffemodel=caffemodel,
                                     frequency_hz=180e6))
        assert result.model.network.name == "LeNet"
        assert result.xclbin.frequency_hz == 180e6
        # weights came from the caffemodel, not from initialization
        expected = WeightStore.initialize(result.model.network, seed=2)
        np.testing.assert_allclose(
            result.weights.get("conv1", "weights"),
            expected.get("conv1", "weights"), rtol=1e-6)

    def test_condor_json_input(self, tmp_path):
        path = save_condor_json(tc1_model(DeploymentOption.ON_PREMISE),
                                tmp_path / "tc1.json")
        flow = CondorFlow(tmp_path / "flow")
        result = flow.run(FlowInputs(condor_json=path))
        assert result.model.network.name == "tc1"

    def test_weights_dir_input(self, tmp_path):
        model = tc1_model(DeploymentOption.ON_PREMISE)
        store = WeightStore.initialize(model.network, seed=77)
        store.save(tmp_path / "w")
        flow = CondorFlow(tmp_path / "flow")
        result = flow.run(FlowInputs(model=model,
                                     weights_dir=tmp_path / "w"))
        np.testing.assert_array_equal(
            result.weights.get("conv1", "weights"),
            store.get("conv1", "weights"))

    def test_dse_enabled(self, tmp_path):
        model = tc1_model(DeploymentOption.ON_PREMISE)
        features = model.network.features_subnetwork()
        from repro.frontend.condor_format import CondorModel
        fmodel = CondorModel(network=features,
                             deployment=DeploymentOption.ON_PREMISE)
        flow = CondorFlow(tmp_path)
        result = flow.run(FlowInputs(model=fmodel, run_dse=True))
        assert result.dse is not None
        assert result.performance.ii_cycles < 1728

    def test_board_override(self, tmp_path):
        from repro.ir.layers import ConvLayer
        from repro.ir.network import chain
        from repro.frontend.condor_format import CondorModel
        net = chain("tiny", (1, 8, 8), [
            ConvLayer("c", num_output=2, kernel=3)])
        flow = CondorFlow(tmp_path)
        result = flow.run(FlowInputs(
            model=CondorModel(network=net, frequency_hz=100e6),
            board="pynq-z1"))
        assert result.xclbin.part.startswith("xc7z020")


class TestFailureModes:
    def test_no_input_given(self, tmp_path):
        with pytest.raises(FlowError, match="exactly one"):
            CondorFlow(tmp_path).run(FlowInputs())

    def test_two_inputs_given(self, tmp_path):
        with pytest.raises(FlowError, match="exactly one"):
            CondorFlow(tmp_path).run(FlowInputs(
                model=tc1_model(), condor_json="x.json"))

    def test_errors_wrapped_with_step(self, tmp_path):
        model = tc1_model(DeploymentOption.ON_PREMISE)
        model.board = "pynq-z1"  # TC1 logic exceeds the 7020 LUT budget
        with pytest.raises(FlowError) as exc:
            CondorFlow(tmp_path).run(FlowInputs(model=model))
        # the static-analysis gate catches the budget violation first;
        # with --no-check the toolchain would reject it instead
        assert exc.value.step in ("2b-static-analysis",
                                  "3-5-hardware-generation",
                                  "7-deployment-on-board")

    def test_no_check_defers_to_toolchain(self, tmp_path):
        model = tc1_model(DeploymentOption.ON_PREMISE)
        model.board = "pynq-z1"
        flow = CondorFlow(tmp_path, check=False)
        with pytest.raises(FlowError) as exc:
            flow.run(FlowInputs(model=model))
        assert exc.value.step in ("3-5-hardware-generation",
                                  "7-deployment-on-board")

    def test_timing_failure_surfaces(self, tmp_path):
        model = tc1_model(DeploymentOption.ON_PREMISE)
        with pytest.raises(FlowError):
            CondorFlow(tmp_path).run(FlowInputs(model=model,
                                                frequency_hz=400e6))


class TestDseMappingPersistence:
    def test_dse_mapping_survives_artifacts(self, tmp_path):
        """The DSE-chosen configuration must be reconstructible from both
        the saved Condor JSON and the xclbin-embedded network."""
        from repro.frontend.condor_format import CondorModel
        from repro.frontend.zoo import lenet_model
        from repro.hw.accelerator import build_accelerator
        from repro.hw.perf import estimate_performance
        from repro.runtime.opencl import Context, Program, get_platforms

        base = lenet_model()
        fmodel = CondorModel(network=base.network.features_subnetwork(),
                             frequency_hz=base.frequency_hz)
        result = CondorFlow(tmp_path).run(
            FlowInputs(model=fmodel, run_dse=True))
        assert result.dse is not None

        reloaded = load_condor_json(tmp_path / "network.condor.json")
        assert reloaded.hints  # the chosen parallelism was recorded
        perf_json = estimate_performance(build_accelerator(reloaded))
        assert perf_json.ii_cycles == result.performance.ii_cycles

        device = get_platforms()[0].get_devices()[0]
        program = Program(Context(device),
                          result.xclbin_path.read_bytes())
        perf_bin = estimate_performance(program.accelerator)
        assert perf_bin.ii_cycles == result.performance.ii_cycles


class TestReportArtifacts:
    def test_hls_reports_and_dot_written(self, tc1_result):
        hls_dir = tc1_result.workdir / "reports" / "hls"
        reports = list(hls_dir.glob("*_csynth.rpt"))
        # 6 PEs + 58 filters + datamover
        assert len(reports) == 6 + 58 + 1
        text = (hls_dir / "pe_conv1_csynth.rpt").read_text()
        assert "Vivado HLS Report" in text
        assert "MET" in text
        assert "Initiation Interval" in text

        net_dot = (tc1_result.workdir / "network.dot").read_text()
        acc_dot = (tc1_result.workdir / "accelerator.dot").read_text()
        assert net_dot.startswith("digraph")
        assert '"pe_conv1"' in acc_dot
