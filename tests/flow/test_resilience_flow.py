"""Flow-level resilience: chaos survival, degraded runs, checkpoint
resume, manifest error capture."""

import json

import pytest

from repro.errors import FlowError
from repro.flow import CondorFlow, FlowInputs
from repro.frontend.condor_format import DeploymentOption
from repro.frontend.zoo import lenet_model
from repro.resilience import (
    ALL_BOUNDARIES,
    FaultKind,
    FaultPlan,
    FaultSpec,
    inject_faults,
)


def aws_inputs(**overrides):
    return FlowInputs(model=lenet_model(DeploymentOption.AWS_F1),
                      **overrides)


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """A fault-free AWS-F1 build every scenario compares against."""
    flow = CondorFlow(tmp_path_factory.mktemp("ref"))
    result = flow.run(aws_inputs())
    return result, result.xclbin_path.read_bytes()


class TestChaosSurvival:
    def test_transient_fault_at_every_boundary_survives(self, tmp_path,
                                                        reference):
        _, ref_bytes = reference
        plan = FaultPlan([FaultSpec(b, FaultKind.TRANSIENT, times=1)
                          for b in ALL_BOUNDARIES], seed=7)
        flow = CondorFlow(tmp_path)
        with inject_faults(plan):
            result = flow.run(aws_inputs())
        assert not result.degraded
        assert result.afi_id
        # every boundary actually fired its fault ...
        fired = {b for (b, _) in plan.injected}
        assert fired == set(ALL_BOUNDARIES)
        # ... and the artifact is bit-identical to the fault-free build
        assert result.xclbin_path.read_bytes() == ref_bytes
        stats = flow.boundary_stats
        assert stats is not None
        assert stats.total_retries >= len(ALL_BOUNDARIES)

    def test_corrupted_upload_caught_and_retried(self, tmp_path,
                                                 reference):
        _, ref_bytes = reference
        plan = FaultPlan([FaultSpec("cloud.upload", FaultKind.CORRUPT)],
                         seed=3)
        flow = CondorFlow(tmp_path)
        with inject_faults(plan):
            result = flow.run(aws_inputs())
        assert not result.degraded
        assert flow.boundary_stats.retries["cloud.upload"] == 1
        # the AFI was created from the *intact* payload
        record = flow.aws.afi.describe_fpga_image(result.afi_id)
        assert record.xclbin_bytes == ref_bytes

    def test_no_wallclock_time_spent_on_backoff(self, tmp_path):
        plan = FaultPlan([FaultSpec("cloud.*", FaultKind.SLOW,
                                    delay_s=1800.0, times=3)], seed=0)
        flow = CondorFlow(tmp_path)
        import time
        t0 = time.perf_counter()
        with inject_faults(plan):
            result = flow.run(aws_inputs())
        # 3 x 30 virtual minutes of injected latency; wall time stays
        # test-suite sized because everything sleeps on the VirtualClock
        assert time.perf_counter() - t0 < 30.0
        assert result.afi_id


class TestDegradedRuns:
    def test_permanent_afi_fault_degrades_to_partial(self, tmp_path,
                                                     reference):
        _, ref_bytes = reference
        plan = FaultPlan([FaultSpec("cloud.create-fpga-image",
                                    FaultKind.PERMANENT)], seed=1)
        flow = CondorFlow(tmp_path)
        with inject_faults(plan):
            result = flow.run(aws_inputs())
        assert result.degraded
        assert "AFIError" in result.degradation
        assert result.afi_id is None
        # the local build is intact
        assert result.xclbin_path.read_bytes() == ref_bytes
        assert result.host_path.is_file()
        manifest = json.loads(
            (tmp_path / "telemetry.json").read_text())
        assert manifest["run"]["status"] == "partial"
        assert manifest["run"]["degraded_step"] == "8-afi-creation"
        step8 = [s for s in manifest["steps"]
                 if s["name"] == "8-afi-creation"]
        assert step8 and "degraded" in step8[0]["detail"]

    def test_afi_poll_budget_exhaustion_degrades(self, tmp_path):
        # the AFI backend needs PENDING_TICKS polls; one poll cannot
        # complete, and the resulting AFIError degrades the run
        flow = CondorFlow(tmp_path)
        result = flow.run(aws_inputs(afi_max_polls=1))
        assert result.degraded
        assert "still pending" in result.degradation

    def test_toolchain_failure_does_not_degrade(self, tmp_path):
        plan = FaultPlan([FaultSpec("toolchain.xocc-link",
                                    FaultKind.PERMANENT)], seed=2)
        flow = CondorFlow(tmp_path)
        with inject_faults(plan), pytest.raises(FlowError):
            flow.run(aws_inputs())


class TestBreakerSnapshot:
    def test_breaker_states_reach_manifest(self, tmp_path):
        """Satellite: the manifest's resilience block names every
        breaker the run touched, with state and trip odometer."""
        plan = FaultPlan([FaultSpec("cloud.upload", FaultKind.TRANSIENT,
                                    times=1)], seed=5)
        flow = CondorFlow(tmp_path)
        with inject_faults(plan):
            flow.run(aws_inputs())
        manifest = json.loads(
            (tmp_path / "telemetry.json").read_text())
        res = manifest["resilience"]
        assert res["retries"]["cloud.upload"] == 1
        entry = res["breakers"]["cloud.upload"]
        # one transient failure, then success: closed again, never open
        assert entry["state"] == "closed"
        assert entry["opened_count"] == 0
        assert entry["consecutive_failures"] == 0

    def test_clean_run_has_no_resilience_block(self, tmp_path):
        flow = CondorFlow(tmp_path)
        flow.run(aws_inputs())
        manifest = json.loads(
            (tmp_path / "telemetry.json").read_text())
        # calls happened, so the block exists — with quiet breakers
        res = manifest.get("resilience")
        if res is not None:
            assert all(b["opened_count"] == 0
                       for b in res.get("breakers", {}).values())


class TestManifestErrorCapture:
    def test_non_condor_error_recorded(self, tmp_path, monkeypatch):
        import repro.flow.condor as condor_module

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(condor_module, "generate_host_source", boom)
        flow = CondorFlow(tmp_path)
        with pytest.raises(OSError):
            flow.run(aws_inputs())
        manifest = json.loads(
            (tmp_path / "telemetry.json").read_text())
        assert manifest["run"]["status"] == "error"
        assert manifest["run"]["error"] == "OSError: disk full"


class TestResume:
    def test_full_resume_skips_everything(self, tmp_path, reference):
        _, ref_bytes = reference
        first = CondorFlow(tmp_path).run(aws_inputs())
        resumed = CondorFlow(tmp_path, resume=True).run(aws_inputs())
        assert all(s.skipped for s in resumed.steps)
        assert [s.name for s in resumed.steps] == \
            [s.name for s in first.steps]
        assert resumed.xclbin_path.read_bytes() == ref_bytes
        assert resumed.afi_id == first.afi_id
        assert resumed.agfi_id == first.agfi_id
        manifest = json.loads(
            (tmp_path / "telemetry.json").read_text())
        assert all(s["skipped"] for s in manifest["steps"])

    def test_resume_after_crash_reruns_from_failure(self, tmp_path,
                                                    reference):
        _, ref_bytes = reference
        plan = FaultPlan([FaultSpec("toolchain.xocc-link",
                                    FaultKind.PERMANENT)], seed=4)
        with inject_faults(plan), pytest.raises(FlowError):
            CondorFlow(tmp_path).run(aws_inputs())
        # steps 1..6 left checkpoints; 7 failed before writing one
        resumed = CondorFlow(tmp_path, resume=True).run(aws_inputs())
        by_name = {s.name: s for s in resumed.steps}
        skipped = {n for n, s in by_name.items() if s.skipped}
        assert skipped == {"1-input-analysis",
                           "2-design-space-exploration",
                           "2b-static-analysis",
                           "3-5-hardware-generation",
                           "6-sdaccel-integration"}
        assert not by_name["7-deployment-on-board"].skipped
        assert not by_name["8-afi-creation"].skipped
        assert resumed.xclbin_path.read_bytes() == ref_bytes

    def test_changed_inputs_invalidate_all_checkpoints(self, tmp_path):
        CondorFlow(tmp_path).run(aws_inputs())
        resumed = CondorFlow(tmp_path, resume=True).run(
            aws_inputs(frequency_hz=150e6))
        assert not any(s.skipped for s in resumed.steps)

    def test_tampered_artifact_invalidates_step(self, tmp_path):
        first = CondorFlow(tmp_path).run(aws_inputs())
        first.xclbin_path.write_bytes(b"corrupted")
        resumed = CondorFlow(tmp_path, resume=True).run(aws_inputs())
        by_name = {s.name: s for s in resumed.steps}
        assert by_name["6-sdaccel-integration"].skipped
        assert not by_name["7-deployment-on-board"].skipped
        # the re-run repaired the artifact
        assert resumed.xclbin == first.xclbin

    def test_without_resume_flag_checkpoints_ignored(self, tmp_path):
        CondorFlow(tmp_path).run(aws_inputs())
        rerun = CondorFlow(tmp_path).run(aws_inputs())
        assert not any(s.skipped for s in rerun.steps)


class TestPollingKnobs:
    def test_default_poll_budget_succeeds(self, tmp_path):
        result = CondorFlow(tmp_path).run(aws_inputs())
        assert result.afi_id

    def test_flow_inputs_override_reaches_session(self, tmp_path):
        seen = {}
        flow = CondorFlow(tmp_path)
        original = flow.aws.wait_for_afi

        def spy(afi_id, **kwargs):
            seen.update(kwargs)
            return original(afi_id, **kwargs)

        flow.aws.wait_for_afi = spy
        flow.run(aws_inputs(afi_max_polls=50))
        assert seen["max_polls"] == 50
