"""``condor obs`` — offline analytics over a run's telemetry artifacts."""

import json

import pytest

from repro.cli import main
from repro.frontend.condor_format import save_condor_json
from repro.frontend.zoo import tc1_model


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    """One real build whose workdir holds telemetry.json +
    timeseries.jsonl (shared: the obs commands are read-only)."""
    workdir = tmp_path_factory.mktemp("run")
    model_json = save_condor_json(
        tc1_model(), workdir.parent / "tc1.json")
    assert main(["--workdir", str(workdir), "build",
                 str(model_json)]) == 0
    return workdir


class TestReport:
    def test_table_from_workdir(self, run_dir, capsys):
        assert main(["obs", "report", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "condor.flow" in out
        assert "flow.1-input-analysis" in out
        for column in ("count", "total_s", "p50_ms", "p95_ms",
                       "p99_ms"):
            assert column in out

    def test_explicit_manifest_path(self, run_dir, capsys):
        assert main(["obs", "report",
                     str(run_dir / "telemetry.json")]) == 0
        assert "condor.flow" in capsys.readouterr().out

    def test_json_sort_and_limit(self, run_dir, capsys):
        assert main(["obs", "report", str(run_dir), "--format", "json",
                     "--sort", "count", "--limit", "3"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 3
        counts = [r["count"] for r in rows]
        assert counts == sorted(counts, reverse=True)

    def test_missing_manifest_errors(self, tmp_path, capsys):
        assert main(["obs", "report", str(tmp_path)]) == 1
        assert "no telemetry manifest" in capsys.readouterr().err

    def test_requires_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            main(["obs"])


class TestDiff:
    def test_self_diff_is_clean(self, run_dir, capsys):
        assert main(["obs", "diff", str(run_dir), str(run_dir)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_regression_flagged_and_gated(self, run_dir, tmp_path,
                                          capsys):
        baseline = json.loads((run_dir / "telemetry.json").read_text())
        slower = json.loads(json.dumps(baseline))
        for summary in slower["span_summaries"].values():
            summary["sum"] *= 10
            summary["min"] = (summary["min"] or 0) * 10
            summary["max"] = (summary["max"] or 0) * 10
            summary["quantiles"] = {
                q: v * 10 for q, v in summary["quantiles"].items()}
        cur = tmp_path / "telemetry.json"
        cur.write_text(json.dumps(slower))

        # informational by default: regressions print but exit 0
        assert main(["obs", "diff", str(run_dir), str(cur)]) == 0
        out = capsys.readouterr().out
        assert "latency" in out

        # --fail-on-regress turns findings into a failing exit code
        assert main(["obs", "diff", str(run_dir), str(cur),
                     "--fail-on-regress"]) == 1

        # a huge threshold waves the same growth through
        assert main(["obs", "diff", str(run_dir), str(cur),
                     "--fail-on-regress",
                     "--latency-threshold", "99",
                     "--metric-threshold", "99"]) == 0

    def test_json_format(self, run_dir, capsys):
        assert main(["obs", "diff", str(run_dir), str(run_dir),
                     "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out) == []


class TestTimeseries:
    def test_summary_from_workdir(self, run_dir, capsys):
        assert main(["obs", "timeseries", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "samples:" in out

    def test_json_format(self, run_dir, capsys):
        assert main(["obs", "timeseries", str(run_dir),
                     "--format", "json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["samples"] >= 2
        assert "metrics" in summary

    def test_missing_series_errors(self, tmp_path, capsys):
        assert main(["obs", "timeseries", str(tmp_path)]) == 1
        assert "no time series" in capsys.readouterr().err
