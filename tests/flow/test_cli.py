"""CLI tests (driving main() directly)."""

import pytest

from repro.cli import main
from repro.frontend.condor_format import save_condor_json
from repro.frontend.onnx import save_onnx
from repro.frontend.weights import WeightStore
from repro.frontend.zoo import lenet_caffe_files, tc1_model, tc1_network


@pytest.fixture
def tc1_json(tmp_path):
    return str(save_condor_json(tc1_model(), tmp_path / "tc1.json"))


@pytest.fixture
def tc1_onnx(tmp_path):
    net = tc1_network()
    return str(save_onnx(net, tmp_path / "tc1.onnx",
                         WeightStore.initialize(net)))


class TestInfo:
    def test_info_json(self, tc1_json, tmp_path, capsys):
        assert main(["--workdir", str(tmp_path / "w"), "info",
                     tc1_json]) == 0
        out = capsys.readouterr().out
        assert "network: tc1" in out
        assert "1x16x16" in out
        assert "conv1" in out

    def test_info_prototxt(self, tmp_path, capsys):
        prototxt, caffemodel = lenet_caffe_files(tmp_path / "caffe")
        assert main(["--workdir", str(tmp_path / "w"), "info",
                     str(prototxt), "--weights", str(caffemodel)]) == 0
        out = capsys.readouterr().out
        assert "network: LeNet" in out
        assert "431,080" in out  # LeNet parameter count

    def test_info_onnx(self, tc1_onnx, tmp_path, capsys):
        assert main(["--workdir", str(tmp_path / "w"), "info",
                     tc1_onnx]) == 0
        assert "tc1" in capsys.readouterr().out

    def test_unknown_extension(self, tmp_path, capsys):
        assert main(["--workdir", str(tmp_path / "w"), "info",
                     "model.xyz"]) == 1
        assert "error:" in capsys.readouterr().err


class TestBuild:
    def test_build_on_premise(self, tc1_json, tmp_path, capsys):
        workdir = tmp_path / "w"
        assert main(["--workdir", str(workdir), "build", tc1_json]) == 0
        out = capsys.readouterr().out
        assert "GFLOPS" in out
        assert (workdir / "tc1.xclbin").is_file()

    def test_build_cloud_deploy(self, tc1_json, tmp_path, capsys):
        workdir = tmp_path / "w"
        assert main(["--workdir", str(workdir), "build", tc1_json,
                     "--deploy", "aws-f1"]) == 0
        out = capsys.readouterr().out
        assert "AGFI" in out
        assert (workdir / "afi.json").is_file()

    def test_build_with_frequency_override(self, tc1_json, tmp_path,
                                           capsys):
        assert main(["--workdir", str(tmp_path / "w"), "build", tc1_json,
                     "--frequency", "150MHz"]) == 0
        assert "150 MHz" in capsys.readouterr().out

    def test_build_failure_reported(self, tc1_json, tmp_path, capsys):
        # TC1 cannot close timing at 400 MHz on the VU9P
        assert main(["--workdir", str(tmp_path / "w"), "build", tc1_json,
                     "--frequency", "400MHz"]) == 1
        assert "error:" in capsys.readouterr().err


class TestProfile:
    def test_profile_prints_step_table(self, tc1_json, tmp_path, capsys):
        workdir = tmp_path / "w"
        assert main(["--workdir", str(workdir), "profile",
                     tc1_json]) == 0
        out = capsys.readouterr().out
        assert "% of run" in out
        assert "1-input-analysis" in out
        assert "TOTAL" in out
        assert (workdir / "telemetry.json").is_file()
        assert (workdir / "trace.json").is_file()

    def test_profile_trace_is_valid_trace_event_json(self, tc1_json,
                                                     tmp_path, capsys):
        import json

        workdir = tmp_path / "w"
        trace_path = tmp_path / "flow_trace.json"
        assert main(["--workdir", str(workdir), "profile", tc1_json,
                     "--trace-json", str(trace_path)]) == 0
        doc = json.loads(trace_path.read_text())
        events = doc["traceEvents"]
        assert any(e["name"] == "condor.flow" for e in events
                   if e["ph"] == "X")
        ts = [e["ts"] for e in events if e["ph"] != "M"]
        assert ts == sorted(ts)
        for event in events:
            if event["ph"] == "X":
                assert event["dur"] >= 0

    def test_profile_metrics_dump(self, tc1_json, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.prom"
        assert main(["--workdir", str(tmp_path / "w"), "profile",
                     tc1_json, "--metrics", str(metrics_path)]) == 0
        text = metrics_path.read_text()
        assert "condor_flow_steps_started_total" in text
        assert "# TYPE condor_flow_steps_started_total counter" in text


class TestTelemetryFlags:
    def test_build_trace_json(self, tc1_json, tmp_path, capsys):
        import json

        trace_path = tmp_path / "t.json"
        assert main(["--workdir", str(tmp_path / "w"), "build", tc1_json,
                     "--trace-json", str(trace_path)]) == 0
        assert json.loads(trace_path.read_text())["traceEvents"]

    def test_simulate_trace_and_metrics(self, tc1_json, tmp_path,
                                        capsys):
        import json

        trace_path = tmp_path / "sim.json"
        metrics_path = tmp_path / "m.prom"
        assert main(["--workdir", str(tmp_path / "w"), "simulate",
                     tc1_json, "--batch", "1",
                     "--trace-json", str(trace_path),
                     "--metrics", str(metrics_path)]) == 0
        doc = json.loads(trace_path.read_text())
        assert any(e["name"] == "sim.run" for e in doc["traceEvents"]
                   if e["ph"] == "X")
        assert "condor_sim_cycles_total" in metrics_path.read_text()

    def test_dse_trace_json(self, tmp_path, capsys):
        import json

        from repro.frontend.condor_format import CondorModel, \
            save_condor_json
        model = tc1_model()
        features = CondorModel(network=model.network.features_subnetwork())
        path = save_condor_json(features, tmp_path / "f.json")
        trace_path = tmp_path / "dse.json"
        assert main(["--workdir", str(tmp_path / "w"), "dse", str(path),
                     "--trace-json", str(trace_path)]) == 0
        doc = json.loads(trace_path.read_text())
        assert any(e["name"] == "dse.explore" for e in doc["traceEvents"]
                   if e["ph"] == "X")


class TestDseSimulateFigure5:
    def test_dse(self, tmp_path, capsys):
        model = tc1_model()
        from repro.frontend.condor_format import CondorModel
        features = CondorModel(network=model.network.features_subnetwork())
        path = save_condor_json(features, tmp_path / "f.json")
        assert main(["--workdir", str(tmp_path / "w"), "dse",
                     str(path)]) == 0
        out = capsys.readouterr().out
        assert "best II" in out
        assert "in=" in out

    def test_simulate(self, tc1_json, tmp_path, capsys):
        assert main(["--workdir", str(tmp_path / "w"), "simulate",
                     tc1_json, "--batch", "2"]) == 0
        out = capsys.readouterr().out
        assert "simulated batch of 2" in out
        assert "pe_conv1" in out

    def test_figure5(self, tmp_path, capsys):
        assert main(["--workdir", str(tmp_path / "w"), "figure5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "LeNet" in out


class TestConvert:
    def test_caffe_to_onnx(self, tmp_path, capsys):
        prototxt, caffemodel = lenet_caffe_files(tmp_path / "caffe")
        out = tmp_path / "lenet.onnx"
        assert main(["--workdir", str(tmp_path / "w"), "convert",
                     str(prototxt), str(out), "--weights",
                     str(caffemodel)]) == 0
        assert out.is_file()
        # the produced ONNX converts back to the same topology
        from repro.frontend.onnx import convert_onnx_model, load_onnx
        back = convert_onnx_model(load_onnx(out))
        assert back.network.output_shape().as_tuple() == (10, 1, 1)

    def test_onnx_to_caffe(self, tc1_onnx, tmp_path, capsys):
        out = tmp_path / "tc1.prototxt"
        # TC1 ends in LogSoftmax which Caffe cannot express
        assert main(["--workdir", str(tmp_path / "w"), "convert",
                     tc1_onnx, str(out)]) == 1
        assert "LogSoftmax" in capsys.readouterr().err

    def test_json_to_caffe(self, tmp_path, capsys):
        from repro.frontend.condor_format import CondorModel, \
            save_condor_json
        from repro.frontend.zoo import lenet_network

        path = save_condor_json(CondorModel(network=lenet_network()),
                                tmp_path / "lenet.json")
        out = tmp_path / "out.prototxt"
        assert main(["--workdir", str(tmp_path / "w"), "convert",
                     str(path), str(out)]) == 0
        assert out.is_file()
        assert 'type: "InnerProduct"' in out.read_text()

    def test_unknown_target(self, tc1_json, tmp_path, capsys):
        assert main(["--workdir", str(tmp_path / "w"), "convert",
                     tc1_json, str(tmp_path / "m.xyz")]) == 1
        assert "unknown target" in capsys.readouterr().err


class TestCheck:
    def test_check_clean_model(self, tc1_json, tmp_path, capsys):
        assert main(["--workdir", str(tmp_path / "w"), "check",
                     tc1_json]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_check_zoo(self, tmp_path, capsys):
        assert main(["--workdir", str(tmp_path / "w"), "check",
                     "--zoo"]) == 0
        out = capsys.readouterr().out
        for name in ("tc1", "LeNet", "CIFAR10_quick", "vgg16"):
            assert name in out

    def test_check_json_format(self, tc1_json, tmp_path, capsys):
        import json

        assert main(["--workdir", str(tmp_path / "w"), "check", tc1_json,
                     "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["model"] == "tc1"
        assert doc["summary"]["errors"] == 0
        assert "fifo-deadlock" in doc["passes"]

    def test_check_select_passes(self, tc1_json, tmp_path, capsys):
        import json

        assert main(["--workdir", str(tmp_path / "w"), "check", tc1_json,
                     "--select", "shape-legality,dead-layer",
                     "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["passes"] == ["shape-legality", "dead-layer"]

    def test_check_fail_on_warning(self, tc1_json, tmp_path, capsys):
        # tc1 carries rate-mismatch warnings: --fail-on warning trips
        assert main(["--workdir", str(tmp_path / "w"), "check", tc1_json,
                     "--fail-on", "warning"]) == 1

    def test_check_broken_model_exits_nonzero(self, tmp_path, capsys):
        from repro.frontend.zoo.broken import overbudget_model

        path = save_condor_json(overbudget_model(),
                                tmp_path / "bad.json")
        assert main(["--workdir", str(tmp_path / "w"), "check",
                     str(path)]) == 1
        assert "RES001" in capsys.readouterr().out

    def test_check_list_passes(self, tmp_path, capsys):
        assert main(["--workdir", str(tmp_path / "w"), "check",
                     "--list-passes"]) == 0
        out = capsys.readouterr().out
        assert "fifo-deadlock" in out
        assert "resource-budget" in out

    def test_check_requires_model_or_zoo(self, tmp_path, capsys):
        assert main(["--workdir", str(tmp_path / "w"), "check"]) == 1
        assert "provide a model" in capsys.readouterr().err


class TestCheckGate:
    def test_build_gate_blocks_broken_model(self, tmp_path, capsys):
        from repro.frontend.zoo.broken import overbudget_model

        path = save_condor_json(overbudget_model(),
                                tmp_path / "bad.json")
        workdir = tmp_path / "w"
        assert main(["--workdir", str(workdir), "build",
                     str(path)]) == 1
        assert "2b-static-analysis" in capsys.readouterr().err
        # the gate leaves its reports behind for diagnosis
        assert (workdir / "reports" / "analysis.txt").is_file()
        assert (workdir / "reports" / "analysis.json").is_file()

    def test_build_gate_writes_reports_on_success(self, tc1_json,
                                                  tmp_path, capsys):
        workdir = tmp_path / "w"
        assert main(["--workdir", str(workdir), "build", tc1_json]) == 0
        assert "2b-static-analysis" in capsys.readouterr().out
        text = (workdir / "reports" / "analysis.txt").read_text()
        assert "0 error(s)" in text

    def test_no_check_bypasses_gate(self, tmp_path, capsys):
        from repro.frontend.zoo.broken import overclocked_model

        path = save_condor_json(overclocked_model(),
                                tmp_path / "fast.json")
        workdir = tmp_path / "w"
        # with the gate: blocked by RES003
        assert main(["--workdir", str(workdir), "check",
                     str(path)]) == 1
        capsys.readouterr()
        # --no-check: the flow proceeds until the toolchain rejects the
        # clock instead
        assert main(["--workdir", str(workdir), "build", str(path),
                     "--no-check"]) == 1
        err = capsys.readouterr().err
        assert "2b-static-analysis" not in err

    def test_simulate_gate(self, tmp_path, capsys):
        from repro.frontend.zoo.broken import overbudget_model

        path = save_condor_json(overbudget_model(),
                                tmp_path / "bad.json")
        assert main(["--workdir", str(tmp_path / "w"), "simulate",
                     str(path), "--batch", "1"]) == 1
        assert "static analysis found" in capsys.readouterr().err


class TestResumeCLI:
    @pytest.fixture
    def cloud_json(self, tmp_path):
        from repro.frontend.condor_format import DeploymentOption
        from repro.frontend.zoo import lenet_model

        model = lenet_model(DeploymentOption.AWS_F1)
        return str(save_condor_json(model, tmp_path / "lenet.json"))

    def test_resume_prints_restoration_notes(self, cloud_json, tmp_path,
                                             capsys):
        workdir = tmp_path / "w"
        assert main(["--workdir", str(workdir), "build",
                     cloud_json]) == 0
        first = capsys.readouterr().out
        assert "restored from checkpoint" not in first
        assert main(["--workdir", str(workdir), "build", cloud_json,
                     "--resume"]) == 0
        resumed = capsys.readouterr().out
        assert "(restored from checkpoint)" in resumed

    def test_afi_max_polls_degrades_gracefully(self, cloud_json,
                                               tmp_path, capsys):
        workdir = tmp_path / "w"
        assert main(["--workdir", str(workdir), "build", cloud_json,
                     "--deploy", "aws-f1", "--afi-max-polls", "1"]) == 0
        out = capsys.readouterr().out
        assert "WARNING" in out
        assert "--resume" in out
        assert (workdir / "LeNet.xclbin").is_file()


class TestChaos:
    def test_chaos_single_model(self, tc1_json, tmp_path, capsys):
        assert main(["--workdir", str(tmp_path / "w"), "chaos",
                     tc1_json, "--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "survived" in out
        assert "tc1" in out

    def test_chaos_json_format(self, tc1_json, tmp_path, capsys):
        import json

        assert main(["--workdir", str(tmp_path / "w"), "chaos",
                     tc1_json, "--seeds", "2", "--format",
                     "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["runs"] == 2
        assert doc["summary"]["survived"] == 2
        assert {"network", "seed", "status", "faults",
                "resilience"} <= set(doc["runs"][0])

    def test_chaos_requires_model_or_zoo(self, tmp_path, capsys):
        assert main(["--workdir", str(tmp_path / "w"), "chaos"]) == 1
        assert "error:" in capsys.readouterr().err
