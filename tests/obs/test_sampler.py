"""Background telemetry sampler: rows, ring bound, flush, kill switch."""

import json

import pytest

from repro.obs import MetricsRegistry, TelemetrySampler
from repro.obs.sampler import PERIOD_ENV, TIMESERIES_NAME


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    reg.counter("condor_demo_events_total").inc(3)
    reg.gauge("condor_demo_depth_count").set(7)
    return reg


class TestSampling:
    def test_start_stop_bookends_produce_rows(self, registry):
        sampler = TelemetrySampler(registry, period=30.0)
        sampler.start().stop()
        rows = sampler.samples()
        # one synchronous sample on start() and one on stop(), even when
        # the run is far shorter than a period
        assert len(rows) == 2
        for row in rows:
            assert row["ts"] > 0
            assert row["peak_rss_bytes"] > 0
            assert row["metrics"]["condor_demo_events_total"] == 3
            assert row["metrics"]["condor_demo_depth_count"] == 7

    def test_periodic_rows_accumulate(self, registry):
        sampler = TelemetrySampler(registry, period=0.01)
        sampler.start()
        sampler._stop.wait(0.08)
        sampler.stop()
        assert len(sampler.samples()) >= 3

    def test_rows_see_metric_updates(self, registry):
        sampler = TelemetrySampler(registry, period=30.0)
        sampler.start()
        registry.get("condor_demo_events_total").inc(10)
        sampler.stop()
        first, last = sampler.samples()[0], sampler.samples()[-1]
        assert first["metrics"]["condor_demo_events_total"] == 3
        assert last["metrics"]["condor_demo_events_total"] == 13

    def test_ring_buffer_bound_counts_drops(self, registry):
        sampler = TelemetrySampler(registry, period=30.0, capacity=3)
        for _ in range(5):
            sampler._sample()
        assert len(sampler.samples()) == 3
        overhead = sampler.overhead()
        assert overhead["samples"] == 5
        assert overhead["dropped"] == 2
        assert overhead["seconds"] > 0

    def test_double_start_is_idempotent(self, registry):
        sampler = TelemetrySampler(registry, period=30.0)
        sampler.start()
        thread = sampler._thread
        sampler.start()
        assert sampler._thread is thread
        sampler.stop()

    def test_stop_without_start_is_noop(self, registry):
        sampler = TelemetrySampler(registry, period=30.0)
        sampler.stop()
        assert sampler.samples() == []


class TestFlush:
    def test_flush_to_directory_writes_jsonl(self, registry, tmp_path):
        sampler = TelemetrySampler(registry, period=30.0)
        sampler.start().stop()
        path = sampler.flush(tmp_path)
        assert path == tmp_path / TIMESERIES_NAME
        lines = path.read_text().splitlines()
        assert len(lines) == len(sampler.samples())
        for line in lines:
            row = json.loads(line)
            assert {"ts", "peak_rss_bytes", "metrics"} <= set(row)

    def test_flush_to_explicit_file(self, registry, tmp_path):
        sampler = TelemetrySampler(registry, period=30.0)
        sampler.start().stop()
        target = tmp_path / "deep" / "series.jsonl"
        assert sampler.flush(target) == target
        assert target.exists()

    def test_flush_empty_writes_nothing(self, registry, tmp_path):
        sampler = TelemetrySampler(registry, period=30.0)
        assert sampler.flush(tmp_path) is None
        assert not (tmp_path / TIMESERIES_NAME).exists()


class TestKillSwitch:
    def test_no_obs_disables_sampling(self, registry, monkeypatch):
        monkeypatch.setenv("REPRO_NO_OBS", "1")
        sampler = TelemetrySampler(registry, period=0.01)
        sampler.start()
        assert sampler._thread is None
        sampler.stop()
        assert sampler.samples() == []

    def test_period_env_override(self, monkeypatch, registry):
        monkeypatch.setenv(PERIOD_ENV, "2.5")
        assert TelemetrySampler(registry)._period == 2.5
        monkeypatch.setenv(PERIOD_ENV, "garbage")
        assert TelemetrySampler(registry)._period == \
            TelemetrySampler(registry, period=0.5)._period
        monkeypatch.setenv(PERIOD_ENV, "-1")
        assert TelemetrySampler(registry)._period > 0
