"""Offline telemetry analytics: span report, manifest diff, timeseries."""

import math

import pytest

from repro.obs.analyze import (
    diff_manifests,
    format_diff,
    format_report,
    format_timeseries,
    span_report,
    summarize_timeseries,
)


def _summary(count, total, p50, p95, p99, lo=None, hi=None):
    return {"count": count, "sum": total, "min": lo, "max": hi,
            "quantiles": {"0.5": p50, "0.9": p95, "0.95": p95,
                          "0.99": p99}}


def _manifest(summaries=None, spans=None, metrics=None, rss=None,
              status="succeeded"):
    doc = {"schema": 2, "run": {"status": status},
           "span_summaries": summaries or {}, "spans": spans or [],
           "metrics": metrics or {}}
    if rss is not None:
        doc["process"] = {"peak_rss_bytes": rss}
    return doc


class TestSpanReport:
    def test_prefers_streaming_summaries(self):
        manifest = _manifest(summaries={
            "engine.layer": _summary(100, 2.0, 0.01, 0.05, 0.09,
                                     lo=0.005, hi=0.1),
            "flow.step": _summary(5, 10.0, 1.9, 2.4, 2.5),
        })
        rows = span_report(manifest)
        # heaviest total first
        assert [r["name"] for r in rows] == ["flow.step", "engine.layer"]
        layer = rows[1]
        assert layer["count"] == 100
        assert layer["mean_s"] == pytest.approx(0.02)
        assert layer["p95_s"] == 0.05
        assert layer["p99_s"] == 0.09
        assert layer["max_s"] == 0.1

    def test_falls_back_to_span_tree(self):
        spans = [{"name": "root", "seconds": 1.0, "children": [
            {"name": "leaf", "seconds": 0.25},
            {"name": "leaf", "seconds": 0.75},
        ]}]
        rows = span_report(_manifest(spans=spans))
        by_name = {r["name"]: r for r in rows}
        assert by_name["leaf"]["count"] == 2
        assert by_name["leaf"]["total_s"] == 1.0
        assert by_name["leaf"]["p50_s"] == 0.25
        assert by_name["leaf"]["max_s"] == 0.75
        assert by_name["root"]["count"] == 1

    def test_empty_manifest(self):
        assert span_report(_manifest()) == []


class TestDiff:
    def test_clean_diff(self):
        m = _manifest(summaries={"op": _summary(10, 1.0, 0.1, 0.1, 0.1)})
        assert diff_manifests(m, m) == []

    def test_latency_regression_flagged(self):
        base = _manifest(
            summaries={"op": _summary(10, 1.0, 0.1, 0.10, 0.1)})
        cur = _manifest(
            summaries={"op": _summary(10, 2.0, 0.2, 0.20, 0.2)})
        findings = diff_manifests(base, cur)
        assert len(findings) == 1
        assert findings[0]["kind"] == "latency"
        assert findings[0]["name"] == "op"
        assert findings[0]["ratio"] == pytest.approx(2.0)
        # under a looser threshold the same growth passes
        assert diff_manifests(base, cur, latency_threshold=1.5) == []

    def test_subthreshold_and_noise_spans_skipped(self):
        base = _manifest(summaries={
            "fast": _summary(10, 0.0001, 1e-5, 1e-5, 1e-5),
            "op": _summary(10, 1.0, 0.1, 0.10, 0.1)})
        cur = _manifest(summaries={
            "fast": _summary(10, 0.01, 1e-3, 1e-3, 1e-3),  # noise span
            "op": _summary(10, 1.1, 0.11, 0.11, 0.11)})    # +10% only
        assert diff_manifests(base, cur) == []

    def test_metric_regression_flagged(self):
        base = _manifest(metrics={"condor_retries_total": {
            "type": "counter", "values": [{"value": 4}]}})
        cur = _manifest(metrics={"condor_retries_total": {
            "type": "counter", "values": [{"value": 40}]}})
        findings = diff_manifests(base, cur)
        assert [f["kind"] for f in findings] == ["metric"]
        assert findings[0]["before"] == 4
        assert findings[0]["after"] == 40

    def test_histogram_scalars_compared(self):
        base = _manifest(metrics={"condor_step_seconds": {
            "type": "histogram",
            "values": [{"count": 2, "sum": 1.0}]}})
        cur = _manifest(metrics={"condor_step_seconds": {
            "type": "histogram",
            "values": [{"count": 2, "sum": 9.0}]}})
        findings = diff_manifests(base, cur)
        assert {f["name"] for f in findings} == {"condor_step_seconds_sum"}

    def test_rss_and_status_flagged(self):
        base = _manifest(rss=100_000_000)
        cur = _manifest(rss=200_000_000, status="failed")
        findings = diff_manifests(base, cur)
        kinds = [f["kind"] for f in findings]
        # worst ratio first: status is ranked infinitely bad
        assert kinds == ["status", "rss"]
        assert findings[0]["ratio"] == math.inf

    def test_new_spans_ignored(self):
        base = _manifest()
        cur = _manifest(summaries={"op": _summary(10, 9.0, 1, 1, 1)})
        assert diff_manifests(base, cur) == []

    def test_breaker_state_regression_flagged(self):
        def with_breakers(breakers):
            doc = _manifest()
            doc["resilience"] = {"breakers": breakers}
            return doc
        base = with_breakers({"fleet.i0.slot0": {
            "state": "closed", "opened_count": 0,
            "consecutive_failures": 0}})
        cur = with_breakers({"fleet.i0.slot0": {
            "state": "open", "opened_count": 1,
            "consecutive_failures": 2}})
        findings = diff_manifests(base, cur)
        assert [f["kind"] for f in findings] == ["breaker"]
        assert findings[0]["name"] == "fleet.i0.slot0"
        assert findings[0]["ratio"] == math.inf
        assert findings[0]["before"] == "closed (opened 0x)"
        assert findings[0]["after"] == "open (opened 1x)"
        # same state both sides, no new trips -> clean
        assert diff_manifests(cur, cur) == []
        # more trips at the same state is still a regression
        more = with_breakers({"fleet.i0.slot0": {
            "state": "open", "opened_count": 3,
            "consecutive_failures": 2}})
        (finding,) = diff_manifests(cur, more)
        assert finding["kind"] == "breaker"
        assert finding["ratio"] == pytest.approx(2.0)

    def test_breaker_new_in_current_only_flagged_if_bad(self):
        base = _manifest()
        cur = _manifest()
        cur["resilience"] = {"breakers": {
            "fleet.i0.slot0": {"state": "closed", "opened_count": 0},
            "fleet.i0.slot1": {"state": "half-open",
                               "opened_count": 1}}}
        findings = diff_manifests(base, cur)
        assert [f["name"] for f in findings] == ["fleet.i0.slot1"]


class TestTimeseries:
    def test_summary_of_rows(self):
        rows = [
            {"ts": 100.0, "peak_rss_bytes": 50,
             "metrics": {"a_total": 1, "b_total": 5}},
            {"ts": 101.0, "peak_rss_bytes": 80,
             "metrics": {"a_total": 3, "b_total": 5}},
            {"ts": 102.5, "peak_rss_bytes": 70,
             "metrics": {"a_total": 9, "b_total": 5}},
        ]
        summary = summarize_timeseries(rows)
        assert summary["samples"] == 3
        assert summary["seconds"] == pytest.approx(2.5)
        assert summary["peak_rss_bytes"] == {"first": 50, "max": 80}
        assert summary["metrics"]["a_total"] == {
            "first": 1, "last": 9, "max": 9, "delta": 8}
        assert summary["metrics"]["b_total"]["delta"] == 0

    def test_empty(self):
        summary = summarize_timeseries([])
        assert summary["samples"] == 0
        assert summary["metrics"] == {}


class TestFormatting:
    def test_report_table(self):
        rows = span_report(_manifest(summaries={
            "engine.layer": _summary(4, 0.4, 0.1, 0.11, 0.12,
                                     lo=0.09, hi=0.13)}))
        text = format_report(rows)
        assert "engine.layer" in text
        assert "p95_ms" in text
        assert "110.000" in text  # 0.11 s rendered as ms

    def test_report_empty_and_limit(self):
        assert format_report([]) == "no spans recorded"
        rows = span_report(_manifest(summaries={
            "a": _summary(1, 2.0, 1, 1, 1),
            "b": _summary(1, 1.0, 1, 1, 1)}))
        assert "b" not in format_report(rows, limit=1)

    def test_diff_rendering(self):
        base = _manifest(
            summaries={"op": _summary(10, 1.0, 0.1, 0.10, 0.1)},
            status="succeeded")
        cur = _manifest(
            summaries={"op": _summary(10, 2.0, 0.2, 0.20, 0.2)},
            status="failed")
        text = format_diff(diff_manifests(base, cur))
        assert "run.status: succeeded -> failed" in text
        assert "op" in text and "+100.0%" in text
        assert format_diff([]) == "no regressions"

    def test_breaker_rendering(self):
        text = format_diff([{
            "kind": "breaker", "name": "fleet.i0.slot0",
            "measure": "state", "before": "closed (opened 0x)",
            "after": "open (opened 1x)", "ratio": math.inf}])
        assert text == ("[breaker] fleet.i0.slot0:"
                        " closed (opened 0x) -> open (opened 1x)")

    def test_timeseries_rendering(self):
        rows = [
            {"ts": 0.0, "peak_rss_bytes": 1e6, "metrics": {"a_total": 0}},
            {"ts": 1.0, "peak_rss_bytes": 2e6, "metrics": {"a_total": 7}},
        ]
        text = format_timeseries(summarize_timeseries(rows))
        assert "samples: 2" in text
        assert "peak rss: 1.0 MB -> 2.0 MB" in text
        assert "a_total" in text
