"""Metrics registry tests."""

import json
import threading

import pytest

from repro.obs import REGISTRY, MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        c = registry.counter("requests_total", "Requests served")
        c.inc()
        c.inc(2)
        assert c.value() == 3
        assert c.total() == 3

    def test_labels_are_independent(self, registry):
        c = registry.counter("calls_total")
        c.inc(verb="put")
        c.inc(verb="put")
        c.inc(verb="get")
        assert c.value(verb="put") == 2
        assert c.value(verb="get") == 1
        assert c.value(verb="delete") == 0
        assert c.total() == 3

    def test_decrease_rejected(self, registry):
        c = registry.counter("ups_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_declaration_is_idempotent(self, registry):
        a = registry.counter("once_total", "help")
        b = registry.counter("once_total")
        assert a is b

    def test_kind_mismatch_rejected(self, registry):
        registry.counter("thing")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("thing")

    def test_thread_safety(self, registry):
        c = registry.counter("racy_total")

        def bump():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 4000


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("depth")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value() == 4

    def test_labelled(self, registry):
        g = registry.gauge("occupancy")
        g.set(7, fifo="c1")
        assert g.value(fifo="c1") == 7


class TestHistogram:
    def test_observe_counts_and_sum(self, registry):
        h = registry.histogram("latency_seconds",
                               buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == pytest.approx(55.55)

    def test_cumulative_buckets(self, registry):
        h = registry.histogram("x", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        h.observe(99.0)
        text = registry.to_prometheus()
        assert 'x_bucket{le="1"} 1' in text
        assert 'x_bucket{le="2"} 2' in text
        assert 'x_bucket{le="+Inf"} 3' in text
        assert "x_count 3" in text


class TestExposition:
    def test_prometheus_format(self, registry):
        c = registry.counter("flow_runs_total", "Flow runs")
        c.inc(status="ok")
        text = registry.to_prometheus()
        assert "# HELP flow_runs_total Flow runs" in text
        assert "# TYPE flow_runs_total counter" in text
        assert 'flow_runs_total{status="ok"} 1' in text
        assert text.endswith("\n")

    def test_json_snapshot_roundtrips(self, registry):
        registry.counter("a_total").inc(5)
        registry.histogram("b_seconds", buckets=(1.0,)).observe(0.5)
        snap = json.loads(json.dumps(registry.to_dict()))
        assert snap["a_total"]["values"][0]["value"] == 5
        assert snap["b_seconds"]["values"][0]["count"] == 1

    def test_reset_zeroes_but_keeps_declarations(self, registry):
        c = registry.counter("z_total")
        c.inc()
        registry.reset()
        assert c.value() == 0
        assert registry.get("z_total") is c


class TestDefaultRegistry:
    def test_instrumented_metrics_are_declared(self):
        # importing the instrumented modules declares their metrics
        import repro.flow.condor  # noqa: F401
        import repro.sim.core  # noqa: F401
        import repro.cloud.client  # noqa: F401
        import repro.dse.explorer  # noqa: F401

        names = REGISTRY.names()
        for expected in ("condor_flow_steps_started_total",
                         "condor_flow_steps_failed_total",
                         "condor_dse_points_evaluated_total",
                         "condor_sim_cycles_total",
                         "condor_cloud_api_calls_total"):
            assert expected in names
