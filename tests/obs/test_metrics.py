"""Metrics registry tests."""

import json
import math
import re
import threading

import pytest

from repro.obs import REGISTRY, MetricsRegistry, recording, span


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        c = registry.counter("requests_total", "Requests served")
        c.inc()
        c.inc(2)
        assert c.value() == 3
        assert c.total() == 3

    def test_labels_are_independent(self, registry):
        c = registry.counter("calls_total")
        c.inc(verb="put")
        c.inc(verb="put")
        c.inc(verb="get")
        assert c.value(verb="put") == 2
        assert c.value(verb="get") == 1
        assert c.value(verb="delete") == 0
        assert c.total() == 3

    def test_decrease_rejected(self, registry):
        c = registry.counter("ups_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_declaration_is_idempotent(self, registry):
        a = registry.counter("once_total", "help")
        b = registry.counter("once_total")
        assert a is b

    def test_kind_mismatch_rejected(self, registry):
        registry.counter("thing")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("thing")

    def test_thread_safety(self, registry):
        c = registry.counter("racy_total")

        def bump():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 4000


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("depth")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value() == 4

    def test_labelled(self, registry):
        g = registry.gauge("occupancy")
        g.set(7, fifo="c1")
        assert g.value(fifo="c1") == 7


class TestHistogram:
    def test_observe_counts_and_sum(self, registry):
        h = registry.histogram("latency_seconds",
                               buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == pytest.approx(55.55)

    def test_cumulative_buckets(self, registry):
        h = registry.histogram("x", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        h.observe(99.0)
        text = registry.to_prometheus()
        assert 'x_bucket{le="1"} 1' in text
        assert 'x_bucket{le="2"} 2' in text
        assert 'x_bucket{le="+Inf"} 3' in text
        assert "x_count 3" in text

    def test_explicit_inf_bucket_not_duplicated(self, registry):
        """A caller passing +Inf (or a duplicate bound) must still get
        exactly one +Inf line — Prometheus scrapers reject dupes."""
        h = registry.histogram(
            "y", buckets=(1.0, 1.0, math.inf, float("nan"), 2.0))
        assert h.buckets == (1.0, 2.0)
        h.observe(99.0)
        text = registry.to_prometheus()
        assert text.count('le="+Inf"') == 1
        assert 'y_bucket{le="+Inf"} 1' in text

    def test_streaming_quantile(self, registry):
        h = registry.histogram("lat_seconds", buckets=(1.0,))
        for v in range(1, 101):
            h.observe(v / 100.0)
        assert h.quantile(0.5) == pytest.approx(0.5, abs=0.02)
        assert h.quantile(0.99) == pytest.approx(0.99, abs=0.02)
        assert h.quantile(0.5, missing="labels") is None

    def test_nan_observation_dropped(self, registry):
        h = registry.histogram("z", buckets=(1.0,))
        h.observe(float("nan"))
        assert h.count() == 0


class TestSummary:
    def test_observe_and_quantiles(self, registry):
        s = registry.summary("req_seconds", "Request latency")
        for v in range(1, 1001):
            s.observe(v / 1000.0)
        assert s.count() == 1000
        assert s.sum() == pytest.approx(500.5)
        assert s.quantile(0.5) == pytest.approx(0.5, abs=0.01)
        assert s.quantile(0.99) == pytest.approx(0.99, abs=0.01)

    def test_exposition_format(self, registry):
        s = registry.summary("api_seconds", "API latency",
                             quantiles=(0.5, 0.99))
        s.observe(0.25, verb="get")
        text = registry.to_prometheus()
        assert "# TYPE api_seconds summary" in text
        assert 'api_seconds{verb="get",quantile="0.5"} 0.25' in text
        assert 'api_seconds{verb="get",quantile="0.99"} 0.25' in text
        assert 'api_seconds_sum{verb="get"} 0.25' in text
        assert 'api_seconds_count{verb="get"} 1' in text

    def test_snapshot_carries_quantiles(self, registry):
        s = registry.summary("s_seconds")
        s.observe(1.0)
        snap = s.snapshot()
        assert snap["type"] == "summary"
        assert snap["values"][0]["count"] == 1
        assert snap["values"][0]["quantiles"]["0.5"] == 1.0

    def test_kind_mismatch_with_histogram(self, registry):
        registry.histogram("mixed_seconds")
        with pytest.raises(ValueError, match="already registered"):
            registry.summary("mixed_seconds")


class TestExemplars:
    def test_worst_observation_links_to_span(self, registry):
        h = registry.histogram("ex_seconds", buckets=(1.0,))
        with recording():
            with span("slow.op") as sp:
                h.observe(0.2)
                h.observe(0.9)  # worst: becomes the exemplar
                h.observe(0.5)
        entry = h.snapshot()["values"][0]
        assert entry["exemplar"]["value"] == 0.9
        assert entry["exemplar"]["span"] == "slow.op"
        assert entry["exemplar"]["span_id"] == sp.span_id

    def test_no_span_no_exemplar(self, registry):
        s = registry.summary("plain_seconds")
        s.observe(1.0)
        assert "exemplar" not in s.snapshot()["values"][0]


class TestScalars:
    def test_flat_view_of_every_kind(self, registry):
        registry.counter("c_total").inc(2, kind="a")
        registry.counter("c_total").inc(3, kind="b")
        registry.gauge("g_entries").set(7)
        h = registry.histogram("h_seconds", buckets=(1.0,))
        h.observe(0.5)
        h.observe(2.0)
        registry.summary("s_seconds").observe(4.0)
        flat = registry.scalars()
        assert flat["c_total"] == 5
        assert flat["g_entries"] == 7
        assert flat["h_seconds_count"] == 2
        assert flat["h_seconds_sum"] == pytest.approx(2.5)
        assert flat["s_seconds_count"] == 1
        assert flat["s_seconds_sum"] == pytest.approx(4.0)


class TestExpositionRoundTrip:
    def test_text_format_parses_back(self, registry):
        """Satellite check: the exposition is valid Prometheus text —
        every sample line parses, histogram series are complete and
        +Inf appears exactly once per label set."""
        registry.counter("rt_total", "Round trip").inc(2, verb="put")
        registry.gauge("rt_entries").set(3)
        h = registry.histogram("rt_seconds", buckets=(0.1, 1.0))
        h.observe(0.05, step="a")
        h.observe(5.0, step="a")
        registry.summary("rt_sum_seconds").observe(0.25)

        sample_re = re.compile(
            r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"          # metric name
            r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""  # first label
            r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
            r" (\+Inf|-?[0-9.e+-]+)$")
        parsed = {}
        for line in registry.to_prometheus().splitlines():
            if not line or line.startswith("#"):
                continue
            m = sample_re.match(line)
            assert m, f"unparseable exposition line: {line!r}"
            series = line.rsplit(" ", 1)[0]
            assert series not in parsed, f"duplicate series {series!r}"
            parsed[series] = float(m.group(4).replace("+Inf", "inf"))

        assert parsed['rt_total{verb="put"}'] == 2
        assert parsed["rt_entries"] == 3
        assert parsed['rt_seconds_bucket{step="a",le="+Inf"}'] == 2
        assert parsed['rt_seconds_count{step="a"}'] == 2
        assert parsed['rt_sum_seconds{quantile="0.5"}'] == 0.25


class TestKillSwitch:
    def test_default_registry_gated(self, monkeypatch):
        c = REGISTRY.counter("condor_gate_probe_total")
        before = c.total()
        monkeypatch.setenv("REPRO_NO_OBS", "1")
        c.inc()
        REGISTRY.gauge("condor_gate_probe_entries").set(5)
        assert c.total() == before
        assert REGISTRY.get("condor_gate_probe_entries").value() == 0
        monkeypatch.delenv("REPRO_NO_OBS")
        c.inc()
        assert c.total() == before + 1

    def test_private_registry_stays_live(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_OBS", "1")
        reg = MetricsRegistry()
        reg.counter("live_total").inc()
        reg.summary("live_seconds").observe(1.0)
        assert reg.get("live_total").total() == 1
        assert reg.get("live_seconds").count() == 1


class TestExposition:
    def test_prometheus_format(self, registry):
        c = registry.counter("flow_runs_total", "Flow runs")
        c.inc(status="ok")
        text = registry.to_prometheus()
        assert "# HELP flow_runs_total Flow runs" in text
        assert "# TYPE flow_runs_total counter" in text
        assert 'flow_runs_total{status="ok"} 1' in text
        assert text.endswith("\n")

    def test_json_snapshot_roundtrips(self, registry):
        registry.counter("a_total").inc(5)
        registry.histogram("b_seconds", buckets=(1.0,)).observe(0.5)
        snap = json.loads(json.dumps(registry.to_dict()))
        assert snap["a_total"]["values"][0]["value"] == 5
        assert snap["b_seconds"]["values"][0]["count"] == 1

    def test_reset_zeroes_but_keeps_declarations(self, registry):
        c = registry.counter("z_total")
        c.inc()
        registry.reset()
        assert c.value() == 0
        assert registry.get("z_total") is c


class TestDefaultRegistry:
    def test_instrumented_metrics_are_declared(self):
        # importing the instrumented modules declares their metrics
        import repro.flow.condor  # noqa: F401
        import repro.sim.core  # noqa: F401
        import repro.cloud.client  # noqa: F401
        import repro.dse.explorer  # noqa: F401

        names = REGISTRY.names()
        for expected in ("condor_flow_steps_started_total",
                         "condor_flow_steps_failed_total",
                         "condor_dse_points_evaluated_total",
                         "condor_sim_cycles_total",
                         "condor_cloud_api_calls_total"):
            assert expected in names
