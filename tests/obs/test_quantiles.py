"""Streaming quantile sketch: accuracy, determinism, merge, bounds."""

import math

import numpy as np
import pytest

from repro.obs import QuantileSketch
from repro.obs.quantiles import DEFAULT_QUANTILES, DEFAULT_SKETCH_K


def _exact(values, q):
    return float(np.quantile(np.asarray(values), q))


def _rel_err(estimate, exact, spread):
    # error normalized by the distribution spread: the acceptance bound
    # is "within 1% of exact" and spread-relative keeps that meaningful
    # for quantiles near zero
    return abs(estimate - exact) / spread


DISTRIBUTIONS = {
    "uniform": lambda rng, n: rng.uniform(0.0, 1.0, n),
    "normal": lambda rng, n: rng.normal(10.0, 2.0, n),
    "lognormal": lambda rng, n: rng.lognormal(0.0, 1.5, n),
    "exponential": lambda rng, n: rng.exponential(0.01, n),
}


class TestAccuracy:
    @pytest.mark.parametrize("dist", sorted(DISTRIBUTIONS))
    def test_within_one_percent_on_10k(self, dist):
        """Acceptance bound: p50/p90/p95/p99 within 1% of exact on a
        10k-sample stream (spread-normalized)."""
        rng = np.random.default_rng(42)
        values = DISTRIBUTIONS[dist](rng, 10_000)
        sk = QuantileSketch()
        for v in values:
            sk.observe(v)
        spread = float(values.max() - values.min())
        for q in DEFAULT_QUANTILES:
            err = _rel_err(sk.quantile(q), _exact(values, q), spread)
            assert err <= 0.01, f"{dist} q={q}: error {err:.4f}"

    def test_small_stream_is_exact_order_statistics(self):
        sk = QuantileSketch()
        for v in [5.0, 1.0, 3.0, 2.0, 4.0]:
            sk.observe(v)
        # everything is still retained at level 0: interpolated answers
        assert sk.quantile(0.5) == pytest.approx(3.0)
        assert sk.quantile(0.0) == 1.0
        assert sk.quantile(1.0) == 5.0

    def test_endpoints_are_exact_min_max(self):
        rng = np.random.default_rng(7)
        values = rng.normal(size=50_000)
        sk = QuantileSketch()
        for v in values:
            sk.observe(v)
        assert sk.quantile(0.0) == float(values.min())
        assert sk.quantile(1.0) == float(values.max())
        assert sk.min == float(values.min())
        assert sk.max == float(values.max())


class TestExactAggregates:
    def test_count_sum_min_max(self):
        sk = QuantileSketch()
        for v in range(1, 101):
            sk.observe(float(v))
        assert sk.count == 100
        assert sk.sum == pytest.approx(5050.0)
        assert sk.min == 1.0
        assert sk.max == 100.0

    def test_empty_sketch(self):
        sk = QuantileSketch()
        assert sk.count == 0
        assert sk.min is None and sk.max is None
        assert sk.quantile(0.5) is None
        assert sk.quantiles() == {}
        assert sk.snapshot()["quantiles"] == {}


class TestDeterminism:
    def test_same_stream_same_answers(self):
        rng = np.random.default_rng(3)
        values = list(rng.lognormal(0.0, 1.0, 30_000))
        a, b = QuantileSketch(), QuantileSketch()
        for v in values:
            a.observe(v)
            b.observe(v)
        for q in DEFAULT_QUANTILES:
            assert a.quantile(q) == b.quantile(q)


class TestMerge:
    def test_merged_matches_combined_stream(self):
        rng = np.random.default_rng(11)
        left = rng.normal(0.0, 1.0, 20_000)
        right = rng.normal(5.0, 1.0, 20_000)
        a, b = QuantileSketch(), QuantileSketch()
        for v in left:
            a.observe(v)
        for v in right:
            b.observe(v)
        a.merge(b)
        combined = np.concatenate([left, right])
        assert a.count == 40_000
        assert a.sum == pytest.approx(float(combined.sum()))
        spread = float(combined.max() - combined.min())
        for q in DEFAULT_QUANTILES:
            err = _rel_err(a.quantile(q), _exact(combined, q), spread)
            assert err <= 0.01, f"merged q={q}: error {err:.4f}"

    def test_merge_empty_is_noop(self):
        a = QuantileSketch()
        a.observe(1.0)
        a.merge(QuantileSketch())
        assert a.count == 1
        assert a.quantile(0.5) == 1.0

    def test_merge_leaves_other_untouched(self):
        a, b = QuantileSketch(), QuantileSketch()
        b.observe(2.0)
        a.merge(b)
        assert b.count == 1
        assert b.quantile(1.0) == 2.0


class TestBounds:
    def test_memory_bounded_on_long_stream(self):
        sk = QuantileSketch(k=64)
        n = 200_000
        for v in range(n):
            sk.observe(float(v))
        # k * ceil(log2(n / k)) with slack for the in-fill level-0 buffer
        bound = 64 * (math.ceil(math.log2(n / 64)) + 2)
        assert sk.retained() <= bound
        assert sk.count == n

    def test_total_weight_preserved(self):
        sk = QuantileSketch(k=32)
        for v in range(10_000):
            sk.observe(float(v))
        weight = sum((1 << h) * len(buf)
                     for h, buf in enumerate(sk._levels))
        assert weight == 10_000

    def test_tiny_k_rejected(self):
        with pytest.raises(ValueError, match=">= 8"):
            QuantileSketch(k=4)

    def test_bad_quantile_rejected(self):
        sk = QuantileSketch()
        sk.observe(1.0)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            sk.quantile(1.5)


class TestSnapshot:
    def test_snapshot_shape(self):
        sk = QuantileSketch()
        for v in (0.1, 0.2, 0.3):
            sk.observe(v)
        snap = sk.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(0.6)
        assert snap["min"] == pytest.approx(0.1)
        assert snap["max"] == pytest.approx(0.3)
        assert set(snap["quantiles"]) == {"0.5", "0.9", "0.95", "0.99"}

    def test_default_k_is_documented_default(self):
        assert QuantileSketch()._k == DEFAULT_SKETCH_K
