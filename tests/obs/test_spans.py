"""Span API tests."""

import threading
import time

import pytest

from repro.obs import (
    SpanRecorder,
    current_recorder,
    current_span,
    no_recording,
    recording,
    span,
    traced,
)


class TestNoRecorder:
    def test_span_is_noop_without_recorder(self):
        assert current_recorder() is None
        with span("orphan") as sp:
            assert sp is None
        assert current_span() is None

    def test_decorated_function_still_works(self):
        @traced()
        def double(x):
            return 2 * x

        assert double(21) == 42


class TestRecording:
    def test_basic_span_recorded(self):
        with recording() as rec:
            with span("work", items=3) as sp:
                assert current_span() is sp
                time.sleep(0.001)
        assert len(rec) == 1
        (recorded,) = rec.find("work")
        assert recorded.finished
        assert recorded.seconds > 0
        assert recorded.cpu_seconds >= 0
        assert recorded.attrs == {"items": 3}
        assert recorded.status == "ok"
        assert recorded.parent_id is None

    def test_nesting_builds_tree(self):
        with recording() as rec:
            with span("parent"):
                with span("child-a"):
                    with span("grandchild"):
                        pass
                with span("child-b"):
                    pass
        parent = rec.find("parent")[0]
        assert parent.depth == 0
        kids = rec.children(parent)
        assert [k.name for k in kids] == ["child-a", "child-b"]
        assert all(k.parent_id == parent.span_id for k in kids)
        tree = rec.span_tree()
        assert tree[0]["name"] == "parent"
        assert [c["name"] for c in tree[0]["children"]] == \
            ["child-a", "child-b"]
        assert tree[0]["children"][0]["children"][0]["name"] == \
            "grandchild"

    def test_parent_restored_after_exit(self):
        with recording():
            with span("outer") as outer:
                with span("inner"):
                    pass
                assert current_span() is outer
            assert current_span() is None

    def test_error_captured_and_reraised(self):
        with recording() as rec:
            with pytest.raises(ValueError, match="boom"):
                with span("fails"):
                    raise ValueError("boom")
        failed = rec.find("fails")[0]
        assert failed.status == "error"
        assert failed.error == "ValueError: boom"
        assert failed.finished

    def test_parent_duration_contains_child(self):
        with recording() as rec:
            with span("outer"):
                with span("inner"):
                    time.sleep(0.002)
        outer = rec.find("outer")[0]
        inner = rec.find("inner")[0]
        assert outer.seconds >= inner.seconds

    def test_recorder_scope_is_dynamic(self):
        outer_rec = SpanRecorder()
        with recording(outer_rec):
            inner_rec = SpanRecorder()
            with recording(inner_rec):
                with span("scoped"):
                    pass
            with span("outer-scoped"):
                pass
        assert [s.name for s in inner_rec.spans] == ["scoped"]
        assert [s.name for s in outer_rec.spans] == ["outer-scoped"]

    def test_total_seconds_sums_repeats(self):
        with recording() as rec:
            for _ in range(3):
                with span("loop"):
                    pass
        assert len(rec.find("loop")) == 3
        assert rec.total_seconds("loop") >= 0


class TestNoRecording:
    def test_suspends_and_restores_recorder(self):
        with recording() as rec:
            with span("kept"):
                pass
            with no_recording():
                assert current_recorder() is None
                with span("suppressed") as sp:
                    assert sp is None
            assert current_recorder() is rec
            with span("kept-again"):
                pass
        assert [s.name for s in rec.spans] == ["kept", "kept-again"]


class TestKillSwitch:
    def test_no_obs_disables_recording(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_OBS", "1")
        with recording() as rec:
            assert current_recorder() is None
            with span("invisible") as sp:
                assert sp is None
        assert len(rec) == 0

    def test_explicit_recorder_also_bypassed(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_OBS", "1")
        mine = SpanRecorder()
        with recording(mine) as rec:
            assert rec is mine  # caller still gets a usable object
            with span("invisible"):
                pass
        assert len(mine) == 0


class TestThreads:
    def test_spans_carry_thread_identity(self):
        import contextvars

        with recording() as rec:
            with span("main-side"):
                pass

            def work():
                with span("worker-side"):
                    pass

            # threads start with an empty context: propagate the
            # recorder the same way ParallelEvaluator does
            ctx = contextvars.copy_context()
            t = threading.Thread(target=ctx.run, args=(work,),
                                 name="obs-test-worker")
            t.start()
            t.join()
        main_sp = rec.find("main-side")[0]
        worker_sp = rec.find("worker-side")[0]
        assert main_sp.thread_id == threading.get_ident()
        assert worker_sp.thread_name == "obs-test-worker"
        assert worker_sp.thread_id != main_sp.thread_id


class TestSummaries:
    def test_streaming_sketch_per_span_name(self):
        with recording() as rec:
            for _ in range(20):
                with span("op"):
                    pass
            with span("other"):
                pass
        summaries = rec.summaries()
        assert set(summaries) == {"op", "other"}
        op = summaries["op"]
        assert op["count"] == 20
        assert op["sum"] == pytest.approx(
            rec.total_seconds("op"), rel=1e-9)
        assert op["min"] <= op["quantiles"]["0.5"] <= op["max"]
        sketch = rec.sketch("op")
        assert sketch is not None and sketch.count == 20
        assert rec.sketch("never-seen") is None


class TestSpanAttrs:
    def test_set_attr_on_open_span(self):
        with recording() as rec:
            with span("op") as sp:
                sp.set_attr("points", 42)
        assert rec.find("op")[0].attrs == {"points": 42}

    def test_elapsed_live(self):
        with recording():
            with span("op") as sp:
                assert sp.elapsed() >= 0
                assert not sp.finished
        assert sp.finished


class TestTraced:
    def test_default_name_from_qualname(self):
        @traced()
        def sample():
            pass

        with recording() as rec:
            sample()
        (sp,) = rec.spans
        assert sp.name.endswith("sample")
        assert "tests.obs.test_spans" in sp.name or "test_spans" in sp.name

    def test_explicit_name_and_attrs(self):
        @traced("custom.op", kind="demo")
        def sample():
            return 1

        with recording() as rec:
            assert sample() == 1
        (sp,) = rec.spans
        assert sp.name == "custom.op"
        assert sp.attrs == {"kind": "demo"}
