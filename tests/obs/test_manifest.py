"""Run-manifest, metrics-coverage, ledger and overhead tests."""

import json
import time

import pytest

from repro.flow import CondorFlow, FlowInputs
from repro.frontend.zoo import tc1_model
from repro.obs import REGISTRY, peak_rss_bytes
from repro.obs.manifest import MANIFEST_NAME


@pytest.fixture
def run(tmp_path):
    flow = CondorFlow(tmp_path / "w")
    result = flow.run(FlowInputs(model=tc1_model()))
    return flow, result


class TestManifest:
    def test_written_into_workdir(self, run):
        flow, result = run
        path = flow.workdir / MANIFEST_NAME
        assert path.is_file()
        assert result.telemetry_path == path

    def test_step_durations_agree_with_flow_result(self, run):
        """The satellite guarantee: FlowResult and telemetry.json read
        the same spans, so the numbers are identical, not just close."""
        flow, result = run
        manifest = json.loads(result.telemetry_path.read_text())
        assert [s["name"] for s in manifest["steps"]] == \
            [s.name for s in result.steps]
        assert [s["seconds"] for s in manifest["steps"]] == \
            [s.seconds for s in result.steps]

    def test_span_tree_rooted_at_condor_flow(self, run):
        _, result = run
        manifest = json.loads(result.telemetry_path.read_text())
        (root,) = manifest["spans"]
        assert root["name"] == "condor.flow"
        child_names = [c["name"] for c in root["children"]]
        assert child_names[0] == "flow.1-input-analysis"
        assert manifest["process"]["span_count"] >= len(child_names)

    def test_process_and_host_stats(self, run):
        _, result = run
        manifest = json.loads(result.telemetry_path.read_text())
        rss = manifest["process"]["peak_rss_bytes"]
        assert rss is None or rss > 1024 * 1024
        assert manifest["host"]["python"]

    def test_resource_and_performance_snapshots(self, run):
        _, result = run
        manifest = json.loads(result.telemetry_path.read_text())
        est = manifest["resource_estimate"]
        assert "shell" in est["components"]
        assert est["total"]["dsp"] > 0
        assert set(est["utilization_pct"]) == \
            {"lut", "ff", "dsp", "bram_18k"}
        perf = manifest["performance"]
        assert perf["gflops"] == pytest.approx(result.performance.gflops())
        assert perf["ii_cycles"] == result.performance.ii_cycles

    def test_artifacts_listed(self, run):
        flow, result = run
        manifest = json.loads(result.telemetry_path.read_text())
        paths = {a["path"] for a in manifest["artifacts"]}
        assert "network.condor.json" in paths
        assert f"{result.accelerator.name}.xclbin" in paths
        assert MANIFEST_NAME not in paths  # not its own artifact

    def test_failed_run_still_writes_manifest(self, tmp_path):
        from repro.errors import FlowError

        flow = CondorFlow(tmp_path / "w")
        model = tc1_model()
        # TC1 cannot close timing at 400 MHz: step 7 fails
        from repro.frontend.condor_format import CondorModel
        broken = CondorModel(network=model.network, board=model.board,
                             frequency_hz=400e6,
                             deployment=model.deployment,
                             hints=model.hints)
        with pytest.raises(FlowError):
            flow.run(FlowInputs(model=broken))
        manifest = json.loads(
            (flow.workdir / MANIFEST_NAME).read_text())
        assert manifest["run"]["status"] == "error"
        assert "error" in manifest["run"]
        assert manifest["steps"]  # the successful prefix is recorded

    def test_telemetry_disabled_writes_nothing(self, tmp_path):
        flow = CondorFlow(tmp_path / "w", telemetry=False)
        result = flow.run(FlowInputs(model=tc1_model()))
        assert not (flow.workdir / MANIFEST_NAME).exists()
        assert result.telemetry_path is None
        assert result.steps  # step timing still recorded

    def test_schema_2_provenance_fields(self, run):
        """Satellite: git SHA, schema version and hostname make runs
        attributable across machines."""
        import platform

        from repro.obs.manifest import MANIFEST_SCHEMA, git_sha

        _, result = run
        manifest = json.loads(result.telemetry_path.read_text())
        assert manifest["schema"] == MANIFEST_SCHEMA == 2
        assert manifest["git_sha"] == git_sha()
        sha = manifest["git_sha"]
        assert sha is None or (len(sha) == 40 and
                               all(c in "0123456789abcdef" for c in sha))
        assert manifest["host"]["hostname"] == platform.node()

    def test_span_summaries_present(self, run):
        """Schema 2 carries streaming-sketch quantiles per span name."""
        _, result = run
        manifest = json.loads(result.telemetry_path.read_text())
        summaries = manifest["span_summaries"]
        assert "flow.1-input-analysis" in summaries
        entry = summaries["flow.1-input-analysis"]
        assert entry["count"] >= 1
        assert entry["quantiles"]["0.5"] >= 0
        assert entry["min"] <= entry["max"]

    def test_timeseries_written_and_referenced(self, run):
        """The sampler flushes timeseries.jsonl next to telemetry.json
        and the manifest records the file plus self-accounting."""
        flow, result = run
        manifest = json.loads(result.telemetry_path.read_text())
        ts = manifest["timeseries"]
        assert ts["path"] == "timeseries.jsonl"
        assert ts["samples"] >= 2
        assert ts["seconds"] >= 0
        series = flow.workdir / "timeseries.jsonl"
        assert series.is_file()
        rows = [json.loads(l) for l in
                series.read_text().splitlines()]
        assert len(rows) >= 2
        assert all("metrics" in r for r in rows)

    def test_no_obs_flow_skips_sampler_and_recording(
            self, tmp_path, monkeypatch):
        """REPRO_NO_OBS=1: the flow still succeeds and writes a (bare)
        manifest, but no spans are recorded and no timeseries exists."""
        monkeypatch.setenv("REPRO_NO_OBS", "1")
        flow = CondorFlow(tmp_path / "w")
        result = flow.run(FlowInputs(model=tc1_model()))
        assert result.steps  # step timing still works
        manifest = json.loads(
            (flow.workdir / MANIFEST_NAME).read_text())
        assert manifest["spans"] == []
        assert manifest["span_summaries"] == {}
        assert not (flow.workdir / "timeseries.jsonl").exists()


class TestMetricsCoverage:
    def test_flow_dse_sim_cloud_all_covered(self, tmp_path):
        """The acceptance list: flow steps, DSE points, sim cycles and
        cloud API calls all show up in the exposition after exercising
        each subsystem."""
        import numpy as np

        from repro.frontend.weights import WeightStore
        from repro.hw.accelerator import build_accelerator
        from repro.sim.dataflow import simulate_accelerator

        flow = CondorFlow(tmp_path / "w")
        result = flow.run(FlowInputs(model=tc1_model(), run_dse=True))
        weights = WeightStore.load(flow.workdir / "weights")
        images = np.zeros((1,) + result.model.network.input_shape()
                          .as_tuple(), dtype=np.float32)
        simulate_accelerator(build_accelerator(result.model), weights,
                             images)

        assert REGISTRY.get(
            "condor_flow_steps_started_total").total() >= 7
        assert REGISTRY.get(
            "condor_dse_points_evaluated_total").total() >= 1
        assert REGISTRY.get("condor_sim_cycles_total").total() > 0
        calls = REGISTRY.get("condor_cloud_api_calls_total")
        assert calls.value(verb="s3-put-object") >= 1
        assert calls.value(verb="create-fpga-image") >= 1

        text = REGISTRY.to_prometheus()
        for name in ("condor_flow_steps_started_total",
                     "condor_dse_points_evaluated_total",
                     "condor_sim_cycles_total",
                     "condor_cloud_api_calls_total"):
            assert name in text

    def test_plan_cache_counters_reach_manifest(self, tmp_path):
        """Running the planned engine bumps the plan-cache metrics and
        they flow into the ``telemetry.json`` metrics block (the
        manifest snapshots the whole registry)."""
        import numpy as np

        from repro.frontend.weights import WeightStore
        from repro.nn.engine import ReferenceEngine
        from repro.nn.plan import PlanCache
        from repro.obs.manifest import build_manifest
        from repro.obs.spans import SpanRecorder

        net = tc1_model().network
        engine = ReferenceEngine(net, WeightStore.initialize(net),
                                 plan_cache=PlanCache(), use_plans=True)
        image = np.zeros(net.input_shape().as_tuple(), dtype=np.float32)
        engine.forward(image)
        engine.forward(image)

        hits = REGISTRY.get("condor_plan_cache_hits_total")
        misses = REGISTRY.get("condor_plan_cache_misses_total")
        compiles = REGISTRY.get("condor_plan_compiles_total")
        assert hits.total() >= len(net.layers)
        assert misses.total() >= len(net.layers)
        assert compiles.total() >= len(net.layers)

        manifest = build_manifest(recorder=SpanRecorder(),
                                  workdir=tmp_path,
                                  run={"status": "succeeded"}, steps=[])
        metrics = manifest["metrics"]
        for name in ("condor_plan_cache_hits_total",
                     "condor_plan_cache_misses_total",
                     "condor_plan_compiles_total",
                     "condor_plan_cache_entries",
                     "condor_plan_compile_seconds"):
            assert name in metrics


class TestLedger:
    def test_disabled_by_default(self, run, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_LEDGER", raising=False)
        from repro.obs import append_ledger

        assert append_ledger({"run": {}}) is None

    def test_appends_one_line_per_run(self, tmp_path, monkeypatch):
        ledger = tmp_path / "runs.jsonl"
        monkeypatch.setenv("REPRO_BENCH_LEDGER", "1")
        monkeypatch.setenv("REPRO_BENCH_LEDGER_PATH", str(ledger))
        flow = CondorFlow(tmp_path / "w")
        flow.run(FlowInputs(model=tc1_model()))
        flow2 = CondorFlow(tmp_path / "w2")
        flow2.run(FlowInputs(model=tc1_model()))

        lines = [json.loads(l) for l in
                 ledger.read_text().strip().splitlines()]
        assert len(lines) == 2
        from repro.obs.manifest import MANIFEST_SCHEMA, git_sha

        import platform

        for line in lines:
            assert line["network"] == "tc1"
            assert line["status"] == "ok"
            assert line["seconds"] > 0
            assert line["span_count"] > 0
            assert line["gflops"] > 0
            # provenance satellite: every ledger line is attributable
            assert line["schema"] == MANIFEST_SCHEMA
            assert line["git_sha"] == git_sha()
            assert line["hostname"] == platform.node()


class TestOverhead:
    def test_telemetry_overhead_is_bounded(self, tmp_path):
        """Telemetry must not meaningfully slow the flow down.  The
        acceptance bound is <5% — asserted here very loosely (2x + 0.5s)
        to stay robust on noisy CI machines; the point is catching
        pathological regressions, not benchmarking."""
        model = tc1_model()

        def timed(telemetry, workdir):
            flow = CondorFlow(workdir, telemetry=telemetry)
            t0 = time.perf_counter()
            flow.run(FlowInputs(model=model))
            return time.perf_counter() - t0

        timed(True, tmp_path / "warmup")  # warm caches/imports
        off = timed(False, tmp_path / "off")
        on = timed(True, tmp_path / "on")
        assert on <= off * 2.0 + 0.5


def test_peak_rss_plausible():
    rss = peak_rss_bytes()
    if rss is not None:
        assert rss > 10 * 1024 * 1024  # a python process is >10 MB
