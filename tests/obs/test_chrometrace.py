"""Chrome trace-event export tests (flow spans and sim traces)."""

import json

from repro.obs import chrome_trace, recording, span, write_chrome_trace
from repro.sim.core import Delay, Get, Put, Simulator
from repro.sim.trace import Trace


def _recorded_spans():
    with recording() as rec:
        with span("flow.root"):
            with span("flow.child-1"):
                pass
            with span("flow.child-2"):
                pass
    return rec


def _two_pe_trace():
    """A two-PE pipeline: fast producer PE, slow consumer PE, so the
    inter-PE FIFO backs up and both block/unblock paths are exercised."""
    sim = Simulator()
    trace = Trace().attach(sim)
    ch_in = sim.channel("dm_to_pe1", capacity=2)
    ch_mid = sim.channel("pe1_to_pe2", capacity=2)
    ch_out = sim.channel("pe2_to_dm", capacity=2)

    def source(n=8):
        for i in range(n):
            yield Put(ch_in, i)

    def pe1(n=8):
        for _ in range(n):
            v = yield Get(ch_in)
            yield Delay(1)
            yield Put(ch_mid, v + 1)

    def pe2(n=8):
        for _ in range(n):
            v = yield Get(ch_mid)
            yield Delay(5)  # the bottleneck stage
            yield Put(ch_out, v * 2)

    def sink(n=8):
        for _ in range(n):
            yield Get(ch_out)

    sim.process("source", source())
    sim.process("pe1", pe1())
    sim.process("pe2", pe2())
    sim.process("sink", sink())
    sim.run()
    return sim, trace


class TestSpanExport:
    def test_valid_schema(self):
        rec = _recorded_spans()
        doc = json.loads(json.dumps(chrome_trace(recorder=rec)))
        events = doc["traceEvents"]
        assert events, "no events exported"
        for event in events:
            assert event["ph"] in ("X", "M")
            assert "pid" in event and "name" in event
            if event["ph"] == "X":
                assert event["dur"] >= 0
                assert event["ts"] >= 0

    def test_ts_monotonic(self):
        rec = _recorded_spans()
        doc = chrome_trace(recorder=rec)
        ts = [e["ts"] for e in doc["traceEvents"] if e["ph"] != "M"]
        assert ts == sorted(ts)

    def test_error_span_carries_error_arg(self):
        with recording() as rec:
            try:
                with span("flow.fails"):
                    raise RuntimeError("nope")
            except RuntimeError:
                pass
        doc = chrome_trace(recorder=rec)
        (event,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert event["args"]["status"] == "error"
        assert "RuntimeError" in event["args"]["error"]


class TestConcurrentSpans:
    """Satellite: spans closed by worker threads (trace context
    propagated via ``copy_context``) export to distinct tids — interval
    containment only means nesting *within* one track, so overlapping
    worker spans must never share the submitter's track."""

    def _concurrent_recorder(self, workers=3):
        import contextvars
        import threading

        barrier = threading.Barrier(workers)

        def work(idx):
            with span(f"flow.worker-{idx}"):
                barrier.wait(timeout=5)  # force wall-clock overlap

        with recording() as rec:
            with span("flow.submit"):
                # one context copy per thread — a Context object can
                # only be entered by one thread at a time
                threads = [
                    threading.Thread(
                        target=contextvars.copy_context().run,
                        args=(work, i), name=f"dse-worker-{i}")
                    for i in range(workers)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
        return rec

    def test_workers_get_distinct_tids(self):
        rec = self._concurrent_recorder()
        doc = chrome_trace(recorder=rec)
        x_events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in x_events}
        submit_tid = by_name["flow.submit"]["tid"]
        worker_tids = {e["tid"] for n, e in by_name.items()
                       if n.startswith("flow.worker-")}
        assert submit_tid == 0  # first-seen thread is the main track
        assert 0 not in worker_tids
        assert len(worker_tids) == 3  # one track per OS thread

    def test_worker_tracks_are_labelled(self):
        rec = self._concurrent_recorder()
        doc = chrome_trace(recorder=rec)
        labels = {e["args"]["name"]
                  for e in doc["traceEvents"]
                  if e["ph"] == "M" and e["name"] == "thread_name"}
        assert "flow spans" in labels
        assert {f"dse-worker-{i}" for i in range(3)} <= labels

    def test_parent_ids_cross_threads(self):
        rec = self._concurrent_recorder()
        submit = rec.find("flow.submit")[0]
        doc = chrome_trace(recorder=rec)
        workers = [e for e in doc["traceEvents"]
                   if e["ph"] == "X" and
                   e["name"].startswith("flow.worker-")]
        assert len(workers) == 3
        # the span args keep the true tree even though the events sit
        # on different tracks
        assert all(e["args"]["parent_id"] == submit.span_id
                   for e in workers)

    def test_export_is_valid_and_sorted(self):
        rec = self._concurrent_recorder()
        doc = json.loads(json.dumps(chrome_trace(recorder=rec)))
        ts = [e["ts"] for e in doc["traceEvents"] if e["ph"] != "M"]
        assert ts == sorted(ts)


class TestSimTraceExport:
    def test_round_trip_valid_json(self, tmp_path):
        _, trace = _two_pe_trace()
        path = trace.write_chrome_trace(tmp_path / "sim.json")
        doc = json.loads(path.read_text())
        assert "traceEvents" in doc
        assert doc["otherData"]["end_time_cycles"] == trace.end_time

    def test_ts_monotonic_and_complete_events(self):
        _, trace = _two_pe_trace()
        doc = trace.to_chrome_trace()
        timed = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        ts = [e["ts"] for e in timed]
        assert ts == sorted(ts)
        # every duration event is a complete X event with matched extent
        x_events = [e for e in timed if e["ph"] == "X"]
        assert x_events
        for event in x_events:
            assert event["dur"] >= 0
            assert event["ts"] + event["dur"] <= trace.end_time

    def test_stall_tracks_match_trace(self):
        _, trace = _two_pe_trace()
        doc = trace.to_chrome_trace()
        x_events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(x_events) == len(trace.stalls)
        total_export = sum(e["dur"] for e in x_events)
        total_trace = sum(s.cycles for s in trace.stalls)
        assert total_export == total_trace

    def test_fifo_counters_exported(self):
        _, trace = _two_pe_trace()
        doc = trace.to_chrome_trace()
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        names = {e["name"] for e in counters}
        assert "fifo pe1_to_pe2" in names
        samples = sum(len(v) for v in trace.occupancy.values())
        assert len(counters) == samples


class TestCombined:
    def test_flow_and_sim_in_one_file(self, tmp_path):
        rec = _recorded_spans()
        _, trace = _two_pe_trace()
        path = write_chrome_trace(tmp_path / "combined.json",
                                  recorder=rec, sim_trace=trace)
        doc = json.loads(path.read_text())
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert pids == {1, 2}
        ts = [e["ts"] for e in doc["traceEvents"] if e["ph"] != "M"]
        assert ts == sorted(ts)
