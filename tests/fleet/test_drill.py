"""Fleet drill tests: survival matrix expectations and determinism."""

import json
import re

import pytest

from repro.errors import FleetError
from repro.fleet import DRILL_KINDS, RECOVERABLE_KINDS, run_drill


@pytest.fixture(scope="module")
def report():
    return run_drill(seeds=(0,))


def cell_for(report, kind):
    (cell,) = [c for c in report["cells"] if c["kind"] == kind]
    return cell


class TestSurvivalMatrix:
    def test_matrix_shape(self, report):
        assert report["model"] == "tc1"
        assert report["kinds"] == list(DRILL_KINDS)
        assert report["cells_total"] == len(DRILL_KINDS)

    def test_every_recoverable_kind_survives(self, report):
        for kind in RECOVERABLE_KINDS:
            cell = cell_for(report, kind)
            assert cell["status"] == "ok", cell
            assert cell["bit_correct"] is True
            assert cell["workload_errors"] == 0
            assert cell["final_error"] is None
            assert cell["quarantined"] == []
            assert cell["as_expected"] is True

    def test_faults_actually_fired(self, report):
        for cell in report["cells"]:
            assert cell["injected_total"] >= 1, cell["kind"]
        bitflip = cell_for(report, "seu-bitflip")
        assert bitflip["injected_by_kind"] == {"seu-bitflip": 1}
        assert "scrub_catch" in bitflip["recovery_actions"]
        hang = cell_for(report, "kernel-hang")
        assert "watchdog_trip" in hang["recovery_actions"]
        crash = cell_for(report, "slot-crash")
        assert {"failover", "quarantine", "recovery", "reload"} <= \
            set(crash["recovery_actions"])

    def test_slow_device_is_absorbed(self, report):
        # sub-watchdog latency weather needs no recovery action at all
        cell = cell_for(report, "slow-device")
        assert cell["status"] == "ok"
        assert cell["recovery_actions"] == []

    def test_instance_loss_degrades_gracefully(self, report):
        cell = cell_for(report, "instance-loss")
        assert cell["status"] == "degraded"
        assert cell["as_expected"] is True
        assert cell["bit_correct"] is True  # sibling instance served it
        assert cell["workload_errors"] == 0
        assert cell["quarantined"] == ["i0.slot0", "i0.slot1"]
        assert cell["healthy_slots"] == 2

    def test_top_level_verdicts(self, report):
        assert report["survived_recoverable"] is True
        assert report["all_as_expected"] is True
        assert report["any_failed"] is False

    def test_breaker_snapshot_uses_fleet_labels(self, report):
        cell = cell_for(report, "slot-crash")
        assert set(cell["breakers"]) == {
            "fleet.i0.slot0", "fleet.i0.slot1",
            "fleet.i1.slot0", "fleet.i1.slot1"}

    def test_report_never_leaks_raw_instance_ids(self, report):
        # raw ids embed a process-wide launch counter; reports must use
        # fleet-ordinal labels so reruns are byte-identical
        dumped = json.dumps(report)
        assert not re.search(r"i-[0-9a-f]{17}", dumped)


class TestDeterminism:
    def test_same_seed_same_report(self):
        a = run_drill(seeds=(0,), kinds=("slot-crash",))
        b = run_drill(seeds=(0,), kinds=("slot-crash",))
        assert json.dumps(a, sort_keys=True) == \
            json.dumps(b, sort_keys=True)


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FleetError, match="unknown drill fault kind"):
            run_drill(kinds=("meteor-strike",))
