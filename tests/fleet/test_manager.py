"""FleetManager tests: health machine, watchdog, scrub, failover."""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.cloud.f1 import F1Instance
from repro.errors import FleetError
from repro.fleet import FleetConfig, FleetManager, SlotState
from repro.fleet.drill import build_drill_image
from repro.frontend.condor_format import model_from_json
from repro.frontend.weights import WeightStore
from repro.resilience.boundary import (
    breaker_states,
    inject_faults,
    reset_breakers,
)
from repro.resilience.breaker import HALF_OPEN, OPEN
from repro.resilience.clock import VirtualClock
from repro.resilience.faults import (
    DEVICE_PATTERN,
    FaultKind,
    FaultPlan,
    FaultSpec,
)
from repro.toolchain.xclbin import read_xclbin


@pytest.fixture(scope="module")
def image():
    return build_drill_image()  # (service, agfi_id, xclbin_bytes)


@pytest.fixture(scope="module")
def weights(image):
    _, _, xclbin_bytes = image
    net = model_from_json(read_xclbin(xclbin_bytes).network_json).network
    return WeightStore.initialize(net, seed=0)


@pytest.fixture(autouse=True)
def fresh_realm():
    reset_breakers()
    yield
    reset_breakers()


def make_fleet(image, weights, *, clock, count=1, config=None):
    service, agfi_id, _ = image
    instances = [F1Instance("f1.4xlarge", service) for _ in range(count)]
    return FleetManager(instances, agfi_id, weights,
                        config=config, clock=clock)


def batch_for(fleet, rng, n=2):
    shape = (n,) + fleet.net.input_shape().as_tuple()
    return rng.standard_normal(shape).astype(np.float32)


def golden_for(fleet, images):
    return fleet.golden.forward_batch(images) \
        .reshape(images.shape[0], -1)


class TestHealthyFleet:
    def test_bit_correct_and_round_robin(self, image, weights):
        fleet = make_fleet(image, weights, clock=VirtualClock())
        rng = np.random.default_rng(1)
        for _ in range(4):
            images = batch_for(fleet, rng)
            outputs = fleet.run(images)
            assert np.array_equal(outputs, golden_for(fleet, images))
        # round-robin spread the four submissions over both slots
        assert [s.submissions for s in fleet.slots] == [2, 2]
        assert fleet.health() == {"i0.slot0": SlotState.OK,
                                  "i0.slot1": SlotState.OK}
        stats = fleet.stats()
        assert stats["actions"] == {"submission": 4}
        assert stats["healthy_slots"] == 2
        assert stats["quarantined"] == []

    def test_slot_breakers_live_in_the_realm(self, image, weights):
        make_fleet(image, weights, clock=VirtualClock())
        states = breaker_states()
        assert "fleet.i0.slot0" in states
        assert "fleet.i0.slot1" in states
        assert states["fleet.i0.slot0"]["state"] == "closed"

    def test_batch_over_capacity_rejected(self, image, weights):
        config = FleetConfig(capacity=2)
        fleet = make_fleet(image, weights, clock=VirtualClock(),
                           config=config)
        rng = np.random.default_rng(2)
        with pytest.raises(FleetError, match="capacity"):
            fleet.run(batch_for(fleet, rng, n=3))

    def test_empty_fleet_rejected(self, image, weights):
        _, agfi_id, _ = image
        with pytest.raises(FleetError, match="at least one instance"):
            FleetManager([], agfi_id, weights)


class TestFaultHandling:
    def test_watchdog_trips_hang_and_fails_over(self, image, weights):
        clock = VirtualClock()
        plan = FaultPlan([FaultSpec(DEVICE_PATTERN,
                                    FaultKind.KERNEL_HANG,
                                    delay_s=600.0)], seed=3)
        rng = np.random.default_rng(3)
        with inject_faults(plan):
            fleet = make_fleet(image, weights, clock=clock)
            images = batch_for(fleet, rng)
            outputs = fleet.run(images)
            stats = fleet.stats()
        assert np.array_equal(outputs, golden_for(fleet, images))
        assert plan.total_injected == 1
        assert stats["actions"]["watchdog_trip"] == 1
        assert stats["actions"]["failover"] == 1
        assert clock.now >= 600.0  # the hang burned virtual time

    def test_scrub_catches_silent_bitflip(self, image, weights):
        clock = VirtualClock()
        config = FleetConfig(scrub_every=1, capacity=4)
        plan = FaultPlan([FaultSpec(DEVICE_PATTERN, FaultKind.BITFLIP)],
                         seed=4)
        rng = np.random.default_rng(4)
        with inject_faults(plan):
            fleet = make_fleet(image, weights, clock=clock,
                               config=config)
            images = batch_for(fleet, rng)
            outputs = fleet.run(images)
            stats = fleet.stats()
        # the corruption was silent; scrubbing caught it, repaired the
        # slot, and the retried submission is still bit-correct
        assert np.array_equal(outputs, golden_for(fleet, images))
        assert plan.total_injected == 1
        assert stats["actions"]["scrub_catch"] >= 1
        assert stats["actions"]["reload"] >= 1
        assert stats["actions"]["failover"] >= 1

    def test_crash_quarantine_then_recovery(self, image, weights):
        clock = VirtualClock()
        config = FleetConfig(scrub_every=0, failure_threshold=1,
                             recovery_s=100.0)
        plan = FaultPlan([FaultSpec(DEVICE_PATTERN,
                                    FaultKind.SLOT_CRASH)], seed=5)
        rng = np.random.default_rng(5)
        with inject_faults(plan):
            fleet = make_fleet(image, weights, clock=clock,
                               config=config)
            images = batch_for(fleet, rng)
            outputs = fleet.run(images)
            assert np.array_equal(outputs, golden_for(fleet, images))
            assert fleet.health()["i0.slot0"] is SlotState.QUARANTINED
            assert fleet.healthy_slot_count() == 1

            clock.sleep(config.recovery_s + 1)
            images = batch_for(fleet, rng)
            outputs = fleet.run(images)
            assert np.array_equal(outputs, golden_for(fleet, images))
            stats = fleet.stats()
        assert fleet.health() == {"i0.slot0": SlotState.OK,
                                  "i0.slot1": SlotState.OK}
        assert stats["actions"]["quarantine"] == 1
        assert stats["actions"]["recovery"] == 1
        assert stats["actions"]["reload"] >= 1
        assert stats["quarantined"] == []
        assert stats["slots"]["i0.slot0"]["reloads"] >= 1

    def test_total_loss_degrades_to_fleet_error(self, image, weights):
        clock = VirtualClock()
        config = FleetConfig(failure_threshold=1, max_attempts=4)
        plan = FaultPlan([FaultSpec(DEVICE_PATTERN,
                                    FaultKind.PERMANENT)], seed=6)
        rng = np.random.default_rng(6)
        with inject_faults(plan):
            fleet = make_fleet(image, weights, clock=clock,
                               config=config)
            images = batch_for(fleet, rng)
            with pytest.raises(FleetError, match="healthy slot"):
                fleet.run(images)
            assert fleet.healthy_slot_count() == 0
            assert sorted(fleet.stats()["quarantined"]) == \
                ["i0.slot0", "i0.slot1"]


class TestHealthStateMachine:
    def test_ok_suspect_quarantined_halfopen(self, image, weights):
        clock = VirtualClock()
        config = FleetConfig(failure_threshold=2, recovery_s=50.0)
        fleet = make_fleet(image, weights, clock=clock, config=config)
        managed = fleet.slots[0]
        assert managed.health is SlotState.OK
        managed.breaker.record_failure()
        assert managed.health is SlotState.SUSPECT
        managed.breaker.record_failure()
        assert managed.breaker.state == OPEN
        assert managed.health is SlotState.QUARANTINED
        clock.sleep(51.0)
        assert managed.breaker.state == HALF_OPEN
        assert managed.health is SlotState.SUSPECT  # probing
        managed.breaker.allow()
        managed.breaker.record_success()
        assert managed.health is SlotState.OK


class TestConcurrency:
    def test_parallel_submissions_stay_bit_correct(self, image, weights):
        fleet = make_fleet(image, weights, clock=VirtualClock())
        rng = np.random.default_rng(7)
        batches = [batch_for(fleet, rng) for _ in range(8)]
        with ThreadPoolExecutor(max_workers=2) as pool:
            outputs = list(pool.map(fleet.run, batches))
        for images, out in zip(batches, outputs):
            assert np.array_equal(out, golden_for(fleet, images))
        assert sum(s.submissions for s in fleet.slots) == 8
        assert fleet.stats()["actions"] == {"submission": 8}
