"""Concurrent-submitter hardening for the fleet (seeded stress).

Many threads hammer ``FleetManager.submit(wait=True)`` on a small
fleet: every submission must complete bit-correct, every counter must
balance, and no slot may leak its ``busy`` token.  The whole suite is
CI-gated under ``REPRO_TSAN=1``, where the root conftest fails any test
that produces runtime sanitizer findings — so a double acquire, a lock
inversion or an unguarded-state race in the acquire/release path is a
test failure here, not a latent production bug.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.errors import FleetError
from repro.fleet import FleetConfig, FleetManager
from repro.fleet.drill import build_drill_image
from repro.cloud.f1 import F1Instance
from repro.frontend.condor_format import model_from_json
from repro.frontend.weights import WeightStore
from repro.resilience.boundary import reset_breakers
from repro.resilience.clock import VirtualClock
from repro.toolchain.xclbin import read_xclbin

THREADS = 12
PER_THREAD = 8


@pytest.fixture(scope="module")
def image():
    return build_drill_image()


@pytest.fixture(scope="module")
def weights(image):
    _, _, xclbin_bytes = image
    net = model_from_json(read_xclbin(xclbin_bytes).network_json).network
    return WeightStore.initialize(net, seed=0)


@pytest.fixture(autouse=True)
def fresh_realm():
    reset_breakers()
    yield
    reset_breakers()


def make_fleet(image, weights, *, count=1, config=None):
    service, agfi_id, _ = image
    instances = [F1Instance("f1.4xlarge", service)
                 for _ in range(count)]
    fleet_config = config if config is not None \
        else FleetConfig(scrub_every=0)
    return FleetManager(instances, agfi_id, weights,
                        config=fleet_config, clock=VirtualClock())


class TestConcurrentSubmitters:
    def test_stress_bit_correct_and_balanced(self, image, weights):
        fleet = make_fleet(image, weights, count=1)  # 2 slots only
        shape = fleet.net.input_shape().as_tuple()
        rng = np.random.default_rng(42)
        batches = [
            [rng.standard_normal((2,) + shape).astype(np.float32)
             for _ in range(PER_THREAD)]
            for _ in range(THREADS)]
        goldens = [[fleet.golden.forward_batch(b).reshape(2, -1)
                    for b in thread_batches]
                   for thread_batches in batches]

        def worker(thread_batches):
            return [fleet.submit(b, wait=True)
                    for b in thread_batches]

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            receipts = list(pool.map(worker, batches))

        for thread_receipts, thread_goldens in zip(receipts, goldens):
            for receipt, golden in zip(thread_receipts, thread_goldens):
                assert np.array_equal(receipt.outputs, golden)
                assert receipt.attempts == 1
        total = THREADS * PER_THREAD
        assert sum(s.submissions for s in fleet.slots) == total
        assert fleet.stats()["actions"] == {"submission": total}
        assert not any(s.busy for s in fleet.slots)

    def test_all_busy_without_wait_fails_fast(self, image, weights):
        fleet = make_fleet(image, weights, count=1)
        rng = np.random.default_rng(43)
        images = rng.standard_normal(
            (1,) + fleet.net.input_shape().as_tuple()) \
            .astype(np.float32)
        for slot in fleet.slots:
            slot.busy = True  # every slot claimed by someone else
        with pytest.raises(FleetError, match="healthy slot"):
            fleet.submit(images, wait=False)
        for slot in fleet.slots:
            slot.busy = False
        assert fleet.submit(images, wait=False).attempts == 1

    def test_waiters_survive_elastic_resizing(self, image, weights):
        """submit(wait=True) racing add_instance/drain_instance."""
        fleet = make_fleet(image, weights, count=2)
        service, _, _ = image
        shape = fleet.net.input_shape().as_tuple()
        rng = np.random.default_rng(44)
        batches = [
            [rng.standard_normal((2,) + shape).astype(np.float32)
             for _ in range(PER_THREAD)]
            for _ in range(THREADS)]
        goldens = [[fleet.golden.forward_batch(b).reshape(2, -1)
                    for b in thread_batches]
                   for thread_batches in batches]
        stop = threading.Event()

        def resizer():
            while not stop.is_set():
                labels = fleet.add_instance(
                    F1Instance("f1.4xlarge", service))
                assert labels
                fleet.drain_instance()

        def worker(thread_batches):
            return [fleet.submit(b, wait=True)
                    for b in thread_batches]

        resize_thread = threading.Thread(target=resizer)
        resize_thread.start()
        try:
            with ThreadPoolExecutor(max_workers=THREADS) as pool:
                receipts = list(pool.map(worker, batches))
        finally:
            stop.set()
            resize_thread.join()

        for thread_receipts, thread_goldens in zip(receipts, goldens):
            for receipt, golden in zip(thread_receipts, thread_goldens):
                assert np.array_equal(receipt.outputs, golden)
        total = THREADS * PER_THREAD
        assert fleet.stats()["actions"]["submission"] == total
        assert not any(s.busy for s in fleet.slots)
        # drained slots all reaped once their submissions released
        assert len(fleet.slots) == 2 * len(fleet.instances)
