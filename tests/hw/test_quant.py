"""Quantization tests: scheme math, engine accuracy, resource scaling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CondorError, ValidationError
from repro.frontend.condor_format import CondorModel, model_from_json, model_to_json
from repro.frontend.weights import WeightStore
from repro.frontend.zoo import synthetic_digits, tc1_model, tc1_network
from repro.hw.accelerator import build_accelerator
from repro.hw.estimate import estimate_accelerator
from repro.nn.engine import ReferenceEngine
from repro.quant import (
    QuantScheme,
    QuantizedEngine,
    dequantize,
    quantize,
    quantize_store,
)
from repro.quant.apply import top1_agreement
from repro.quant.scheme import PRECISIONS, fake_quantize


class TestScheme:
    def test_ranges(self):
        scheme = QuantScheme(8)
        assert scheme.qmax == 127
        assert scheme.qmin == -127

    def test_invalid_bits(self):
        with pytest.raises(CondorError):
            QuantScheme(1)
        with pytest.raises(CondorError):
            QuantScheme(64)

    def test_for_precision(self):
        assert QuantScheme.for_precision("int8").bits == 8
        assert QuantScheme.for_precision("int16").bits == 16
        with pytest.raises(CondorError):
            QuantScheme.for_precision("fp8")

    def test_zero_is_exact(self):
        scheme = QuantScheme(8)
        q, scale = quantize(np.array([0.0, 1.0, -1.0]), scheme)
        assert q[0] == 0
        assert dequantize(q, scale)[0] == 0.0

    def test_peak_maps_to_qmax(self):
        scheme = QuantScheme(8)
        q, _ = quantize(np.array([-2.0, 0.5, 2.0]), scheme)
        assert q.max() == 127
        assert q.min() == -127

    def test_all_zero_tensor(self):
        scheme = QuantScheme(8)
        q, scale = quantize(np.zeros(4), scheme)
        assert scale == 1.0
        assert (q == 0).all()

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=64),
           st.sampled_from([4, 8, 16]))
    def test_error_bounded_by_half_step(self, values, bits):
        scheme = QuantScheme(bits)
        array = np.array(values)
        q, scale = quantize(array, scheme)
        error = np.abs(dequantize(q, scale) - array)
        # dequantize returns float32, so allow one float32 ulp of the
        # largest magnitude on top of the half-step rounding bound
        fp32_ulp = np.abs(array).max() * np.finfo(np.float32).eps
        assert error.max() <= scale / 2 + fp32_ulp + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**31))
    def test_more_bits_never_worse(self, seed):
        array = np.random.default_rng(seed).normal(size=32)
        errors = []
        for bits in (4, 8, 16):
            out = fake_quantize(array, QuantScheme(bits))
            errors.append(float(np.abs(out - array).max()))
        assert errors[0] >= errors[1] >= errors[2]


class TestStoreQuantization:
    def test_report_stats(self):
        net = tc1_network()
        store = WeightStore.initialize(net, 0)
        quantized, report = quantize_store(store, QuantScheme(8))
        assert quantized.total_parameters() == store.total_parameters()
        assert report.worst_snr_db() > 20.0      # int8 keeps ~30+ dB
        assert "conv1" in report.summary()

    def test_int16_snr_much_better(self):
        net = tc1_network()
        store = WeightStore.initialize(net, 0)
        _, report8 = quantize_store(store, QuantScheme(8))
        _, report16 = quantize_store(store, QuantScheme(16))
        assert report16.worst_snr_db() > report8.worst_snr_db() + 30


class TestQuantizedEngine:
    def test_outputs_close_to_fp32(self):
        net = tc1_network()
        store = WeightStore.initialize(net, 1)
        fp32 = ReferenceEngine(net, store)
        fixed = QuantizedEngine(net, store, QuantScheme(16))
        x = np.random.default_rng(0).normal(size=(1, 16, 16)) \
            .astype(np.float32)
        np.testing.assert_allclose(fixed.forward(x), fp32.forward(x),
                                   atol=0.02)

    def test_top1_agreement_high_for_int16(self):
        net = tc1_network()
        store = WeightStore.initialize(net, 2)
        images, _ = synthetic_digits(20, size=16, seed=0)
        agreement = top1_agreement(net, store, QuantScheme(16), images)
        assert agreement >= 0.95

    def test_int4_visibly_degrades(self):
        net = tc1_network()
        store = WeightStore.initialize(net, 2)
        x = np.random.default_rng(1).normal(size=(1, 16, 16))
        fp32 = ReferenceEngine(net, store).forward(x)
        crushed = QuantizedEngine(net, store, QuantScheme(4)).forward(x)
        assert float(np.abs(crushed - fp32).max()) > 1e-3


class TestHardwareScaling:
    @pytest.fixture(scope="class")
    def utils(self):
        from repro.hw.resources import device_for_board

        cap = device_for_board("aws-f1-xcvu9p").capacity
        out = {}
        for precision in PRECISIONS:
            model = tc1_model()
            model.precision = precision
            acc = build_accelerator(model)
            out[precision] = estimate_accelerator(acc).total
        return out

    def test_dsp_shrinks_with_precision(self, utils):
        assert utils["int16"].dsp < 0.35 * utils["fp32"].dsp
        assert utils["int8"].dsp < utils["int16"].dsp

    def test_bram_shrinks_with_precision(self, utils):
        assert utils["int8"].bram_18k <= utils["int16"].bram_18k <= \
            utils["fp32"].bram_18k

    def test_precision_in_condor_json(self):
        model = tc1_model()
        model.precision = "int8"
        back = model_from_json(model_to_json(model))
        assert back.precision == "int8"

    def test_unknown_precision_rejected(self):
        with pytest.raises(ValidationError, match="precision"):
            CondorModel(network=tc1_network(), precision="fp8")
