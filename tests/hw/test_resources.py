"""Resource vector / device catalog tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ResourceError
from repro.hw.resources import (
    BOARDS,
    DEVICES,
    Device,
    ResourceVector,
    device_for_board,
)

vec = st.builds(ResourceVector,
                lut=st.floats(0, 1e6), ff=st.floats(0, 1e6),
                dsp=st.floats(0, 1e4), bram_18k=st.floats(0, 1e4))


class TestResourceVector:
    def test_arithmetic(self):
        a = ResourceVector(lut=10, ff=20, dsp=3, bram_18k=4)
        b = ResourceVector(lut=1, ff=2, dsp=3, bram_18k=4)
        assert a + b == ResourceVector(11, 22, 6, 8)
        assert a - b == ResourceVector(9, 18, 0, 0)
        assert a * 2 == ResourceVector(20, 40, 6, 8)
        assert 2 * a == a * 2

    def test_ceil(self):
        v = ResourceVector(lut=10.2, ff=0.0, dsp=2.999999999, bram_18k=1.5)
        c = v.ceil()
        assert c == ResourceVector(11, 0, 3, 2)

    def test_fits_in(self):
        small = ResourceVector(10, 10, 1, 1)
        big = ResourceVector(100, 100, 10, 10)
        assert small.fits_in(big)
        assert not big.fits_in(small)
        assert small.fits_in(small)

    def test_check_fits_names_resource(self):
        need = ResourceVector(dsp=500)
        cap = ResourceVector(lut=1e6, ff=1e6, dsp=100, bram_18k=100)
        with pytest.raises(ResourceError) as exc:
            need.check_fits(cap, context="kernel")
        assert exc.value.resource == "dsp"
        assert exc.value.required == 500
        assert exc.value.available == 100

    def test_utilization(self):
        used = ResourceVector(lut=50, ff=0, dsp=10, bram_18k=25)
        cap = ResourceVector(lut=100, ff=200, dsp=100, bram_18k=100)
        util = used.utilization(cap)
        assert util == {"lut": 50.0, "ff": 0.0, "dsp": 10.0,
                        "bram_18k": 25.0}

    def test_utilization_zero_capacity(self):
        assert ResourceVector(lut=5).utilization(ResourceVector())["lut"] \
            == 0.0

    @given(vec, vec)
    def test_add_then_subtract_roundtrip(self, a, b):
        back = (a + b) - b
        for f in ("lut", "ff", "dsp", "bram_18k"):
            assert getattr(back, f) == pytest.approx(getattr(a, f), abs=1e-6)

    @given(vec, vec)
    def test_sum_fits_iff_parts_fit(self, a, b):
        if (a + b).fits_in(a + b):
            assert a.fits_in(a + b)
            assert b.fits_in(a + b)


class TestDeviceCatalog:
    def test_f1_device_is_vu9p(self):
        device = device_for_board("aws-f1-xcvu9p")
        assert device.part.startswith("xcvu9p")
        assert device.capacity.dsp == 6840
        assert device.capacity.bram_18k == 4320
        assert device.ddr_channels == 4

    def test_all_boards_resolve(self):
        for board in BOARDS:
            assert isinstance(device_for_board(board), Device)

    def test_bare_part_name_resolves(self):
        assert device_for_board("xc7z020").part.startswith("xc7z020")

    def test_unknown_board(self):
        with pytest.raises(ResourceError, match="unknown board"):
            device_for_board("de10-nano")

    def test_devices_have_positive_capacity(self):
        for device in DEVICES.values():
            cap = device.capacity
            assert cap.lut > 0 and cap.ff > 0 and cap.dsp > 0
            assert cap.bram_18k > 0
            assert device.fmax_hz > 0 and device.static_power_w > 0
