"""Non-uniform memory partitioning tests (Cong DAC'14 structure)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import HardwareError
from repro.hw.partitioning import (
    partition_window_accesses,
    window_accesses_inverse_lex,
)


class TestAccessOrdering:
    def test_3x3_inverse_lex(self):
        accesses = window_accesses_inverse_lex((3, 3))
        assert accesses[0] == (2, 2)
        assert accesses[-1] == (0, 0)
        assert accesses == sorted(accesses, reverse=True)

    def test_1x1_single_access(self):
        assert window_accesses_inverse_lex((1, 1)) == [(0, 0)]

    def test_rectangular(self):
        accesses = window_accesses_inverse_lex((2, 3))
        assert len(accesses) == 6
        assert accesses[0] == (1, 2) and accesses[-1] == (0, 0)


class TestFifoDepths:
    def test_3x3_on_width_8(self):
        spec = partition_window_accesses((3, 3), 8)
        assert spec.num_filters == 9
        assert len(spec.fifo_depths) == 8
        # within a row the distance is 1, across rows it is W - K + 1
        assert spec.fifo_depths == (1, 1, 6, 1, 1, 6, 1, 1)

    def test_total_buffer_is_reuse_distance(self):
        # total = (Kh-1)*W + (Kw-1)
        spec = partition_window_accesses((5, 5), 28)
        assert spec.buffered_words == 4 * 28 + 4

    def test_saves_over_full_linebuffer(self):
        spec = partition_window_accesses((5, 5), 28)
        assert spec.buffered_words < spec.full_linebuffer_words
        assert spec.full_linebuffer_words == 5 * 28

    def test_1x1_has_no_fifos(self):
        spec = partition_window_accesses((1, 1), 10)
        assert spec.num_filters == 1
        assert spec.fifo_depths == ()
        assert spec.buffered_words == 0

    def test_1xk_row_window(self):
        spec = partition_window_accesses((1, 4), 16)
        assert spec.fifo_depths == (1, 1, 1)

    def test_kx1_column_window(self):
        spec = partition_window_accesses((4, 1), 16)
        assert spec.fifo_depths == (16, 16, 16)

    def test_window_wider_than_row_rejected(self):
        with pytest.raises(HardwareError):
            partition_window_accesses((3, 9), 8)

    def test_invalid_window_rejected(self):
        with pytest.raises(HardwareError):
            partition_window_accesses((0, 3), 8)

    @given(kh=st.integers(1, 6), kw=st.integers(1, 6),
           width=st.integers(6, 64))
    def test_invariants(self, kh, kw, width):
        if kw > width:
            return
        spec = partition_window_accesses((kh, kw), width)
        # one filter per window access
        assert spec.num_filters == kh * kw
        # depths positive, total = span between first and last access
        assert all(d >= 1 for d in spec.fifo_depths)
        assert spec.buffered_words == (kh - 1) * width + (kw - 1)
        # on-chip storage never exceeds the full line buffer
        assert spec.buffered_words <= spec.full_linebuffer_words
