"""Property-based invariants over randomly generated networks.

Any valid chain network must survive the whole core pipeline — build,
estimate, perf — with structurally consistent results.  These are the
invariants a user hits when bringing their own model.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.frontend.condor_format import CondorModel
from repro.hw.accelerator import build_accelerator
from repro.hw.estimate import estimate_accelerator, estimate_pe
from repro.hw.perf import estimate_performance
from repro.ir.flops import network_flops
from repro.ir.layers import (
    Activation,
    ConvLayer,
    FullyConnectedLayer,
    PoolLayer,
    PoolOp,
    SoftmaxLayer,
)
from repro.ir.network import chain

_SETTINGS = settings(max_examples=30, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


@st.composite
def networks(draw):
    """Random valid chain CNNs (small enough to stay fast)."""
    channels = draw(st.sampled_from([1, 2, 3]))
    size = draw(st.sampled_from([8, 12, 16, 20]))
    layers = []
    current = size
    n_feature_blocks = draw(st.integers(1, 2))
    for i in range(n_feature_blocks):
        kernel = draw(st.sampled_from([1, 3, 5]))
        if kernel > current:
            kernel = 1
        pad = draw(st.sampled_from([0, 1]))
        activation = draw(st.sampled_from(list(Activation)))
        layers.append(ConvLayer(
            f"conv{i}", num_output=draw(st.integers(1, 8)),
            kernel=kernel, pad=pad, activation=activation))
        current = current + 2 * pad - kernel + 1
        if current >= 2 and draw(st.booleans()):
            op = draw(st.sampled_from([PoolOp.MAX, PoolOp.AVG]))
            layers.append(PoolLayer(f"pool{i}", op=op, kernel=2))
            current = -(-(current - 2) // 2) + 1
    if draw(st.booleans()):
        layers.append(FullyConnectedLayer(
            "fc", num_output=draw(st.integers(1, 16))))
        if draw(st.booleans()):
            layers.append(SoftmaxLayer("sm", log=draw(st.booleans())))
    return chain("prop", (channels, size, size), layers)


class TestPipelineInvariants:
    @_SETTINGS
    @given(networks())
    def test_build_estimate_perf_consistent(self, net):
        model = CondorModel(network=net)
        acc = build_accelerator(model)

        # structural invariants
        assert len(acc.pes) == len(net.compute_layers())
        assert all(f.depth >= 1 for f in acc.all_fifos())
        dm = acc.datamover.name
        assert acc.edges[0].source == dm
        assert any(e.dest == dm for e in acc.edges)

        # resource invariants
        estimate = estimate_accelerator(acc)
        total = estimate.total
        for f in ("lut", "ff", "dsp", "bram_18k"):
            assert getattr(total, f) >= 0
            assert getattr(total, f) == int(getattr(total, f))
        for pe in acc.pes:
            vec = estimate_pe(pe)
            assert vec.lut > 0 and vec.ff > 0

        # performance invariants
        perf = estimate_performance(acc)
        assert perf.ii_cycles >= 1
        assert perf.pipeline_latency_cycles >= perf.ii_cycles
        assert perf.flops_per_image == network_flops(net)
        assert perf.mean_time_per_image(1) >= \
            perf.mean_time_per_image(64) > 0
        assert perf.gflops() > 0

    @_SETTINGS
    @given(networks(), st.integers(0, 2**31))
    def test_sim_functional_on_random_nets(self, net, seed):
        """Any random valid network must simulate to the reference
        values (degree-1 configs)."""
        from repro.frontend.weights import WeightStore
        from repro.nn.engine import ReferenceEngine
        from repro.sim.dataflow import simulate_accelerator

        model = CondorModel(network=net)
        acc = build_accelerator(model)
        weights = WeightStore.initialize(net, seed % 1000)
        image = np.random.default_rng(seed).normal(
            size=net.input_shape().as_tuple()).astype(np.float32)
        result = simulate_accelerator(acc, weights, [image])
        expected = ReferenceEngine(net, weights).forward(image)
        np.testing.assert_allclose(result.outputs[0], expected,
                                   rtol=1e-3, atol=1e-4)
