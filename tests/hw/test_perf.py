"""Performance / power model tests, including the Figure 5 properties."""

import pytest
from hypothesis import given, strategies as st

from repro.frontend.condor_format import CondorModel, LayerHints
from repro.frontend.zoo import lenet_model, tc1_model
from repro.hw.accelerator import build_accelerator
from repro.hw.perf import (
    estimate_performance,
    estimate_power_watts,
    layer_cycles,
    pe_cycles,
)
from repro.ir.flops import network_flops


#: Shared instance for the hypothesis property (fixtures cannot feed
#: @given-decorated tests).
_TC1_PERF_CACHE = [estimate_performance(build_accelerator(tc1_model()))]


@pytest.fixture(scope="module")
def tc1_perf():
    return _TC1_PERF_CACHE[0]


@pytest.fixture(scope="module")
def lenet_perf():
    return estimate_performance(build_accelerator(lenet_model()))


class TestLayerCycles:
    def test_conv_sequential_maps(self, tc1_perf):
        net = tc1_perf.accelerator.network
        # conv1: 12 output maps x 1 input map x 12x12 outputs
        assert layer_cycles(net, net["conv1"], 1, 1) == 12 * 144

    def test_conv_parallelism_divides(self, tc1_perf):
        net = tc1_perf.accelerator.network
        # compute shrinks 144x (12*12) but the PE still has to ingest its
        # 36-element input maps, so it bottoms out ingest-bound
        assert layer_cycles(net, net["conv2"], 1, 1) == 576
        assert layer_cycles(net, net["conv2"], 12, 12) == 36
        assert layer_cycles(net, net["conv2"], 1, 12) == \
            12 * 36  # in-groups still sequential

    def test_conv_ingest_bound(self):
        """A conv that computes less than it ingests is stream-bound."""
        from repro.ir.layers import ConvLayer
        from repro.ir.network import chain
        net = chain("n", (4, 16, 16), [
            ConvLayer("c", num_output=4, kernel=5, stride=4),
        ])
        # compute: 4*4 * 3x3 = 144 < ingest 4*256
        assert layer_cycles(net, net["c"], 1, 4) == 4 * 256

    def test_pool_is_ingest_bound(self, tc1_perf):
        net = tc1_perf.accelerator.network
        assert layer_cycles(net, net["pool1"], 1, 1) == 12 * 144

    def test_fc_one_mac_per_cycle(self, lenet_perf):
        net = lenet_perf.accelerator.network
        assert layer_cycles(net, net["ip1"], 1, 1) == 500 * 800

    def test_fused_layers_add(self, tc1_perf):
        model = tc1_model()
        model.hints = {"conv1": LayerHints(cluster="f"),
                       "pool1": LayerHints(cluster="f")}
        acc = build_accelerator(model)
        net = acc.network
        fused = acc.pe_for_layer("conv1")
        assert pe_cycles(net, fused) == \
            layer_cycles(net, net["conv1"], 1, 1) + \
            layer_cycles(net, net["pool1"], 1, 1)


class TestPipelineModel:
    def test_bottleneck_is_ii(self, lenet_perf):
        assert lenet_perf.ii_cycles == max(lenet_perf.stage_cycles)
        # LeNet's bottleneck is ip1 (400k MACs)
        assert lenet_perf.ii_cycles == 400_000

    def test_latency_exceeds_ii(self, tc1_perf):
        assert tc1_perf.pipeline_latency_cycles > tc1_perf.ii_cycles

    def test_flops_match_network(self, tc1_perf):
        assert tc1_perf.flops_per_image == \
            network_flops(tc1_perf.accelerator.network)

    def test_config_cycles_cover_weights(self, tc1_perf):
        total_weights = sum(pe.weight_words
                            for pe in tc1_perf.accelerator.pes)
        assert tc1_perf.config_cycles >= total_weights


class TestFigure5Properties:
    def test_mean_time_decreases_with_batch(self, tc1_perf):
        times = [tc1_perf.mean_time_per_image(b) for b in range(1, 65)]
        assert all(t1 >= t2 for t1, t2 in zip(times, times[1:]))

    def test_converges_to_ii(self, tc1_perf):
        asymptote = tc1_perf.ii_cycles / tc1_perf.frequency_hz
        assert tc1_perf.mean_time_per_image(4096) == \
            pytest.approx(asymptote, rel=0.01)

    def test_convergence_at_layer_count(self, tc1_perf, lenet_perf):
        """The paper: convergence is reached approximately when the batch
        exceeds the number of layers."""
        for perf in (tc1_perf, lenet_perf):
            n_layers = len(perf.accelerator.pes)
            at_layers = perf.mean_time_per_image(4 * n_layers)
            asymptote = perf.ii_cycles / perf.frequency_hz
            assert at_layers < 1.35 * asymptote

    def test_batch_one_is_full_latency(self, tc1_perf):
        assert tc1_perf.batch_cycles(1) == tc1_perf.pipeline_latency_cycles

    def test_invalid_batch(self, tc1_perf):
        with pytest.raises(ValueError):
            tc1_perf.mean_time_per_image(0)

    @given(st.integers(1, 500), st.integers(1, 500))
    def test_monotone_property(self, b1, b2):
        perf = _TC1_PERF_CACHE[0]
        t1 = perf.mean_time_per_image(min(b1, b2))
        t2 = perf.mean_time_per_image(max(b1, b2))
        assert t2 <= t1 + 1e-12


class TestTable1Shape:
    def test_tc1_beats_lenet_gflops(self, tc1_perf, lenet_perf):
        """Table 1: TC1 8.36 vs LeNet 3.35 GFLOPS — TC1 wins by ~2.5x
        despite running at a lower clock, because LeNet's ip1 is a serial
        bottleneck."""
        assert tc1_perf.gflops() > 2 * lenet_perf.gflops()

    def test_gflops_magnitudes(self, tc1_perf, lenet_perf):
        assert 3.0 < tc1_perf.gflops() < 15.0      # paper: 8.36
        assert 1.0 < lenet_perf.gflops() < 6.0     # paper: 3.35

    def test_gflops_per_watt_ordering(self, tc1_perf, lenet_perf):
        p_tc1 = estimate_power_watts(tc1_perf.accelerator)
        p_lenet = estimate_power_watts(lenet_perf.accelerator)
        assert tc1_perf.gflops() / p_tc1 > lenet_perf.gflops() / p_lenet

    def test_power_magnitude(self, tc1_perf, lenet_perf):
        for perf in (tc1_perf, lenet_perf):
            p = estimate_power_watts(perf.accelerator)
            assert 3.0 < p < 10.0   # paper: 5.36 / 4.29 W

    def test_gflops_batch_value_below_steady_state(self, tc1_perf):
        assert tc1_perf.gflops(batch=1) < tc1_perf.gflops()


class TestParallelismSpeedup:
    def test_inter_layer_parallelism_reduces_ii(self):
        base = estimate_performance(build_accelerator(lenet_model()))
        model = lenet_model()
        model.hints = {"conv2": LayerHints(in_ports=4, out_ports=10)}
        par = estimate_performance(build_accelerator(model))
        conv2_idx = [i for i, pe in enumerate(par.accelerator.pes)
                     if "conv2" in pe.layer_names][0]
        assert par.stage_cycles[conv2_idx] < \
            base.stage_cycles[conv2_idx] / 30
