"""Resource estimation tests."""

import math

import pytest

from repro.frontend.condor_format import CondorModel, LayerHints
from repro.frontend.zoo import lenet_model, tc1_model
from repro.hw.accelerator import build_accelerator
from repro.hw.calibration import DEFAULT_CALIBRATION as CAL
from repro.hw.components import Fifo
from repro.hw.estimate import (
    estimate_accelerator,
    estimate_fifo,
    estimate_pe,
)
from repro.hw.resources import device_for_board


@pytest.fixture(scope="module")
def tc1_acc():
    return build_accelerator(tc1_model())


@pytest.fixture(scope="module")
def lenet_acc():
    return build_accelerator(lenet_model())


class TestFifoEstimate:
    def test_small_fifo_is_lutram(self):
        vec = estimate_fifo(Fifo("f", depth=16))
        assert vec.bram_18k == 0
        assert vec.lut > 0

    def test_deep_fifo_uses_bram(self):
        vec = estimate_fifo(Fifo("f", depth=1024))
        assert vec.bram_18k == math.ceil(1024 / 512)

    def test_wide_fifo_scales_bram(self):
        narrow = estimate_fifo(Fifo("f", depth=512, width_bits=32))
        wide = estimate_fifo(Fifo("f", depth=512, width_bits=72))
        assert wide.bram_18k == 2 * narrow.bram_18k

    def test_monotone_in_depth(self):
        costs = [estimate_fifo(Fifo("f", depth=d)).bram_18k
                 for d in (128, 512, 1024, 4096)]
        assert costs == sorted(costs)


class TestPEEstimate:
    def test_fc_pe_is_one_mac(self, tc1_acc):
        fc = tc1_acc.pe_for_layer("fc")
        vec = estimate_pe(fc)
        # 1 multiplier + 1 accumulate adder = 3 + 2 = 5 DSP
        assert vec.dsp == CAL.dsp_per_fmul + CAL.dsp_per_fadd

    def test_conv_pe_dsp_scales_with_window(self, tc1_acc):
        conv1 = tc1_acc.pe_for_layer("conv1")
        vec = estimate_pe(conv1)
        # 25 muls + 25 adds (24 tree + 1 accum) per mac unit
        expected = 25 * CAL.dsp_per_fmul + 25 * CAL.dsp_per_fadd
        assert vec.dsp == expected

    def test_pool_pe_has_no_dsp(self, tc1_acc):
        assert estimate_pe(tc1_acc.pe_for_layer("pool1")).dsp == 0

    def test_parallelism_multiplies_dsp(self):
        model = lenet_model()
        model.hints = {"conv2": LayerHints(in_ports=2, out_ports=5)}
        acc = build_accelerator(model)
        conv2 = acc.pe_for_layer("conv2")
        base_model = lenet_model()
        base = build_accelerator(base_model).pe_for_layer("conv2")
        assert estimate_pe(conv2).dsp == 10 * estimate_pe(base).dsp

    def test_weight_bram_with_pingpong(self, tc1_acc):
        conv1 = tc1_acc.pe_for_layer("conv1")
        weight_words = math.ceil(conv1.weight_words * CAL.weight_pingpong)
        weight_blocks = math.ceil(weight_words / CAL.bram18_words)
        buffer_blocks = math.ceil(conv1.buffer_words / CAL.bram18_words)
        vec = estimate_pe(conv1)
        # chain FIFOs are LUTRAM-sized, so BRAM = weights + input buffer
        assert vec.bram_18k == weight_blocks + buffer_blocks

    def test_integral_outputs(self, tc1_acc):
        for pe in tc1_acc.pes:
            vec = estimate_pe(pe)
            for f in ("lut", "ff", "dsp", "bram_18k"):
                assert getattr(vec, f) == int(getattr(vec, f))


class TestAcceleratorEstimate:
    def test_breakdown_components(self, tc1_acc):
        est = estimate_accelerator(tc1_acc)
        assert "shell" in est.components
        assert "datamover" in est.components
        assert "stream_fifos" in est.components
        for pe in tc1_acc.pes:
            assert pe.name in est.components

    def test_total_is_sum(self, tc1_acc):
        est = estimate_accelerator(tc1_acc)
        total = est.total
        by_hand = sum((v for v in est.components.values()),
                      start=type(total)())
        assert total == by_hand

    def test_shell_excludable(self, tc1_acc):
        with_shell = estimate_accelerator(tc1_acc).total
        without = estimate_accelerator(tc1_acc, include_shell=False).total
        assert with_shell.lut - without.lut == CAL.shell_lut

    def test_table1_shape_lenet_bram_dominates(self, tc1_acc, lenet_acc):
        """The headline Table 1 shape: LeNet's BRAM% is an order of
        magnitude above TC1's (on-chip FC weights), everything else is
        comparable."""
        cap = device_for_board("aws-f1-xcvu9p").capacity
        tc1_util = estimate_accelerator(tc1_acc).utilization(cap)
        lenet_util = estimate_accelerator(lenet_acc).utilization(cap)
        assert lenet_util["bram_18k"] > 10 * tc1_util["bram_18k"]
        assert lenet_util["bram_18k"] > 15.0          # paper: 24.38
        assert tc1_util["bram_18k"] < 3.0             # paper: 0.97
        for key in ("lut", "ff", "dsp"):
            ratio = lenet_util[key] / tc1_util[key]
            assert 0.5 < ratio < 2.0                  # same ballpark

    def test_fits_on_f1(self, tc1_acc, lenet_acc):
        cap = device_for_board("aws-f1-xcvu9p").capacity
        estimate_accelerator(tc1_acc).total.check_fits(cap)
        estimate_accelerator(lenet_acc).total.check_fits(cap)

    def test_summary_renders(self, tc1_acc):
        cap = device_for_board("aws-f1-xcvu9p").capacity
        text = estimate_accelerator(tc1_acc).summary(cap)
        assert "TOTAL" in text and "% of device" in text
