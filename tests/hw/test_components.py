"""Direct tests of the hardware component dataclasses."""

import pytest

from repro.errors import HardwareError
from repro.frontend.zoo import tc1_model
from repro.hw.accelerator import build_accelerator
from repro.hw.components import (
    DataMover,
    Fifo,
    FilterNode,
    MemorySubsystem,
    PEKind,
    ProcessingElement,
)
from repro.hw.partitioning import partition_window_accesses


def subsystem(window=(3, 3), width=8, name="mem0"):
    spec = partition_window_accesses(window, width)
    filters = tuple(FilterNode(name=f"{name}_f{i}", offset=off, position=i)
                    for i, off in enumerate(spec.accesses))
    fifos = tuple(Fifo(name=f"{name}_fifo{i}", depth=d)
                  for i, d in enumerate(spec.fifo_depths))
    return MemorySubsystem(name=name, filters=filters, fifos=fifos,
                           spec=spec)


class TestFifo:
    def test_bits(self):
        assert Fifo("f", depth=10, width_bits=32).bits == 320

    def test_validation(self):
        with pytest.raises(HardwareError):
            Fifo("f", depth=0)


class TestMemorySubsystem:
    def test_fifo_count_enforced(self):
        spec = partition_window_accesses((2, 2), 4)
        filters = tuple(FilterNode(f"f{i}", off, i)
                        for i, off in enumerate(spec.accesses))
        with pytest.raises(HardwareError, match="one FIFO"):
            MemorySubsystem(name="m", filters=filters, fifos=(),
                            spec=spec)

    def test_valid_chain(self):
        mem = subsystem()
        assert len(mem.filters) == 9
        assert len(mem.fifos) == 8


class TestProcessingElement:
    def test_features_pe_needs_memory(self):
        with pytest.raises(HardwareError, match="memory subsystem"):
            ProcessingElement(name="pe", kind=PEKind.CONV,
                              layer_names=("c",), window=(3, 3))

    def test_memory_count_matches_parallelism(self):
        with pytest.raises(HardwareError, match="memory subsystem"):
            ProcessingElement(name="pe", kind=PEKind.CONV,
                              layer_names=("c",), in_parallel=2,
                              memory=(subsystem(),), window=(3, 3))

    def test_classifier_pe_without_memory(self):
        pe = ProcessingElement(name="pe", kind=PEKind.FC,
                               layer_names=("fc",))
        assert pe.mac_units == 1
        assert pe.window_size == 1

    def test_mac_units(self):
        pe = ProcessingElement(
            name="pe", kind=PEKind.CONV, layer_names=("c",),
            in_parallel=2, out_parallel=3,
            memory=(subsystem(name="a"), subsystem(name="b")),
            window=(3, 3))
        assert pe.mac_units == 6
        assert pe.window_size == 9

    def test_pool_pe_has_no_macs(self):
        pe = ProcessingElement(
            name="pe", kind=PEKind.POOL, layer_names=("p",),
            memory=(subsystem(window=(2, 2)),), window=(2, 2))
        assert pe.mac_units == 0

    def test_no_layers_rejected(self):
        with pytest.raises(HardwareError, match="no layers"):
            ProcessingElement(name="pe", kind=PEKind.FC, layer_names=())

    def test_bad_parallelism_rejected(self):
        with pytest.raises(HardwareError):
            ProcessingElement(name="pe", kind=PEKind.FC,
                              layer_names=("fc",), in_parallel=0)


class TestDataMover:
    def test_defaults(self):
        dm = DataMover()
        assert dm.name == "datamover"
        assert dm.stream_ports == 2


class TestAcceleratorContainer:
    def test_weight_streams_counted_in_ports(self):
        acc = build_accelerator(tc1_model())
        # input + output + 3 weight streams (conv1, conv2, fc)
        assert acc.datamover.stream_ports == 5

    def test_fifo_names_unique(self):
        acc = build_accelerator(tc1_model())
        names = [f.name for f in acc.all_fifos()]
        assert len(names) == len(set(names))
