"""Accelerator builder tests."""

import pytest

from repro.errors import HardwareError
from repro.frontend.condor_format import CondorModel, LayerHints
from repro.frontend.zoo import lenet_model, tc1_model, tc1_network
from repro.hw.accelerator import build_accelerator
from repro.hw.components import Fifo, PEKind


@pytest.fixture
def tc1_acc():
    return build_accelerator(tc1_model())


class TestStructure:
    def test_one_pe_per_compute_layer(self, tc1_acc):
        assert [pe.layer_names for pe in tc1_acc.pes] == [
            ("conv1",), ("pool1",), ("conv2",), ("pool2",), ("fc",),
            ("prob",)]

    def test_pe_kinds(self, tc1_acc):
        kinds = [pe.kind for pe in tc1_acc.pes]
        assert kinds == [PEKind.CONV, PEKind.POOL, PEKind.CONV, PEKind.POOL,
                         PEKind.FC, PEKind.SOFTMAX]

    def test_conv_pe_has_filter_chain(self, tc1_acc):
        conv1 = tc1_acc.pe_for_layer("conv1")
        assert len(conv1.memory) == 1          # one parallel input map
        subsystem = conv1.memory[0]
        assert len(subsystem.filters) == 25    # 5x5 window
        assert len(subsystem.fifos) == 24
        # chain sized on the 16-wide input rows
        assert subsystem.spec.buffered_words == 4 * 16 + 4

    def test_classifier_pe_has_no_memory_subsystem(self, tc1_acc):
        fc = tc1_acc.pe_for_layer("fc")
        assert fc.memory == ()
        assert fc.window == (1, 1)
        assert fc.mac_units == 1

    def test_weight_words(self, tc1_acc):
        conv1 = tc1_acc.pe_for_layer("conv1")
        assert conv1.weight_words == 12 * 1 * 25 + 12
        fc = tc1_acc.pe_for_layer("fc")
        assert fc.weight_words == 10 * 12 + 10
        pool = tc1_acc.pe_for_layer("pool1")
        assert pool.weight_words == 0

    def test_buffer_words_for_sequential_rereads(self, tc1_acc):
        # conv2 computes 12 output maps sequentially -> buffers its
        # 12x6x6 input
        conv2 = tc1_acc.pe_for_layer("conv2")
        assert conv2.buffer_words == 12 * 6 * 6
        # fc sweeps its input per output neuron
        fc = tc1_acc.pe_for_layer("fc")
        assert fc.buffer_words == 12


class TestWiring:
    def test_stream_chain(self, tc1_acc):
        dm = tc1_acc.datamover.name
        edges = [(e.source, e.dest) for e in tc1_acc.edges]
        assert (dm, "pe_conv1") in edges
        assert ("pe_conv1", "pe_pool1") in edges
        assert ("pe_prob", dm) in edges

    def test_weight_streams_only_for_weighted_pes(self, tc1_acc):
        dm = tc1_acc.datamover.name
        weight_edges = [e.dest for e in tc1_acc.edges
                        if e.source == dm and e.fifo.name.endswith("weights")]
        assert sorted(weight_edges) == ["pe_conv1", "pe_conv2", "pe_fc"]

    def test_datamover_port_count_matches_edges(self, tc1_acc):
        dm = tc1_acc.datamover.name
        touching = sum(1 for e in tc1_acc.edges if dm in (e.source, e.dest))
        assert tc1_acc.datamover.stream_ports == touching

    def test_all_fifos_collects_everything(self, tc1_acc):
        fifos = tc1_acc.all_fifos()
        n_edge = len(tc1_acc.edges)
        n_chain = sum(len(m.fifos) for pe in tc1_acc.pes
                      for m in pe.memory)
        assert len(fifos) == n_edge + n_chain


class TestParallelismAndFusion:
    def test_parallel_input_maps_get_own_chains(self):
        model = lenet_model()
        model.hints = {"conv2": LayerHints(in_ports=4, out_ports=5)}
        acc = build_accelerator(model)
        conv2 = acc.pe_for_layer("conv2")
        assert conv2.in_parallel == 4
        assert len(conv2.memory) == 4
        assert conv2.mac_units == 20

    def test_fused_pe_window_is_max(self):
        model = tc1_model()
        model.hints = {
            "conv1": LayerHints(cluster="f"),
            "pool1": LayerHints(cluster="f"),
        }
        acc = build_accelerator(model)
        pe = acc.pe_for_layer("conv1")
        assert pe.layer_names == ("conv1", "pool1")
        assert pe.window == (5, 5)  # conv's 5x5 beats pool's 2x2

    def test_fused_chain_sized_on_biggest_input(self):
        model = tc1_model()
        model.hints = {
            "conv1": LayerHints(cluster="f"),
            "pool1": LayerHints(cluster="f"),
        }
        acc = build_accelerator(model)
        pe = acc.pe_for_layer("conv1")
        # conv1 input rows (16) > pool1 input rows (12)
        assert pe.memory[0].spec.input_width == 16

    def test_buffer_absent_when_fully_parallel(self):
        net = tc1_network()
        model = CondorModel(network=net, hints={
            "conv2": LayerHints(out_ports=12),
        })
        acc = build_accelerator(model)
        assert acc.pe_for_layer("conv2").buffer_words == 0


class TestAcceleratorAccessors:
    def test_pe_lookup(self, tc1_acc):
        assert tc1_acc.pe("pe_conv1").kind is PEKind.CONV
        with pytest.raises(KeyError):
            tc1_acc.pe("nope")
        with pytest.raises(KeyError):
            tc1_acc.pe_for_layer("nope")

    def test_shapes(self, tc1_acc):
        conv1 = tc1_acc.pe("pe_conv1")
        assert tc1_acc.input_shape_of(conv1).as_tuple() == (1, 16, 16)
        assert tc1_acc.output_shape_of(conv1).as_tuple() == (12, 12, 12)

    def test_summary_mentions_all_pes(self, tc1_acc):
        text = tc1_acc.summary()
        for pe in tc1_acc.pes:
            assert pe.name in text

    def test_frequency_and_device(self, tc1_acc):
        assert tc1_acc.frequency_hz == 100e6
        assert tc1_acc.device_part == "xcvu9p"


class TestComponentInvariants:
    def test_fifo_validation(self):
        with pytest.raises(HardwareError):
            Fifo("f", depth=0)
        with pytest.raises(HardwareError):
            Fifo("f", depth=4, width_bits=0)

    def test_pad_widens_filter_chain(self):
        from repro.frontend.condor_format import CondorModel
        from repro.ir.layers import ConvLayer
        from repro.ir.network import chain
        net = chain("p", (1, 8, 8), [
            ConvLayer("c", num_output=2, kernel=3, pad=1),
        ])
        acc = build_accelerator(CondorModel(network=net))
        # padded rows are 8 + 2*1 = 10 wide
        assert acc.pe_for_layer("c").memory[0].spec.input_width == 10
