"""Layer->PE mapping tests."""

import pytest

from repro.errors import MappingError
from repro.frontend.condor_format import CondorModel, LayerHints
from repro.frontend.zoo import lenet_network, tc1_network
from repro.hw.mapping import (
    MappingConfig,
    PEMapping,
    default_mapping,
    mapping_from_model,
    validate_mapping,
)


class TestDefaultMapping:
    def test_one_pe_per_compute_layer(self):
        net = lenet_network()
        config = default_mapping(net)
        compute = [l.name for l in net.compute_layers()]
        assert [pe.layer_names for pe in config.pes] == \
            [(name,) for name in compute]
        assert all(pe.in_parallel == 1 and pe.out_parallel == 1
                   for pe in config.pes)

    def test_pe_of(self):
        config = default_mapping(tc1_network())
        assert config.pe_of("conv2").name == "pe_conv2"
        with pytest.raises(KeyError):
            config.pe_of("nope")


class TestValidation:
    def test_missing_layer_rejected(self):
        net = tc1_network()
        config = default_mapping(net)
        config.pes.pop()
        with pytest.raises(MappingError, match="covers"):
            validate_mapping(net, config)

    def test_out_of_order_rejected(self):
        net = tc1_network()
        config = default_mapping(net)
        config.pes[0], config.pes[1] = config.pes[1], config.pes[0]
        with pytest.raises(MappingError):
            validate_mapping(net, config)

    def test_mixed_stage_cluster_rejected(self):
        net = tc1_network()
        config = MappingConfig(pes=[
            PEMapping("pe0", ("conv1", "pool1", "conv2", "pool2")),
            PEMapping("pe1", ("fc", "prob")),
        ])
        validate_mapping(net, config)  # features + classifier clusters: ok
        bad = MappingConfig(pes=[
            PEMapping("pe0", ("conv1", "pool1", "conv2", "pool2", "fc")),
            PEMapping("pe1", ("prob",)),
        ])
        with pytest.raises(MappingError, match="mixes"):
            validate_mapping(net, bad)

    def test_fc_must_be_scalar_ports(self):
        net = tc1_network()
        config = default_mapping(net)
        idx = next(i for i, pe in enumerate(config.pes)
                   if pe.layer_names == ("fc",))
        config.pes[idx] = PEMapping("pe_fc", ("fc",), in_parallel=2)
        with pytest.raises(MappingError, match="single-input"):
            validate_mapping(net, config)

    def test_parallelism_cannot_exceed_channels(self):
        net = tc1_network()
        config = default_mapping(net)
        config.pes[0] = PEMapping("pe_conv1", ("conv1",), in_parallel=2)
        with pytest.raises(MappingError, match="in_parallel"):
            validate_mapping(net, config)  # conv1 input has 1 channel
        config.pes[0] = PEMapping("pe_conv1", ("conv1",), out_parallel=13)
        with pytest.raises(MappingError, match="out_parallel"):
            validate_mapping(net, config)  # conv1 has 12 output maps

    def test_pool_in_out_must_match(self):
        net = tc1_network()
        config = default_mapping(net)
        idx = next(i for i, pe in enumerate(config.pes)
                   if pe.layer_names == ("pool1",))
        config.pes[idx] = PEMapping("pe_pool1", ("pool1",), in_parallel=2,
                                    out_parallel=4)
        with pytest.raises(MappingError, match="in_parallel must equal"):
            validate_mapping(net, config)

    def test_duplicate_pe_names_rejected(self):
        net = tc1_network()
        config = default_mapping(net)
        config.pes[1] = PEMapping(config.pes[0].name,
                                  config.pes[1].layer_names)
        with pytest.raises(MappingError, match="duplicate"):
            validate_mapping(net, config)

    def test_empty_mapping_entry_rejected(self):
        with pytest.raises(MappingError):
            PEMapping("pe", ())

    def test_bad_parallelism_rejected(self):
        with pytest.raises(MappingError):
            PEMapping("pe", ("a",), in_parallel=0)


class TestMappingFromModel:
    def test_clusters_from_hints(self):
        net = tc1_network()
        model = CondorModel(network=net, hints={
            "conv1": LayerHints(cluster="feat"),
            "pool1": LayerHints(cluster="feat"),
            "conv2": LayerHints(cluster="feat2", out_ports=4),
        })
        config = mapping_from_model(model)
        assert config.pes[0].layer_names == ("conv1", "pool1")
        assert config.pes[1].layer_names == ("conv2",)
        assert config.pes[1].out_parallel == 4

    def test_no_hints_is_default(self):
        model = CondorModel(network=tc1_network())
        config = mapping_from_model(model)
        assert [pe.layer_names for pe in config.pes] == \
            [pe.layer_names for pe in default_mapping(model.network).pes]

    def test_cluster_takes_max_hint(self):
        net = lenet_network()
        model = CondorModel(network=net, hints={
            "conv2": LayerHints(cluster="c", in_ports=2),
            "pool2": LayerHints(cluster="c", in_ports=4, out_ports=4),
        })
        config = mapping_from_model(model)
        pe = config.pe_of("conv2")
        assert pe.layer_names == ("conv2", "pool2")
        assert pe.in_parallel == 4
