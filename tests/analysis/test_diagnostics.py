"""Diagnostic / report value semantics."""

import json

from repro.analysis import AnalysisReport, Diagnostic, Location, Severity


def _diag(code="X001", severity=Severity.ERROR, **kw):
    return Diagnostic(pass_id="test-pass", code=code, severity=severity,
                      message=kw.pop("message", "something is wrong"),
                      location=Location(**kw.pop("location", {})),
                      hint=kw.pop("hint", ""))


class TestSeverity:
    def test_rank_ordering(self):
        assert Severity.ERROR.rank < Severity.WARNING.rank \
            < Severity.INFO.rank

    def test_values_are_json_friendly(self):
        assert Severity.WARNING.value == "warning"


class TestLocation:
    def test_str_empty(self):
        assert str(Location()) == "-"

    def test_str_fields(self):
        loc = Location(layer="conv1", channel="fifo0")
        assert str(loc) == "layer=conv1 channel=fifo0"

    def test_to_dict_drops_unset(self):
        assert Location(pe="pe_conv1").to_dict() == {"pe": "pe_conv1"}


class TestDiagnostic:
    def test_render_contains_all_parts(self):
        diag = _diag(hint="fix it", location={"layer": "conv1"})
        text = diag.render()
        assert "error" in text and "X001" in text
        assert "[test-pass]" in text and "layer=conv1" in text
        assert "hint: fix it" in text

    def test_to_dict_roundtrips_through_json(self):
        doc = json.loads(json.dumps(_diag().to_dict()))
        assert doc["code"] == "X001"
        assert doc["severity"] == "error"
        assert "hint" not in doc  # empty hint omitted


class TestAnalysisReport:
    def test_ok_tracks_errors_only(self):
        report = AnalysisReport(model_name="m")
        report.extend([_diag(severity=Severity.WARNING),
                       _diag(severity=Severity.INFO)])
        assert report.ok
        report.extend([_diag(severity=Severity.ERROR)])
        assert not report.ok

    def test_selectors(self):
        report = AnalysisReport()
        report.extend([_diag(code="A1"), _diag(code="B2",
                                               severity=Severity.WARNING)])
        assert len(report.errors) == 1
        assert len(report.warnings) == 1
        assert report.codes() == {"A1", "B2"}
        assert len(report.with_code("A1")) == 1
        assert len(report.by_pass("test-pass")) == 2

    def test_render_sorts_errors_first(self):
        report = AnalysisReport(model_name="m")
        report.extend([_diag(code="LOW", severity=Severity.INFO),
                       _diag(code="HIGH", severity=Severity.ERROR)])
        text = report.render()
        assert text.index("HIGH") < text.index("LOW")
        assert "1 error(s)" in text

    def test_render_min_severity_filters(self):
        report = AnalysisReport()
        report.extend([_diag(code="NOISY", severity=Severity.INFO)])
        assert "NOISY" not in report.render(
            min_severity=Severity.WARNING)

    def test_to_json_shape(self):
        report = AnalysisReport(model_name="m")
        report.passes_run.append("test-pass")
        report.extend([_diag()])
        doc = json.loads(report.to_json())
        assert doc["model"] == "m"
        assert doc["passes"] == ["test-pass"]
        assert doc["summary"]["errors"] == 1
        assert len(doc["diagnostics"]) == 1
