"""Pass manager behaviour: registry, selection, skipping, reporting."""

import pytest

from repro.analysis import (
    PASS_REGISTRY,
    AnalysisContext,
    AnalysisPipeline,
    AnalysisPass,
    Severity,
    check_model,
)
from repro.errors import CondorError
from repro.frontend.condor_format import CondorModel, LayerHints
from repro.frontend.zoo import tc1_model

EXPECTED_PASSES = {
    "shape-legality", "dead-layer", "numeric-range",
    "fifo-deadlock", "rate-mismatch", "resource-budget",
}


class TestRegistry:
    def test_builtin_passes_registered(self):
        assert EXPECTED_PASSES <= set(PASS_REGISTRY)

    def test_register_requires_id(self):
        from repro.analysis import register_pass
        with pytest.raises(CondorError, match="no id"):
            register_pass(type("Anon", (AnalysisPass,), {}))

    def test_register_rejects_duplicates(self):
        from repro.analysis import register_pass
        with pytest.raises(CondorError, match="duplicate"):
            register_pass(type("Dup", (AnalysisPass,),
                               {"id": "shape-legality"}))


class TestSelection:
    def test_select_subset_preserves_registry_order(self):
        pipe = AnalysisPipeline.from_selection(
            select=["resource-budget", "shape-legality"])
        assert [p.id for p in pipe.passes] == ["shape-legality",
                                               "resource-budget"]

    def test_exclude(self):
        pipe = AnalysisPipeline.from_selection(
            exclude=["fifo-deadlock"])
        ids = [p.id for p in pipe.passes]
        assert "fifo-deadlock" not in ids
        assert "shape-legality" in ids

    def test_unknown_pass_rejected(self):
        with pytest.raises(CondorError, match="unknown analysis pass"):
            AnalysisPipeline.from_selection(select=["nope"])


class TestContext:
    def test_lazy_derivation(self):
        ctx = AnalysisContext(tc1_model())
        assert ctx.mapping is not None
        assert ctx.accelerator is not None
        assert ctx.performance is not None
        assert ctx.estimate is not None
        assert ctx.build_diagnostics == []

    def test_supplied_accelerator_is_used(self):
        from repro.hw.accelerator import build_accelerator
        model = tc1_model()
        acc = build_accelerator(model)
        ctx = AnalysisContext(model, accelerator=acc)
        assert ctx.accelerator is acc


class TestBuildFailureHandling:
    def _unmappable_model(self):
        # the hints ask for more input parallelism than conv1 has
        # channels: the model itself is valid, the mapping is not
        base = tc1_model()
        return CondorModel(
            network=base.network, board=base.board,
            frequency_hz=base.frequency_hz,
            hints={"conv1": LayerHints(in_ports=64)})

    def test_failed_build_reports_and_skips(self):
        report = check_model(self._unmappable_model())
        assert not report.ok
        # the derivation failure surfaces as a BUILD001 diagnostic ...
        assert "BUILD001" in report.codes()
        # ... and hardware passes are recorded as skipped, not crashed
        skipped = [p for p in report.passes_run if "skipped" in p]
        assert any("fifo-deadlock" in p for p in skipped)
        # structural passes still ran
        assert "shape-legality" in report.passes_run

    def test_passes_never_raise_on_defects(self):
        # the whole point: a broken design yields a report, not a raise
        report = check_model(self._unmappable_model())
        assert len(report) >= 1
        assert all(d.severity is Severity.ERROR for d in report.errors)


class TestReportPlumbing:
    def test_all_passes_run_on_clean_model(self):
        report = check_model(tc1_model())
        assert EXPECTED_PASSES <= set(report.passes_run)
        assert report.model_name == "tc1"

    def test_spans_recorded(self):
        from repro.obs import SpanRecorder, recording
        rec = SpanRecorder()
        with recording(rec):
            check_model(tc1_model(), select=["shape-legality"])
        names = [s.name for s in rec.spans]
        assert "analysis.check" in names
        assert "analysis.shape-legality" in names

    def test_severity_counter_increments(self):
        from repro.obs import REGISTRY
        before = REGISTRY.counter(
            "condor_check_runs_total",
            "Static-analysis pipeline runs").value()
        check_model(tc1_model(), select=["shape-legality"])
        after = REGISTRY.counter(
            "condor_check_runs_total",
            "Static-analysis pipeline runs").value()
        assert after == before + 1
