"""Cross-validate the FIFO analysis against the event simulator.

The fifo-deadlock pass predicts that a stream FIFO below the decoupling
minimum exposes the producer to the consumer's ingest phase — measured
by the simulator as producer ``pe_blocked_cycles``.

The strict iff-check uses the TC1 *features* pipeline (conv → pool),
which is rate-balanced: with builder-chosen depths the producer never
blocks, so any stall is attributable to the FIFO under test.  (A full
network with a slow classifier back-pressures its producers through any
FIFO depth, which would confound the measurement.)  A linear pipeline
keeps draining, so the stall — not a full cyclic deadlock — is the
observable symptom; a true cyclic wait would raise ``DeadlockError``.
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis import check_model
from repro.frontend.condor_format import CondorModel
from repro.frontend.weights import WeightStore
from repro.frontend.zoo import broken, tc1_model
from repro.hw.accelerator import build_accelerator
from repro.sim.dataflow import simulate_accelerator

BATCH = 3
SEED = 0
SHRUNK_DEPTH = 4


def _features_model() -> CondorModel:
    base = tc1_model()
    return CondorModel(network=base.network.features_subnetwork(),
                       board=base.board,
                       frequency_hz=base.frequency_hz)


def _shrink_first_inter_pe_fifo(acc, depth):
    edge = next(e for e in acc.edges
                if e.source == acc.pes[0].name
                and e.dest == acc.pes[1].name)
    acc.edges[acc.edges.index(edge)] = dataclasses.replace(
        edge, fifo=dataclasses.replace(edge.fifo, depth=depth))
    return acc


def _simulate(model, acc):
    weights = WeightStore.initialize(model.network)
    rng = np.random.default_rng(SEED)
    images = rng.normal(
        size=(BATCH,) + model.network.input_shape().as_tuple()) \
        .astype(np.float32)
    return simulate_accelerator(acc, weights, images)


@pytest.fixture(scope="module")
def clean():
    model = _features_model()
    acc = build_accelerator(model)
    report = check_model(model, accelerator=acc,
                         select=["fifo-deadlock"])
    return model, acc, report, _simulate(model, acc)


@pytest.fixture(scope="module")
def undersized():
    model = _features_model()
    acc = _shrink_first_inter_pe_fifo(build_accelerator(model),
                                      SHRUNK_DEPTH)
    report = check_model(model, accelerator=acc,
                         select=["fifo-deadlock"])
    return model, acc, report, _simulate(model, acc)


def test_analyzer_quiet_and_no_stall_on_builder_depths(clean):
    model, acc, report, sim = clean
    assert len(report) == 0
    producer = acc.pes[0].name
    assert sim.pe_blocked_cycles[producer] == 0


def test_analyzer_flags_and_sim_stalls_on_undersized_fifo(undersized):
    model, acc, report, sim = undersized
    # the analyzer names the exact shrunk channel, at ERROR severity
    assert not report.ok
    shrunk = next(e for e in acc.edges
                  if e.fifo.depth == SHRUNK_DEPTH)
    flagged = {d.location.channel for d in report.errors}
    assert shrunk.fifo.name in flagged
    # and the simulator shows the predicted producer stall on that edge
    assert sim.pe_blocked_cycles[shrunk.source] > 1000


def test_stall_costs_total_cycles(clean, undersized):
    # the stall is not free: the undersized design is strictly slower
    # end-to-end on the identical workload
    _, _, _, sim_clean = clean
    _, _, _, sim_bad = undersized
    assert sim_bad.total_cycles > sim_clean.total_cycles


def test_functional_output_unchanged(clean, undersized):
    # an undersized FIFO costs time, not correctness: both runs compute
    # the same numbers (same weights, same inputs)
    _, _, _, sim_clean = clean
    _, _, _, sim_bad = undersized
    for got, want in zip(sim_bad.outputs, sim_clean.outputs):
        np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-6)


def test_full_network_fixture_also_flags_and_stalls():
    # the broken-zoo LeNet fixture: the analyzer flags the edge and the
    # producer's stall grows far beyond the builder-depth baseline
    model, acc = broken.undersized_stream_accelerator(depth=SHRUNK_DEPTH)
    report = check_model(model, accelerator=acc,
                         select=["fifo-deadlock"])
    assert not report.ok
    baseline = _simulate(model, build_accelerator(model))
    stalled = _simulate(model, acc)
    producer = acc.pes[0].name
    # the slow classifier back-pressures the producer even at builder
    # depths; the undersized FIFO must add a clear stall on top of that
    assert stalled.pe_blocked_cycles[producer] > \
        baseline.pe_blocked_cycles[producer] + 10_000
