"""Every pass: clean on the shipped zoo, firing on the broken zoo.

Each broken-zoo fixture seeds exactly the defect one pass exists to
catch; the tests assert the diagnostic code AND the location so a pass
cannot silently degrade into "fires somewhere".
"""

import pytest

from repro.analysis import Severity, check_model
from repro.frontend.zoo import broken, lenet_model, vgg16_model


class TestCleanZoo:
    """The shipped models must pass the gate (no ERROR diagnostics)."""

    @pytest.mark.parametrize("name", ["tc1", "lenet", "cifar10", "vgg16"])
    def test_zoo_model_is_clean(self, name, zoo_model, zoo_weights):
        model = zoo_model(name)
        weights = zoo_weights(name)
        report = check_model(model, weights=weights)
        assert report.ok, report.render()
        # every pass ran (none skipped)
        assert not any("skipped" in p for p in report.passes_run)


class TestFifoDeadlockPass:
    def test_undersized_filter_chain_fires(self):
        model, acc = broken.undersized_filter_chain_accelerator()
        report = check_model(model, accelerator=acc,
                             select=["fifo-deadlock"])
        diags = report.with_code("FIFO001")
        assert len(diags) == 1
        diag = diags[0]
        assert diag.severity is Severity.ERROR
        assert diag.location.pe == "pe_conv1"
        assert diag.location.channel.startswith("pe_conv1_mem0")

    def test_undersized_stream_fires(self):
        model, acc = broken.undersized_stream_accelerator(depth=4)
        report = check_model(model, accelerator=acc,
                             select=["fifo-deadlock"])
        assert not report.ok
        diag = report.with_code("FIFO003")[0]
        assert diag.location.channel == acc.edges[1].fifo.name

    def test_clean_accelerator_quiet(self):
        model = lenet_model()
        report = check_model(model, select=["fifo-deadlock"])
        assert len(report) == 0


class TestRateMatchPass:
    def test_rate_cliff_fires(self):
        report = check_model(broken.rate_cliff_model(),
                             select=["rate-mismatch"])
        mismatches = report.with_code("RATE001")
        assert mismatches
        # the huge fc1 is the named culprit of at least one mismatch
        assert any(d.location.pe == "pe_fc1" for d in mismatches)
        bottleneck = report.with_code("RATE002")
        assert bottleneck and bottleneck[0].location.pe == "pe_fc1"

    def test_warnings_not_errors(self):
        report = check_model(broken.rate_cliff_model(),
                             select=["rate-mismatch"])
        assert report.ok  # imbalance degrades, it does not break


class TestResourceBudgetPass:
    def test_overbudget_vgg_on_zynq_fires(self):
        report = check_model(broken.overbudget_model(),
                             select=["resource-budget"])
        over = report.with_code("RES001")
        assert over
        assert {d.location.resource for d in over} & {"bram_18k", "dsp",
                                                      "lut", "ff"}
        assert not report.ok

    def test_overclocked_fires(self):
        report = check_model(broken.overclocked_model(),
                             select=["resource-budget"])
        diag = report.with_code("RES003")[0]
        assert diag.severity is Severity.ERROR
        assert diag.location.resource == "fmax"

    def test_ddr_spill_is_informational(self):
        report = check_model(vgg16_model(), select=["resource-budget"])
        spills = report.with_code("RES004")
        assert spills  # the VGG classifier cannot fit on-chip
        assert all(d.severity is Severity.INFO for d in spills)


class TestShapeLegalityPass:
    def test_illegal_window_fires(self):
        report = check_model(broken.illegal_window_model(),
                             select=["shape-legality"])
        pad = report.with_code("SHAPE001")[0]
        assert pad.severity is Severity.ERROR
        assert pad.location.layer == "conv_pad"
        stride = report.with_code("SHAPE002")[0]
        assert stride.severity is Severity.WARNING
        assert stride.location.layer == "pool_stride"


class TestDeadLayerPass:
    def test_dead_layers_fire(self):
        model, weights = broken.dead_layer_model()
        report = check_model(model, weights=weights,
                             select=["dead-layer"])
        orphan = report.with_code("DEAD001")[0]
        assert orphan.location.layer == "ghost_layer"
        identity = report.with_code("DEAD003")[0]
        assert identity.location.layer == "pool_id"
        redundant = report.with_code("DEAD004")[0]
        assert redundant.location.layer == "relu_again"

    def test_missing_weights_fire(self):
        model, weights = broken.missing_weights_model()
        report = check_model(model, weights=weights,
                             select=["dead-layer"])
        missing = report.with_code("DEAD002")
        assert missing and not report.ok
        assert all(d.location.layer == "fc" for d in missing)


class TestNumericRangePass:
    def test_outlier_weights_fire(self):
        model, weights = broken.saturating_quant_model()
        report = check_model(model, weights=weights,
                             select=["numeric-range"])
        diag = report.with_code("NUM001")[0]
        assert diag.severity is Severity.WARNING
        assert diag.location.layer == "conv1"

    def test_nonfinite_weights_fire(self):
        model, weights = broken.nonfinite_weights_model()
        report = check_model(model, weights=weights,
                             select=["numeric-range"])
        diag = report.with_code("NUM004")[0]
        assert diag.severity is Severity.ERROR
        assert not report.ok

    def test_fp32_model_quiet_on_saturation(self):
        # the same outlier weights are harmless in fp32
        model, weights = broken.saturating_quant_model()
        from repro.frontend.condor_format import CondorModel
        fp32 = CondorModel(network=model.network, board=model.board,
                           frequency_hz=model.frequency_hz,
                           precision="fp32")
        report = check_model(fp32, weights=weights,
                             select=["numeric-range"])
        assert "NUM001" not in report.codes()
