"""Memoized + parallel DSE evaluation must change nothing but the cost.

The explorer's result — best mapping, explored-point count, step count —
must be identical across serial, parallel, memoized and from-scratch
runs; the cache and thread pool are pure accelerations.
"""

import dataclasses

import pytest

from repro.dse import (
    CachedEvaluator,
    EvaluationCache,
    ParallelEvaluator,
    explore,
    mapping_fingerprint,
)
from repro.errors import MappingError
from repro.hw.mapping import default_mapping


def _bad_mapping(net):
    """A mapping that fails validation (in_parallel > input channels)."""
    mapping = default_mapping(net)
    bad_pe = dataclasses.replace(mapping.pes[0], in_parallel=10_000)
    return dataclasses.replace(mapping,
                               pes=[bad_pe] + list(mapping.pes[1:]))


@pytest.mark.parametrize("name", ["tc1", "lenet", "vgg16"])
def test_parallel_memoized_explore_matches_serial(name, zoo_model):
    model = zoo_model(name)
    serial = explore(model, memoize=False)
    fast = explore(model, jobs=4, cache=EvaluationCache())
    assert fast.mapping == serial.mapping
    assert fast.performance.ii_cycles == serial.performance.ii_cycles
    assert fast.steps == serial.steps
    assert len(fast.explored) == len(serial.explored)
    assert [p.mapping for p in fast.explored] == \
        [p.mapping for p in serial.explored]
    assert fast.cache_misses <= serial.cache_misses


def test_result_cache_hits(zoo_model):
    model = zoo_model("tc1")
    evaluator = CachedEvaluator(model)
    mapping = default_mapping(model.network)
    first = evaluator.evaluate(mapping)
    assert (evaluator.cache.hits, evaluator.cache.misses) == (0, 1)
    again = evaluator.evaluate(mapping)
    assert again is first  # the cached object itself
    assert (evaluator.cache.hits, evaluator.cache.misses) == (1, 1)
    # an equal-by-value mapping built independently hits too
    clone = default_mapping(model.network)
    assert evaluator.evaluate(clone) is first
    assert evaluator.cache.hits == 2


def test_negative_caching(zoo_model):
    model = zoo_model("tc1")
    evaluator = CachedEvaluator(model)
    bad = _bad_mapping(model.network)
    with pytest.raises(MappingError) as first:
        evaluator.evaluate(bad)
    assert evaluator.cache.misses == 1
    with pytest.raises(MappingError) as second:
        evaluator.evaluate(bad)
    assert second.value is first.value  # replayed, not recomputed
    assert evaluator.cache.hits == 1


def test_memoize_false_never_caches(zoo_model):
    model = zoo_model("tc1")
    evaluator = CachedEvaluator(model, memoize=False)
    mapping = default_mapping(model.network)
    first = evaluator.evaluate(mapping)
    second = evaluator.evaluate(mapping)
    assert first is not second
    assert evaluator.cache.hits == 0
    assert evaluator.cache.misses == 2
    assert not evaluator.cache.results


def test_fingerprint_is_content_keyed(zoo_model):
    model = zoo_model("tc1")
    mapping = default_mapping(model.network)
    clone = default_mapping(model.network)
    cal = CachedEvaluator(model).cal
    assert mapping_fingerprint(model, mapping, cal) == \
        mapping_fingerprint(model, clone, cal)
    faster = dataclasses.replace(model, frequency_hz=2 * model.frequency_hz)
    assert mapping_fingerprint(faster, mapping, cal) != \
        mapping_fingerprint(model, mapping, cal)


class TestParallelEvaluator:
    def test_jobs_one_is_serial(self, zoo_model):
        evaluator = CachedEvaluator(zoo_model("tc1"))
        with ParallelEvaluator(evaluator, jobs=1) as pool:
            assert not pool.parallel

    def test_evaluate_many_order_and_errors(self, zoo_model):
        model = zoo_model("tc1")
        evaluator = CachedEvaluator(model)
        good = default_mapping(model.network)
        bad = _bad_mapping(model.network)
        warm = evaluator.evaluate(good)  # fill the shared cache first
        with ParallelEvaluator(evaluator, jobs=4) as pool:
            assert pool.parallel
            outcomes = pool.evaluate_many([good, bad, good])
        assert outcomes[0] is warm  # answered from the shared cache
        assert isinstance(outcomes[1], MappingError)
        assert outcomes[2] is warm

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_worker_spans_nest_under_submitting_span(self, zoo_model,
                                                     jobs):
        """Tentpole acceptance: trace context crosses the thread pool,
        so per-candidate ``dse.evaluate`` spans parent under the span
        open at submit time — for any ``--jobs``."""
        from repro.obs import recording, span

        model = zoo_model("tc1")
        evaluator = CachedEvaluator(model, memoize=False)
        mappings = [default_mapping(model.network) for _ in range(3)]
        with recording() as rec:
            with span("dse.explore") as root:
                with ParallelEvaluator(evaluator, jobs=jobs) as pool:
                    pool.evaluate_many(mappings)
        evals = rec.find("dse.evaluate")
        assert len(evals) == 3
        assert all(sp.parent_id == root.span_id for sp in evals)
        assert all(sp.depth == root.depth + 1 for sp in evals)
        if jobs > 1:
            # at least one span really ran off the main thread
            main = rec.find("dse.explore")[0].thread_id
            assert any(sp.thread_id != main for sp in evals)

    def test_explore_span_tree(self, zoo_model):
        from repro.obs import recording

        with recording() as rec:
            explore(zoo_model("tc1"), jobs=2, cache=EvaluationCache())
        (root,) = rec.find("dse.explore")
        assert root.attrs["network"] == "tc1"
        assert root.attrs["jobs"] == 2
        evals = rec.find("dse.evaluate")
        assert evals
        assert all(sp.parent_id == root.span_id for sp in evals)

    def test_degrades_to_serial_when_pool_unavailable(self, zoo_model,
                                                      monkeypatch):
        import concurrent.futures

        def refuse(*args, **kwargs):
            raise OSError("no threads for you")

        monkeypatch.setattr(concurrent.futures, "ThreadPoolExecutor",
                            refuse)
        model = zoo_model("tc1")
        evaluator = CachedEvaluator(model)
        with ParallelEvaluator(evaluator, jobs=4) as pool:
            assert not pool.parallel
            outcomes = pool.evaluate_many(
                [default_mapping(model.network)])
        assert outcomes[0].mapping == default_mapping(model.network)
