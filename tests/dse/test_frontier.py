"""The incremental Pareto frontier vs the brute-force O(n²) oracle."""

import random

import pytest

from repro.dse.explorer import DSEPoint, explore
from repro.dse.frontier import ParetoFrontier, brute_force_frontier
from repro.hw.mapping import MappingConfig
from repro.hw.resources import ResourceVector


def _point(ii: int, dsp: float) -> DSEPoint:
    return DSEPoint(mapping=MappingConfig(), ii_cycles=ii,
                    resources=ResourceVector(dsp=dsp))


def _as_pairs(points):
    return [(p.ii_cycles, p.resources.dsp) for p in points]


class TestParetoFrontier:
    def test_empty(self):
        assert ParetoFrontier().points() == []
        assert brute_force_frontier([]) == []

    def test_single_point(self):
        frontier = ParetoFrontier([_point(10, 5)])
        assert _as_pairs(frontier.points()) == [(10, 5.0)]

    def test_dominated_point_rejected(self):
        frontier = ParetoFrontier()
        assert frontier.add(_point(10, 5))
        assert not frontier.add(_point(12, 6))
        assert _as_pairs(frontier.points()) == [(10, 5.0)]

    def test_dominating_point_evicts(self):
        frontier = ParetoFrontier([_point(10, 5), _point(8, 7)])
        assert frontier.add(_point(8, 5))
        assert _as_pairs(frontier.points()) == [(8, 5.0)]

    def test_duplicate_objective_keeps_first(self):
        first, second = _point(10, 5), _point(10, 5)
        frontier = ParetoFrontier([first])
        assert not frontier.add(second)
        assert frontier.points() == [first]

    def test_incomparable_points_coexist(self):
        frontier = ParetoFrontier([_point(10, 5), _point(8, 7), _point(6, 9)])
        assert len(frontier) == 3

    def test_matches_brute_force_on_random_traces(self):
        rng = random.Random(1234)
        for trial in range(50):
            trace = [_point(rng.randint(1, 30), float(rng.randint(1, 30)))
                     for _ in range(rng.randint(1, 60))]
            incremental = ParetoFrontier(trace).points()
            assert _as_pairs(incremental) == \
                _as_pairs(brute_force_frontier(trace)), f"trial {trial}"

    def test_rejection_is_permanent_and_correct(self):
        # q dominates p; later r evicts q.  Transitivity means r also
        # dominates p, so rejecting p permanently matches brute force.
        trace = [_point(5, 5), _point(6, 5), _point(5, 4)]
        assert _as_pairs(ParetoFrontier(trace).points()) == \
            _as_pairs(brute_force_frontier(trace)) == [(5, 4.0)]


@pytest.mark.parametrize("model_name", ["tc1", "lenet"])
def test_explorer_trace_matches_brute_force(model_name, zoo_model):
    result = explore(zoo_model(model_name))
    assert len(result.explored) >= 1
    assert _as_pairs(result.pareto_frontier) == \
        _as_pairs(brute_force_frontier(result.explored))
    # the frontier is non-dominated and sorted by II
    frontier = result.pareto_frontier
    assert frontier == sorted(frontier, key=lambda p: p.ii_cycles)
    for p in frontier:
        assert not any(q.dominates(p) for q in result.explored)
