"""Design-space exploration tests."""

import pytest

from repro.dse.explorer import explore
from repro.dse.space import fusion_candidates, parallelism_moves
from repro.errors import DSEError
from repro.frontend.condor_format import CondorModel, DeploymentOption
from repro.frontend.zoo import lenet_model, tc1_model
from repro.hw.accelerator import build_accelerator
from repro.hw.calibration import Calibration
from repro.hw.mapping import default_mapping, validate_mapping
from repro.hw.perf import estimate_performance


def features_model(base):
    return CondorModel(network=base.network.features_subnetwork(),
                       board=base.board, frequency_hz=base.frequency_hz,
                       deployment=DeploymentOption.ON_PREMISE)


class TestFusionCandidates:
    def test_three_points(self):
        net = tc1_model().network
        configs = fusion_candidates(net)
        assert len(configs) == 3
        for config in configs:
            validate_mapping(net, config)
        sizes = [len(c.pes) for c in configs]
        assert sizes[0] > sizes[1] > sizes[2]

    def test_classifier_never_fused_with_features(self):
        net = lenet_model().network
        for config in fusion_candidates(net):
            for pe in config.pes:
                stages = {net.stage_of(name).value
                          for name in pe.layer_names}
                assert len(stages) == 1


class TestParallelismMoves:
    def test_conv_moves(self):
        net = lenet_model().network
        config = default_mapping(net)
        conv2 = config.pe_of("conv2")
        moves = parallelism_moves(net, config, conv2, max_ports=16)
        degrees = {(m.pe_of("conv2").in_parallel,
                    m.pe_of("conv2").out_parallel) for m in moves}
        assert degrees == {(1, 2), (2, 1)}

    def test_moves_respect_channel_caps(self):
        net = tc1_model().network
        config = default_mapping(net)
        conv1 = config.pe_of("conv1")  # 1 input channel
        moves = parallelism_moves(net, config, conv1, max_ports=16)
        assert all(m.pe_of("conv1").in_parallel == 1 for m in moves)

    def test_fc_has_no_moves(self):
        net = lenet_model().network
        config = default_mapping(net)
        assert parallelism_moves(net, config, config.pe_of("ip1"),
                                 max_ports=16) == []

    def test_pool_moves_keep_in_eq_out(self):
        net = lenet_model().network
        config = default_mapping(net)
        moves = parallelism_moves(net, config, config.pe_of("pool1"),
                                  max_ports=16)
        assert moves
        for move in moves:
            pe = move.pe_of("pool1")
            assert pe.in_parallel == pe.out_parallel

    def test_max_ports_respected(self):
        net = lenet_model().network
        config = default_mapping(net)
        conv2 = config.pe_of("conv2")
        # crank the starting parallelism up to the cap
        from repro.hw.mapping import PEMapping
        at_cap = PEMapping(conv2.name, conv2.layer_names, in_parallel=4,
                           out_parallel=4)
        config.pes[config.pes.index(conv2)] = at_cap
        moves = parallelism_moves(net, config, at_cap, max_ports=4)
        assert moves == []


class TestExplorer:
    def test_improves_over_baseline(self):
        model = features_model(lenet_model())
        result = explore(model)
        baseline = estimate_performance(
            build_accelerator(model, default_mapping(model.network)))
        assert result.performance.ii_cycles < baseline.ii_cycles / 5
        validate_mapping(model.network, result.mapping)

    def test_respects_dsp_budget(self):
        model = features_model(lenet_model())
        cal = Calibration(dse_dsp_budget_fraction=0.10)
        small = explore(model, cal=cal)
        big = explore(model)
        device_dsp = 6840
        assert small.resources.dsp <= 0.10 * device_dsp
        assert small.performance.ii_cycles >= big.performance.ii_cycles

    def test_explored_history_monotone(self):
        result = explore(features_model(tc1_model()))
        iis = [p.ii_cycles for p in result.explored]
        assert all(a >= b for a, b in zip(iis, iis[1:]))
        assert result.steps >= len(result.explored) - 1

    def test_pareto_frontier(self):
        result = explore(features_model(lenet_model()))
        frontier = result.pareto_frontier
        assert frontier
        # frontier sorted by II, DSP must strictly decrease along it
        iis = [p.ii_cycles for p in frontier]
        dsps = [p.resources.dsp for p in frontier]
        assert iis == sorted(iis)
        assert all(a > b for a, b in zip(dsps, dsps[1:])) or len(dsps) == 1

    def test_full_lenet_blocked_by_fc(self):
        """On the full LeNet the serial ip1 PE caps the pipeline: the
        explorer cannot beat its 400k cycles (the paper's motivation for
        evaluating the improved methodology on features extraction
        only)."""
        result = explore(lenet_model(DeploymentOption.ON_PREMISE))
        assert result.performance.ii_cycles == 400_000

    def test_infeasible_baseline_raises(self):
        model = lenet_model(DeploymentOption.ON_PREMISE)
        model.board = "pynq-z1"  # LeNet's FC weights exceed the 7020
        with pytest.raises(DSEError, match="exceeds"):
            explore(model)

    def test_max_steps_limits_work(self):
        result = explore(features_model(lenet_model()), max_steps=2)
        assert result.steps <= 2


class TestExplorerProperties:
    """Hypothesis-driven invariants of the explorer."""

    def test_random_networks_explore_cleanly(self):
        from hypothesis import HealthCheck, given, settings, strategies as st

        from repro.hw.resources import device_for_board

        @settings(max_examples=12, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])
        @given(seed=st.integers(0, 2**31))
        def run(seed):
            import numpy as np

            from repro.ir.layers import ConvLayer, PoolLayer
            from repro.ir.network import chain

            rng = np.random.default_rng(seed)
            size = int(rng.choice([12, 16, 24]))
            layers = [ConvLayer("c1", num_output=int(rng.integers(2, 24)),
                                kernel=int(rng.choice([3, 5])))]
            if rng.integers(0, 2):
                layers.append(PoolLayer("p1", kernel=2))
                layers.append(ConvLayer(
                    "c2", num_output=int(rng.integers(2, 32)), kernel=3))
            net = chain(f"dse{seed}", (int(rng.choice([1, 3])), size,
                                       size), layers)
            model = CondorModel(network=net)
            result = explore(model)
            validate_mapping(net, result.mapping)
            device = device_for_board(model.board)
            # budget respected
            from repro.hw.calibration import DEFAULT_CALIBRATION as CAL
            assert result.resources.dsp <= \
                device.capacity.dsp * CAL.dse_dsp_budget_fraction + 1
            # never worse than the sequential baseline
            baseline = estimate_performance(
                build_accelerator(model, default_mapping(net)))
            assert result.performance.ii_cycles <= baseline.ii_cycles

        run()
