"""Condor JSON format tests."""

import json

import pytest

from repro.errors import ParseError, ValidationError
from repro.frontend.condor_format import (
    CondorModel,
    DeploymentOption,
    LayerHints,
    load_condor_json,
    model_from_json,
    model_to_json,
    save_condor_json,
)
from repro.ir.layers import (
    Activation,
    ConvLayer,
    FullyConnectedLayer,
    PoolLayer,
    PoolOp,
    SoftmaxLayer,
)
from repro.ir.network import chain


@pytest.fixture
def model():
    net = chain("tc1", (1, 16, 16), [
        ConvLayer("conv1", num_output=12, kernel=5,
                  activation=Activation.RELU),
        PoolLayer("pool1", op=PoolOp.MAX, kernel=2),
        ConvLayer("conv2", num_output=12, kernel=5),
        PoolLayer("pool2"),
        FullyConnectedLayer("fc", num_output=10),
        SoftmaxLayer("prob"),
    ])
    return CondorModel(
        network=net,
        board="aws-f1-xcvu9p",
        frequency_hz=100e6,
        deployment=DeploymentOption.AWS_F1,
        hints={"conv1": LayerHints(in_ports=1, out_ports=2),
               "conv2": LayerHints(cluster="pe0")},
    )


class TestRoundtrip:
    def test_json_roundtrip(self, model):
        doc = model_to_json(model)
        back = model_from_json(doc)
        assert back.network.name == "tc1"
        assert [l.name for l in back.network] == \
            [l.name for l in model.network]
        assert back.frequency_hz == 100e6
        assert back.deployment is DeploymentOption.AWS_F1
        assert back.hints["conv1"].out_ports == 2
        assert back.hints["conv2"].cluster == "pe0"

    def test_layer_params_preserved(self, model):
        back = model_from_json(model_to_json(model))
        conv1 = back.network["conv1"]
        assert conv1.kernel == (5, 5)
        assert conv1.activation is Activation.RELU
        pool = back.network["pool1"]
        assert pool.op is PoolOp.MAX
        assert back.network["prob"].log is True

    def test_shapes_reinferred(self, model):
        back = model_from_json(model_to_json(model))
        assert back.network.output_shape("conv1") == \
            model.network.output_shape("conv1")

    def test_file_roundtrip(self, model, tmp_path):
        path = save_condor_json(model, tmp_path / "tc1.json")
        back = load_condor_json(path)
        assert back.network.name == "tc1"
        # document is valid, indented JSON
        doc = json.loads(path.read_text())
        assert doc["format_version"] == 1

    def test_frequency_string_accepted(self, model):
        doc = model_to_json(model)
        doc["frequency"] = "180MHz"
        assert model_from_json(doc).frequency_hz == 180e6


class TestValidation:
    def test_hints_for_unknown_layer(self, model):
        with pytest.raises(ValidationError):
            CondorModel(network=model.network,
                        hints={"nope": LayerHints(in_ports=1)})

    def test_bad_ports(self):
        with pytest.raises(ValidationError):
            LayerHints(in_ports=0)

    def test_hint_for_default(self, model):
        hint = model.hint_for("pool1")
        assert hint.in_ports is None and hint.cluster is None

    def test_invalid_network_rejected(self):
        net = chain("bad", (4, 1, 1), [
            SoftmaxLayer("s"),
            FullyConnectedLayer("fc", num_output=2),
        ])
        with pytest.raises(ValidationError):
            CondorModel(network=net)


class TestParseErrors:
    def test_unknown_layer_type(self, model):
        doc = model_to_json(model)
        doc["layers"][1]["type"] = "deconv"
        with pytest.raises(ParseError, match="deconv"):
            model_from_json(doc)

    def test_missing_keys(self):
        with pytest.raises(ParseError):
            model_from_json({"layers": []})
        with pytest.raises(ParseError):
            model_from_json({"name": "x", "layers": []})

    def test_bad_deployment(self, model):
        doc = model_to_json(model)
        doc["deployment"] = "mars"
        with pytest.raises(ParseError, match="deployment"):
            model_from_json(doc)

    def test_bad_frequency(self, model):
        doc = model_to_json(model)
        doc["frequency"] = "fast"
        with pytest.raises(ParseError):
            model_from_json(doc)

    def test_wrong_version(self, model):
        doc = model_to_json(model)
        doc["format_version"] = 99
        with pytest.raises(ParseError, match="format_version"):
            model_from_json(doc)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ParseError):
            load_condor_json(path)

    def test_bad_layer_params(self, model):
        doc = model_to_json(model)
        del doc["layers"][1]["num_output"]
        with pytest.raises(ParseError, match="conv1"):
            model_from_json(doc)
