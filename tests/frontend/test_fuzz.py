"""Fuzz / failure-injection tests.

Invariant: malformed external input (binary caffemodel bytes, prototxt
text, ONNX bytes, xclbin blobs) must either parse or raise a
:class:`~repro.errors.CondorError` subclass — never an arbitrary
exception, never a hang.  These feed hypothesis-generated garbage and
targeted mutations of valid artifacts through every decoder.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import CondorError
from repro.frontend.caffe.caffe_pb import NET_PARAMETER
from repro.frontend.caffe.model import loads_caffemodel, parse_prototxt
from repro.frontend.caffe.schema import decode_message, encode_message
from repro.frontend.onnx import schema as onnx_schema
from repro.frontend.zoo import lenet_caffe_files
from repro.toolchain.xclbin import read_xclbin, write_xclbin, Xclbin

_FUZZ_SETTINGS = settings(max_examples=80, deadline=None,
                          suppress_health_check=[HealthCheck.too_slow])


class TestWireFuzz:
    @_FUZZ_SETTINGS
    @given(st.binary(max_size=300))
    def test_random_bytes_never_crash_decoder(self, data):
        try:
            loads_caffemodel(data)
        except CondorError:
            pass

    @_FUZZ_SETTINGS
    @given(st.binary(max_size=300))
    def test_random_bytes_never_crash_onnx_decoder(self, data):
        try:
            decode_message(onnx_schema.MODEL_PROTO, data)
        except CondorError:
            pass

    @pytest.fixture(scope="class")
    def valid_caffemodel(self, tmp_path_factory):
        _, path = lenet_caffe_files(tmp_path_factory.mktemp("caffe"))
        return path.read_bytes()

    def test_truncations_of_valid_model(self, valid_caffemodel):
        # every truncation point of the header region must fail cleanly
        # or parse a prefix (partial messages are legal protobuf)
        for cut in range(0, 200, 7):
            data = valid_caffemodel[:cut]
            try:
                loads_caffemodel(data)
            except CondorError:
                pass

    def test_bitflips_of_valid_model(self, valid_caffemodel):
        rng = np.random.default_rng(0)
        blob = bytearray(valid_caffemodel[:4096])
        for _ in range(60):
            index = int(rng.integers(0, len(blob)))
            mutated = bytearray(blob)
            mutated[index] ^= 1 << int(rng.integers(0, 8))
            try:
                loads_caffemodel(bytes(mutated))
            except CondorError:
                pass

    def test_decode_encode_idempotent_on_valid(self, valid_caffemodel):
        msg = loads_caffemodel(valid_caffemodel)
        again = loads_caffemodel(encode_message(msg))
        assert again == msg


class TestTextFuzz:
    @_FUZZ_SETTINGS
    @given(st.text(max_size=200))
    def test_random_text_never_crashes_parser(self, text):
        try:
            parse_prototxt(text)
        except CondorError:
            pass

    @_FUZZ_SETTINGS
    @given(st.text(alphabet="layer{}:\"name type\n 0123456789", max_size=120))
    def test_structured_garbage(self, text):
        try:
            parse_prototxt(text)
        except CondorError:
            pass

    def test_deeply_nested_input(self):
        # deep but bounded nesting parses or errors without blowing the
        # recursion limit for realistic depths
        text = 'layer { ' * 40 + 'name: "x"' + ' }' * 40
        try:
            parse_prototxt(text)
        except CondorError:
            pass


class TestXclbinFuzz:
    @_FUZZ_SETTINGS
    @given(st.binary(max_size=300))
    def test_random_bytes_never_crash_reader(self, data):
        try:
            read_xclbin(data)
        except CondorError:
            pass

    @_FUZZ_SETTINGS
    @given(st.integers(8, 200), st.integers(0, 7))
    def test_bitflips_detected_or_clean(self, index, bit):
        blob = bytearray(write_xclbin(Xclbin(
            kernel_name="k", part="xcvu9p", frequency_hz=1e8,
            sections={b"META": b"{}", b"BITS": b"\x01" * 64})))
        if index >= len(blob):
            return
        blob[index] ^= 1 << bit
        try:
            xclbin = read_xclbin(bytes(blob))
            # if it parsed, the payloads must be internally consistent
            assert set(xclbin.sections) <= {b"META", b"RSRC", b"NETW",
                                            b"BITS", b"MAPG"}
        except CondorError:
            pass
