"""Protobuf wire format tests, including round-trip properties."""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.errors import WireFormatError
from repro.frontend.caffe import wire
from repro.frontend.caffe.wire import WireType


class TestVarint:
    @pytest.mark.parametrize("value,encoded", [
        (0, b"\x00"),
        (1, b"\x01"),
        (127, b"\x7f"),
        (128, b"\x80\x01"),
        (300, b"\xac\x02"),           # the canonical protobuf doc example
        (2 ** 64 - 1, b"\xff" * 9 + b"\x01"),
    ])
    def test_known_encodings(self, value, encoded):
        assert wire.encode_varint(value) == encoded
        assert wire.decode_varint(encoded) == (value, len(encoded))

    def test_negative_rejected(self):
        with pytest.raises(WireFormatError):
            wire.encode_varint(-1)

    def test_too_large_rejected(self):
        with pytest.raises(WireFormatError):
            wire.encode_varint(1 << 64)

    def test_truncated(self):
        with pytest.raises(WireFormatError):
            wire.decode_varint(b"\x80")

    def test_overlong_rejected(self):
        with pytest.raises(WireFormatError):
            wire.decode_varint(b"\x80" * 11 + b"\x01")

    @given(st.integers(0, 2 ** 64 - 1))
    def test_roundtrip(self, value):
        encoded = wire.encode_varint(value)
        assert wire.decode_varint(encoded) == (value, len(encoded))

    @given(st.integers(0, 2 ** 64 - 1), st.binary(max_size=8))
    def test_roundtrip_with_suffix(self, value, suffix):
        encoded = wire.encode_varint(value)
        decoded, pos = wire.decode_varint(encoded + suffix)
        assert decoded == value and pos == len(encoded)


class TestSignedVarint:
    @given(st.integers(-(2 ** 63), 2 ** 63 - 1))
    def test_roundtrip(self, value):
        encoded = wire.encode_signed_varint(value)
        assert wire.decode_signed_varint(encoded) == (value, len(encoded))

    def test_negative_takes_ten_bytes(self):
        # protobuf quirk: int32 -1 occupies 10 bytes on the wire
        assert len(wire.encode_signed_varint(-1)) == 10


class TestZigzag:
    @pytest.mark.parametrize("signed,unsigned", [
        (0, 0), (-1, 1), (1, 2), (-2, 3), (2, 4), (2147483647, 4294967294),
    ])
    def test_known_pairs(self, signed, unsigned):
        assert wire.zigzag_encode(signed) == unsigned
        assert wire.zigzag_decode(unsigned) == signed

    @given(st.integers(-(2 ** 62), 2 ** 62))
    def test_roundtrip(self, value):
        assert wire.zigzag_decode(wire.zigzag_encode(value)) == value


class TestTags:
    def test_known_tag(self):
        # field 1, varint -> 0x08
        assert wire.encode_tag(1, WireType.VARINT) == b"\x08"
        # field 2, len -> 0x12
        assert wire.encode_tag(2, WireType.LEN) == b"\x12"

    @given(st.integers(1, (1 << 29) - 1),
           st.sampled_from(list(WireType)))
    def test_roundtrip(self, number, wtype):
        encoded = wire.encode_tag(number, wtype)
        assert wire.decode_tag(encoded) == (number, wtype, len(encoded))

    def test_invalid_field_number(self):
        with pytest.raises(WireFormatError):
            wire.encode_tag(0, WireType.VARINT)
        with pytest.raises(WireFormatError):
            wire.decode_tag(b"\x00")  # field 0

    def test_group_wire_types_rejected(self):
        # wire types 3 and 4 (groups) are unsupported
        with pytest.raises(WireFormatError):
            wire.decode_tag(bytes([1 << 3 | 3]))
        with pytest.raises(WireFormatError):
            wire.decode_tag(bytes([1 << 3 | 4]))


class TestFixed:
    @given(st.floats(width=32, allow_nan=False))
    def test_float_roundtrip(self, value):
        encoded = wire.encode_float(value)
        assert len(encoded) == 4
        assert wire.decode_float(encoded)[0] == value

    @given(st.floats(allow_nan=False))
    def test_double_roundtrip(self, value):
        encoded = wire.encode_double(value)
        assert len(encoded) == 8
        assert wire.decode_double(encoded)[0] == value

    def test_float_matches_struct(self):
        assert wire.encode_float(1.5) == struct.pack("<f", 1.5)

    def test_truncated(self):
        with pytest.raises(WireFormatError):
            wire.decode_float(b"\x00\x00")
        with pytest.raises(WireFormatError):
            wire.decode_double(b"\x00" * 7)


class TestLengthDelimited:
    @given(st.binary(max_size=200))
    def test_roundtrip(self, payload):
        encoded = wire.encode_length_delimited(payload)
        assert wire.decode_length_delimited(encoded) == \
            (payload, len(encoded))

    def test_overrun(self):
        with pytest.raises(WireFormatError):
            wire.decode_length_delimited(b"\x05abc")


class TestIterRecords:
    def test_mixed_records(self):
        buf = (wire.encode_tag(1, WireType.VARINT) + wire.encode_varint(7) +
               wire.encode_tag(2, WireType.LEN) +
               wire.encode_length_delimited(b"hi") +
               wire.encode_tag(3, WireType.I32) + wire.encode_float(1.0) +
               wire.encode_tag(4, WireType.I64) + wire.encode_double(2.0))
        records = list(wire.iter_records(buf))
        assert records[0] == (1, WireType.VARINT, 7)
        assert records[1] == (2, WireType.LEN, b"hi")
        assert wire.decode_float(records[2][2])[0] == 1.0
        assert wire.decode_double(records[3][2])[0] == 2.0

    def test_truncated_fixed(self):
        buf = wire.encode_tag(3, WireType.I32) + b"\x00\x00"
        with pytest.raises(WireFormatError):
            list(wire.iter_records(buf))

    def test_empty_buffer(self):
        assert list(wire.iter_records(b"")) == []
