"""ONNX frontend tests: schema, export/import round trip, conversion."""

import numpy as np
import pytest

from repro.errors import SchemaError, UnsupportedLayerError, ValidationError
from repro.frontend.caffe.schema import Message, decode_message, encode_message
from repro.frontend.onnx import (
    convert_onnx_model,
    export_onnx,
    load_onnx,
    save_onnx,
)
from repro.frontend.onnx import schema as S
from repro.frontend.onnx.convert import _tensor_to_array
from repro.frontend.weights import WeightStore
from repro.frontend.zoo import lenet_network, tc1_network, vgg16_network
from repro.ir.layers import (
    Activation,
    ConvLayer,
    FullyConnectedLayer,
    PoolLayer,
    PoolOp,
)
from repro.ir.network import chain
from repro.nn.engine import ReferenceEngine


class TestSchema:
    def test_model_roundtrips_wire_format(self):
        model = S.new_model()
        graph = Message(S.GRAPH_PROTO)
        graph.name = "g"
        node = graph.add("node")
        node.op_type = "Relu"
        node.input = ["x"]
        node.output = ["y"]
        model.graph = graph
        back = decode_message(S.MODEL_PROTO, encode_message(model))
        assert back.graph.name == "g"
        assert back.graph.node[0].op_type == "Relu"
        assert back.producer_name == "condor"

    def test_tensor_raw_data(self):
        array = np.arange(6, dtype=np.float32).reshape(2, 3)
        tensor = Message(S.TENSOR_PROTO)
        tensor.dims = [2, 3]
        tensor.data_type = S.TENSOR_DATA_TYPE.number_of("FLOAT")
        tensor.raw_data = array.tobytes()
        np.testing.assert_array_equal(_tensor_to_array(tensor), array)

    def test_tensor_float_data(self):
        tensor = Message(S.TENSOR_PROTO)
        tensor.dims = [3]
        tensor.data_type = S.TENSOR_DATA_TYPE.number_of("FLOAT")
        tensor.float_data = [1.0, 2.0, 3.0]
        np.testing.assert_array_equal(_tensor_to_array(tensor), [1, 2, 3])

    def test_tensor_size_mismatch(self):
        tensor = Message(S.TENSOR_PROTO)
        tensor.dims = [4]
        tensor.data_type = S.TENSOR_DATA_TYPE.number_of("FLOAT")
        tensor.float_data = [1.0]
        with pytest.raises(SchemaError):
            _tensor_to_array(tensor)


class TestRoundtrip:
    @pytest.mark.parametrize("netf", [tc1_network, lenet_network])
    def test_functional_equivalence(self, netf, tmp_path):
        net = netf()
        weights = WeightStore.initialize(net, 4)
        path = save_onnx(net, tmp_path / "m.onnx", weights)
        converted = convert_onnx_model(load_onnx(path))
        x = np.random.default_rng(0).normal(
            size=net.input_shape().as_tuple()).astype(np.float32)
        original = ReferenceEngine(net, weights).forward(x)
        back = ReferenceEngine(converted.network,
                               converted.weights).forward(x)
        np.testing.assert_array_equal(original, back)

    def test_vgg16_exports(self, tmp_path):
        net = vgg16_network(include_classifier=False)
        model = export_onnx(net)  # zero weights
        assert len(model.graph.node) >= 13 + 5 + 13  # convs+pools+relus

    def test_activation_fused_back(self, tmp_path):
        net = tc1_network()
        weights = WeightStore.initialize(net, 1)
        converted = convert_onnx_model(
            export_onnx(net, weights))
        conv1 = converted.network["conv1"]
        assert conv1.activation is Activation.RELU

    def test_shapes_preserved(self):
        net = lenet_network()
        converted = convert_onnx_model(
            export_onnx(net, WeightStore.initialize(net)))
        assert converted.network.input_shape() == net.input_shape()
        assert converted.network.output_shape() == net.output_shape()


class TestConversionDetails:
    def _model(self, net, weights=None):
        return export_onnx(net, weights or WeightStore.initialize(net, 0))

    def test_conv_attributes(self):
        net = chain("n", (1, 9, 9), [
            ConvLayer("c", num_output=2, kernel=3, stride=2, pad=1)])
        converted = convert_onnx_model(self._model(net))
        conv = converted.network["c"]
        assert conv.kernel == (3, 3)
        assert conv.stride == (2, 2)
        assert conv.pad == (1, 1)

    def test_avg_pool(self):
        net = chain("n", (2, 8, 8), [
            PoolLayer("p", op=PoolOp.AVG, kernel=2)])
        converted = convert_onnx_model(self._model(net, WeightStore()))
        assert converted.network["p"].op is PoolOp.AVG

    def test_gemm_without_transb(self):
        # hand-build a Gemm node with transB=0 (weights stored K x N)
        net = chain("n", (4, 1, 1), [
            FullyConnectedLayer("fc", num_output=3)])
        weights = WeightStore.initialize(net, 2)
        model = export_onnx(net, weights)
        gemm = next(n for n in model.graph.node if n.op_type == "Gemm")
        attr = next(a for a in gemm.attribute if a.name == "transB")
        attr.i = 0
        for init in model.graph.initializer:
            if init.name == "fc.weight":
                w = np.frombuffer(init.raw_data,
                                  dtype="<f4").reshape(3, 4)
                init.raw_data = np.ascontiguousarray(w.T).tobytes()
                init.dims = [4, 3]
        converted = convert_onnx_model(model)
        np.testing.assert_allclose(converted.weights.get("fc", "weights"),
                                   weights.get("fc", "weights"))

    def test_unsupported_op(self):
        net = chain("n", (1, 8, 8), [
            ConvLayer("c", num_output=2, kernel=3)])
        model = self._model(net)
        model.graph.node[0].op_type = "LRN"
        with pytest.raises(UnsupportedLayerError, match="LRN"):
            convert_onnx_model(model)

    def test_non_chain_rejected(self):
        net = chain("n", (1, 8, 8), [
            ConvLayer("c", num_output=2, kernel=3)])
        model = self._model(net)
        model.graph.node[0].input = ["something_else", "c.weight",
                                     "c.bias"]
        with pytest.raises(ValidationError, match="chain"):
            convert_onnx_model(model)

    def test_missing_graph(self):
        model = S.new_model()
        with pytest.raises(SchemaError, match="no graph"):
            convert_onnx_model(model)

    def test_grouped_conv_unsupported(self):
        net = chain("n", (2, 8, 8), [
            ConvLayer("c", num_output=2, kernel=3)])
        model = self._model(net)
        from repro.frontend.onnx.export import _attr_int
        node = model.graph.node[0]
        node.attribute = list(node.attribute) + [_attr_int("group", 2)]
        with pytest.raises(UnsupportedLayerError, match="grouped"):
            convert_onnx_model(model)

    def test_dropout_skipped(self):
        net = chain("n", (4, 1, 1), [
            FullyConnectedLayer("fc", num_output=3)])
        model = self._model(net)
        # splice a Dropout between input and Gemm
        drop = Message(S.NODE_PROTO)
        drop.op_type = "Dropout"
        drop.name = "drop"
        gemm = model.graph.node[-1]
        drop.input = [gemm.input[0]]
        drop.output = ["dropped"]
        gemm.input = ["dropped"] + list(gemm.input)[1:]
        model.graph.node = [drop] + list(model.graph.node)
        converted = convert_onnx_model(model)
        assert "drop" not in converted.network
        assert "fc" in converted.network
