"""Preprocessor (transform_param) tests."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.frontend.caffe.converter import (
    convert_caffe_model,
    extract_preprocessor,
)
from repro.frontend.caffe.model import parse_prototxt
from repro.frontend.preprocess import Preprocessor


class TestPreprocessor:
    def test_identity(self):
        pre = Preprocessor()
        assert pre.is_identity
        x = np.random.default_rng(0).normal(size=(3, 8, 8)) \
            .astype(np.float32)
        np.testing.assert_array_equal(pre.apply(x), x)

    def test_scale(self):
        pre = Preprocessor(scale=1 / 256.0)
        x = np.full((1, 2, 2), 256.0, dtype=np.float32)
        np.testing.assert_allclose(pre.apply(x), 1.0)

    def test_single_mean_broadcasts(self):
        pre = Preprocessor(mean_values=(10.0,))
        x = np.full((3, 2, 2), 15.0, dtype=np.float32)
        np.testing.assert_allclose(pre.apply(x), 5.0)

    def test_per_channel_means(self):
        pre = Preprocessor(mean_values=(1.0, 2.0, 3.0))
        x = np.ones((3, 2, 2), dtype=np.float32)
        out = pre.apply(x)
        np.testing.assert_allclose(out[0], 0.0)
        np.testing.assert_allclose(out[2], -2.0)

    def test_mean_count_mismatch(self):
        pre = Preprocessor(mean_values=(1.0, 2.0))
        with pytest.raises(SchemaError, match="mean values"):
            pre.apply(np.ones((3, 2, 2)))

    def test_center_crop(self):
        pre = Preprocessor(crop_size=2)
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4)
        out = pre.apply(x)
        np.testing.assert_array_equal(out, [[[5, 6], [9, 10]]])

    def test_crop_too_large(self):
        pre = Preprocessor(crop_size=8)
        with pytest.raises(SchemaError, match="crop_size"):
            pre.apply(np.ones((1, 4, 4)))

    def test_order_crop_mean_scale(self):
        pre = Preprocessor(scale=0.5, mean_values=(1.0,), crop_size=2)
        x = np.full((1, 4, 4), 5.0, dtype=np.float32)
        # (5 - 1) * 0.5 = 2
        np.testing.assert_allclose(pre.apply(x), 2.0)

    def test_batch(self):
        pre = Preprocessor(scale=2.0)
        batch = np.ones((4, 1, 2, 2), dtype=np.float32)
        assert pre.apply_batch(batch).shape == (4, 1, 2, 2)

    def test_bad_rank(self):
        with pytest.raises(SchemaError):
            Preprocessor().apply(np.ones((4, 4)))


class TestExtractionFromPrototxt:
    MNIST_STYLE = (
        'name: "t" input: "data" input_dim: [1, 1, 8, 8]\n'
        'layer { name: "c" type: "Convolution" bottom: "data" top: "c"'
        ' transform_param { scale: 0.00390625 }'
        ' convolution_param { num_output: 2 kernel_size: 3 } }')

    def test_scale_extracted(self):
        pre = extract_preprocessor(parse_prototxt(self.MNIST_STYLE))
        assert pre.scale == pytest.approx(1 / 256.0)
        assert not pre.is_identity

    def test_convert_carries_preprocessor(self):
        converted = convert_caffe_model(parse_prototxt(self.MNIST_STYLE))
        assert converted.preprocessor is not None
        assert converted.preprocessor.scale == pytest.approx(1 / 256.0)

    def test_mean_values_extracted(self):
        text = self.MNIST_STYLE.replace(
            "transform_param { scale: 0.00390625 }",
            "transform_param { mean_value: 104 mean_value: 117"
            " mean_value: 123 crop_size: 4 }")
        pre = extract_preprocessor(parse_prototxt(text))
        assert pre.mean_values == (104.0, 117.0, 123.0)
        assert pre.crop_size == 4

    def test_train_only_transform_ignored(self):
        text = (
            'name: "t"\n'
            'layer { name: "d" type: "Data" top: "data"'
            ' include { phase: TRAIN }'
            ' transform_param { scale: 0.5 } }'
            'input: "data" input_dim: [1, 1, 8, 8]\n')
        pre = extract_preprocessor(parse_prototxt(text))
        assert pre.is_identity

    def test_mean_file_rejected(self):
        text = self.MNIST_STYLE.replace(
            "transform_param { scale: 0.00390625 }",
            'transform_param { mean_file: "mean.binaryproto" }')
        with pytest.raises(SchemaError, match="mean_file"):
            extract_preprocessor(parse_prototxt(text))

    def test_no_transform_is_identity(self):
        pre = extract_preprocessor(parse_prototxt(
            'input: "data" input_dim: [1, 1, 4, 4]'))
        assert pre.is_identity
