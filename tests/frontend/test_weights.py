"""Weight store tests."""

import numpy as np
import pytest

from repro.errors import WeightsError
from repro.frontend.weights import WeightStore
from repro.ir.layers import ConvLayer, FullyConnectedLayer, PoolLayer
from repro.ir.network import chain


@pytest.fixture
def net():
    return chain("n", (1, 12, 12), [
        ConvLayer("c1", num_output=4, kernel=3),
        PoolLayer("p1"),
        FullyConnectedLayer("fc", num_output=10),
    ])


class TestAccess:
    def test_set_get(self):
        store = WeightStore()
        store.set("c1", "weights", np.ones((2, 1, 3, 3)))
        assert store.get("c1", "weights").dtype == np.float32
        assert "c1" in store

    def test_missing_raises(self):
        store = WeightStore()
        with pytest.raises(WeightsError):
            store.get("c1", "weights")
        assert store.maybe_get("c1", "weights") is None

    def test_constructor_from_dict(self):
        store = WeightStore({"a": {"weights": np.zeros((2, 2))}})
        assert store.get("a", "weights").shape == (2, 2)

    def test_layers_sorted(self):
        store = WeightStore()
        store.set("b", "weights", np.zeros(1))
        store.set("a", "weights", np.zeros(1))
        assert store.layers() == ["a", "b"]

    def test_total_parameters(self, net):
        store = WeightStore.initialize(net)
        # conv: 4*1*3*3 + 4; fc: 10*(4*5*5) + 10
        assert store.total_parameters() == 36 + 4 + 10 * 100 + 10


class TestInitializeAndValidate:
    def test_initialize_passes_validation(self, net):
        WeightStore.initialize(net).validate(net)

    def test_initialize_deterministic(self, net):
        a = WeightStore.initialize(net, seed=3)
        b = WeightStore.initialize(net, seed=3)
        np.testing.assert_array_equal(a.get("c1", "weights"),
                                      b.get("c1", "weights"))

    def test_initialize_seed_matters(self, net):
        a = WeightStore.initialize(net, seed=3)
        b = WeightStore.initialize(net, seed=4)
        assert not np.array_equal(a.get("c1", "weights"),
                                  b.get("c1", "weights"))

    def test_validate_missing_blob(self, net):
        store = WeightStore.initialize(net)
        del store._blobs["fc"]["bias"]
        with pytest.raises(WeightsError, match="bias"):
            store.validate(net)

    def test_validate_wrong_shape(self, net):
        store = WeightStore.initialize(net)
        store.set("c1", "weights", np.zeros((4, 1, 3, 2), dtype=np.float32))
        with pytest.raises(WeightsError, match="shape"):
            store.validate(net)

    def test_pool_needs_no_weights(self, net):
        store = WeightStore.initialize(net)
        assert "p1" not in store


class TestPersistence:
    def test_roundtrip(self, net, tmp_path):
        store = WeightStore.initialize(net, seed=11)
        store.save(tmp_path / "w")
        loaded = WeightStore.load(tmp_path / "w")
        assert loaded.layers() == store.layers()
        for layer in store.layers():
            for blob, array in store.blobs(layer).items():
                np.testing.assert_array_equal(loaded.get(layer, blob), array)

    def test_slash_in_layer_name(self, tmp_path):
        store = WeightStore()
        store.set("conv1/3x3", "weights", np.ones(3))
        store.save(tmp_path / "w")
        loaded = WeightStore.load(tmp_path / "w")
        np.testing.assert_array_equal(loaded.get("conv1/3x3", "weights"),
                                      np.ones(3, dtype=np.float32))

    def test_load_missing_manifest(self, tmp_path):
        with pytest.raises(WeightsError, match="manifest"):
            WeightStore.load(tmp_path)

    def test_load_missing_file(self, net, tmp_path):
        store = WeightStore.initialize(net)
        store.save(tmp_path / "w")
        (tmp_path / "w" / "c1.weights.npy").unlink()
        with pytest.raises(WeightsError, match="missing file"):
            WeightStore.load(tmp_path / "w")
