"""Caffe exporter tests: export → parse → convert round trips."""

import numpy as np
import pytest

from repro.errors import UnsupportedLayerError
from repro.frontend.caffe.converter import convert_caffe_model
from repro.frontend.caffe.export import export_caffe, save_caffe_files
from repro.frontend.caffe.model import load_caffemodel, load_prototxt
from repro.frontend.weights import WeightStore
from repro.frontend.zoo import cifar10_network, lenet_network, tc1_network
from repro.ir.layers import SoftmaxLayer
from repro.ir.network import Network, chain
from repro.nn.engine import ReferenceEngine


def roundtrip(net, seed=0, tmp_path=None):
    weights = WeightStore.initialize(net, seed)
    prototxt_path, caffemodel_path = save_caffe_files(
        net, tmp_path, weights)
    converted = convert_caffe_model(load_prototxt(prototxt_path),
                                    load_caffemodel(caffemodel_path))
    return weights, converted


@pytest.mark.parametrize("netf", [lenet_network, cifar10_network])
def test_functional_roundtrip(netf, tmp_path):
    net = netf()
    weights, converted = roundtrip(net, seed=3, tmp_path=tmp_path)
    x = np.random.default_rng(0).normal(
        size=net.input_shape().as_tuple()).astype(np.float32)
    original = ReferenceEngine(net, weights).forward(x)
    back = ReferenceEngine(converted.network,
                           converted.weights).forward(x)
    np.testing.assert_array_equal(original, back)


def test_fused_activation_becomes_inplace_layer(tmp_path):
    net = lenet_network()  # ip1 carries a fused ReLU
    model = export_caffe(net)
    act_layers = [l for l in model.layer if l.type == "ReLU"]
    assert len(act_layers) == 1
    for layer in act_layers:
        assert list(layer.bottom) == list(layer.top)  # in-place


def test_logsoftmax_rejected(tmp_path):
    net = tc1_network()  # ends in LogSoftmax
    with pytest.raises(UnsupportedLayerError, match="LogSoftmax"):
        export_caffe(net)


def test_prototxt_has_no_blobs(tmp_path):
    net = lenet_network()
    prototxt_path, _ = save_caffe_files(net, tmp_path,
                                        WeightStore.initialize(net))
    text = prototxt_path.read_text()
    assert "data:" not in text  # topology file carries no weights
    assert 'type: "Convolution"' in text


def test_rectangular_params_roundtrip(tmp_path):
    from repro.ir.layers import ConvLayer, PoolLayer

    net = chain("rect", (1, 12, 16), [
        ConvLayer("c", num_output=2, kernel=(3, 5), stride=(1, 2),
                  pad=(1, 2)),
        PoolLayer("p", kernel=(2, 3), stride=(2, 3)),
    ])
    weights, converted = roundtrip(net, tmp_path=tmp_path)
    conv = converted.network["c"]
    assert conv.kernel == (3, 5)
    assert conv.stride == (1, 2)
    assert conv.pad == (1, 2)
    assert converted.network["p"].kernel == (2, 3)


def test_no_bias_preserved(tmp_path):
    from repro.ir.layers import ConvLayer

    net = chain("nb", (1, 8, 8), [
        ConvLayer("c", num_output=2, kernel=3, bias=False)])
    _, converted = roundtrip(net, tmp_path=tmp_path)
    assert converted.network["c"].bias is False
