"""Protobuf text format parser/serializer tests."""

import pytest

from repro.errors import ParseError
from repro.frontend.caffe import caffe_pb
from repro.frontend.caffe.schema import Message
from repro.frontend.caffe.textformat import (
    TokenKind,
    format_text,
    parse_text,
    tokenize,
)


class TestTokenizer:
    def test_basic_tokens(self):
        tokens = tokenize('name: "x" num: 5 { }')
        kinds = [t.kind for t in tokens]
        assert kinds == [TokenKind.IDENT, TokenKind.PUNCT, TokenKind.STRING,
                         TokenKind.IDENT, TokenKind.PUNCT, TokenKind.NUMBER,
                         TokenKind.PUNCT, TokenKind.PUNCT, TokenKind.EOF]

    def test_comments_skipped(self):
        tokens = tokenize("a: 1 # comment\nb: 2")
        assert [t.text for t in tokens[:-1]] == ["a", ":", "1", "b", ":", "2"]

    def test_line_numbers(self):
        tokens = tokenize("a: 1\nbb: 2\n cc: 3")
        by_text = {t.text: t for t in tokens}
        assert by_text["a"].line == 1
        assert by_text["bb"].line == 2
        assert by_text["cc"].line == 3 and by_text["cc"].column == 2

    def test_numbers(self):
        texts = [t.text for t in tokenize("1 -2 3.5 .5 1e-3 0x1F 2.")[:-1]]
        assert texts == ["1", "-2", "3.5", ".5", "1e-3", "0x1F", "2."]

    def test_garbage_rejected(self):
        with pytest.raises(ParseError) as exc:
            tokenize("a: @")
        assert exc.value.line == 1


class TestParser:
    def test_scalar_fields(self):
        msg = parse_text('name: "net" input: "data" input_dim: 1',
                         caffe_pb.NET_PARAMETER)
        assert msg.name == "net"
        assert msg.input == ["data"]
        assert msg.input_dim == [1]

    def test_nested_message_with_and_without_colon(self):
        for sep in ("", ":"):
            text = f'layer {sep} {{ name: "c" type: "Convolution" }}'
            msg = parse_text(text, caffe_pb.NET_PARAMETER)
            assert msg.layer[0].name == "c"

    def test_angle_brackets(self):
        msg = parse_text('layer < name: "c" >', caffe_pb.NET_PARAMETER)
        assert msg.layer[0].name == "c"

    def test_repeated_accumulates(self):
        msg = parse_text("input_dim: 1 input_dim: 2 input_dim: 3",
                         caffe_pb.NET_PARAMETER)
        assert msg.input_dim == [1, 2, 3]

    def test_list_syntax(self):
        msg = parse_text("input_dim: [1, 2, 3]", caffe_pb.NET_PARAMETER)
        assert msg.input_dim == [1, 2, 3]

    def test_empty_list(self):
        msg = parse_text("input_dim: []", caffe_pb.NET_PARAMETER)
        assert msg.input_dim == []

    def test_list_on_scalar_rejected(self):
        with pytest.raises(ParseError):
            parse_text('name: ["a"]', caffe_pb.NET_PARAMETER)

    def test_enum_by_name_and_number(self):
        msg = parse_text("pool: MAX kernel_size: 2",
                         caffe_pb.POOLING_PARAMETER)
        assert msg.pool == 0
        msg = parse_text("pool: 1", caffe_pb.POOLING_PARAMETER)
        assert msg.pool == 1

    def test_unknown_enum_name(self):
        with pytest.raises(ParseError):
            parse_text("pool: MEDIAN", caffe_pb.POOLING_PARAMETER)

    def test_bool_variants(self):
        for text, value in [("true", True), ("false", False), ("1", True),
                            ("0", False)]:
            msg = parse_text(f"bias_term: {text}",
                             caffe_pb.CONVOLUTION_PARAMETER)
            assert msg.bias_term is value

    def test_string_escapes(self):
        msg = parse_text(r'name: "a\nb\t\"c\\"', caffe_pb.NET_PARAMETER)
        assert msg.name == 'a\nb\t"c\\'

    def test_adjacent_strings_concatenate(self):
        msg = parse_text('name: "foo" "bar"', caffe_pb.NET_PARAMETER)
        assert msg.name == "foobar"

    def test_single_quoted_strings(self):
        msg = parse_text("name: 'hi'", caffe_pb.NET_PARAMETER)
        assert msg.name == "hi"

    def test_unknown_field_rejected_with_location(self):
        with pytest.raises(ParseError) as exc:
            parse_text("\n\n zzz: 3", caffe_pb.NET_PARAMETER)
        assert exc.value.line == 3

    def test_missing_colon_for_scalar(self):
        with pytest.raises(ParseError):
            parse_text('name "x"', caffe_pb.NET_PARAMETER)

    def test_unterminated_message(self):
        with pytest.raises(ParseError):
            parse_text('layer { name: "c"', caffe_pb.NET_PARAMETER)

    def test_float_f_suffix(self):
        msg = parse_text("lr_mult: 1.5f", caffe_pb.PARAM_SPEC)
        assert msg.lr_mult == 1.5

    def test_negative_unsigned_rejected(self):
        with pytest.raises(ParseError):
            parse_text("num_output: -2", caffe_pb.CONVOLUTION_PARAMETER)

    def test_separators_tolerated(self):
        msg = parse_text("input_dim: 1, input_dim: 2;",
                         caffe_pb.NET_PARAMETER)
        assert msg.input_dim == [1, 2]


class TestSerializer:
    def test_roundtrip_simple(self):
        msg = parse_text('name: "n" input: "data" input_dim: [1, 1, 8, 8]',
                         caffe_pb.NET_PARAMETER)
        text = format_text(msg)
        back = parse_text(text, caffe_pb.NET_PARAMETER)
        assert back == msg

    def test_roundtrip_nested(self):
        net = caffe_pb.new_net("x")
        layer = net.add("layer")
        layer.set_fields(name="conv", type="Convolution",
                         bottom=["data"], top=["conv"])
        conv = Message(caffe_pb.CONVOLUTION_PARAMETER, num_output=8,
                       kernel_size=[3], bias_term=False)
        layer.convolution_param = conv
        back = parse_text(format_text(net), caffe_pb.NET_PARAMETER)
        assert back == net

    def test_bool_and_enum_formatting(self):
        pool = Message(caffe_pb.POOLING_PARAMETER, pool=1,
                       global_pooling=True)
        text = format_text(pool)
        assert "pool: AVE" in text
        assert "global_pooling: true" in text

    def test_string_quoting(self):
        net = caffe_pb.new_net('we"ird\nname')
        back = parse_text(format_text(net), caffe_pb.NET_PARAMETER)
        assert back.name == 'we"ird\nname'

    def test_indentation(self):
        net = caffe_pb.new_net("x")
        net.add("layer").name = "c"
        lines = format_text(net).splitlines()
        assert lines[1] == "layer {"
        assert lines[2].startswith("  name:")
