"""Caffe file IO + blob conversion tests."""

import numpy as np
import pytest

from repro.errors import SchemaError, WeightsError
from repro.frontend.caffe import caffe_pb
from repro.frontend.caffe.model import (
    array_to_blob,
    blob_to_array,
    dumps_caffemodel,
    load_caffemodel,
    load_prototxt,
    loads_caffemodel,
    parse_prototxt,
    save_caffemodel,
    save_prototxt,
)
from repro.frontend.caffe.schema import Message


class TestBlobConversion:
    def test_modern_shape_roundtrip(self):
        array = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
        blob = array_to_blob(array)
        np.testing.assert_array_equal(blob_to_array(blob), array)

    def test_legacy_roundtrip(self):
        array = np.arange(12, dtype=np.float32).reshape(3, 4)
        blob = array_to_blob(array, legacy=True)
        assert blob.num == 1 and blob.channels == 1
        assert blob.height == 3 and blob.width == 4
        out = blob_to_array(blob)
        assert out.shape == (1, 1, 3, 4)
        np.testing.assert_array_equal(out.reshape(3, 4), array)

    def test_legacy_rank_limit(self):
        with pytest.raises(WeightsError):
            array_to_blob(np.zeros((1, 1, 1, 1, 2)), legacy=True)

    def test_double_data_preferred(self):
        blob = Message(caffe_pb.BLOB_PROTO)
        blob.double_data = [1.0, 2.0]
        shape = Message(caffe_pb.BLOB_SHAPE, dim=[2])
        blob.shape = shape
        out = blob_to_array(blob)
        assert out.dtype == np.float64
        np.testing.assert_array_equal(out, [1.0, 2.0])

    def test_size_mismatch_rejected(self):
        blob = Message(caffe_pb.BLOB_PROTO, data=[1.0, 2.0, 3.0])
        blob.shape = Message(caffe_pb.BLOB_SHAPE, dim=[2])
        with pytest.raises(WeightsError):
            blob_to_array(blob)

    def test_shapeless_blob_is_flat(self):
        blob = Message(caffe_pb.BLOB_PROTO, data=[1.0, 2.0])
        assert blob_to_array(blob).shape == (2,)


class TestFileIO:
    def test_prototxt_roundtrip(self, tmp_path):
        net = parse_prototxt('name: "n" input: "data"'
                             ' input_dim: [1, 1, 4, 4]')
        path = save_prototxt(net, tmp_path / "n.prototxt")
        assert load_prototxt(path) == net

    def test_caffemodel_roundtrip(self, tmp_path):
        net = caffe_pb.new_net("m")
        layer = net.add("layer")
        layer.name = "c"
        layer.add("blobs").data = [1.0, 2.0]
        path = save_caffemodel(net, tmp_path / "m.caffemodel")
        back = load_caffemodel(path)
        assert back == net
        assert loads_caffemodel(dumps_caffemodel(net)) == net

    def test_wrong_message_type_rejected(self, tmp_path):
        blob = Message(caffe_pb.BLOB_PROTO)
        with pytest.raises(SchemaError):
            save_caffemodel(blob, tmp_path / "x")
        with pytest.raises(SchemaError):
            save_prototxt(blob, tmp_path / "x")

    def test_caffemodel_is_binary_protobuf(self, tmp_path):
        """The emitted file must be raw wire format (starts with a field-1
        LEN tag for the name when set)."""
        net = caffe_pb.new_net("N")
        data = dumps_caffemodel(net)
        assert data[:3] == b"\x0a\x01N"  # tag(1,LEN) len=1 'N'
