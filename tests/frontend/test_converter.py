"""Caffe -> Condor IR converter tests."""

import numpy as np
import pytest

from repro.errors import (
    SchemaError,
    UnsupportedLayerError,
    ValidationError,
    WeightsError,
)
from repro.frontend.caffe import caffe_pb
from repro.frontend.caffe.converter import (
    convert_caffe_model,
    convert_net,
    extract_weights,
)
from repro.frontend.caffe.model import array_to_blob, parse_prototxt
from repro.frontend.caffe.schema import Message
from repro.ir.layers import (
    Activation,
    ActivationLayer,
    ConvLayer,
    FullyConnectedLayer,
    PoolLayer,
    PoolOp,
    SoftmaxLayer,
)


def proto(text: str):
    return parse_prototxt(text)


BASE = 'name: "t" input: "data" input_dim: [1, 1, 12, 12]\n'


class TestInputDeclaration:
    def test_input_dim(self):
        net = convert_net(proto(BASE))
        assert net.input_shape().as_tuple() == (1, 12, 12)

    def test_input_shape_field(self):
        net = convert_net(proto(
            'input: "data" input_shape { dim: 1 dim: 3 dim: 8 dim: 8 }'))
        assert net.input_shape().as_tuple() == (3, 8, 8)

    def test_input_layer(self):
        net = convert_net(proto(
            'layer { name: "data" type: "Input" top: "data"'
            ' input_param { shape { dim: 1 dim: 2 dim: 6 dim: 6 } } }'))
        assert net.input_shape().as_tuple() == (2, 6, 6)

    def test_flat_input(self):
        net = convert_net(proto(
            'input: "data" input_dim: [1, 64]\n'
            'layer { name: "fc" type: "InnerProduct" bottom: "data"'
            ' top: "fc" inner_product_param { num_output: 4 } }'))
        assert net.input_shape().as_tuple() == (64, 1, 1)

    def test_missing_input_rejected(self):
        with pytest.raises(SchemaError, match="input"):
            convert_net(proto('name: "t"'))

    def test_input_without_dims_rejected(self):
        with pytest.raises(SchemaError):
            convert_net(proto('input: "data"'))


class TestLayerConversion:
    def test_convolution_params(self):
        net = convert_net(proto(BASE +
            'layer { name: "c" type: "Convolution" bottom: "data" top: "c"'
            ' convolution_param { num_output: 8 kernel_size: 3 stride: 2'
            ' pad: 1 bias_term: false } }'))
        conv = net["c"]
        assert isinstance(conv, ConvLayer)
        assert conv.num_output == 8
        assert conv.kernel == (3, 3)
        assert conv.stride == (2, 2)
        assert conv.pad == (1, 1)
        assert conv.bias is False

    def test_conv_hw_params(self):
        net = convert_net(proto(BASE +
            'layer { name: "c" type: "Convolution" bottom: "data" top: "c"'
            ' convolution_param { num_output: 2 kernel_h: 3 kernel_w: 5 } }'))
        assert net["c"].kernel == (3, 5)

    def test_conv_missing_kernel_rejected(self):
        with pytest.raises(SchemaError, match="kernel"):
            convert_net(proto(BASE +
                'layer { name: "c" type: "Convolution" bottom: "data"'
                ' top: "c" convolution_param { num_output: 2 } }'))

    def test_grouped_conv_unsupported(self):
        with pytest.raises(UnsupportedLayerError, match="grouped"):
            convert_net(proto(BASE +
                'layer { name: "c" type: "Convolution" bottom: "data"'
                ' top: "c" convolution_param { num_output: 2'
                ' kernel_size: 3 group: 2 } }'))

    def test_pooling_max_and_ave(self):
        net = convert_net(proto(BASE +
            'layer { name: "p" type: "Pooling" bottom: "data" top: "p"'
            ' pooling_param { pool: AVE kernel_size: 2 stride: 2 } }'))
        pool = net["p"]
        assert isinstance(pool, PoolLayer)
        assert pool.op is PoolOp.AVG

    def test_global_pooling(self):
        net = convert_net(proto(BASE +
            'layer { name: "p" type: "Pooling" bottom: "data" top: "p"'
            ' pooling_param { pool: MAX global_pooling: true } }'))
        pool = net["p"]
        assert pool.kernel == (12, 12)
        assert net.output_shape("p").as_tuple() == (1, 1, 1)

    def test_stochastic_pooling_unsupported(self):
        with pytest.raises(UnsupportedLayerError):
            convert_net(proto(BASE +
                'layer { name: "p" type: "Pooling" bottom: "data" top: "p"'
                ' pooling_param { pool: STOCHASTIC kernel_size: 2 } }'))

    def test_inner_product(self):
        net = convert_net(proto(BASE +
            'layer { name: "fc" type: "InnerProduct" bottom: "data"'
            ' top: "fc" inner_product_param { num_output: 7 } }'))
        assert isinstance(net["fc"], FullyConnectedLayer)
        assert net["fc"].num_output == 7

    def test_softmax_with_loss_degrades(self):
        net = convert_net(proto(BASE +
            'layer { name: "fc" type: "InnerProduct" bottom: "data"'
            ' top: "fc" inner_product_param { num_output: 7 } }'
            'layer { name: "loss" type: "SoftmaxWithLoss" bottom: "fc"'
            ' top: "loss" }'))
        assert isinstance(net["loss"], SoftmaxLayer)

    def test_unsupported_type(self):
        with pytest.raises(UnsupportedLayerError, match="LRN"):
            convert_net(proto(BASE +
                'layer { name: "l" type: "LRN" bottom: "data" top: "l" }'))


class TestFusionAndPruning:
    def test_relu_fused_into_conv(self):
        net = convert_net(proto(BASE +
            'layer { name: "c" type: "Convolution" bottom: "data" top: "c"'
            ' convolution_param { num_output: 2 kernel_size: 3 } }'
            'layer { name: "r" type: "ReLU" bottom: "c" top: "c" }'))
        assert "r" not in net
        assert net["c"].activation is Activation.RELU

    def test_second_activation_stays_standalone(self):
        net = convert_net(proto(BASE +
            'layer { name: "c" type: "Convolution" bottom: "data" top: "c"'
            ' convolution_param { num_output: 2 kernel_size: 3 } }'
            'layer { name: "r" type: "ReLU" bottom: "c" top: "c" }'
            'layer { name: "s" type: "Sigmoid" bottom: "c" top: "c" }'))
        assert isinstance(net["s"], ActivationLayer)
        assert net["s"].kind is Activation.SIGMOID

    def test_activation_after_pool_standalone(self):
        net = convert_net(proto(BASE +
            'layer { name: "p" type: "Pooling" bottom: "data" top: "p"'
            ' pooling_param { pool: MAX kernel_size: 2 stride: 2 } }'
            'layer { name: "t" type: "TanH" bottom: "p" top: "p" }'))
        assert isinstance(net["t"], ActivationLayer)
        assert net["t"].kind is Activation.TANH

    def test_dropout_skipped(self):
        net = convert_net(proto(BASE +
            'layer { name: "fc" type: "InnerProduct" bottom: "data"'
            ' top: "fc" inner_product_param { num_output: 7 } }'
            'layer { name: "drop" type: "Dropout" bottom: "fc" top: "fc" }'
            'layer { name: "fc2" type: "InnerProduct" bottom: "fc"'
            ' top: "fc2" inner_product_param { num_output: 3 } }'))
        assert "drop" not in net
        assert "fc2" in net

    def test_train_only_layers_dropped(self):
        net = convert_net(proto(
            'name: "t"\n'
            'layer { name: "mnist" type: "Data" top: "data" top: "label"'
            ' include { phase: TRAIN } }'
            'layer { name: "data" type: "Input" top: "data"'
            ' input_param { shape { dim: 1 dim: 1 dim: 8 dim: 8 } } }'
            'layer { name: "c" type: "Convolution" bottom: "data" top: "c"'
            ' convolution_param { num_output: 2 kernel_size: 3 } }'))
        assert "c" in net

    def test_non_chain_rejected(self):
        with pytest.raises(ValidationError, match="chain"):
            convert_net(proto(BASE +
                'layer { name: "c" type: "Convolution" bottom: "data"'
                ' top: "c" convolution_param { num_output: 2'
                ' kernel_size: 3 } }'
                'layer { name: "c2" type: "Convolution" bottom: "data"'
                ' top: "c2" convolution_param { num_output: 2'
                ' kernel_size: 3 } }'))


class TestLegacyFormat:
    LEGACY = (
        'name: "old" input: "data" input_dim: [1, 1, 8, 8]\n'
        'layers { name: "c" type: CONVOLUTION bottom: "data" top: "c"'
        ' convolution_param { num_output: 2 kernel_size: 3 } }'
        'layers { name: "r" type: RELU bottom: "c" top: "c" }'
        'layers { name: "fc" type: INNER_PRODUCT bottom: "c" top: "fc"'
        ' inner_product_param { num_output: 4 } }'
        'layers { name: "prob" type: SOFTMAX bottom: "fc" top: "prob" }')

    def test_v1_layers_convert(self):
        net = convert_net(proto(self.LEGACY))
        assert [l.name for l in net] == ["data", "c", "fc", "prob"]
        assert net["c"].activation is Activation.RELU

    def test_mixed_formats_rejected(self):
        with pytest.raises(SchemaError, match="mixes"):
            convert_net(proto(
                BASE +
                'layer { name: "a" type: "ReLU" bottom: "data"'
                ' top: "data" }'
                'layers { name: "b" type: RELU bottom: "data"'
                ' top: "data" }'))


class TestWeightExtraction:
    def _model_with_blobs(self, conv_shape=(2, 1, 3, 3), bias=True,
                          legacy_fc=False):
        net = caffe_pb.new_net("t")
        layer = net.add("layer")
        layer.set_fields(name="c", type="Convolution")
        rng = np.random.default_rng(0)
        blobs = [array_to_blob(rng.normal(size=conv_shape))]
        if bias:
            blobs.append(array_to_blob(rng.normal(size=conv_shape[0])))
        layer.blobs = blobs
        fc = net.add("layer")
        fc.set_fields(name="fc", type="InnerProduct")
        w = rng.normal(size=(4, 2 * 10 * 10))
        fc.blobs = [
            array_to_blob(w.reshape(1, 1, 4, 200) if legacy_fc else w),
            array_to_blob(rng.normal(size=4)),
        ]
        return net

    def _network(self):
        text = (
            'name: "t" input: "data" input_dim: [1, 1, 12, 12]\n'
            'layer { name: "c" type: "Convolution" bottom: "data" top: "c"'
            ' convolution_param { num_output: 2 kernel_size: 3 } }'
            'layer { name: "fc" type: "InnerProduct" bottom: "c" top: "fc"'
            ' inner_product_param { num_output: 4 } }')
        return convert_net(proto(text))

    def test_extraction(self):
        store = extract_weights(self._model_with_blobs(), self._network())
        assert store.get("c", "weights").shape == (2, 1, 3, 3)
        assert store.get("fc", "weights").shape == (4, 200)
        store.validate(self._network())

    def test_legacy_fc_blob_squeezed(self):
        store = extract_weights(self._model_with_blobs(legacy_fc=True),
                                self._network())
        assert store.get("fc", "weights").shape == (4, 200)

    def test_missing_layer(self):
        net = caffe_pb.new_net("t")
        with pytest.raises(WeightsError, match="no layer"):
            extract_weights(net, self._network())

    def test_missing_bias(self):
        model = self._model_with_blobs(bias=False)
        with pytest.raises(WeightsError, match="bias"):
            extract_weights(model, self._network())

    def test_wrong_weight_shape(self):
        model = self._model_with_blobs(conv_shape=(2, 1, 4, 4))
        with pytest.raises(WeightsError, match="incompatible"):
            extract_weights(model, self._network())

    def test_convert_caffe_model_validates(self):
        text = (
            'name: "t" input: "data" input_dim: [1, 1, 12, 12]\n'
            'layer { name: "c" type: "Convolution" bottom: "data" top: "c"'
            ' convolution_param { num_output: 2 kernel_size: 3 } }'
            'layer { name: "fc" type: "InnerProduct" bottom: "c" top: "fc"'
            ' inner_product_param { num_output: 4 } }')
        converted = convert_caffe_model(proto(text),
                                        self._model_with_blobs())
        assert converted.caffe_name == "t"
        assert converted.weights.total_parameters() > 0

    def test_convert_without_weights(self):
        converted = convert_caffe_model(proto(BASE +
            'layer { name: "p" type: "Pooling" bottom: "data" top: "p"'
            ' pooling_param { pool: MAX kernel_size: 2 stride: 2 } }'))
        assert converted.weights.total_parameters() == 0
