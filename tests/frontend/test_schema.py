"""Dynamic message / descriptor tests, including wire round-trips against
the Caffe schema."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SchemaError, WireFormatError
from repro.frontend.caffe import caffe_pb
from repro.frontend.caffe.schema import (
    EnumDescriptor,
    FieldDescriptor,
    FieldType,
    Label,
    Message,
    MessageDescriptor,
    decode_message,
    encode_message,
)


class TestDescriptors:
    def test_duplicate_field_name_rejected(self):
        with pytest.raises(SchemaError):
            MessageDescriptor("M", [
                FieldDescriptor("a", 1, FieldType.INT32),
                FieldDescriptor("a", 2, FieldType.INT32),
            ])

    def test_duplicate_field_number_rejected(self):
        with pytest.raises(SchemaError):
            MessageDescriptor("M", [
                FieldDescriptor("a", 1, FieldType.INT32),
                FieldDescriptor("b", 1, FieldType.INT32),
            ])

    def test_message_field_needs_type(self):
        with pytest.raises(SchemaError):
            FieldDescriptor("m", 1, FieldType.MESSAGE)

    def test_enum_field_needs_enum(self):
        with pytest.raises(SchemaError):
            FieldDescriptor("e", 1, FieldType.ENUM)

    def test_packed_requires_repeated_scalar(self):
        with pytest.raises(SchemaError):
            FieldDescriptor("s", 1, FieldType.STRING,
                            Label.REPEATED, packed=True)
        with pytest.raises(SchemaError):
            FieldDescriptor("i", 1, FieldType.INT32, packed=True)

    def test_enum_descriptor_lookups(self):
        enum = EnumDescriptor("E", {"A": 0, "B": 3})
        assert enum.number_of("B") == 3
        assert enum.name_of(0) == "A"
        assert "A" in enum and "C" not in enum
        with pytest.raises(SchemaError):
            enum.number_of("C")
        with pytest.raises(SchemaError):
            enum.name_of(9)


class TestMessageSemantics:
    def test_defaults(self):
        conv = Message(caffe_pb.CONVOLUTION_PARAMETER)
        assert conv.bias_term is True          # explicit default
        assert conv.num_output == 0            # type default
        assert conv.kernel_size == []          # repeated default
        assert conv.weight_filler is None      # message default

    def test_has_field(self):
        conv = Message(caffe_pb.CONVOLUTION_PARAMETER)
        assert not conv.has_field("num_output")
        conv.num_output = 0
        assert conv.has_field("num_output")    # set-to-default still set
        conv.clear_field("num_output")
        assert not conv.has_field("num_output")

    def test_repeated_empty_not_set(self):
        net = Message(caffe_pb.NET_PARAMETER)
        assert not net.has_field("layer")
        net.add("layer")
        assert net.has_field("layer")

    def test_unknown_attribute(self):
        conv = Message(caffe_pb.CONVOLUTION_PARAMETER)
        with pytest.raises(AttributeError):
            conv.zzz
        with pytest.raises(AttributeError):
            conv.zzz = 1

    def test_add_on_scalar_rejected(self):
        conv = Message(caffe_pb.CONVOLUTION_PARAMETER)
        with pytest.raises(SchemaError):
            conv.add("num_output")

    def test_kwargs_and_set_fields(self):
        conv = Message(caffe_pb.CONVOLUTION_PARAMETER, num_output=5)
        conv.set_fields(kernel_size=[3], bias_term=False)
        assert conv.num_output == 5
        assert conv.kernel_size == [3]
        assert conv.bias_term is False

    def test_equality(self):
        a = Message(caffe_pb.CONVOLUTION_PARAMETER, num_output=5)
        b = Message(caffe_pb.CONVOLUTION_PARAMETER, num_output=5)
        c = Message(caffe_pb.CONVOLUTION_PARAMETER, num_output=6)
        assert a == b and a != c
        assert a != 42

    def test_enum_default_is_min_value(self):
        pool = Message(caffe_pb.POOLING_PARAMETER)
        assert pool.pool == 0  # MAX


class TestWireRoundtrip:
    def test_simple_message(self):
        conv = Message(caffe_pb.CONVOLUTION_PARAMETER, num_output=20,
                       kernel_size=[5], stride=[1], bias_term=True)
        data = encode_message(conv)
        back = decode_message(caffe_pb.CONVOLUTION_PARAMETER, data)
        assert back == conv

    def test_nested_and_repeated(self):
        net = caffe_pb.new_net("test")
        layer = net.add("layer")
        layer.name = "conv1"
        layer.type = "Convolution"
        layer.bottom = ["data"]
        layer.top = ["conv1"]
        conv = Message(caffe_pb.CONVOLUTION_PARAMETER, num_output=4)
        layer.convolution_param = conv
        back = decode_message(caffe_pb.NET_PARAMETER, encode_message(net))
        assert back.name == "test"
        assert back.layer[0].name == "conv1"
        assert back.layer[0].convolution_param.num_output == 4

    def test_packed_floats(self):
        blob = Message(caffe_pb.BLOB_PROTO, data=[1.0, 2.5, -3.0])
        data = encode_message(blob)
        back = decode_message(caffe_pb.BLOB_PROTO, data)
        assert back.data == [1.0, 2.5, -3.0]

    def test_unpacked_floats_accepted(self):
        # Unpacked encoding of a packed-declared field must still decode.
        from repro.frontend.caffe import wire
        buf = b"".join(
            wire.encode_tag(5, wire.WireType.I32) + wire.encode_float(v)
            for v in (1.0, 2.0))
        back = decode_message(caffe_pb.BLOB_PROTO, buf)
        assert back.data == [1.0, 2.0]

    def test_unknown_fields_preserved(self):
        from repro.frontend.caffe import wire
        payload = (wire.encode_tag(999, wire.WireType.VARINT) +
                   wire.encode_varint(7))
        msg = decode_message(caffe_pb.BLOB_SHAPE, payload)
        assert msg.unknown_fields == [(999, wire.WireType.VARINT, 7)]
        assert encode_message(msg) == payload

    def test_negative_int32_roundtrip(self):
        blob = Message(caffe_pb.BLOB_PROTO, num=-1)
        back = decode_message(caffe_pb.BLOB_PROTO, encode_message(blob))
        assert back.num == -1

    def test_bool_roundtrip(self):
        conv = Message(caffe_pb.CONVOLUTION_PARAMETER, bias_term=False)
        back = decode_message(caffe_pb.CONVOLUTION_PARAMETER,
                              encode_message(conv))
        assert back.bias_term is False
        assert back.has_field("bias_term")

    def test_string_utf8(self):
        net = caffe_pb.new_net("réseau")
        back = decode_message(caffe_pb.NET_PARAMETER, encode_message(net))
        assert back.name == "réseau"

    def test_invalid_utf8_rejected(self):
        from repro.frontend.caffe import wire
        buf = (wire.encode_tag(1, wire.WireType.LEN) +
               wire.encode_length_delimited(b"\xff\xfe"))
        with pytest.raises(WireFormatError):
            decode_message(caffe_pb.NET_PARAMETER, buf)

    def test_last_one_wins_for_optional(self):
        from repro.frontend.caffe import wire
        buf = b"".join(
            wire.encode_tag(1, wire.WireType.VARINT) + wire.encode_varint(v)
            for v in (3, 9))
        msg = decode_message(caffe_pb.CONVOLUTION_PARAMETER, buf)
        assert msg.num_output == 9

    @settings(max_examples=30, deadline=None)
    @given(
        name=st.text(max_size=10),
        dims=st.lists(st.integers(0, 2 ** 40), max_size=5),
        data=st.lists(st.floats(width=32, allow_nan=False), max_size=20),
    )
    def test_blob_roundtrip_property(self, name, dims, data):
        net = caffe_pb.new_net(name)
        layer = net.add("layer")
        layer.name = name
        blob = layer.add("blobs")
        shape = Message(caffe_pb.BLOB_SHAPE, dim=dims)
        blob.shape = shape
        blob.data = data
        back = decode_message(caffe_pb.NET_PARAMETER, encode_message(net))
        assert back == net
