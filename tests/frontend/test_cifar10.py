"""CIFAR-10 quick model tests (padded convs + overlapping/avg pooling)."""

import numpy as np
import pytest

from repro.frontend.caffe.converter import convert_net
from repro.frontend.caffe.model import parse_prototxt
from repro.frontend.condor_format import CondorModel, DeploymentOption
from repro.frontend.weights import WeightStore
from repro.frontend.zoo import (
    CIFAR10_PROTOTXT,
    cifar10_model,
    cifar10_network,
)
from repro.hw.accelerator import build_accelerator
from repro.ir.layers import Activation, ActivationLayer, PoolOp
from repro.ir.validate import validate_network
from repro.nn.engine import ReferenceEngine
from repro.sim.dataflow import simulate_accelerator


class TestTopology:
    def test_caffe_shapes(self):
        net = cifar10_network()
        validate_network(net)
        # the canonical Caffe shapes (ceil-mode pooling)
        assert net.output_shape("conv1").as_tuple() == (32, 32, 32)
        assert net.output_shape("pool1").as_tuple() == (32, 16, 16)
        assert net.output_shape("pool2").as_tuple() == (32, 8, 8)
        assert net.output_shape("pool3").as_tuple() == (64, 4, 4)
        assert net["ip1"].weight_shapes(
            net.input_shape("ip1"))["weights"] == (64, 1024)

    def test_prototxt_converts_identically(self):
        converted = convert_net(parse_prototxt(CIFAR10_PROTOTXT))
        hand = cifar10_network()
        assert [l.name for l in converted] == [l.name for l in hand]
        for layer in hand:
            assert converted.output_shape(layer.name) == \
                hand.output_shape(layer.name)

    def test_relu1_standalone_after_pool(self):
        net = cifar10_network()
        assert isinstance(net["relu1"], ActivationLayer)
        assert net["conv2"].activation is Activation.RELU  # fused

    def test_mixed_pool_ops(self):
        net = cifar10_network()
        assert net["pool1"].op is PoolOp.MAX
        assert net["pool2"].op is PoolOp.AVG

    def test_model_defaults(self):
        model = cifar10_model()
        assert model.deployment is DeploymentOption.ON_PREMISE
        assert model.frequency_hz == 150e6


class TestExecution:
    def test_reference_engine_runs(self):
        net = cifar10_network()
        engine = ReferenceEngine(net, WeightStore.initialize(net, 0))
        out = engine.forward(np.random.default_rng(0).normal(
            size=(3, 32, 32)).astype(np.float32))
        assert out.shape == (10, 1, 1)
        assert out.sum() == pytest.approx(1.0, rel=1e-4)

    def test_event_sim_matches_reference(self):
        """Overlapping stride-2 pooling + padded convs through the actual
        dataflow structure."""
        model = cifar10_model()
        net = model.network
        acc = build_accelerator(model)
        weights = WeightStore.initialize(net, 3)
        images = np.random.default_rng(1).normal(
            size=(2, 3, 32, 32)).astype(np.float32)
        result = simulate_accelerator(acc, weights, images)
        ref = ReferenceEngine(net, weights).forward_batch(images)
        for out, expected in zip(result.outputs, ref):
            np.testing.assert_allclose(out, expected, rtol=1e-3,
                                       atol=1e-5)

    def test_flow_builds(self, tmp_path):
        from repro.flow import CondorFlow, FlowInputs

        result = CondorFlow(tmp_path).run(
            FlowInputs(model=cifar10_model()))
        assert result.xclbin.kernel_name == "CIFAR10_quick"
        util = result.utilization
        assert util["lut"] < 100 and util["bram_18k"] < 100
