"""BatchNorm/Scale folding tests.

The folded network (conv only) must compute exactly what the unfolded
conv → BN → Scale chain computes; the numpy oracle for BN/Scale is
written here independently.
"""

import numpy as np
import pytest

from repro.errors import UnsupportedLayerError
from repro.frontend.caffe import caffe_pb
from repro.frontend.caffe.converter import convert_caffe_model, convert_net
from repro.frontend.caffe.model import array_to_blob, parse_prototxt
from repro.frontend.caffe.schema import Message
from repro.ir.layers import ConvLayer
from repro.nn import functional as F
from repro.nn.engine import ReferenceEngine

PROTOTXT = '''\
name: "bn_net"
input: "data"
input_dim: [1, 2, 8, 8]
layer {
  name: "conv1"
  type: "Convolution"
  bottom: "data"
  top: "conv1"
  convolution_param { num_output: 4 kernel_size: 3 bias_term: false }
}
layer {
  name: "bn1"
  type: "BatchNorm"
  bottom: "conv1"
  top: "conv1"
  batch_norm_param { use_global_stats: true eps: 0.001 }
}
layer {
  name: "scale1"
  type: "Scale"
  bottom: "conv1"
  top: "conv1"
  scale_param { bias_term: true }
}
'''


def build_caffemodel(seed=0, scale_factor=0.999):
    rng = np.random.default_rng(seed)
    w = rng.normal(size=(4, 2, 3, 3)).astype(np.float32)
    mean = rng.normal(size=4).astype(np.float32)
    var = rng.uniform(0.5, 2.0, size=4).astype(np.float32)
    gamma = rng.uniform(0.5, 1.5, size=4).astype(np.float32)
    beta = rng.normal(size=4).astype(np.float32)

    model = caffe_pb.new_net("bn_net")
    conv = model.add("layer")
    conv.set_fields(name="conv1", type="Convolution",
                    blobs=[array_to_blob(w)])
    bn = model.add("layer")
    bn.set_fields(name="bn1", type="BatchNorm", blobs=[
        array_to_blob(mean * scale_factor),
        array_to_blob(var * scale_factor),
        array_to_blob(np.array([scale_factor], dtype=np.float32)),
    ])
    sc = model.add("layer")
    sc.set_fields(name="scale1", type="Scale", blobs=[
        array_to_blob(gamma), array_to_blob(beta)])
    return model, (w, mean, var, gamma, beta)


def unfolded_reference(x, params, eps=0.001):
    w, mean, var, gamma, beta = params
    y = F.conv2d(x, w, None)
    y = (y - mean[:, None, None]) / np.sqrt(var + eps)[:, None, None]
    return y * gamma[:, None, None] + beta[:, None, None]


class TestTopologyFolding:
    def test_bn_and_scale_disappear(self):
        net = convert_net(parse_prototxt(PROTOTXT))
        assert [l.name for l in net] == ["data", "conv1"]

    def test_conv_bias_enabled_by_fold(self):
        net = convert_net(parse_prototxt(PROTOTXT))
        conv = net["conv1"]
        assert isinstance(conv, ConvLayer)
        assert conv.bias is True  # prototxt said bias_term: false

    def test_bn_without_conv_rejected(self):
        text = ('input: "data" input_dim: [1, 2, 4, 4]\n'
                'layer { name: "bn" type: "BatchNorm" bottom: "data"'
                ' top: "bn" }')
        with pytest.raises(UnsupportedLayerError, match="BatchNorm"):
            convert_net(parse_prototxt(text))

    def test_bn_after_activation_rejected(self):
        text = ('input: "data" input_dim: [1, 1, 6, 6]\n'
                'layer { name: "c" type: "Convolution" bottom: "data"'
                ' top: "c" convolution_param { num_output: 2'
                ' kernel_size: 3 } }'
                'layer { name: "r" type: "ReLU" bottom: "c" top: "c" }'
                'layer { name: "bn" type: "BatchNorm" bottom: "c"'
                ' top: "c" }')
        with pytest.raises(UnsupportedLayerError):
            convert_net(parse_prototxt(text))


class TestNumericalFolding:
    def test_folded_matches_unfolded(self):
        caffemodel, params = build_caffemodel(seed=3)
        converted = convert_caffe_model(parse_prototxt(PROTOTXT),
                                        caffemodel)
        engine = ReferenceEngine(converted.network, converted.weights)
        x = np.random.default_rng(1).normal(size=(2, 8, 8)) \
            .astype(np.float32)
        folded = engine.forward(x)
        reference = unfolded_reference(x, params)
        np.testing.assert_allclose(folded, reference, rtol=1e-4,
                                   atol=1e-5)

    def test_scale_factor_normalization(self):
        """Caffe stores moments multiplied by a running scale factor;
        folding must divide it back out."""
        for sf in (0.5, 0.999, 1.0):
            caffemodel, params = build_caffemodel(seed=5,
                                                  scale_factor=sf)
            converted = convert_caffe_model(parse_prototxt(PROTOTXT),
                                            caffemodel)
            engine = ReferenceEngine(converted.network,
                                     converted.weights)
            x = np.random.default_rng(2).normal(size=(2, 8, 8)) \
                .astype(np.float32)
            np.testing.assert_allclose(
                engine.forward(x), unfolded_reference(x, params),
                rtol=1e-4, atol=1e-5)

    def test_bn_only_without_scale(self):
        text = PROTOTXT.replace(
            'layer {\n  name: "scale1"\n  type: "Scale"\n'
            '  bottom: "conv1"\n  top: "conv1"\n'
            '  scale_param { bias_term: true }\n}\n', '')
        caffemodel, params = build_caffemodel(seed=7)
        # drop the scale layer from the model too
        caffemodel.layer = [l for l in caffemodel.layer
                            if l.name != "scale1"]
        converted = convert_caffe_model(parse_prototxt(text), caffemodel)
        engine = ReferenceEngine(converted.network, converted.weights)
        x = np.random.default_rng(3).normal(size=(2, 8, 8)) \
            .astype(np.float32)
        w, mean, var, _, _ = params
        y = F.conv2d(x, w, None)
        expected = (y - mean[:, None, None]) / \
            np.sqrt(var + 0.001)[:, None, None]
        np.testing.assert_allclose(engine.forward(x), expected,
                                   rtol=1e-4, atol=1e-5)

    def test_weights_validate_against_network(self):
        caffemodel, _ = build_caffemodel()
        converted = convert_caffe_model(parse_prototxt(PROTOTXT),
                                        caffemodel)
        converted.weights.validate(converted.network)
        assert converted.weights.get("conv1", "bias").shape == (4,)
