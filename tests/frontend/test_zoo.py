"""Model zoo tests: bundled networks match the paper's descriptions and the
genuine Caffe LeNet file converts to the hand-built IR."""

import numpy as np
import pytest

from repro.frontend.caffe import load_caffemodel, load_prototxt
from repro.frontend.caffe.converter import convert_caffe_model, convert_net
from repro.frontend.caffe.model import parse_prototxt
from repro.frontend.condor_format import DeploymentOption
from repro.frontend.weights import WeightStore
from repro.frontend.zoo import (
    LENET_PROTOTXT,
    lenet_caffe_files,
    lenet_model,
    lenet_network,
    synthetic_digits,
    tc1_model,
    tc1_network,
    vgg16_model,
    vgg16_network,
)
from repro.ir.flops import network_flops, network_macs
from repro.ir.layers import Activation
from repro.ir.validate import validate_network
from repro.nn.engine import ReferenceEngine


class TestTC1:
    def test_topology(self):
        net = tc1_network()
        validate_network(net)
        assert net.input_shape().as_tuple() == (1, 16, 16)
        assert net.output_shape().as_tuple() == (10, 1, 1)
        # pool2 collapses to 1x1 as designed
        assert net.output_shape("pool2").as_tuple() == (12, 1, 1)

    def test_model_frequency(self):
        model = tc1_model()
        assert model.frequency_hz == 100e6
        assert model.deployment is DeploymentOption.AWS_F1

    def test_runs_on_synthetic_usps(self):
        net = tc1_network()
        engine = ReferenceEngine(net, WeightStore.initialize(net, 0))
        images, _ = synthetic_digits(3, size=16, seed=0)
        out = engine.forward_batch(images)
        assert out.shape == (3, 10, 1, 1)


class TestLeNet:
    def test_topology_matches_caffe_example(self):
        net = lenet_network()
        assert net.output_shape("conv1").as_tuple() == (20, 24, 24)
        assert net.output_shape("pool2").as_tuple() == (50, 4, 4)
        assert net["ip1"].num_output == 500
        assert net["ip1"].activation is Activation.RELU

    def test_prototxt_converts_to_same_topology(self):
        converted = convert_net(parse_prototxt(LENET_PROTOTXT))
        hand = lenet_network()
        assert [l.name for l in converted] == [l.name for l in hand]
        for layer in hand:
            assert converted.output_shape(layer.name) == \
                hand.output_shape(layer.name)

    def test_model_frequency(self):
        assert lenet_model().frequency_hz == 180e6

    def test_caffe_files_end_to_end(self, tmp_path):
        prototxt, caffemodel = lenet_caffe_files(tmp_path, seed=5)
        assert prototxt.read_text() == LENET_PROTOTXT
        converted = convert_caffe_model(load_prototxt(prototxt),
                                        load_caffemodel(caffemodel))
        engine = ReferenceEngine(converted.network, converted.weights)
        x = np.random.default_rng(0).normal(size=(1, 28, 28))
        out = engine.forward(x)
        assert out.shape == (10, 1, 1)
        assert out.sum() == pytest.approx(1.0, rel=1e-4)

    def test_caffemodel_weights_match_initializer(self, tmp_path):
        """Weights surviving the wire format must equal the seed's values."""
        _, caffemodel = lenet_caffe_files(tmp_path, seed=9)
        converted = convert_caffe_model(
            parse_prototxt(LENET_PROTOTXT), load_caffemodel(caffemodel))
        expected = WeightStore.initialize(lenet_network(), seed=9)
        got = converted.weights.get("conv1", "weights")
        want = expected.get("conv1", "weights")
        np.testing.assert_allclose(got, want, rtol=1e-6)


class TestVGG16:
    def test_full_topology(self):
        net = vgg16_network()
        validate_network(net)
        assert len([l for l in net if l.type_name == "conv"]) == 13
        assert net.output_shape("pool5").as_tuple() == (512, 7, 7)
        assert net.output_shape().as_tuple() == (1000, 1, 1)

    def test_features_only(self):
        net = vgg16_network(include_classifier=False)
        assert net.output_shape().as_tuple() == (512, 7, 7)
        assert net.name == "vgg16_features"

    def test_flop_count_is_canonical(self):
        # VGG-16 is famously ~15.5 GMACs / ~31 GFLOPs for 224x224 input.
        macs = network_macs(vgg16_network())
        assert 15.0e9 < macs < 15.7e9
        assert network_flops(vgg16_network()) > 2 * macs * 0.99

    def test_model(self):
        assert vgg16_model().network.name == "vgg16"


class TestSyntheticDigits:
    def test_shapes_and_range(self):
        images, labels = synthetic_digits(10, size=16, seed=1)
        assert images.shape == (10, 1, 16, 16)
        assert labels.shape == (10,)
        assert images.min() >= 0.0 and images.max() <= 1.0
        assert set(labels) <= set(range(10))

    def test_deterministic(self):
        a, la = synthetic_digits(4, seed=2)
        b, lb = synthetic_digits(4, seed=2)
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(la, lb)

    def test_seed_changes_data(self):
        a, _ = synthetic_digits(4, seed=2)
        b, _ = synthetic_digits(4, seed=3)
        assert not np.array_equal(a, b)

    def test_mnist_size(self):
        images, _ = synthetic_digits(2, size=28, seed=0)
        assert images.shape == (2, 1, 28, 28)

    def test_digits_have_ink(self):
        images, _ = synthetic_digits(5, seed=0)
        assert (images.reshape(5, -1).max(axis=1) > 0.5).all()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            synthetic_digits(0)
        with pytest.raises(ValueError):
            synthetic_digits(1, size=4)
