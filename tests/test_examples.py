"""Every example script must run cleanly end to end.

Executed via runpy in-process (same interpreter, real code paths); stdout
is captured and sanity-checked for each script's headline output.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "generated accelerator structure" in out
    assert "mean time per image" in out


def test_cloud_deployment(capsys):
    out = run_example("cloud_deployment.py", capsys)
    assert "AFI: afi-" in out
    assert "batch sweep on the F1 slot" in out
    assert "break-even" in out


def test_design_space_exploration(capsys):
    out = run_example("design_space_exploration.py", capsys)
    assert "chosen per-PE parallelism" in out
    assert "Pareto frontier" in out


def test_custom_network(capsys):
    out = run_example("custom_network.py", capsys)
    assert "functional check PASSED" in out


def test_profiling_and_scaleout(capsys):
    out = run_example("profiling_and_scaleout.py", capsys)
    assert "% of run" in out          # condor profile-style step table
    assert "run manifest:" in out
    assert "ui.perfetto.dev" in out
    assert "waveform written to" in out
    assert "aggregate:" in out


def test_all_examples_covered():
    """Keep this file in sync with the examples directory."""
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    tested = {"quickstart.py", "cloud_deployment.py",
              "design_space_exploration.py", "custom_network.py",
              "profiling_and_scaleout.py"}
    assert scripts == tested
