"""Top-level package surface tests."""

import repro


def test_version():
    assert repro.__version__ == "0.1.0"


def test_public_surface_importable():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_flow_reachable_from_top_level(tmp_path):
    from repro import CondorFlow, CondorModel, FlowInputs, chain
    from repro.ir.layers import ConvLayer

    net = chain("tiny", (1, 8, 8), [ConvLayer("c", num_output=2,
                                              kernel=3)])
    result = CondorFlow(tmp_path).run(
        FlowInputs(model=CondorModel(network=net)))
    assert result.xclbin.kernel_name == "tiny"
