"""The house lint rules must hold on the shipped tree, and each rule
must catch its synthetic offender."""

import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO))

from tools.lint import RULE_REGISTRY, run_lint  # noqa: E402


def _lint_source(tmp_path, source, name="offender.py", select=None):
    (tmp_path / name).write_text(source)
    return run_lint(tmp_path, select=select)


def test_shipped_tree_is_clean():
    assert run_lint() == []


def test_cli_entry_point():
    proc = subprocess.run(
        [sys.executable, "-m", "tools.lint"], cwd=REPO,
        capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "lint: ok" in proc.stdout


def test_unknown_rule_rejected():
    with pytest.raises(ValueError, match="unknown lint rule"):
        run_lint(REPO / "tools", select=["no-such-rule"])


def test_all_rules_registered():
    assert set(RULE_REGISTRY) == {
        "telemetry-print", "telemetry-getlogger", "broad-except",
        "generic-raise", "sim-wallclock", "mutable-default",
        "flow-step-span", "wallclock-sleep", "sim-slots",
        "engine-plan-alloc", "metric-name",
    }


def test_print_and_getlogger(tmp_path):
    found = _lint_source(
        tmp_path,
        "import logging\n"
        "log = logging.getLogger('x')\n"
        "print('hello')\n"
        "# print('comments are fine')\n"
        "DOC = \"print('strings are fine')\"\n")
    rules = sorted(v.rule_id for v in found)
    assert rules == ["telemetry-getlogger", "telemetry-print"]


def test_print_allow_is_anchored_to_shipped_cli(tmp_path):
    # allow entries exempt the real DEFAULT_ROOT file only: a
    # same-named cli.py in a different lint root is still checked
    found = _lint_source(tmp_path, "print('ui')\n", name="cli.py",
                         select=["telemetry-print"])
    assert [v.rule_id for v in found] == ["telemetry-print"]


def test_print_allowed_in_shipped_cli():
    from tools.lint.framework import DEFAULT_ROOT
    found = [v for v in run_lint(DEFAULT_ROOT, select=["telemetry-print"])
             if v.path == "cli.py"]
    assert found == []  # the UI surface prints by design


def test_allowlist_anchor_outside_default_root(tmp_path):
    # every allowlisted file name is fair game in a foreign tree
    from tools.lint.framework import RULE_REGISTRY
    rule = RULE_REGISTRY["telemetry-print"]()
    assert any(rule.allow), "rule lost its allowlist"
    for entry in sorted(rule.allow):
        assert rule.applies_to(entry, tmp_path / entry)


def test_broad_except(tmp_path):
    found = _lint_source(
        tmp_path,
        "try:\n    pass\nexcept Exception:\n    pass\n"
        "try:\n    pass\nexcept (ValueError, BaseException):\n    pass\n"
        "try:\n    pass\nexcept:\n    pass\n",
        select=["broad-except"])
    assert len(found) == 3


def test_broad_except_reraise_allowed(tmp_path):
    found = _lint_source(
        tmp_path,
        "try:\n    pass\n"
        "except BaseException as exc:\n"
        "    record(exc)\n"
        "    raise\n",
        select=["broad-except"])
    assert found == []


def test_generic_raise(tmp_path):
    found = _lint_source(
        tmp_path,
        "def f():\n"
        "    raise RuntimeError('nope')\n"
        "def g():\n"
        "    raise Exception\n"
        "def ok():\n"
        "    raise ValueError('fine')\n"
        "def also_ok():\n"
        "    raise NotImplementedError\n",
        select=["generic-raise"])
    assert len(found) == 2
    assert {v.line for v in found} == {2, 4}


def test_sim_wallclock_scoped(tmp_path):
    source = ("import time\n"
              "t = time.perf_counter()\n")
    (tmp_path / "sim").mkdir()
    (tmp_path / "sim" / "core.py").write_text(source)
    (tmp_path / "flow.py").write_text(source)  # outside sim/: allowed
    found = run_lint(tmp_path, select=["sim-wallclock"])
    assert len(found) == 1
    assert found[0].path == "sim/core.py"


def test_mutable_default(tmp_path):
    found = _lint_source(
        tmp_path,
        "def f(a, b=[], c={}, d=set(), e=None, g=()):\n"
        "    pass\n"
        "def h(*, k=list()):\n"
        "    pass\n",
        select=["mutable-default"])
    assert len(found) == 4


def test_wallclock_sleep(tmp_path):
    found = _lint_source(
        tmp_path,
        "import time\n"
        "time.sleep(5)\n"
        "from time import sleep\n"
        "clock.sleep(5)  # a VirtualClock: fine\n",
        select=["wallclock-sleep"])
    assert len(found) == 2
    assert {v.line for v in found} == {2, 3}


def test_wallclock_sleep_covers_the_serving_layer(tmp_path):
    # the rule is unscoped, so the serving event loop cannot smuggle a
    # wall-clock sleep in: everything must ride the VirtualClock
    offender = tmp_path / "src" / "repro" / "serve"
    offender.mkdir(parents=True)
    (offender / "handler.py").write_text(
        "import time\n"
        "def wait_for_batch():\n"
        "    time.sleep(0.010)\n")
    found = run_lint(tmp_path, select=["wallclock-sleep"])
    assert len(found) == 1
    assert found[0].line == 3
    assert "serve" in found[0].path


def test_sim_slots_scoped(tmp_path):
    offender = ("class Event:\n"
                "    def __init__(self):\n"
                "        self.t = 0\n")
    (tmp_path / "sim").mkdir()
    (tmp_path / "sim" / "core.py").write_text(offender)
    (tmp_path / "hw.py").write_text(offender)  # outside sim/: allowed
    found = run_lint(tmp_path, select=["sim-slots"])
    assert len(found) == 1
    assert found[0].path == "sim/core.py"
    assert "Event" in found[0].message


def test_sim_slots_accepts_slotted_classes(tmp_path):
    (tmp_path / "sim").mkdir()
    (tmp_path / "sim" / "core.py").write_text(
        "from dataclasses import dataclass\n"
        "from enum import Enum\n"
        "@dataclass(frozen=True, slots=True)\n"
        "class Delay:\n"
        "    cycles: int\n"
        "class Channel:\n"
        "    __slots__ = ('name',)\n"
        "class Kind(Enum):\n"
        "    PUT = 1\n"
        "@dataclass\n"
        "class Loose:\n"
        "    t: int\n")
    found = run_lint(tmp_path, select=["sim-slots"])
    assert [v.rule_id for v in found] == ["sim-slots"]
    assert "Loose" in found[0].message


def test_engine_plan_alloc_scoped(tmp_path):
    offender = ("import numpy as np\n"
                "def forward(x):\n"
                "    cols = np.empty((8, x.size))\n"
                "    padded = np.pad(x, 1)\n"
                "    y = np.asarray(x)  # not an allocation ban\n"
                "    w = np.lib.stride_tricks.as_strided(x, (2, 2))\n")
    (tmp_path / "nn").mkdir()
    (tmp_path / "nn" / "engine.py").write_text(offender)
    (tmp_path / "nn" / "plan.py").write_text(offender)  # plans may alloc
    found = run_lint(tmp_path, select=["engine-plan-alloc"])
    assert {v.path for v in found} == {"nn/engine.py"}
    assert len(found) == 3
    assert {v.line for v in found} == {3, 4, 6}


def test_metric_name(tmp_path):
    found = _lint_source(
        tmp_path,
        "reg.counter('condor_cache_hits_total', 'ok')\n"
        "reg.counter('condor_cache_hits', 'missing _total')\n"
        "reg.counter('cache_hits_total', 'missing prefix')\n"
        "reg.gauge('condor_plan_cache_entries', 'ok')\n"
        "reg.gauge('condor_Plan_Cache', 'bad case + suffix')\n"
        "reg.histogram('condor_flow_step_seconds', 'ok')\n"
        "reg.histogram('condor_flow_step_ms', 'bad unit')\n"
        "reg.summary('condor_eval_seconds', 'ok')\n"
        "reg.summary(name, 'dynamic names are not checked')\n"
        "table.summary()  # unrelated call, no args\n",
        select=["metric-name"])
    assert len(found) == 4
    assert {v.line for v in found} == {2, 3, 5, 7}


def test_metric_name_messages(tmp_path):
    found = _lint_source(
        tmp_path,
        "reg.counter('hits', 'x')\n"
        "reg.gauge('condor_depth', 'x')\n",
        select=["metric-name"])
    assert "condor_" in found[0].message
    assert "unit suffix" in found[1].message


def test_flow_step_span(tmp_path):
    (tmp_path / "flow").mkdir()
    (tmp_path / "flow" / "driver.py").write_text(
        "class Flow:\n"
        "    def run(self):\n"
        "        with self._step('gen'):\n"
        "            acc = build_accelerator(model)\n"
        "        estimate = estimate_accelerator(acc)\n")
    found = run_lint(tmp_path, select=["flow-step-span"])
    assert len(found) == 1
    assert "estimate_accelerator" in found[0].message
