"""The telemetry-layer lint must hold on the shipped tree."""

import importlib.util
import sys
from pathlib import Path

TOOLS = Path(__file__).resolve().parent.parent / "tools"


def _load_linter():
    spec = importlib.util.spec_from_file_location(
        "lint_telemetry", TOOLS / "lint_telemetry.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("lint_telemetry", module)
    spec.loader.exec_module(module)
    return module


def test_no_bare_print_or_getlogger_in_src():
    linter = _load_linter()
    assert linter.violations() == []


def test_linter_catches_offenders(tmp_path, monkeypatch):
    linter = _load_linter()
    bad = tmp_path / "repro"
    bad.mkdir()
    (bad / "offender.py").write_text(
        "import logging\n"
        "log = logging.getLogger('x')\n"
        "print('hello')\n"
        "# print('comments are fine')\n")
    monkeypatch.setattr(linter, "SRC", bad)
    found = linter.violations()
    assert len(found) == 2
    assert any("getLogger" in v for v in found)
    assert any("print" in v for v in found)
