"""SDAccel integration tests: kernel XML, .xo, xocc link."""

import pytest

from repro.errors import LinkError, PackagingError
from repro.frontend.condor_format import DeploymentOption
from repro.frontend.zoo import lenet_model, tc1_model
from repro.hw.accelerator import build_accelerator
from repro.hw.resources import device_for_board
from repro.toolchain.assemble import build_network_ip
from repro.toolchain.hls import VivadoHLS
from repro.toolchain.sdaccel import (
    XoFile,
    achievable_frequency,
    generate_kernel_xml,
    package_xo,
    xocc_link,
)


@pytest.fixture(scope="module")
def tc1_setup():
    model = tc1_model(DeploymentOption.ON_PREMISE)
    acc = build_accelerator(model)
    hls = VivadoHLS("xcvu9p", model.frequency_hz)
    assembly = build_network_ip(acc, hls)
    return model, acc, assembly


class TestKernelXml:
    def test_contents(self, tc1_setup):
        _, _, assembly = tc1_setup
        xml = generate_kernel_xml(assembly.accelerator_ip)
        assert '<kernel name="tc1"' in xml
        assert 'vlnv="polimi.it:condor:tc1:1.0"' in xml
        assert 'M_AXI_GMEM' in xml and 'S_AXI_CONTROL' in xml
        assert '<arg name="batch"' in xml


class TestXoPackaging:
    def test_package_and_reopen(self, tc1_setup):
        model, _, assembly = tc1_setup
        xml = generate_kernel_xml(assembly.accelerator_ip)
        xo = package_xo(assembly.accelerator_ip, xml, model=model)
        reopened = XoFile.open(xo.data)
        assert reopened.kernel_name == "tc1"
        manifest = reopened.manifest()
        assert manifest["vlnv"].endswith("tc1:1.0")
        assert reopened.resources().dsp == \
            assembly.accelerator_ip.resources.dsp
        assert b"network.json" in xo.data or \
            reopened.read_entry("ip/network.json")

    def test_only_accelerator_ip_packagable(self, tc1_setup):
        _, _, assembly = tc1_setup
        with pytest.raises(PackagingError, match="accelerator"):
            package_xo(assembly.layer_ips[0], "<xml/>")

    def test_invalid_container_rejected(self):
        with pytest.raises(PackagingError, match="invalid"):
            XoFile.open(b"not a zip")


class TestXoccLink:
    def test_successful_link(self, tc1_setup):
        model, _, assembly = tc1_setup
        xml = generate_kernel_xml(assembly.accelerator_ip)
        xo = package_xo(assembly.accelerator_ip, xml, model=model)
        device = device_for_board("aws-f1-xcvu9p")
        xclbin = xocc_link(xo, device, 100e6)
        assert xclbin.kernel_name == "tc1"
        assert xclbin.frequency_hz == 100e6  # closes at the request
        assert xclbin.network_json["name"] == "tc1"
        util = xclbin.resources["utilization_pct"]
        assert 5 < util["lut"] < 20

    def test_placement_failure_on_small_device(self, tc1_setup):
        """LeNet's on-chip FC weights cannot fit a Zynq-7020."""
        model = lenet_model(DeploymentOption.ON_PREMISE)
        acc = build_accelerator(model)
        hls = VivadoHLS("xcvu9p", model.frequency_hz)
        assembly = build_network_ip(acc, hls)
        xo = package_xo(assembly.accelerator_ip,
                        generate_kernel_xml(assembly.accelerator_ip),
                        model=model)
        with pytest.raises(LinkError, match="placement"):
            xocc_link(xo, device_for_board("pynq-z1"), 100e6)

    def test_xo_without_network_rejected(self, tc1_setup):
        model, _, assembly = tc1_setup
        xo = package_xo(assembly.accelerator_ip,
                        generate_kernel_xml(assembly.accelerator_ip))
        with pytest.raises(LinkError, match="network description"):
            xocc_link(xo, device_for_board("aws-f1-xcvu9p"), 100e6)


class TestFrequencyClosure:
    def test_below_knee_closes_at_request(self):
        device = device_for_board("aws-f1-xcvu9p")
        assert achievable_frequency(200e6, 0.30, device) == 200e6

    def test_capped_by_device_fmax(self):
        device = device_for_board("aws-f1-xcvu9p")
        assert achievable_frequency(400e6, 0.10, device) == device.fmax_hz

    def test_congestion_derate(self):
        device = device_for_board("aws-f1-xcvu9p")
        low = achievable_frequency(250e6, 0.60, device)
        high = achievable_frequency(250e6, 0.90, device)
        assert high < low < 250e6

    def test_monotone_in_utilization(self):
        device = device_for_board("aws-f1-xcvu9p")
        freqs = [achievable_frequency(250e6, u, device)
                 for u in (0.1, 0.4, 0.6, 0.8, 0.95)]
        assert all(a >= b for a, b in zip(freqs, freqs[1:]))
