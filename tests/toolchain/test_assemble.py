"""Layer/network IP assembly tests (flow steps 3c, 4, 5)."""

import pytest

from repro.frontend.condor_format import CondorModel, LayerHints
from repro.frontend.zoo import tc1_model
from repro.hw.accelerator import build_accelerator
from repro.hw.estimate import (
    estimate_fifo,
    estimate_memory_subsystems,
    estimate_pe_core,
)
from repro.toolchain.assemble import build_layer_ip, build_network_ip
from repro.toolchain.hls import VivadoHLS


@pytest.fixture(scope="module")
def acc():
    return build_accelerator(tc1_model())


@pytest.fixture(scope="module")
def hls():
    return VivadoHLS("xcvu9p", 100e6)


class TestLayerIP:
    def test_conv_layer_ip(self, acc, hls):
        pe = acc.pe("pe_conv1")
        ip = build_layer_ip(acc, pe, hls)
        assert ip.name == "layer_pe_conv1"
        assert ip.metadata["layers"] == "conv1"
        names = {p.name for p in ip.ports}
        assert {"in_stream0", "out_stream0", "weight_stream"} <= names
        # resources aggregate PE core + filters + chain FIFOs
        expected = estimate_pe_core(pe) + estimate_memory_subsystems(pe)
        assert ip.resources.dsp == expected.dsp
        assert ip.resources.bram_18k == expected.bram_18k
        # LUT within rounding of the estimate composition
        assert abs(ip.resources.lut - expected.lut) < 100

    def test_classifier_layer_ip_no_filters(self, acc, hls):
        ip = build_layer_ip(acc, acc.pe("pe_fc"), hls)
        # just the PE: core resources only
        assert ip.resources == estimate_pe_core(acc.pe("pe_fc"))

    def test_layer_ip_counts_filters(self, acc, hls):
        ip = build_layer_ip(acc, acc.pe("pe_conv1"), hls)
        # 25 filters + 24 fifos + 1 pe
        assert int(ip.metadata["instances"]) == 25 + 24 + 1


class TestNetworkIP:
    def test_assembly(self, acc, hls):
        result = build_network_ip(acc, hls)
        ip = result.accelerator_ip
        assert ip.metadata["kind"] == "accelerator"
        assert ip.metadata["network"] == "tc1"
        assert int(ip.metadata["pes"]) == 6
        assert len(result.layer_ips) == 6
        assert result.datamover_ip is not None

    def test_resources_are_aggregate(self, acc, hls):
        result = build_network_ip(acc, hls)
        parts = sum((ip.resources for ip in result.layer_ips),
                    start=result.datamover_ip.resources)
        fifos = sum((estimate_fifo(e.fifo) for e in acc.edges),
                    start=type(parts)())
        total = (parts + fifos).ceil()
        assert result.accelerator_ip.resources.dsp == total.dsp

    def test_fused_accelerator_assembles(self, hls):
        model = tc1_model()
        model.hints = {"conv1": LayerHints(cluster="f"),
                       "pool1": LayerHints(cluster="f")}
        acc = build_accelerator(model)
        result = build_network_ip(acc, hls)
        assert int(result.accelerator_ip.metadata["pes"]) == 5


class TestParallelAssembly:
    def test_parallel_mapping_assembles_with_interconnects(self, hls):
        """A DSE-style parallel configuration must wire through AXIS
        interconnects wherever producer/consumer port counts differ."""
        from repro.frontend.zoo import lenet_model

        model = lenet_model()
        model.hints = {
            "conv1": LayerHints(out_ports=4),
            "pool1": LayerHints(in_ports=4, out_ports=4),
            "conv2": LayerHints(in_ports=4, out_ports=10),
            "pool2": LayerHints(in_ports=10, out_ports=10),
        }
        acc = build_accelerator(model)
        hls180 = VivadoHLS("xcvu9p", 180e6)
        result = build_network_ip(acc, hls180)
        ip = result.accelerator_ip
        assert ip.metadata["kind"] == "accelerator"
        # lanes multiply the arithmetic: conv2 alone has 40 MAC trees
        conv2_ip = next(l for l in result.layer_ips
                        if l.metadata["layers"] == "conv2")
        base = build_network_ip(build_accelerator(lenet_model()),
                                VivadoHLS("xcvu9p", 180e6))
        conv2_base = next(l for l in base.layer_ips
                          if l.metadata["layers"] == "conv2")
        assert conv2_ip.resources.dsp == 40 * conv2_base.resources.dsp

    def test_matched_lanes_use_plain_fifos(self, hls):
        """pool->pool-successor edges with equal port counts get one FIFO
        per lane, no interconnect."""
        from repro.frontend.zoo import tc1_model as tc1

        model = tc1()
        model.hints = {
            "conv1": LayerHints(out_ports=4),
            "pool1": LayerHints(in_ports=4, out_ports=4),
            "conv2": LayerHints(in_ports=4, out_ports=4),
            "pool2": LayerHints(in_ports=4, out_ports=4),
        }
        acc = build_accelerator(model)
        result = build_network_ip(acc, VivadoHLS("xcvu9p", 100e6))
        assert result.accelerator_ip.metadata["kind"] == "accelerator"
