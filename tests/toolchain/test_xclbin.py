"""xclbin container format tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ArtifactError
from repro.toolchain.xclbin import (
    MAGIC,
    Xclbin,
    pseudo_bitstream,
    read_xclbin,
    write_xclbin,
)


def make_xclbin(sections=None):
    default = {b"META": b'{"kernel": "k"}', b"BITS": b"\x00" * 64}
    default.update(sections or {})
    return Xclbin(kernel_name="k", part="xcvu9p", frequency_hz=100e6,
                  sections=default)


class TestRoundtrip:
    def test_basic(self, tmp_path):
        xclbin = make_xclbin()
        path = tmp_path / "k.xclbin"
        blob = write_xclbin(xclbin, path)
        assert path.read_bytes() == blob
        back = read_xclbin(path)
        assert back.kernel_name == "k"
        assert back.part == "xcvu9p"
        assert back.frequency_hz == 100e6
        assert back.sections == xclbin.sections

    def test_magic(self):
        blob = write_xclbin(make_xclbin())
        assert blob.startswith(MAGIC)

    @given(meta=st.binary(max_size=100), bits=st.binary(max_size=200),
           freq=st.floats(1e6, 1e9))
    def test_roundtrip_property(self, meta, bits, freq):
        xclbin = Xclbin(kernel_name="k", part="p", frequency_hz=freq,
                        sections={b"META": meta, b"BITS": bits})
        back = read_xclbin(write_xclbin(xclbin))
        assert back.sections == {b"META": meta, b"BITS": bits}
        assert back.frequency_hz == freq

    def test_section_accessors(self):
        xclbin = make_xclbin({b"META": b'{"a": 1}'})
        xclbin.sections[b"RSRC"] = b'{"total": {}}'
        xclbin.sections[b"NETW"] = b'{"name": "n"}'
        back = read_xclbin(write_xclbin(xclbin))
        assert back.metadata == {"a": 1}
        assert back.resources == {"total": {}}
        assert back.network_json == {"name": "n"}
        assert back.mapping_json is None


class TestCorruption:
    def test_bad_magic(self):
        with pytest.raises(ArtifactError, match="magic"):
            read_xclbin(b"NOTRIGHT" + b"\x00" * 40)

    def test_truncated_header(self):
        blob = write_xclbin(make_xclbin())
        with pytest.raises(ArtifactError):
            read_xclbin(blob[:10])

    def test_truncated_body(self):
        blob = write_xclbin(make_xclbin())
        with pytest.raises(ArtifactError, match="truncated"):
            read_xclbin(blob[:-8])

    def test_checksum_detects_bitflip(self):
        blob = bytearray(write_xclbin(make_xclbin()))
        blob[-1] ^= 0xFF  # flip a payload byte
        with pytest.raises(ArtifactError, match="checksum"):
            read_xclbin(bytes(blob))

    def test_unknown_section_on_write(self):
        xclbin = make_xclbin()
        xclbin.sections[b"EVIL"] = b"x"
        with pytest.raises(ArtifactError, match="unknown section"):
            write_xclbin(xclbin)


class TestPseudoBitstream:
    def test_deterministic(self):
        assert pseudo_bitstream("seed") == pseudo_bitstream("seed")

    def test_seed_sensitivity(self):
        assert pseudo_bitstream("a") != pseudo_bitstream("b")

    def test_size(self):
        assert len(pseudo_bitstream("s", size=1000)) == 1000
