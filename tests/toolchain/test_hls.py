"""Simulated Vivado HLS tests."""

import pytest

from repro.codegen import generate_datamover_source, generate_pe_source
from repro.codegen.filters import generate_filter_source
from repro.errors import HLSError
from repro.frontend.zoo import tc1_model
from repro.hw.accelerator import build_accelerator
from repro.hw.estimate import estimate_pe_core
from repro.toolchain.hls import VivadoHLS, parse_condor_metadata


@pytest.fixture(scope="module")
def acc():
    return build_accelerator(tc1_model())


@pytest.fixture(scope="module")
def hls():
    return VivadoHLS("xcvu9p-flgb2104-2-i", 100e6)


class TestMetadataParsing:
    def test_parse(self):
        src = "// @condor kind=pe\n// @condor pe.window=5x5\nint x;"
        meta = parse_condor_metadata(src)
        assert meta == {"kind": "pe", "pe.window": "5x5"}

    def test_parse_empty(self):
        assert parse_condor_metadata("int x;") == {}


class TestConstruction:
    def test_unknown_part(self):
        with pytest.raises(HLSError, match="unknown part"):
            VivadoHLS("xc7v2000t", 100e6)

    def test_bad_clock(self):
        with pytest.raises(HLSError):
            VivadoHLS("xcvu9p", 0)

    def test_part_normalized(self, hls):
        assert hls.part == "xcvu9p"


class TestSynthesis:
    def test_pe_kernel(self, acc, hls):
        pe = acc.pe("pe_conv1")
        ip = hls.synthesize(generate_pe_source(acc, pe))
        assert ip.name == "pe_conv1"
        assert ip.report.ii == 1
        assert ip.report.resources == estimate_pe_core(pe)
        assert ip.report.meets(100e6)
        port_names = [name for name, _ in ip.stream_ports]
        assert port_names == ["in_stream0", "out_stream0", "weight_stream"]

    def test_filter_kernel(self, acc, hls):
        pe = acc.pe("pe_conv1")
        subsystem = pe.memory[0]
        src = generate_filter_source(subsystem, subsystem.filters[0], 16)
        ip = hls.synthesize(src)
        assert ip.metadata["kind"] == "filter"
        assert ip.report.resources.dsp == 0

    def test_datamover_kernel(self, acc, hls):
        ip = hls.synthesize(generate_datamover_source(acc))
        assert ip.metadata["kind"] == "datamover"
        assert ip.report.resources.lut > 9000

    def test_source_hash_stable(self, acc, hls):
        src = generate_pe_source(acc, acc.pe("pe_fc"))
        assert hls.synthesize(src).source_hash == \
            hls.synthesize(src).source_hash

    def test_missing_metadata_rejected(self, hls):
        with pytest.raises(HLSError, match="kind"):
            hls.synthesize("void f(hls::stream<float> &s) {}")

    def test_missing_top_function_rejected(self, hls):
        with pytest.raises(HLSError, match="top function"):
            hls.synthesize("// @condor kind=pe\nint x;")

    def test_missing_interface_pragma_rejected(self, hls):
        src = ("// @condor kind=filter\n"
               "void f(hls::stream<float> &in_stream) {\n"
               "#pragma HLS PIPELINE II=1\n}")
        with pytest.raises(HLSError, match="INTERFACE"):
            hls.synthesize(src)

    def test_missing_pipeline_pragma_rejected(self, hls):
        src = ("// @condor kind=filter\n"
               "void f(hls::stream<float> &in_stream) {\n"
               "#pragma HLS INTERFACE axis port=in_stream\n}")
        with pytest.raises(HLSError, match="PIPELINE"):
            hls.synthesize(src)

    def test_malformed_pe_metadata_rejected(self, acc, hls):
        src = generate_pe_source(acc, acc.pe("pe_conv1"))
        src = src.replace("// @condor pe.window=5x5\n", "")
        with pytest.raises(HLSError, match="malformed PE metadata"):
            hls.synthesize(src)


class TestTiming:
    def test_timing_failure_when_clock_too_fast(self, acc):
        # the fabric model tops out at the device fmax (250 MHz on VU9P);
        # asking for 400 MHz must fail for any non-trivial kernel
        hls = VivadoHLS("xcvu9p", 400e6)
        with pytest.raises(HLSError, match="Fmax"):
            hls.synthesize(generate_pe_source(acc, acc.pe("pe_conv1")))

    def test_fmax_degrades_with_size(self, acc, hls):
        small = hls.synthesize(
            generate_pe_source(acc, acc.pe("pe_prob"))).report
        big = hls.synthesize(
            generate_pe_source(acc, acc.pe("pe_conv1"))).report
        assert big.fmax_hz < small.fmax_hz
