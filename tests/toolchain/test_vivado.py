"""IP packaging / IP Integrator tests."""

import pytest

from repro.errors import IPIntegratorError, PackagingError
from repro.hw.components import Fifo
from repro.hw.resources import ResourceVector
from repro.toolchain.vivado import (
    BlockDesign,
    IPPort,
    VivadoIP,
    fifo_ip,
)


def simple_ip(name: str, inputs=("in0",), outputs=("out0",)):
    ports = [IPPort(p, "axis", "in") for p in inputs]
    ports += [IPPort(p, "axis", "out") for p in outputs]
    return VivadoIP(name=name, ports=ports,
                    resources=ResourceVector(lut=100, ff=200))


class TestVivadoIP:
    def test_vlnv(self):
        ip = simple_ip("pe0")
        assert ip.vlnv == "polimi.it:condor:pe0:1.0"

    def test_port_lookup(self):
        ip = simple_ip("pe0")
        assert ip.port("in0").direction == "in"
        with pytest.raises(KeyError):
            ip.port("zzz")

    def test_component_xml(self):
        xml = simple_ip("pe0").component_xml()
        assert '<spirit:component name="pe0"' in xml
        assert 'name="in0"' in xml and 'mode="slave"' in xml
        assert 'lut="100"' in xml

    def test_invalid_port(self):
        with pytest.raises(PackagingError):
            IPPort("p", "apb", "in")
        with pytest.raises(PackagingError):
            IPPort("p", "axis", "inout")

    def test_fifo_ip(self):
        ip = fifo_ip(Fifo("f0", depth=1024))
        assert ip.vendor == "xilinx.com"
        assert ip.resources.bram_18k == 2
        assert ip.port("S_AXIS").direction == "in"


class TestBlockDesign:
    def test_connect_and_package(self):
        design = BlockDesign("layer0")
        design.add_ip("a", simple_ip("a"))
        design.add_ip("b", simple_ip("b"))
        design.connect("a", "out0", "b", "in0")
        design.make_external("a", "in0", "in_stream0")
        design.make_external("b", "out0", "out_stream0")
        ip = design.package()
        assert ip.resources.lut == 200
        assert {p.name for p in ip.ports} >= {"in_stream0", "out_stream0"}
        assert ip.port("in_stream0").direction == "in"
        assert ip.port("out_stream0").direction == "out"

    def test_duplicate_instance(self):
        design = BlockDesign("d")
        design.add_ip("a", simple_ip("a"))
        with pytest.raises(IPIntegratorError, match="duplicate"):
            design.add_ip("a", simple_ip("a2"))

    def test_unknown_instance(self):
        design = BlockDesign("d")
        with pytest.raises(IPIntegratorError, match="no instance"):
            design.connect("x", "out0", "y", "in0")

    def test_direction_enforced(self):
        design = BlockDesign("d")
        design.add_ip("a", simple_ip("a"))
        design.add_ip("b", simple_ip("b"))
        with pytest.raises(IPIntegratorError, match="not a stream master"):
            design.connect("a", "in0", "b", "in0")
        with pytest.raises(IPIntegratorError, match="not a stream slave"):
            design.connect("a", "out0", "b", "out0")

    def test_double_drive_rejected(self):
        design = BlockDesign("d")
        design.add_ip("a", simple_ip("a"))
        design.add_ip("b", simple_ip("b"))
        design.add_ip("c", simple_ip("c"))
        design.connect("a", "out0", "b", "in0")
        with pytest.raises(IPIntegratorError, match="already drives"):
            design.connect("a", "out0", "c", "in0")
        with pytest.raises(IPIntegratorError, match="already driven"):
            design.connect("c", "out0", "b", "in0")

    def test_dangling_port_fails_validation(self):
        design = BlockDesign("d")
        design.add_ip("a", simple_ip("a"))
        design.make_external("a", "in0", "in_stream0")
        with pytest.raises(IPIntegratorError, match="unconnected"):
            design.validate()  # a.out0 dangles

    def test_external_name_collision(self):
        design = BlockDesign("d")
        design.add_ip("a", simple_ip("a"))
        design.make_external("a", "in0", "x")
        with pytest.raises(IPIntegratorError, match="already used"):
            design.make_external("a", "out0", "x")

    def test_non_axis_connect_rejected(self):
        ip = VivadoIP("m", ports=[IPPort("ctrl", "s_axilite", "in"),
                                  IPPort("out0", "axis", "out")])
        design = BlockDesign("d")
        design.add_ip("a", ip)
        design.add_ip("b", simple_ip("b"))
        with pytest.raises(IPIntegratorError, match="axis"):
            design.connect("a", "ctrl", "b", "in0")

    def test_metadata_carried(self):
        design = BlockDesign("d")
        design.add_ip("a", simple_ip("a"))
        design.make_external("a", "in0", "i")
        design.make_external("a", "out0", "o")
        ip = design.package(metadata={"layers": "conv1"})
        assert ip.metadata["layers"] == "conv1"
        assert ip.metadata["kind"] == "block_design"

    def test_accessors(self):
        design = BlockDesign("d")
        design.add_ip("b", simple_ip("b"))
        design.add_ip("a", simple_ip("a"))
        design.connect("a", "out0", "b", "in0")
        assert design.instances == ["a", "b"]
        assert design.connections == [("a", "out0", "b", "in0")]
