"""The ``condor bench`` harness: measurements, persistence, the gate."""

import json

import pytest

from repro.errors import BenchError
from repro.perf.bench import (
    FULL_SUITE,
    OBS_OVERHEAD_LIMIT,
    QUICK_SUITE,
    SCHEMA,
    BenchResult,
    bench_dse,
    bench_engine,
    bench_engine_steady,
    bench_obs_overhead,
    bench_serve,
    bench_sim,
    compare_benchmarks,
    load_benchmarks,
    merge_benchmarks,
    run_bench,
    write_benchmarks,
)


def _result(op="engine", model="tc1", wall_s=1.0, cycles=None,
            cache_hits=None, speedup=None):
    return BenchResult(op=op, model=model, wall_s=wall_s, cycles=cycles,
                       cache_hits=cache_hits, speedup_vs_baseline=speedup)


class TestOps:
    def test_engine_reports_speedup(self):
        result = bench_engine("tc1", batch=8, reps=1)
        assert (result.op, result.model) == ("engine", "tc1")
        assert result.wall_s > 0
        assert result.speedup_vs_baseline > 0
        assert result.cycles is None and result.cache_hits is None

    def test_dse_reports_cycles_and_hits(self):
        result = bench_dse("tc1", jobs=2, reps=1)
        assert (result.op, result.model) == ("dse", "tc1")
        assert result.cycles > 0
        assert result.cache_hits > 0  # the warm rerun hits the cache
        assert result.speedup_vs_baseline > 1.0

    def test_sim_cycles_deterministic(self):
        first = bench_sim("tc1", batch=2, reps=1)
        second = bench_sim("tc1", batch=2, reps=1)
        assert first.cycles == second.cycles > 0
        assert first.speedup_vs_baseline is None

    def test_engine_steady_reports_hits(self):
        result = bench_engine_steady("tc1", batch=8, reps=1)
        assert (result.op, result.model) == ("engine-steady", "tc1")
        assert result.wall_s > 0
        # the timed replay phase runs warm: every layer is a plan hit
        assert result.cache_hits > 0
        assert result.speedup_vs_baseline > 0
        assert result.cycles is None

    def test_unknown_model_rejected(self):
        with pytest.raises(BenchError, match="unknown zoo model"):
            bench_engine("alexnet")

    def test_obs_overhead_reports_ratio(self):
        result = bench_obs_overhead("tc1", batch=4, reps=3)
        assert (result.op, result.model) == ("obs-overhead", "tc1")
        assert result.wall_s > 0
        # instrumented/plain wall ratio: near 1.0, positive by nature
        assert result.speedup_vs_baseline > 0
        assert result.cycles is None and result.cache_hits is None

    def test_serve_batching_beats_batch_size_one(self):
        result = bench_serve("tc1", requests=1024)
        assert (result.op, result.model) == ("serve", "tc1")
        assert result.wall_s > 0
        # the acceptance bar: coalescing at least doubles serving
        # throughput over the per-request path (same seeded workload,
        # bit-identical outputs asserted inside the op)
        assert result.speedup_vs_baseline >= 2.0
        assert result.cycles is None and result.cache_hits is None

    def test_tsan_overhead_reports_ratio(self):
        from repro.perf.bench import bench_tsan_overhead

        result = bench_tsan_overhead("locks", iters=200, reps=3)
        assert (result.op, result.model) == ("tsan-overhead", "locks")
        assert result.wall_s > 0
        # instrumented/plain acquire ratio: positive by nature
        assert result.speedup_vs_baseline > 0
        assert result.cycles is None and result.cache_hits is None


def test_suites_are_subset():
    quick = {(op, model) for op, model, _ in QUICK_SUITE}
    full = {(op, model) for op, model, _ in FULL_SUITE}
    assert quick <= full
    assert {op for op, _ in full} == \
        {"engine", "engine-steady", "dse", "sim", "serve",
         "obs-overhead", "tsan-overhead"}
    # the serving path rides the CI regression gate
    assert ("serve", "tc1") in quick
    # the steady-state rows are part of the CI regression gate
    assert {m for op, m, _ in QUICK_SUITE if op == "engine-steady"} == \
        {"tc1", "lenet"}


def test_run_bench_quick(monkeypatch):
    """The quick suite runs end to end and yields one row per entry
    (ops stubbed out — the real measurements are covered above)."""
    import repro.perf.bench as bench_mod

    calls = []

    def fake(op):
        def run(model, **kwargs):
            calls.append((op, model, kwargs))
            return _result(op=op, model=model)
        return run

    for op in ("engine", "engine-steady", "dse", "sim", "serve",
               "obs-overhead", "tsan-overhead"):
        monkeypatch.setitem(bench_mod._OPS, op, fake(op))
    results = run_bench(quick=True, jobs=3)
    assert [(r.op, r.model) for r in results] == \
        [(op, model) for op, model, _ in QUICK_SUITE]
    # --jobs reaches every dse row
    assert all(kwargs["jobs"] == 3 for op, _, kwargs in calls
               if op == "dse")


def test_run_bench_op_filter(monkeypatch):
    import repro.perf.bench as bench_mod

    for op in ("engine", "engine-steady", "dse", "sim", "serve",
               "obs-overhead", "tsan-overhead"):
        monkeypatch.setitem(
            bench_mod._OPS, op,
            lambda model, _op=op, **kw: _result(op=_op, model=model))
    results = run_bench(quick=True, ops={"engine-steady"})
    assert [(r.op, r.model) for r in results] == \
        [(op, model) for op, model, _ in QUICK_SUITE
         if op == "engine-steady"]
    with pytest.raises(BenchError, match="unknown bench op"):
        run_bench(quick=True, ops={"warp-drive"})


def test_merge_benchmarks_overlays_by_key():
    existing = [_result(op="engine", speedup=2.0),
                _result(op="sim", cycles=100),
                _result(op="dse", model="lenet", speedup=5.0)]
    fresh = [_result(op="sim", cycles=90),
             _result(op="engine-steady", speedup=3.0)]
    merged = merge_benchmarks(existing, fresh)
    assert [(r.op, r.model) for r in merged] == \
        [("engine", "tc1"), ("sim", "tc1"), ("dse", "lenet"),
         ("engine-steady", "tc1")]
    assert merged[1].cycles == 90  # refreshed in place
    assert merged[0].speedup_vs_baseline == 2.0  # untouched row survives


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        results = [_result(speedup=2.5),
                   _result(op="sim", cycles=8363)]
        path = write_benchmarks(results, tmp_path / "BENCH_perf.json")
        doc = json.loads(path.read_text())
        assert doc["schema"] == SCHEMA
        assert load_benchmarks(path) == results

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "nope", "results": []}))
        with pytest.raises(BenchError, match="schema"):
            load_benchmarks(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(BenchError, match="cannot read"):
            load_benchmarks(tmp_path / "absent.json")

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(
            {"schema": SCHEMA, "results": [{"op": "engine"}]}))
        with pytest.raises(BenchError, match="malformed"):
            load_benchmarks(path)


class TestCompare:
    def test_identical_runs_pass(self):
        rows = [_result(speedup=2.0), _result(op="sim", cycles=100)]
        assert compare_benchmarks(rows, rows) == []

    def test_cycles_regression_flagged(self):
        base = [_result(op="sim", cycles=100)]
        ok = [_result(op="sim", cycles=119)]
        bad = [_result(op="sim", cycles=121)]
        assert compare_benchmarks(ok, base) == []
        violations = compare_benchmarks(bad, base)
        assert len(violations) == 1
        assert "cycles regressed" in violations[0]

    def test_speedup_decay_flagged(self):
        base = [_result(speedup=2.0)]
        ok = [_result(speedup=1.61)]
        bad = [_result(speedup=1.59)]
        assert compare_benchmarks(ok, base) == []
        violations = compare_benchmarks(bad, base)
        assert len(violations) == 1
        assert "speedup regressed" in violations[0]

    def test_threshold_configurable(self):
        base = [_result(op="sim", cycles=100)]
        current = [_result(op="sim", cycles=130)]
        assert compare_benchmarks(current, base,
                                  max_regression=0.5) == []
        assert compare_benchmarks(current, base,
                                  max_regression=0.1) != []

    def test_wall_clock_never_gated(self):
        base = [_result(wall_s=1.0, speedup=2.0)]
        current = [_result(wall_s=100.0, speedup=2.0)]
        assert compare_benchmarks(current, base) == []

    def test_unmatched_rows_ignored(self):
        base = [_result(op="dse", model="vgg16", cycles=10,
                        speedup=40.0)]
        current = [_result(op="dse", model="tc1", cycles=99999,
                           speedup=0.01)]
        assert compare_benchmarks(current, base) == []

    def test_new_op_is_informational_not_a_failure(self):
        # a brand-new op must be able to land in the same PR that
        # refreshes the committed baseline, so a missing baseline row
        # is a note, never a violation
        current = [_result(op="serve", model="tc1", speedup=3.3)]
        notes: list[str] = []
        assert compare_benchmarks(current, [], notes=notes) == []
        assert len(notes) == 1
        assert "serve:tc1" in notes[0]
        assert "informational" in notes[0]
        assert "3.30x" in notes[0]

    def test_notes_are_opt_in(self):
        current = [_result(op="serve", model="tc1", speedup=3.3)]
        # the default call stays silent and still passes
        assert compare_benchmarks(current, []) == []

    def test_obs_overhead_gated_absolutely(self):
        # no baseline row needed: the budget is absolute
        over = [_result(op="obs-overhead", model="lenet",
                        speedup=OBS_OVERHEAD_LIMIT + 0.01)]
        violations = compare_benchmarks(over, [])
        assert len(violations) == 1
        assert "telemetry overhead" in violations[0]
        assert "budget" in violations[0]

    def test_obs_overhead_under_budget_passes(self):
        ok = [_result(op="obs-overhead", model="lenet",
                      speedup=OBS_OVERHEAD_LIMIT - 0.01)]
        assert compare_benchmarks(ok, []) == []
        # and the relative-decay rule never applies to this op, even
        # when a (better) baseline row exists
        base = [_result(op="obs-overhead", model="lenet", speedup=1.00)]
        assert compare_benchmarks(ok, base) == []

    def test_tsan_overhead_never_gated(self):
        # informational row: neither the relative-decay rule nor any
        # absolute budget applies, however bad the ratio looks
        slow = [_result(op="tsan-overhead", model="locks",
                        speedup=50.0)]
        assert compare_benchmarks(slow, []) == []
        base = [_result(op="tsan-overhead", model="locks", speedup=1.5)]
        assert compare_benchmarks(slow, base) == []

    def test_improvements_pass(self):
        base = [_result(op="sim", cycles=100),
                _result(speedup=2.0)]
        current = [_result(op="sim", cycles=50),
                   _result(speedup=4.0)]
        assert compare_benchmarks(current, base) == []
