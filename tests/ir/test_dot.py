"""DOT export tests."""

import re

from repro.frontend.condor_format import CondorModel, LayerHints
from repro.frontend.zoo import tc1_model, tc1_network
from repro.hw.accelerator import build_accelerator
from repro.ir.dot import accelerator_to_dot, network_to_dot


def _balanced(text: str) -> bool:
    return text.count("{") == text.count("}") and \
        text.count("[") == text.count("]")


class TestNetworkDot:
    def test_all_layers_present(self):
        net = tc1_network()
        dot = network_to_dot(net)
        for layer in net:
            assert f'"{layer.name}"' in dot
        assert dot.startswith('digraph "tc1"')
        assert _balanced(dot)

    def test_edges_carry_shapes(self):
        dot = network_to_dot(tc1_network())
        assert '"conv1" -> "pool1" [label="12x12x12"]' in dot

    def test_edge_count_is_chain(self):
        net = tc1_network()
        dot = network_to_dot(net)
        assert dot.count(" -> ") == len(net) - 1

    def test_stage_coloring(self):
        dot = network_to_dot(tc1_network())
        assert "#cfe2ff" in dot   # features
        assert "#ffe3cf" in dot   # classifier


class TestAcceleratorDot:
    def test_structure(self):
        acc = build_accelerator(tc1_model())
        dot = accelerator_to_dot(acc)
        assert _balanced(dot)
        for pe in acc.pes:
            assert f'"{pe.name}"' in dot
        assert '"datamover"' in dot
        # every stream edge rendered with its fifo depth
        assert dot.count(" -> ") == len(acc.edges)
        assert re.search(r'fifo\[\d+\]', dot)

    def test_weight_streams_dashed(self):
        acc = build_accelerator(tc1_model())
        dot = accelerator_to_dot(acc)
        dashed = [line for line in dot.splitlines()
                  if "style=dashed" in line]
        assert len(dashed) == 3  # conv1, conv2, fc weight streams

    def test_fused_pe_label(self):
        model = tc1_model()
        model.hints = {"conv1": LayerHints(cluster="f"),
                       "pool1": LayerHints(cluster="f")}
        acc = build_accelerator(model)
        dot = accelerator_to_dot(acc)
        assert "conv1+pool1" in dot

    def test_spill_annotation(self):
        from repro.frontend.zoo import vgg16_model

        acc = build_accelerator(vgg16_model(frequency_hz=180e6))
        dot = accelerator_to_dot(acc)
        assert "DDR-streamed" in dot
        assert "on-chip" in dot
