"""FLOP/MAC accounting tests."""

import pytest

from repro.ir.flops import layer_flops, layer_macs, network_flops, network_macs
from repro.ir.layers import (
    Activation,
    ActivationLayer,
    ConvLayer,
    FlattenLayer,
    FullyConnectedLayer,
    InputLayer,
    PoolLayer,
    PoolOp,
    SoftmaxLayer,
)
from repro.ir.network import chain
from repro.ir.shapes import TensorShape


class TestLayerMacs:
    def test_conv(self):
        layer = ConvLayer("c", num_output=20, kernel=5)
        # 24*24 outputs * 20 maps * (1*5*5) per point
        assert layer_macs(layer, TensorShape(1, 28, 28)) == \
            24 * 24 * 20 * 25

    def test_conv_multichannel(self):
        layer = ConvLayer("c", num_output=50, kernel=5)
        assert layer_macs(layer, TensorShape(20, 12, 12)) == \
            8 * 8 * 50 * 20 * 25

    def test_fc(self):
        layer = FullyConnectedLayer("fc", num_output=500)
        assert layer_macs(layer, TensorShape(50, 4, 4)) == 500 * 800

    def test_non_compute_layers_zero(self):
        assert layer_macs(PoolLayer("p"), TensorShape(4, 8, 8)) == 0
        assert layer_macs(ActivationLayer("a"), TensorShape(4, 8, 8)) == 0


class TestLayerFlops:
    def test_conv_includes_bias_and_activation(self):
        in_shape = TensorShape(1, 28, 28)
        base = ConvLayer("c", num_output=20, kernel=5, bias=False)
        biased = ConvLayer("c", num_output=20, kernel=5, bias=True)
        fused = ConvLayer("c", num_output=20, kernel=5, bias=True,
                          activation=Activation.RELU)
        out_size = 20 * 24 * 24
        assert layer_flops(base, in_shape) == 2 * layer_macs(base, in_shape)
        assert layer_flops(biased, in_shape) == \
            layer_flops(base, in_shape) + out_size
        assert layer_flops(fused, in_shape) == \
            layer_flops(biased, in_shape) + out_size

    def test_max_pool(self):
        layer = PoolLayer("p", op=PoolOp.MAX, kernel=2)
        # 3 compares per 2x2 window
        assert layer_flops(layer, TensorShape(20, 24, 24)) == \
            20 * 12 * 12 * 3

    def test_avg_pool(self):
        layer = PoolLayer("p", op=PoolOp.AVG, kernel=2)
        assert layer_flops(layer, TensorShape(20, 24, 24)) == \
            20 * 12 * 12 * 4

    def test_activation_and_softmax(self):
        assert layer_flops(ActivationLayer("a"), TensorShape(10, 2, 2)) == 40
        assert layer_flops(SoftmaxLayer("s"), TensorShape(10)) == 40

    def test_zero_flop_layers(self):
        assert layer_flops(InputLayer("d"), TensorShape(1, 1, 1)) == 0
        assert layer_flops(FlattenLayer("f"), TensorShape(4, 2, 2)) == 0


class TestNetworkTotals:
    def test_lenet_flops_match_known_value(self):
        # LeNet (Caffe mnist example): ~2.29 MMACs -> ~4.6 MFLOPs
        net = chain("lenet", (1, 28, 28), [
            ConvLayer("conv1", num_output=20, kernel=5),
            PoolLayer("pool1"),
            ConvLayer("conv2", num_output=50, kernel=5),
            PoolLayer("pool2"),
            FullyConnectedLayer("ip1", num_output=500,
                                activation=Activation.RELU),
            FullyConnectedLayer("ip2", num_output=10),
            SoftmaxLayer("prob", log=False),
        ])
        macs = network_macs(net)
        expected_macs = (24 * 24 * 20 * 25 + 8 * 8 * 50 * 20 * 25 +
                         500 * 800 + 10 * 500)
        assert macs == expected_macs == 2_293_000
        assert network_flops(net) > 2 * macs  # bias/act/pool on top

    def test_totals_are_sums(self):
        net = chain("n", (1, 8, 8), [
            ConvLayer("c", num_output=2, kernel=3),
            PoolLayer("p"),
        ])
        assert network_flops(net) == (
            layer_flops(net["c"], net.input_shape("c")) +
            layer_flops(net["p"], net.input_shape("p")))
