"""Network container tests."""

import pytest

from repro.errors import ValidationError
from repro.ir.layers import (
    Activation,
    ActivationLayer,
    ConvLayer,
    FlattenLayer,
    FullyConnectedLayer,
    InputLayer,
    PoolLayer,
    SoftmaxLayer,
    Stage,
)
from repro.ir.network import Network, chain
from repro.ir.shapes import TensorShape


@pytest.fixture
def lenet():
    return chain("lenet", (1, 28, 28), [
        ConvLayer("conv1", num_output=20, kernel=5),
        PoolLayer("pool1"),
        ConvLayer("conv2", num_output=50, kernel=5),
        PoolLayer("pool2"),
        FullyConnectedLayer("ip1", num_output=500,
                            activation=Activation.RELU),
        FullyConnectedLayer("ip2", num_output=10),
        SoftmaxLayer("prob", log=False),
    ])


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            Network("n", [])

    def test_must_start_with_input(self):
        with pytest.raises(ValidationError):
            Network("n", [ConvLayer("c", num_output=1)])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError) as exc:
            chain("n", (1, 8, 8), [
                ConvLayer("c", num_output=1, kernel=3),
                ActivationLayer("c"),
            ])
        assert "duplicate" in str(exc.value)

    def test_shapes_precomputed(self, lenet):
        assert lenet.input_shape() == TensorShape(1, 28, 28)
        assert lenet.output_shape() == TensorShape(10, 1, 1)
        assert lenet.output_shape("conv1") == TensorShape(20, 24, 24)
        assert lenet.input_shape("conv2") == TensorShape(20, 12, 12)


class TestAccess:
    def test_getitem_by_name_and_index(self, lenet):
        assert lenet["conv1"] is lenet[1]
        assert lenet[0].name == "data"

    def test_unknown_layer(self, lenet):
        with pytest.raises(KeyError):
            lenet["nope"]
        with pytest.raises(KeyError):
            lenet.index("nope")

    def test_contains_len_iter(self, lenet):
        assert "conv2" in lenet
        assert "zzz" not in lenet
        assert len(lenet) == 8
        assert [l.name for l in lenet][0] == "data"

    def test_index(self, lenet):
        assert lenet.index("pool2") == 4


class TestStages:
    def test_stage_of(self, lenet):
        assert lenet.stage_of("conv1") is Stage.FEATURES
        assert lenet.stage_of("pool2") is Stage.FEATURES
        assert lenet.stage_of("ip1") is Stage.CLASSIFIER
        # softmax is neutral -> inherits classifier
        assert lenet.stage_of("prob") is Stage.CLASSIFIER

    def test_neutral_before_any_stage_is_features(self):
        net = chain("n", (1, 8, 8), [
            ActivationLayer("act"),
            ConvLayer("c", num_output=2, kernel=3),
        ])
        assert net.stage_of("act") is Stage.FEATURES

    def test_features_and_classifier_lists(self, lenet):
        assert [l.name for l in lenet.features_layers()] == \
            ["conv1", "pool1", "conv2", "pool2"]
        assert [l.name for l in lenet.classifier_layers()] == \
            ["ip1", "ip2", "prob"]

    def test_features_subnetwork(self, lenet):
        sub = lenet.features_subnetwork()
        assert sub.name == "lenet_features"
        assert len(sub) == 5
        assert sub.output_shape() == TensorShape(50, 4, 4)

    def test_features_subnetwork_empty_rejected(self):
        net = chain("mlp", (16, 1, 1), [
            FullyConnectedLayer("fc", num_output=4),
        ])
        with pytest.raises(ValidationError):
            net.features_subnetwork()


class TestMisc:
    def test_compute_layers_excludes_input_and_flatten(self):
        net = chain("n", (1, 8, 8), [
            ConvLayer("c", num_output=2, kernel=3),
            FlattenLayer("flat"),
            FullyConnectedLayer("fc", num_output=4),
        ])
        assert [l.name for l in net.compute_layers()] == ["c", "fc"]

    def test_summary_contains_all_layers(self, lenet):
        text = lenet.summary()
        for layer in lenet:
            assert layer.name in text

    def test_repr(self, lenet):
        assert "lenet" in repr(lenet)
        assert "8 layers" in repr(lenet)
