"""Layer dataclass tests: shape inference, weight shapes, stages."""

import pytest

from repro.errors import ShapeError
from repro.ir.layers import (
    Activation,
    ActivationLayer,
    ConvLayer,
    FlattenLayer,
    FullyConnectedLayer,
    InputLayer,
    PoolLayer,
    PoolOp,
    SoftmaxLayer,
    Stage,
)
from repro.ir.shapes import TensorShape


class TestConvLayer:
    def test_scalar_params_become_pairs(self):
        layer = ConvLayer("c", num_output=20, kernel=5, stride=2, pad=1)
        assert layer.kernel == (5, 5)
        assert layer.stride == (2, 2)
        assert layer.pad == (1, 1)

    def test_output_shape(self):
        layer = ConvLayer("c", num_output=20, kernel=5)
        assert layer.output_shape(TensorShape(1, 28, 28)) == \
            TensorShape(20, 24, 24)

    def test_weight_shapes(self):
        layer = ConvLayer("c", num_output=20, kernel=5)
        shapes = layer.weight_shapes(TensorShape(3, 28, 28))
        assert shapes == {"weights": (20, 3, 5, 5), "bias": (20,)}

    def test_no_bias(self):
        layer = ConvLayer("c", num_output=4, kernel=3, bias=False)
        assert "bias" not in layer.weight_shapes(TensorShape(1, 8, 8))

    def test_stage(self):
        assert ConvLayer("c", num_output=1).stage is Stage.FEATURES

    def test_invalid_num_output(self):
        with pytest.raises(ShapeError):
            ConvLayer("c", num_output=0)

    def test_bad_pair(self):
        with pytest.raises(ShapeError):
            ConvLayer("c", num_output=1, kernel=(1, 2, 3))  # type: ignore


class TestPoolLayer:
    def test_stride_defaults_to_kernel(self):
        layer = PoolLayer("p", kernel=3)
        assert layer.stride == (3, 3)

    def test_output_shape_preserves_channels(self):
        layer = PoolLayer("p", kernel=2)
        assert layer.output_shape(TensorShape(20, 24, 24)) == \
            TensorShape(20, 12, 12)

    def test_no_weights(self):
        assert PoolLayer("p").weight_shapes(TensorShape(1, 4, 4)) == {}

    def test_ops(self):
        assert PoolLayer("p", op=PoolOp.AVG).op is PoolOp.AVG


class TestActivationLayer:
    def test_identity_shape(self):
        layer = ActivationLayer("r", kind=Activation.RELU)
        s = TensorShape(5, 3, 3)
        assert layer.output_shape(s) == s

    def test_none_rejected(self):
        with pytest.raises(ShapeError):
            ActivationLayer("r", kind=Activation.NONE)


class TestFullyConnected:
    def test_output_shape(self):
        layer = FullyConnectedLayer("fc", num_output=500)
        assert layer.output_shape(TensorShape(50, 4, 4)) == \
            TensorShape(500, 1, 1)

    def test_weight_shapes_flatten_input(self):
        layer = FullyConnectedLayer("fc", num_output=500)
        shapes = layer.weight_shapes(TensorShape(50, 4, 4))
        assert shapes["weights"] == (500, 800)
        assert shapes["bias"] == (500,)

    def test_stage(self):
        assert FullyConnectedLayer("fc", num_output=1).stage is \
            Stage.CLASSIFIER


class TestOtherLayers:
    def test_input_layer(self):
        layer = InputLayer("data", shape=TensorShape(3, 32, 32))
        assert layer.output_shape(TensorShape(1, 1, 1)) == \
            TensorShape(3, 32, 32)

    def test_flatten(self):
        layer = FlattenLayer("flat")
        assert layer.output_shape(TensorShape(50, 4, 4)) == \
            TensorShape(800, 1, 1)

    def test_softmax_requires_vector(self):
        layer = SoftmaxLayer("prob")
        assert layer.output_shape(TensorShape(10)) == TensorShape(10)
        with pytest.raises(ShapeError):
            layer.output_shape(TensorShape(10, 2, 2))

    def test_type_names(self):
        assert ConvLayer("c", num_output=1).type_name == "conv"
        assert SoftmaxLayer("s").type_name == "softmax"
        assert FullyConnectedLayer("f", num_output=1).type_name == \
            "fullyconnected"
