"""Shape inference tests — the paper's equations (2) and (3)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import ShapeError
from repro.ir.shapes import TensorShape, conv_output_hw, pool_output_hw


class TestTensorShape:
    def test_basic(self):
        s = TensorShape(20, 24, 24)
        assert s.size == 20 * 24 * 24
        assert s.spatial_size == 576
        assert s.as_tuple() == (20, 24, 24)
        assert str(s) == "20x24x24"

    def test_vector(self):
        assert TensorShape(500).is_vector()
        assert not TensorShape(1, 2, 1).is_vector()

    def test_flattened(self):
        assert TensorShape(50, 4, 4).flattened() == TensorShape(800, 1, 1)

    @pytest.mark.parametrize("bad", [(0, 1, 1), (1, -1, 1), (1, 1, 0)])
    def test_nonpositive_rejected(self, bad):
        with pytest.raises(ShapeError):
            TensorShape(*bad)

    def test_float_rejected(self):
        with pytest.raises(ShapeError):
            TensorShape(1.5, 1, 1)  # type: ignore[arg-type]

    def test_ordering_and_hash(self):
        assert TensorShape(1, 2, 3) == TensorShape(1, 2, 3)
        assert len({TensorShape(1, 2, 3), TensorShape(1, 2, 3)}) == 1


class TestConvOutput:
    def test_paper_eq2_unit_stride(self):
        # eq. (2): out = in - k + 1
        assert conv_output_hw((28, 28), (5, 5)) == (24, 24)
        assert conv_output_hw((12, 12), (5, 5)) == (8, 8)

    def test_stride_and_pad(self):
        # AlexNet conv1-style: 224 input, k=11, s=4, p=2 -> 55 in Caffe's
        # floor convention... (227+0-11)/4+1 = 55
        assert conv_output_hw((227, 227), (11, 11), (4, 4)) == (55, 55)
        # VGG 3x3 same-padding
        assert conv_output_hw((224, 224), (3, 3), (1, 1), (1, 1)) == (224, 224)

    def test_rectangular(self):
        assert conv_output_hw((10, 20), (3, 5), (1, 2), (0, 0)) == (8, 8)

    def test_window_too_large(self):
        with pytest.raises(ShapeError):
            conv_output_hw((4, 4), (5, 5))

    def test_invalid_params(self):
        with pytest.raises(ShapeError):
            conv_output_hw((4, 4), (0, 1))
        with pytest.raises(ShapeError):
            conv_output_hw((4, 4), (2, 2), (0, 1))
        with pytest.raises(ShapeError):
            conv_output_hw((4, 4), (2, 2), (1, 1), (-1, 0))

    @given(st.integers(1, 64), st.integers(1, 7), st.integers(1, 4),
           st.integers(0, 3))
    def test_matches_closed_form(self, size, k, s, p):
        if k > size + 2 * p:
            with pytest.raises(ShapeError):
                conv_output_hw((size, size), (k, k), (s, s), (p, p))
            return
        out, _ = conv_output_hw((size, size), (k, k), (s, s), (p, p))
        assert out == (size + 2 * p - k) // s + 1
        assert out >= 1


class TestPoolOutput:
    def test_paper_eq3(self):
        # eq. (3) with rho=2, 2x2 window: ceil((in-k)/rho)+1
        assert pool_output_hw((24, 24), (2, 2), (2, 2)) == (12, 12)
        assert pool_output_hw((8, 8), (2, 2), (2, 2)) == (4, 4)

    def test_ceil_vs_floor(self):
        # 5 input, 2x2 window stride 2: ceil -> 3, floor -> 2
        assert pool_output_hw((5, 5), (2, 2), (2, 2), ceil_mode=True) == (3, 3)
        assert pool_output_hw((5, 5), (2, 2), (2, 2), ceil_mode=False) == (2, 2)

    def test_padding_without_clip(self):
        # in=4, k=3, s=2, p=1: ceil((4+2-3)/2)+1 = 3; the last window starts
        # at 4 < in+pad = 5 so no clipping happens.
        assert pool_output_hw((4, 4), (3, 3), (2, 2), (1, 1)) == (3, 3)

    def test_caffe_clip_with_padding(self):
        # in=3, k=2, s=2, p=1: ceil((3+2-2)/2)+1 = 3, but the 3rd window
        # would start at 4 >= in+pad = 4, so Caffe clips it to 2.
        assert pool_output_hw((3, 3), (2, 2), (2, 2), (1, 1)) == (2, 2)

    @given(st.integers(2, 64), st.integers(1, 5), st.integers(1, 5))
    def test_ceil_ge_floor(self, size, k, s):
        if k > size:
            return
        ceil_out = pool_output_hw((size, size), (k, k), (s, s),
                                  ceil_mode=True)[0]
        floor_out = pool_output_hw((size, size), (k, k), (s, s),
                                   ceil_mode=False)[0]
        assert floor_out <= ceil_out <= floor_out + 1
        assert ceil_out == math.ceil((size - k) / s) + 1
