"""Structural validation tests."""

import pytest

from repro.errors import ValidationError
from repro.ir.layers import (
    ConvLayer,
    FlattenLayer,
    FullyConnectedLayer,
    InputLayer,
    PoolLayer,
    SoftmaxLayer,
)
from repro.ir.network import Network, chain
from repro.ir.shapes import TensorShape
from repro.ir.validate import validate_network


def test_valid_lenet_passes():
    net = chain("ok", (1, 28, 28), [
        ConvLayer("c1", num_output=20, kernel=5),
        PoolLayer("p1"),
        FullyConnectedLayer("fc", num_output=10),
        SoftmaxLayer("prob"),
    ])
    validate_network(net)  # should not raise


def test_conv_after_fc_rejected():
    net = chain("bad", (1, 28, 28), [
        ConvLayer("c1", num_output=4, kernel=5),
        FullyConnectedLayer("fc", num_output=100),
        # shape 100x1x1; a 1x1 conv is still a features layer -> illegal
        ConvLayer("c2", num_output=4, kernel=1),
    ])
    with pytest.raises(ValidationError):
        validate_network(net)


def test_pool_after_fc_rejected():
    net = chain("bad", (4, 4, 4), [
        FullyConnectedLayer("fc", num_output=64),
        PoolLayer("p", kernel=1),
    ])
    with pytest.raises(ValidationError):
        validate_network(net)


def test_softmax_must_be_last():
    net = chain("bad", (4, 1, 1), [
        SoftmaxLayer("prob"),
        FullyConnectedLayer("fc", num_output=2),
    ])
    with pytest.raises(ValidationError):
        validate_network(net)


def test_extra_input_layer_rejected():
    net = Network("bad", [
        InputLayer("data", shape=TensorShape(1, 8, 8)),
        InputLayer("data2", shape=TensorShape(1, 8, 8)),
        ConvLayer("c", num_output=1, kernel=3),
    ])
    with pytest.raises(ValidationError):
        validate_network(net)


def test_no_compute_layers_rejected():
    net = Network("bad", [InputLayer("data", shape=TensorShape(1, 8, 8))])
    with pytest.raises(ValidationError):
        validate_network(net)


def test_flatten_before_conv_rejected():
    net = chain("bad", (1, 10, 10), [
        FlattenLayer("flat"),
        ConvLayer("c", num_output=2, kernel=1),
    ])
    with pytest.raises(ValidationError):
        validate_network(net)


def test_flatten_at_boundary_ok():
    net = chain("ok", (1, 10, 10), [
        ConvLayer("c", num_output=2, kernel=3),
        FlattenLayer("flat"),
        FullyConnectedLayer("fc", num_output=4),
    ])
    validate_network(net)
