"""Evaluation harness tests (fast checks; the full shape assertions live
in benchmarks/)."""

import pytest

from repro.eval.figure5 import (
    DEFAULT_BATCHES,
    Figure5Series,
    figure5_series,
    render_figure5,
)
from repro.eval.table1 import PAPER_TABLE1, Table1Row, render_table1
from repro.eval.table2 import PAPER_TABLE2, Table2Row, render_table2


class TestPaperConstants:
    def test_table1_values_match_publication(self):
        assert PAPER_TABLE1["TC1"]["gflops"] == 8.36
        assert PAPER_TABLE1["LeNet"]["bram"] == 24.38
        assert PAPER_TABLE1["LeNet"]["gflops_per_w"] == 0.78

    def test_table2_values_match_publication(self):
        assert PAPER_TABLE2 == {"TC1": 16.56, "LeNet": 53.51,
                                "VGG-16": 113.30}


class TestRendering:
    def test_table1_render_includes_paper_rows(self):
        rows = [Table1Row("TC1", 11.4, 10.2, 4.0, 1.1, 6.97, 1.35)]
        text = render_table1(rows)
        assert "TC1 (paper)" in text
        assert "8.36" in text
        assert text.startswith("Table 1.")

    def test_table2_render(self):
        rows = [Table2Row("LeNet", 164.5, 4160, 2518.0, 118.0, False)]
        text = render_table2(rows)
        assert "53.51" in text and "164.50" in text

    def test_figure5_render(self):
        series = Figure5Series("X", [1, 2], [10.0, 7.0], 4, 6.0)
        text = render_figure5([series])
        assert "X (us/img)" in text
        assert "asymptote 6.00" in text


class TestFigure5Series:
    def test_series_structure(self):
        series = figure5_series(batches=(1, 4, 16))
        assert [s.name for s in series] == ["TC1", "LeNet"]
        for curve in series:
            assert len(curve.mean_us_per_image) == 3
            assert curve.asymptote_us > 0

    def test_default_batches_cover_paper_range(self):
        assert DEFAULT_BATCHES[0] == 1
        assert DEFAULT_BATCHES[-1] >= 32

    def test_convergence_batch(self):
        series = Figure5Series("X", [1, 2, 4, 8],
                               [20.0, 12.0, 10.5, 10.1], 3, 10.0)
        assert series.convergence_batch(0.10) == 4
        assert series.convergence_batch(0.50) == 2

    def test_convergence_batch_never_reached(self):
        series = Figure5Series("X", [1, 2], [30.0, 25.0], 3, 10.0)
        assert series.convergence_batch(0.05) == 2
