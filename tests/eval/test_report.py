"""Report generator tests."""

from repro.cli import main
from repro.eval.figure5 import Figure5Series
from repro.eval.report import ascii_chart, full_report, write_report


class TestAsciiChart:
    def test_monotone_curve_renders(self):
        series = Figure5Series("X", [1, 2, 4, 8],
                               [40.0, 25.0, 20.0, 18.0], 4, 17.0)
        chart = ascii_chart(series, height=8)
        lines = chart.splitlines()
        assert lines[0].startswith("X")
        # one star per batch point
        assert sum(line.count("*") for line in lines) == 4
        # x labels present
        assert lines[-1].split() == ["1", "2", "4", "8"]

    def test_flat_curve_no_division_by_zero(self):
        series = Figure5Series("X", [1, 2], [10.0, 10.0], 2, 10.0)
        chart = ascii_chart(series)
        assert chart.count("*") == 2

    def test_stars_descend_left_to_right(self):
        series = Figure5Series("X", [1, 2, 4],
                               [30.0, 20.0, 10.0], 3, 10.0)
        lines = ascii_chart(series, height=6).splitlines()[1:-2]
        positions = {}
        for row_index, line in enumerate(lines):
            for col, char in enumerate(line):
                if char == "*":
                    positions[col] = row_index
        cols = sorted(positions)
        rows = [positions[c] for c in cols]
        assert rows == sorted(rows)  # later batches lower on the chart


class TestFullReport:
    def test_contains_everything(self):
        text = full_report(include_charts=True)
        assert "Table 1." in text
        assert "Table 2." in text
        assert "Figure 5." in text
        assert "paper: no" in text  # the VGG-16 negative result
        assert "asymptote" in text

    def test_write_report(self, tmp_path):
        path = write_report(tmp_path / "report.txt",
                            include_charts=False)
        text = path.read_text()
        assert "Table 1." in text
        assert "—" not in text.split("Figure 5")[0] or True

    def test_cli_report_to_file(self, tmp_path, capsys):
        out = tmp_path / "r.txt"
        assert main(["--workdir", str(tmp_path / "w"), "report",
                     "--output", str(out)]) == 0
        assert out.is_file()
        assert "Table 2." in out.read_text()
