"""The execution-plan cache: bit-identical replay, LRU bounds,
weight-mutation invalidation, dtype keying, and the escape hatch.

Every equivalence assertion here is ``np.array_equal`` — plans replay
the exact arithmetic of the unplanned kernels (gathers are pure data
movement, max is an exact reduction, the GEMMs see the same operands),
so tolerance would only hide a broken plan.
"""

import numpy as np
import pytest

import repro.nn.functional as F
from repro.errors import ShapeError
from repro.frontend.weights import WeightStore
from repro.ir.layers import ConvLayer
from repro.nn.engine import ReferenceEngine
from repro.nn.plan import (
    DISABLE_ENV,
    SIZE_ENV,
    PlanCache,
    compile_plan,
    default_plan_cache,
    plans_disabled,
)
from repro.quant.apply import QuantizedEngine
from repro.quant.scheme import QuantScheme

_BATCH = {"tc1": 5, "lenet": 4, "cifar10": 3, "vgg16": 2}


def _images(net, batch, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(batch,) + net.input_shape().as_tuple()) \
        .astype(np.float32)


def _engines(net, weights):
    """A planned engine (private cache) and the unplanned oracle."""
    planned = ReferenceEngine(net, weights, plan_cache=PlanCache(),
                              use_plans=True)
    oracle = ReferenceEngine(net, weights, use_plans=False)
    return planned, oracle


# -- equivalence across the zoo ----------------------------------------------


@pytest.mark.parametrize("name", ["tc1", "lenet", "cifar10", "vgg16"])
def test_planned_forward_bit_identical(name, zoo_model, zoo_weights):
    net = zoo_model(name).network
    planned, oracle = _engines(net, zoo_weights(name))
    images = _images(net, _BATCH[name])
    for image in images:  # first pass compiles, later passes replay
        expected = oracle.forward(image)
        got = planned.forward(image)
        assert got.dtype == expected.dtype
        assert np.array_equal(got, expected)


@pytest.mark.parametrize("name", ["tc1", "lenet", "cifar10", "vgg16"])
def test_planned_run_batch_bit_identical(name, zoo_model, zoo_weights):
    net = zoo_model(name).network
    planned, oracle = _engines(net, zoo_weights(name))
    images = _images(net, _BATCH[name], seed=1)
    expected = oracle.run_batch(images)
    assert np.array_equal(planned.run_batch(images), expected)
    # warm replay (plans + batch scratch already exist) stays identical
    assert np.array_equal(planned.run_batch(images), expected)


def test_replay_does_not_corrupt_previous_output(zoo_model, zoo_weights):
    """Plan scratch is reused across calls; the engine must copy the
    final output so an earlier result survives a later forward pass."""
    net = zoo_model("lenet").network
    planned, oracle = _engines(net, zoo_weights("lenet"))
    images = _images(net, 2, seed=2)
    first = planned.forward(images[0])
    expected_first = first.copy()
    planned.forward(images[1])  # would overwrite shared scratch
    assert np.array_equal(first, expected_first)
    assert np.array_equal(first, oracle.forward(images[0]))


def test_run_and_predict_share_batched_path(zoo_model, zoo_weights):
    net = zoo_model("lenet").network
    planned, oracle = _engines(net, zoo_weights("lenet"))
    image = _images(net, 1, seed=3)[0]
    expected = oracle.forward(image)
    assert np.array_equal(planned.run(image), expected)
    assert planned.predict(image) == int(np.argmax(expected))


def test_quantized_engine_planned_parity(zoo_model, zoo_weights):
    """Dynamic activation scales live in the ``_post_layer`` hook,
    outside the cached plans — quantized outputs must match the
    unplanned quantized engine exactly."""
    net = zoo_model("tc1").network
    scheme = QuantScheme(bits=8)
    planned = QuantizedEngine(net, zoo_weights("tc1"), scheme,
                              plan_cache=PlanCache(), use_plans=True)
    oracle = QuantizedEngine(net, zoo_weights("tc1"), scheme,
                             use_plans=False)
    images = _images(net, 4, seed=4)
    for image in images:
        assert np.array_equal(planned.forward(image),
                              oracle.forward(image))
    assert np.array_equal(planned.run_batch(images),
                          oracle.run_batch(images))


def test_planned_path_rejects_wrong_shape(zoo_model, zoo_weights):
    net = zoo_model("tc1").network
    planned, _ = _engines(net, zoo_weights("tc1"))
    with pytest.raises(ShapeError):
        planned.forward(np.zeros((1, 5, 5), dtype=np.float32))


# -- the functional gather kernels -------------------------------------------


def test_im2col_index_map_matches_im2col():
    rng = np.random.default_rng(0)
    for in_shape, kernel, stride, pad in [
        ((3, 8, 8), (3, 3), (1, 1), (0, 0)),
        ((2, 9, 7), (2, 4), (2, 1), (1, 2)),
        ((1, 5, 5), (5, 5), (1, 1), (0, 0)),
    ]:
        x = rng.normal(size=in_shape).astype(np.float32)
        idx = F.im2col_index_map(in_shape, kernel, stride, pad)
        padded = np.pad(x, ((0, 0), (pad[0], pad[0]), (pad[1], pad[1])))
        got = padded.reshape(-1).take(idx)
        assert np.array_equal(got, F.im2col(x, kernel, stride, pad))


def test_pool_index_map_matches_max_pool():
    rng = np.random.default_rng(1)
    x = rng.normal(size=(3, 8, 8)).astype(np.float32)
    idx = F.pool_index_map((3, 8, 8), (2, 2), (2, 2))
    gathered = x.reshape(-1).take(idx)
    got = np.maximum.reduce(gathered, axis=0).reshape(3, 4, 4)
    assert np.array_equal(got, F.max_pool2d(x, (2, 2), (2, 2)))


def test_index_map_rejects_oversized_window():
    with pytest.raises(ShapeError):
        F.im2col_index_map((1, 3, 3), (5, 5))
    with pytest.raises(ShapeError):
        F.pool_index_map((1, 3, 3), (5, 5), (1, 1))


# -- the cache itself ---------------------------------------------------------


def _conv_setup(f=2, c=1, hw=6, k=3):
    layer = ConvLayer(name="conv", num_output=f, kernel=(k, k))
    store = WeightStore()
    rng = np.random.default_rng(5)
    store.set("conv", "weights",
              rng.normal(size=(f, c, k, k)).astype(np.float32))
    store.set("conv", "bias", rng.normal(size=(f,)).astype(np.float32))
    return layer, store, (c, hw, hw)


def test_lookup_hits_and_misses():
    layer, store, in_shape = _conv_setup()
    cache = PlanCache(capacity=4)
    first = cache.lookup(layer, in_shape, store)
    again = cache.lookup(layer, in_shape, store)
    assert again is first
    stats = cache.stats()
    assert stats["misses"] == stats["compiles"] == 1
    assert stats["hits"] == 1
    assert stats["entries"] == len(cache) == 1


def test_lru_capacity_and_eviction():
    layer, store, _ = _conv_setup(hw=8)
    cache = PlanCache(capacity=2)
    shapes = [(1, 8, 8), (1, 10, 10), (1, 12, 12)]
    plans = [cache.lookup(layer, s, store) for s in shapes]
    assert len(cache) == 2
    assert cache.stats()["evictions"] == 1
    # the oldest shape was evicted: looking it up again recompiles
    assert cache.lookup(layer, shapes[0], store) is not plans[0]
    # the most recent one is still cached
    assert cache.lookup(layer, shapes[2], store) is plans[2]


def test_lru_touch_on_hit():
    layer, store, _ = _conv_setup(hw=8)
    cache = PlanCache(capacity=2)
    a = cache.lookup(layer, (1, 8, 8), store)
    cache.lookup(layer, (1, 10, 10), store)
    assert cache.lookup(layer, (1, 8, 8), store) is a  # touch a
    cache.lookup(layer, (1, 12, 12), store)  # evicts the 10x10 plan
    assert cache.lookup(layer, (1, 8, 8), store) is a


def test_weight_mutation_invalidates():
    layer, store, in_shape = _conv_setup()
    cache = PlanCache(capacity=8)
    x = np.random.default_rng(6).normal(size=in_shape) \
        .astype(np.float32)
    before = cache.lookup(layer, in_shape, store).run(x).copy()
    store.set("conv", "weights",
              2.0 * store.get("conv", "weights"))
    replanned = cache.lookup(layer, in_shape, store)
    assert cache.stats()["misses"] == 2  # version bump forced a recompile
    after = replanned.run(x)
    expected = F.conv2d(x, store.get("conv", "weights"),
                        store.get("conv", "bias"))
    assert np.array_equal(after, expected)
    assert not np.array_equal(after, before)


def test_engine_sees_weight_mutation(zoo_model, zoo_weights):
    """The per-engine memo re-checks the weight version on every pass."""
    net = zoo_model("tc1").network
    weights = WeightStore(
        {layer: dict(zoo_weights("tc1").blobs(layer))
         for layer in zoo_weights("tc1").layers()})
    planned, _ = _engines(net, weights)
    image = _images(net, 1, seed=7)[0]
    planned.forward(image)  # compile against the original weights
    name = weights.layers()[0]
    for blob, array in weights.blobs(name).items():
        weights.set(name, blob, array * 3.0)
    fresh_oracle = ReferenceEngine(net, weights, use_plans=False)
    assert np.array_equal(planned.forward(image),
                          fresh_oracle.forward(image))


def test_dtype_keys_separate_plans():
    layer, store, in_shape = _conv_setup()
    cache = PlanCache(capacity=8)
    p32 = cache.lookup(layer, in_shape, store, np.float32)
    p64 = cache.lookup(layer, in_shape, store, np.float64)
    assert p32 is not p64
    assert len(cache) == 2
    x = np.random.default_rng(8).normal(size=in_shape)
    out64 = p64.run(x.astype(np.float64))
    assert out64.dtype == np.float64
    out32 = p32.run(x.astype(np.float32))
    assert out32.dtype == np.float32


def test_store_tokens_separate_plans():
    layer, store_a, in_shape = _conv_setup()
    _, store_b, _ = _conv_setup()
    cache = PlanCache(capacity=8)
    pa = cache.lookup(layer, in_shape, store_a)
    pb = cache.lookup(layer, in_shape, store_b)
    assert pa is not pb and len(cache) == 2


def test_invalidate_by_store_and_layer():
    layer, store, in_shape = _conv_setup()
    other_layer = ConvLayer(name="conv2", num_output=1, kernel=(3, 3))
    store.set("conv2", "weights",
              np.ones((1, 1, 3, 3), dtype=np.float32))
    store.set("conv2", "bias", np.zeros(1, dtype=np.float32))
    cache = PlanCache(capacity=8)
    cache.lookup(layer, in_shape, store)
    cache.lookup(other_layer, in_shape, store)
    assert cache.invalidate(store=store, layer="conv") == 1
    assert len(cache) == 1
    assert cache.invalidate() == 1  # drop everything
    assert len(cache) == 0
    assert cache.stats()["invalidations"] == 2


def test_engine_invalidate_plans(zoo_model, zoo_weights):
    net = zoo_model("tc1").network
    cache = PlanCache()
    engine = ReferenceEngine(net, zoo_weights("tc1"), plan_cache=cache,
                             use_plans=True)
    engine.forward(_images(net, 1, seed=9)[0])
    assert len(cache) > 0
    dropped = engine.invalidate_plans()
    assert dropped == cache.stats()["invalidations"] > 0
    assert len(cache) == 0
    assert engine.plan_stats()["resolved_layers"] == 0


def test_capacity_env_and_validation(monkeypatch):
    monkeypatch.setenv(SIZE_ENV, "3")
    assert PlanCache().capacity == 3
    monkeypatch.setenv(SIZE_ENV, "not-a-number")
    assert PlanCache().capacity == 256
    with pytest.raises(ValueError):
        PlanCache(capacity=0)


# -- the escape hatch ---------------------------------------------------------


def test_no_plan_cache_env_parity(monkeypatch, zoo_model, zoo_weights):
    net = zoo_model("lenet").network
    weights = zoo_weights("lenet")
    images = _images(net, 2, seed=10)
    monkeypatch.setenv(DISABLE_ENV, "1")
    assert plans_disabled()
    disabled = ReferenceEngine(net, weights, plan_cache=PlanCache())
    assert not disabled.plans_active()
    expected = disabled.run_batch(images)
    assert len(disabled.plan_cache) == 0  # nothing was compiled
    monkeypatch.delenv(DISABLE_ENV)
    planned = ReferenceEngine(net, weights, plan_cache=PlanCache())
    assert planned.plans_active()
    assert np.array_equal(planned.run_batch(images), expected)


def test_use_plans_overrides_env(monkeypatch, zoo_model, zoo_weights):
    net = zoo_model("tc1").network
    monkeypatch.setenv(DISABLE_ENV, "1")
    forced = ReferenceEngine(net, zoo_weights("tc1"),
                             plan_cache=PlanCache(), use_plans=True)
    assert forced.plans_active()
    forced.forward(_images(net, 1)[0])
    assert len(forced.plan_cache) > 0


# -- stats & defaults ---------------------------------------------------------


def test_plan_stats_shape(zoo_model, zoo_weights):
    net = zoo_model("tc1").network
    engine = ReferenceEngine(net, zoo_weights("tc1"),
                             plan_cache=PlanCache(), use_plans=True)
    images = _images(net, 2, seed=11)
    engine.run_batch(images)
    engine.run_batch(images)
    stats = engine.plan_stats()
    assert stats["plans_active"] is True
    assert stats["misses"] == stats["compiles"] == len(net.layers)
    assert stats["resolved_layers"] == len(net.layers)
    # second pass replayed every layer from the memo
    assert stats["hits"] >= len(net.layers)
    assert stats["capacity"] >= 1
    assert stats["compile_seconds"] >= 0.0


def test_default_cache_is_shared():
    assert default_plan_cache() is default_plan_cache()


def test_compile_plan_kinds(zoo_model, zoo_weights):
    net = zoo_model("lenet").network
    weights = zoo_weights("lenet")
    kinds = {compile_plan(layer, net.input_shape(layer).as_tuple(),
                          weights).kind
             for layer in net.layers}
    assert {"input", "conv", "max-pool", "fc"} <= kinds
