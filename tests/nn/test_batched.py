"""The batched engine path must be bit-identical to per-sample inference.

The batched kernels were chosen so each sample's arithmetic dispatches
the exact same BLAS kernels as the single-sample path (stacked GEMMs,
never a widened one), so equality here is ``np.array_equal`` — not
allclose — on every zoo model.
"""

import numpy as np
import pytest

from repro.nn.engine import ReferenceEngine
from repro.quant.apply import QuantizedEngine
from repro.quant.scheme import QuantScheme

_BATCH = {"tc1": 5, "lenet": 4, "cifar10": 3, "vgg16": 2}


def _images(net, batch, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(batch,) + net.input_shape().as_tuple()) \
        .astype(np.float32)


@pytest.mark.parametrize("name", ["tc1", "lenet", "cifar10", "vgg16"])
def test_run_batch_bit_identical(name, zoo_model, zoo_weights):
    net = zoo_model(name).network
    engine = ReferenceEngine(net, zoo_weights(name))
    images = _images(net, _BATCH[name])
    singles = np.stack([engine.forward(image) for image in images])
    batched = engine.run_batch(images)
    assert batched.dtype == singles.dtype
    assert np.array_equal(batched, singles)


@pytest.mark.parametrize("name", ["tc1", "lenet"])
def test_forward_batch_and_predict_batch(name, zoo_model, zoo_weights):
    net = zoo_model(name).network
    engine = ReferenceEngine(net, zoo_weights(name))
    images = _images(net, _BATCH[name], seed=1)
    assert np.array_equal(engine.forward_batch(images),
                          engine.run_batch(images))
    assert np.array_equal(
        engine.predict_batch(images),
        [engine.predict(image) for image in images])


def test_batch_of_one_matches_forward(zoo_model, zoo_weights):
    net = zoo_model("lenet").network
    engine = ReferenceEngine(net, zoo_weights("lenet"))
    images = _images(net, 1)
    assert np.array_equal(engine.run_batch(images)[0],
                          engine.forward(images[0]))


def test_quantized_engine_batch_matches_per_sample(zoo_model,
                                                   zoo_weights):
    """The quantized engine calibrates a dynamic per-tensor activation
    scale, so its batch path must loop per sample — one shared scale
    across the batch would change every sample's rounding."""
    net = zoo_model("tc1").network
    engine = QuantizedEngine(net, zoo_weights("tc1"),
                             QuantScheme(bits=8))
    images = _images(net, 4, seed=2)
    singles = np.stack([engine.forward(image) for image in images])
    assert np.array_equal(engine.run_batch(images), singles)
