"""Reference engine tests."""

import numpy as np
import pytest

from repro.errors import ShapeError, WeightsError
from repro.frontend.weights import WeightStore
from repro.ir.layers import (
    Activation,
    ActivationLayer,
    ConvLayer,
    FlattenLayer,
    FullyConnectedLayer,
    PoolLayer,
    PoolOp,
    SoftmaxLayer,
)
from repro.ir.network import chain
from repro.nn import functional as F
from repro.nn.engine import ReferenceEngine


@pytest.fixture
def small_net():
    return chain("small", (1, 8, 8), [
        ConvLayer("c1", num_output=4, kernel=3, activation=Activation.RELU),
        PoolLayer("p1", op=PoolOp.MAX, kernel=2),
        FlattenLayer("flat"),
        FullyConnectedLayer("fc", num_output=5),
        SoftmaxLayer("prob", log=True),
    ])


@pytest.fixture
def engine(small_net):
    return ReferenceEngine(small_net, WeightStore.initialize(small_net, 7))


class TestForward:
    def test_output_shape(self, engine):
        x = np.zeros((1, 8, 8), dtype=np.float32)
        assert engine.forward(x).shape == (5, 1, 1)

    def test_log_softmax_output_normalized(self, engine):
        rng = np.random.default_rng(3)
        out = engine.forward(rng.normal(size=(1, 8, 8)))
        assert np.exp(out).sum() == pytest.approx(1.0, rel=1e-5)

    def test_wrong_input_shape_rejected(self, engine):
        with pytest.raises(ShapeError):
            engine.forward(np.zeros((3, 8, 8)))

    def test_deterministic(self, engine):
        x = np.random.default_rng(1).normal(size=(1, 8, 8))
        np.testing.assert_array_equal(engine.forward(x), engine.forward(x))

    def test_manual_composition_matches(self, small_net):
        """The engine must equal a hand-rolled composition of F kernels."""
        weights = WeightStore.initialize(small_net, 42)
        engine = ReferenceEngine(small_net, weights)
        x = np.random.default_rng(0).normal(size=(1, 8, 8)).astype(np.float32)
        y = F.relu(F.conv2d(x, weights.get("c1", "weights"),
                            weights.get("c1", "bias")))
        y = F.max_pool2d(y, (2, 2))
        y = F.fully_connected(y, weights.get("fc", "weights"),
                              weights.get("fc", "bias"))
        y = F.log_softmax(y).reshape(5, 1, 1)
        np.testing.assert_allclose(engine.forward(x), y, rtol=1e-5)


class TestBatch:
    def test_forward_batch(self, engine):
        batch = np.random.default_rng(0).normal(size=(4, 1, 8, 8))
        out = engine.forward_batch(batch)
        assert out.shape == (4, 5, 1, 1)
        np.testing.assert_allclose(out[2], engine.forward(batch[2]),
                                   rtol=1e-6)

    def test_batch_rank_checked(self, engine):
        with pytest.raises(ShapeError):
            engine.forward_batch(np.zeros((1, 8, 8)))


class TestActivationsAndPredict:
    def test_activations_keys_and_chaining(self, engine, small_net):
        x = np.random.default_rng(2).normal(size=(1, 8, 8))
        acts = engine.activations(x)
        assert list(acts) == [l.name for l in small_net.layers]
        assert acts["c1"].shape == (4, 6, 6)
        np.testing.assert_array_equal(acts["prob"], engine.forward(x))

    def test_relu_layer_applied(self, engine):
        x = np.random.default_rng(2).normal(size=(1, 8, 8))
        assert (engine.activations(x)["c1"] >= 0).all()

    def test_predict_returns_argmax(self, engine):
        x = np.random.default_rng(5).normal(size=(1, 8, 8))
        assert engine.predict(x) == int(np.argmax(engine.forward(x)))


class TestWeightValidation:
    def test_missing_weights_rejected(self, small_net):
        with pytest.raises(WeightsError):
            ReferenceEngine(small_net, WeightStore())

    def test_wrong_shape_rejected(self, small_net):
        store = WeightStore.initialize(small_net, 0)
        store.set("c1", "weights", np.zeros((4, 1, 3, 4), dtype=np.float32))
        with pytest.raises(WeightsError):
            ReferenceEngine(small_net, store)


class TestStandaloneLayers:
    def test_standalone_activation_layer(self):
        net = chain("act", (2, 3, 3), [
            ActivationLayer("tanh", kind=Activation.TANH),
        ])
        engine = ReferenceEngine(net, WeightStore())
        x = np.random.default_rng(0).normal(size=(2, 3, 3))
        np.testing.assert_allclose(engine.forward(x), np.tanh(x), rtol=1e-6)

    def test_avg_pool_layer(self):
        net = chain("pool", (1, 4, 4), [
            PoolLayer("p", op=PoolOp.AVG, kernel=2),
        ])
        engine = ReferenceEngine(net, WeightStore())
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4)
        np.testing.assert_array_equal(engine.forward(x),
                                      [[[2.5, 4.5], [10.5, 12.5]]])
