"""Reference kernel tests.

The vectorized kernels are checked against straightforward loop
implementations (written here, independently of the library) and against
hand-computed values; hypothesis drives randomized cross-checks.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError
from repro.nn import functional as F


# ---------------------------------------------------------------------------
# naive oracles
# ---------------------------------------------------------------------------


def naive_conv2d(x, w, b=None, stride=(1, 1), pad=(0, 0)):
    x = np.pad(x, ((0, 0), (pad[0], pad[0]), (pad[1], pad[1])))
    f, c, kh, kw = w.shape
    oh = (x.shape[1] - kh) // stride[0] + 1
    ow = (x.shape[2] - kw) // stride[1] + 1
    out = np.zeros((f, oh, ow), dtype=np.float64)
    for o in range(f):
        for i in range(oh):
            for j in range(ow):
                acc = 0.0
                for ch in range(c):
                    for m in range(kh):
                        for n in range(kw):
                            acc += (w[o, ch, m, n] *
                                    x[ch, i * stride[0] + m,
                                      j * stride[1] + n])
                out[o, i, j] = acc + (b[o] if b is not None else 0.0)
    return out


def naive_pool(x, kernel, stride, op):
    c, h, w = x.shape
    oh = (h - kernel[0]) // stride[0] + 1
    ow = (w - kernel[1]) // stride[1] + 1
    out = np.zeros((c, oh, ow))
    for ch in range(c):
        for i in range(oh):
            for j in range(ow):
                window = x[ch,
                           i * stride[0]:i * stride[0] + kernel[0],
                           j * stride[1]:j * stride[1] + kernel[1]]
                out[ch, i, j] = op(window)
    return out


# ---------------------------------------------------------------------------
# conv2d
# ---------------------------------------------------------------------------


class TestConv2d:
    def test_identity_kernel(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4)
        w = np.ones((1, 1, 1, 1), dtype=np.float32)
        assert np.array_equal(F.conv2d(x, w), x)

    def test_hand_computed_sum_kernel(self):
        x = np.arange(9, dtype=np.float32).reshape(1, 3, 3)
        w = np.ones((1, 1, 2, 2), dtype=np.float32)
        out = F.conv2d(x, w)
        # windows sums: [[0+1+3+4, 1+2+4+5], [3+4+6+7, 4+5+7+8]]
        assert np.array_equal(out, [[[8, 12], [20, 24]]])

    def test_bias(self):
        x = np.zeros((1, 3, 3), dtype=np.float32)
        w = np.zeros((2, 1, 2, 2), dtype=np.float32)
        b = np.array([1.5, -2.0], dtype=np.float32)
        out = F.conv2d(x, w, b)
        assert np.allclose(out[0], 1.5) and np.allclose(out[1], -2.0)

    def test_channel_mismatch(self):
        with pytest.raises(ShapeError):
            F.conv2d(np.zeros((2, 4, 4)), np.zeros((1, 3, 2, 2)))

    def test_bad_bias_shape(self):
        with pytest.raises(ShapeError):
            F.conv2d(np.zeros((1, 4, 4)), np.zeros((2, 1, 2, 2)),
                     np.zeros(3))

    def test_bad_weight_rank(self):
        with pytest.raises(ShapeError):
            F.conv2d(np.zeros((1, 4, 4)), np.zeros((1, 2, 2)))

    @settings(max_examples=25, deadline=None)
    @given(
        c=st.integers(1, 3), f=st.integers(1, 3),
        h=st.integers(4, 10), w=st.integers(4, 10),
        k=st.integers(1, 3), s=st.integers(1, 2), p=st.integers(0, 1),
        seed=st.integers(0, 2**31),
    )
    def test_matches_naive(self, c, f, h, w, k, s, p, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(c, h, w)).astype(np.float32)
        wt = rng.normal(size=(f, c, k, k)).astype(np.float32)
        b = rng.normal(size=f).astype(np.float32)
        got = F.conv2d(x, wt, b, (s, s), (p, p))
        want = naive_conv2d(x, wt, b, (s, s), (p, p))
        assert got.shape == want.shape
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-5)


class TestIm2col:
    def test_shape(self):
        x = np.zeros((3, 8, 8), dtype=np.float32)
        cols = F.im2col(x, (3, 3))
        assert cols.shape == (27, 36)

    def test_column_content(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4)
        cols = F.im2col(x, (2, 2))
        # first output position (0,0): elements 0,1,4,5
        np.testing.assert_array_equal(cols[:, 0], [0, 1, 4, 5])
        # last output position (2,2): elements 10,11,14,15
        np.testing.assert_array_equal(cols[:, -1], [10, 11, 14, 15])

    def test_window_too_big(self):
        with pytest.raises(ShapeError):
            F.im2col(np.zeros((1, 2, 2)), (3, 3))


# ---------------------------------------------------------------------------
# pooling
# ---------------------------------------------------------------------------


class TestPooling:
    def test_max_pool_hand(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4)
        out = F.max_pool2d(x, (2, 2))
        assert np.array_equal(out, [[[5, 7], [13, 15]]])

    def test_avg_pool_hand(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4)
        out = F.avg_pool2d(x, (2, 2))
        assert np.array_equal(out, [[[2.5, 4.5], [10.5, 12.5]]])

    def test_ceil_mode_extends(self):
        x = np.arange(25, dtype=np.float32).reshape(1, 5, 5)
        out = F.max_pool2d(x, (2, 2), ceil_mode=True)
        assert out.shape == (1, 3, 3)
        assert out[0, 2, 2] == 24  # the lone corner element survives

    def test_floor_mode(self):
        x = np.arange(25, dtype=np.float32).reshape(1, 5, 5)
        out = F.max_pool2d(x, (2, 2), ceil_mode=False)
        assert out.shape == (1, 2, 2)

    def test_avg_ceil_pads_with_zero(self):
        x = np.ones((1, 3, 3), dtype=np.float32)
        out = F.avg_pool2d(x, (2, 2), ceil_mode=True)
        # corner window has one real element + three padded zeros
        assert out[0, 1, 1] == pytest.approx(0.25)

    @settings(max_examples=20, deadline=None)
    @given(c=st.integers(1, 3), h=st.integers(4, 9), k=st.integers(1, 3),
           s=st.integers(1, 3), seed=st.integers(0, 2**31))
    def test_matches_naive_floor(self, c, h, k, s, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(c, h, h)).astype(np.float32)
        got_max = F.max_pool2d(x, (k, k), (s, s), ceil_mode=False)
        got_avg = F.avg_pool2d(x, (k, k), (s, s), ceil_mode=False)
        np.testing.assert_allclose(
            got_max, naive_pool(x, (k, k), (s, s), np.max), rtol=1e-6)
        np.testing.assert_allclose(
            got_avg, naive_pool(x, (k, k), (s, s), np.mean), rtol=1e-5,
            atol=1e-6)


# ---------------------------------------------------------------------------
# fully connected + activations + softmax
# ---------------------------------------------------------------------------


class TestFullyConnected:
    def test_hand_computed(self):
        x = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        w = np.array([[1, 0, 0], [0, 1, 1]], dtype=np.float32)
        b = np.array([10.0, -1.0], dtype=np.float32)
        np.testing.assert_array_equal(F.fully_connected(x, w, b), [11, 4])

    def test_implicit_flatten(self):
        x = np.ones((2, 2, 2), dtype=np.float32)
        w = np.ones((1, 8), dtype=np.float32)
        assert F.fully_connected(x, w)[0] == 8

    def test_shape_errors(self):
        with pytest.raises(ShapeError):
            F.fully_connected(np.ones(3), np.ones((2, 4)))
        with pytest.raises(ShapeError):
            F.fully_connected(np.ones(3), np.ones((2, 3)), np.ones(3))


class TestActivations:
    def test_relu(self):
        np.testing.assert_array_equal(
            F.relu(np.array([-1.0, 0.0, 2.0])), [0, 0, 2])

    def test_sigmoid_range_and_symmetry(self):
        x = np.linspace(-50, 50, 101)
        y = F.sigmoid(x)
        assert np.all((y >= 0) & (y <= 1))
        np.testing.assert_allclose(y + F.sigmoid(-x), 1.0, atol=1e-12)
        assert F.sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_sigmoid_no_overflow(self):
        y = F.sigmoid(np.array([-1000.0, 1000.0]))
        assert y[0] == 0.0 and y[1] == 1.0

    def test_tanh(self):
        np.testing.assert_allclose(
            F.tanh(np.array([0.0, 1e3])), [0.0, 1.0], atol=1e-12)


class TestSoftmax:
    def test_sums_to_one(self):
        x = np.array([1.0, 2.0, 3.0])
        assert F.softmax(x).sum() == pytest.approx(1.0)

    def test_log_softmax_consistent(self):
        x = np.random.default_rng(0).normal(size=10)
        np.testing.assert_allclose(
            np.exp(F.log_softmax(x)), F.softmax(x), rtol=1e-6)

    def test_shift_invariance(self):
        x = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(F.softmax(x), F.softmax(x + 100),
                                   rtol=1e-6)

    def test_large_values_stable(self):
        x = np.array([1000.0, 1000.0])
        np.testing.assert_allclose(F.softmax(x), [0.5, 0.5])

    def test_preserves_shape(self):
        x = np.ones((4, 1, 1))
        assert F.softmax(x).shape == (4, 1, 1)
        assert F.log_softmax(x).shape == (4, 1, 1)

    @given(st.lists(st.floats(-50, 50), min_size=2, max_size=20))
    def test_argmax_preserved(self, values):
        # Near-ties may collapse to exact ties after exponentiation, so we
        # assert the input argmax is *an* output maximum, not *the* argmax.
        x = np.array(values)
        y = F.softmax(x)
        assert y[np.argmax(x)] == y.max()
