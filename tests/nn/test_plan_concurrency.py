"""Concurrency guarantees of the plan layer: double-checked default
cache init, shared-cache replay from many threads (bit-identical to
serial), and parallel DSE hammering the shared evaluation cache.

Runs meaningfully both ways: plain (plain locks) and under
``REPRO_TSAN=1`` (CI), where every lock below is instrumented and the
autouse conftest fixture fails the test on any sanitizer error.
"""

import threading

import numpy as np
import pytest

import repro.nn.plan as plan_mod
from repro.frontend.weights import WeightStore
from repro.nn.engine import ReferenceEngine
from repro.nn.plan import PlanCache, default_plan_cache

THREADS = 8


def _run_threads(n, fn):
    """Barrier-start ``n`` threads on ``fn(i)``; re-raise any failure."""
    barrier = threading.Barrier(n)
    errors = []

    def body(i):
        barrier.wait(timeout=10)
        try:
            fn(i)
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)

    threads = [threading.Thread(target=body, args=(i,))
               for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not any(t.is_alive() for t in threads), "worker hung"
    if errors:
        raise errors[0]


def test_default_cache_first_call_race(monkeypatch):
    """16 threads racing the very first ``default_plan_cache()`` call
    must agree on one instance, constructed exactly once."""
    monkeypatch.setattr(plan_mod, "_DEFAULT_CACHE", None)
    inits = []
    original = PlanCache.__init__

    def counting(self, *args, **kwargs):
        inits.append(id(self))
        original(self, *args, **kwargs)

    monkeypatch.setattr(PlanCache, "__init__", counting)
    got = [None] * 16
    _run_threads(16, lambda i: got.__setitem__(i, default_plan_cache()))
    assert all(c is got[0] for c in got)
    assert len(inits) == 1
    assert plan_mod._DEFAULT_CACHE is got[0]


def test_shared_default_cache_threaded_replay_bit_identical(
        monkeypatch, zoo_model, zoo_weights):
    """N engines in N threads sharing the (fresh) default plan cache
    replay bit-identically to the serial unplanned oracle."""
    monkeypatch.setattr(plan_mod, "_DEFAULT_CACHE", None)
    net = zoo_model("tc1").network
    store = zoo_weights("tc1")
    rng = np.random.default_rng(42)
    images = rng.normal(
        size=(6,) + net.input_shape().as_tuple()).astype(np.float32)
    oracle = ReferenceEngine(net, store, use_plans=False)
    expected = [oracle.forward(img) for img in images]
    results = [None] * THREADS

    def work(i):
        # every thread constructs its own engine; all of them share
        # default_plan_cache() (first caller compiles, rest replay)
        engine = ReferenceEngine(net, store)
        results[i] = [engine.forward(img) for img in images]

    _run_threads(THREADS, work)
    for outs in results:
        for got, want in zip(outs, expected):
            assert got.dtype == want.dtype
            assert np.array_equal(got, want)
    cache = default_plan_cache()
    stats = cache.stats()
    # every layer compiled at least once, and the shared cache served
    # the other threads' replays
    assert stats["entries"] > 0
    assert stats["hits"] > 0


def test_single_plan_concurrent_replay_bit_identical():
    """One compiled plan replayed from many threads at once: the
    per-thread scratch buffers keep results exact."""
    from repro.ir.layers import ConvLayer

    layer = ConvLayer(name="conv", num_output=3, kernel=(3, 3))
    store = WeightStore()
    rng = np.random.default_rng(7)
    store.set("conv", "weights",
              rng.normal(size=(3, 2, 3, 3)).astype(np.float32))
    store.set("conv", "bias",
              rng.normal(size=(3,)).astype(np.float32))
    cache = PlanCache()
    plan = cache.lookup(layer, (2, 10, 10), store)
    inputs = rng.normal(size=(THREADS, 2, 10, 10)).astype(np.float32)
    # plan.run returns the (per-thread) scratch output buffer, which the
    # next run overwrites: copy anything kept across calls
    expected = [plan.run(x).copy() for x in inputs]
    results = [None] * THREADS

    def work(i):
        for _ in range(20):
            results[i] = plan.run(inputs[i]).copy()

    _run_threads(THREADS, work)
    for got, want in zip(results, expected):
        assert np.array_equal(got, want)


def test_parallel_dse_shared_caches_deterministic(zoo_model):
    """Parallel candidate evaluation over the shared evaluation cache
    must match the serial explorer point-for-point."""
    import dataclasses

    from repro.dse.evaluator import (
        CachedEvaluator,
        EvaluationCache,
        ParallelEvaluator,
    )
    from repro.hw.mapping import default_mapping

    model = zoo_model("tc1")
    base = default_mapping(model.network)
    candidates = [base]
    for i in range(len(base.pes)):
        for factor in (2, 4):
            pes = list(base.pes)
            pes[i] = dataclasses.replace(
                pes[i], out_parallel=pes[i].out_parallel * factor)
            candidates.append(dataclasses.replace(base, pes=pes))
    # one infeasible candidate exercises the negative-cache path
    bad = list(base.pes)
    bad[0] = dataclasses.replace(bad[0], in_parallel=10_000)
    candidates.append(dataclasses.replace(base, pes=bad))
    serial = CachedEvaluator(model)
    expected = []
    for mapping in candidates:
        try:
            expected.append(serial.evaluate(mapping).performance)
        except Exception as exc:  # infeasible: compare the error type
            expected.append(type(exc))

    shared = CachedEvaluator(model, cache=EvaluationCache())
    with ParallelEvaluator(shared, jobs=4) as pool:
        assert pool.parallel
        outcomes = pool.evaluate_many(candidates)
        again = pool.evaluate_many(candidates)  # all cache hits
    for got, want in zip(outcomes, expected):
        if isinstance(want, type):
            assert isinstance(got, want)
        else:
            assert got.performance == want
    assert [type(a) for a in again] == [type(o) for o in outcomes]
    stats = shared.cache.stats()
    assert stats["hits"] > 0
    assert stats["hits"] + stats["misses"] == 2 * len(candidates)


@pytest.mark.parametrize("workers", [4])
def test_evaluation_cache_counters_exact_under_contention(zoo_model,
                                                          workers):
    """hits + misses must equal total lookups even when hammered —
    the locked read-modify-write cannot tear."""
    from repro.dse.evaluator import CachedEvaluator, EvaluationCache
    from repro.hw.mapping import default_mapping

    model = zoo_model("tc1")
    mapping = default_mapping(model.network)
    cache = EvaluationCache()
    per_thread = 25

    def work(i):
        evaluator = CachedEvaluator(model, cache=cache)
        for _ in range(per_thread):
            evaluator.evaluate(mapping)

    _run_threads(workers, work)
    stats = cache.stats()
    assert stats["hits"] + stats["misses"] == workers * per_thread
    assert stats["misses"] >= 1  # at least the first compile
