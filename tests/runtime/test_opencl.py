"""OpenCL-flavoured runtime tests."""

import numpy as np
import pytest

from repro.errors import RuntimeAPIError
from repro.frontend.condor_format import DeploymentOption
from repro.frontend.zoo import tc1_model
from repro.hw.accelerator import build_accelerator
from repro.hw.resources import device_for_board
from repro.nn.engine import ReferenceEngine
from repro.runtime.opencl import (
    Buffer,
    CommandQueue,
    Context,
    Kernel,
    Program,
    SimDevice,
    get_platforms,
    pack_weights,
)
from repro.frontend.weights import WeightStore
from repro.toolchain.assemble import build_network_ip
from repro.toolchain.hls import VivadoHLS
from repro.toolchain.sdaccel import (
    generate_kernel_xml,
    package_xo,
    xocc_link,
)
from repro.toolchain.xclbin import write_xclbin


@pytest.fixture(scope="module")
def xclbin_bytes():
    model = tc1_model(DeploymentOption.ON_PREMISE)
    acc = build_accelerator(model)
    hls = VivadoHLS("xcvu9p", model.frequency_hz)
    assembly = build_network_ip(acc, hls)
    xo = package_xo(assembly.accelerator_ip,
                    generate_kernel_xml(assembly.accelerator_ip),
                    model=model)
    xclbin = xocc_link(xo, device_for_board("aws-f1-xcvu9p"),
                       model.frequency_hz)
    return write_xclbin(xclbin)


@pytest.fixture
def session(xclbin_bytes):
    device = get_platforms()[0].get_devices()[0]
    context = Context(device)
    program = Program(context, xclbin_bytes)
    kernel = Kernel(program, "tc1")
    return context, program, kernel


def run_batch(context, program, kernel, images, weights_store,
              emulation="fast"):
    queue = CommandQueue(context, emulation=emulation)
    net = program.accelerator.network
    batch = len(images)
    in_buf = Buffer(context, Buffer.READ_ONLY, images.nbytes)
    out_buf = Buffer(context, Buffer.WRITE_ONLY,
                     batch * net.output_shape().size * 4)
    packed = pack_weights(net, weights_store)
    w_buf = Buffer(context, Buffer.READ_ONLY, packed.nbytes)
    queue.enqueue_write_buffer(in_buf, images)
    queue.enqueue_write_buffer(w_buf, packed)
    kernel.set_arg(0, in_buf)
    kernel.set_arg(1, out_buf)
    kernel.set_arg(2, w_buf)
    kernel.set_arg(3, batch)
    event = queue.enqueue_task(kernel)
    out = queue.enqueue_read_buffer(out_buf,
                                    batch * net.output_shape().size)
    return event, out.reshape(batch, -1), queue


class TestProgramLoading:
    def test_platform_enumeration(self):
        platforms = get_platforms()
        assert platforms and platforms[0].get_devices()

    def test_program_reconstructs_network(self, session):
        _, program, _ = session
        assert program.kernel_names() == ["tc1"]
        net = program.accelerator.network
        assert net.name == "tc1"
        assert net.input_shape().as_tuple() == (1, 16, 16)

    def test_program_uses_achieved_frequency(self, session):
        _, program, _ = session
        assert program.accelerator.frequency_hz == \
            program.xclbin.frequency_hz

    def test_part_mismatch_rejected(self, xclbin_bytes):
        device = SimDevice("small", device_for_board("pynq-z1"))
        with pytest.raises(RuntimeAPIError, match="targets"):
            Program(Context(device), xclbin_bytes)

    def test_unknown_kernel_rejected(self, session):
        _, program, _ = session
        with pytest.raises(RuntimeAPIError, match="no kernel"):
            Kernel(program, "other")


class TestExecution:
    def test_fast_mode_matches_reference(self, session):
        context, program, kernel = session
        net = program.accelerator.network
        weights = WeightStore.initialize(net, 5)
        images = np.random.default_rng(0).normal(
            size=(4, 1, 16, 16)).astype(np.float32)
        event, out, _ = run_batch(context, program, kernel, images,
                                  weights)
        ref = ReferenceEngine(net, weights).forward_batch(images)
        np.testing.assert_allclose(out, ref.reshape(4, -1), rtol=1e-5)
        assert event.end_cycles > 0
        assert event.extra["mode"] == "fast"

    def test_event_mode_matches_fast_mode(self, session):
        context, program, kernel = session
        net = program.accelerator.network
        weights = WeightStore.initialize(net, 5)
        images = np.random.default_rng(1).normal(
            size=(2, 1, 16, 16)).astype(np.float32)
        _, out_fast, _ = run_batch(context, program, kernel, images,
                                   weights, "fast")
        _, out_event, _ = run_batch(context, program, kernel, images,
                                    weights, "event")
        np.testing.assert_allclose(out_event, out_fast, rtol=1e-3,
                                   atol=1e-5)

    def test_device_time_accumulates(self, session):
        context, program, kernel = session
        net = program.accelerator.network
        weights = WeightStore.initialize(net, 5)
        images = np.zeros((2, 1, 16, 16), dtype=np.float32)
        event, _, queue = run_batch(context, program, kernel, images,
                                    weights)
        assert queue.finish() >= event.device_seconds > 0

    def test_batch_amortization_visible(self, session):
        context, program, kernel = session
        net = program.accelerator.network
        weights = WeightStore.initialize(net, 5)
        times = []
        for batch in (1, 8):
            images = np.zeros((batch, 1, 16, 16), dtype=np.float32)
            event, _, _ = run_batch(context, program, kernel, images,
                                    weights)
            times.append(event.device_seconds / batch)
        assert times[1] < times[0]

    def test_missing_args_rejected(self, session):
        context, program, kernel = session
        queue = CommandQueue(context)
        kernel.args.clear()
        with pytest.raises(RuntimeAPIError, match="argument"):
            queue.enqueue_task(kernel)

    def test_bad_arg_index(self, session):
        _, _, kernel = session
        with pytest.raises(RuntimeAPIError):
            kernel.set_arg(7, 1)


class TestBuffers:
    def test_validation(self, session):
        context, _, _ = session
        with pytest.raises(RuntimeAPIError):
            Buffer(context, Buffer.READ_ONLY, 0)
        with pytest.raises(RuntimeAPIError):
            Buffer(context, "x", 4)
        buf = Buffer(context, Buffer.READ_WRITE, 16)
        queue = CommandQueue(context)
        with pytest.raises(RuntimeAPIError, match="exceeds"):
            queue.enqueue_write_buffer(buf, np.zeros(100))
        with pytest.raises(RuntimeAPIError, match="exceeds"):
            queue.enqueue_read_buffer(buf, 100)

    def test_bad_emulation_mode(self, session):
        context, _, _ = session
        with pytest.raises(RuntimeAPIError):
            CommandQueue(context, emulation="rtl")


class TestWeightPacking:
    def test_pack_unpack_roundtrip(self, session):
        from repro.runtime.opencl import _weights_from_buffer

        _, program, _ = session
        net = program.accelerator.network
        store = WeightStore.initialize(net, 8)
        packed = pack_weights(net, store)
        back = _weights_from_buffer(net, packed)
        for layer in store.layers():
            for blob, array in store.blobs(layer).items():
                np.testing.assert_array_equal(back.get(layer, blob), array)


class TestWeightUpdateWithoutResynthesis:
    """Paper §3.1.1: weights "are loaded dynamically at runtime.  This
    enables the update of the network (for instance if better accuracy is
    achieved) without the need for re-synthesizing the accelerator."
    The same xclbin must serve successive weight sets."""

    def test_same_xclbin_new_weights(self, session):
        context, program, kernel = session
        net = program.accelerator.network
        image = np.random.default_rng(3).normal(
            size=(1, 1, 16, 16)).astype(np.float32)

        outputs = []
        for seed in (1, 2):
            weights = WeightStore.initialize(net, seed)
            _, out, _ = run_batch(context, program, kernel, image,
                                  weights)
            ref = ReferenceEngine(net, weights).forward(image[0])
            np.testing.assert_allclose(out[0], ref.reshape(-1), rtol=1e-5)
            outputs.append(out[0])
        # the two weight sets genuinely produce different results
        assert not np.allclose(outputs[0], outputs[1])
        # and the device was programmed exactly once (no re-synthesis,
        # no re-program)
        assert context.device.programmed is program.xclbin


class TestEngineReuse:
    """Steady-state serving re-enqueues with the same weights buffer;
    the kernel must reuse its engine (and warm execution plans) instead
    of rebuilding a weight store per launch."""

    def test_engine_reused_until_weights_rewritten(self, session):
        context, program, kernel = session
        net = program.accelerator.network
        queue = CommandQueue(context, emulation="fast")
        weights = WeightStore.initialize(net, 5)
        images = np.random.default_rng(4).normal(
            size=(2, 1, 16, 16)).astype(np.float32)
        in_buf = Buffer(context, Buffer.READ_ONLY, images.nbytes)
        out_buf = Buffer(context, Buffer.WRITE_ONLY,
                         2 * net.output_shape().size * 4)
        packed = pack_weights(net, weights)
        w_buf = Buffer(context, Buffer.READ_ONLY, packed.nbytes)
        queue.enqueue_write_buffer(in_buf, images)
        queue.enqueue_write_buffer(w_buf, packed)
        for index, value in enumerate((in_buf, out_buf, w_buf, 2)):
            kernel.set_arg(index, value)

        queue.enqueue_task(kernel)
        first_engine = kernel._engine[2]
        queue.enqueue_task(kernel)
        assert kernel._engine[2] is first_engine  # same weights: reuse

        # rewriting the weights buffer bumps its generation and forces
        # a fresh engine (the §3.1.1 dynamic-update contract)
        queue.enqueue_write_buffer(
            w_buf, pack_weights(net, WeightStore.initialize(net, 6)))
        queue.enqueue_task(kernel)
        assert kernel._engine[2] is not first_engine
        out = queue.enqueue_read_buffer(out_buf,
                                        2 * net.output_shape().size)
        ref = ReferenceEngine(
            net, WeightStore.initialize(net, 6)).forward_batch(images)
        np.testing.assert_allclose(out.reshape(2, -1),
                                   ref.reshape(2, -1), rtol=1e-5)


class TestDeviceLifecycle:
    """Dead-card semantics and the clock-gated device fault hook."""

    def _weights(self, program):
        return WeightStore.initialize(program.accelerator.network)

    def test_dead_device_rejects_tasks_until_reprogrammed(self, session):
        from repro.errors import DeviceLostError
        context, program, kernel = session
        net = program.accelerator.network
        images = np.zeros((1,) + net.input_shape().as_tuple(),
                          dtype=np.float32)
        store = self._weights(program)
        context.device.alive = False
        with pytest.raises(DeviceLostError, match="reprogram"):
            run_batch(context, program, kernel, images, store)
        # reprogramming (an AFI re-load) revives the card
        Program(context, program.xclbin)
        assert context.device.alive is True
        run_batch(context, program, kernel, images, store)

    def test_device_faults_only_fire_with_a_clock(self, session):
        from repro.resilience import (
            FaultKind,
            FaultPlan,
            FaultSpec,
            VirtualClock,
            inject_faults,
        )
        context, program, kernel = session
        net = program.accelerator.network
        images = np.zeros((1,) + net.input_shape().as_tuple(),
                          dtype=np.float32)
        store = self._weights(program)
        plan = FaultPlan([FaultSpec("device.*", FaultKind.SLOW_DEVICE,
                                    delay_s=40.0, times=100)])
        with inject_faults(plan):
            # no clock on the queue: plain runtime users are never
            # injected with device weather
            run_batch(context, program, kernel, images, store)
            assert plan.total_injected == 0
            # a clocked queue opts in (what the fleet layer does)
            clock = VirtualClock()
            queue = CommandQueue(context, clock=clock)
            queue.enqueue_task(kernel)
            assert plan.total_injected == 1
            assert clock.now == 40.0

    def test_bitflip_changes_outputs_and_generation(self, session):
        from repro.resilience import (
            FaultKind,
            FaultPlan,
            FaultSpec,
            VirtualClock,
            inject_faults,
        )
        context, program, kernel = session
        net = program.accelerator.network
        rng = np.random.default_rng(3)
        images = rng.standard_normal(
            (2,) + net.input_shape().as_tuple()).astype(np.float32)
        store = self._weights(program)
        _, clean, _ = run_batch(context, program, kernel, images, store)
        plan = FaultPlan([FaultSpec("device.*", FaultKind.BITFLIP)],
                         seed=4)
        w_buf = kernel.args[2]
        generation = w_buf.generation
        with inject_faults(plan):
            queue = CommandQueue(context, clock=VirtualClock())
            queue.enqueue_task(kernel)
            corrupted = queue.enqueue_read_buffer(
                kernel.args[1], 2 * net.output_shape().size) \
                .reshape(2, -1)
        # silent corruption: no error, wrong answer, generation bumped
        assert w_buf.generation == generation + 1
        assert not np.array_equal(corrupted, clean)
