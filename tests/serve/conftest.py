"""Shared serving fixtures: a real tc1 fleet image and an engine-backed
stub fleet for zoo-wide batching-correctness tests without AFI builds."""

import itertools

import numpy as np
import pytest

from repro.cloud.f1 import F1Instance
from repro.fleet import (
    FleetConfig,
    FleetManager,
    Submission,
    build_fleet_image,
    servable_model,
)
from repro.frontend.condor_format import model_from_json
from repro.frontend.weights import WeightStore
from repro.nn.engine import ReferenceEngine
from repro.resilience.boundary import reset_breakers
from repro.resilience.clock import VirtualClock
from repro.toolchain.xclbin import read_xclbin

_server_names = itertools.count(0)


@pytest.fixture(scope="module")
def image():
    return build_fleet_image(servable_model("tc1"), name="test-serve-tc1")


@pytest.fixture(scope="module")
def weights(image):
    _, _, xclbin_bytes = image
    net = model_from_json(read_xclbin(xclbin_bytes).network_json).network
    return WeightStore.initialize(net, seed=0)


@pytest.fixture(autouse=True)
def fresh_realm():
    reset_breakers()
    yield
    reset_breakers()


@pytest.fixture
def server_name():
    """A unique metrics label per test so registry reads don't bleed."""
    return f"test-serve-{next(_server_names)}"


def make_fleet(image, weights, *, clock, count=1,
               instance_type="f1.4xlarge", config=None):
    service, agfi_id, _ = image
    instances = [F1Instance(instance_type, service)
                 for _ in range(count)]
    fleet_config = config if config is not None \
        else FleetConfig(scrub_every=0)
    return FleetManager(instances, agfi_id, weights,
                        config=fleet_config, clock=clock)


class _StubConfig:
    def __init__(self, capacity):
        self.capacity = capacity


class StubFleet:
    """A fleet-shaped facade over the reference engine.

    Gives the server everything it touches (``net``, ``clock``,
    ``slots``, ``config.capacity``, ``instances``, ``submit``,
    ``stats``) while every submission runs on the batched reference
    engine — so batching-correctness tests cover the whole zoo without
    paying an AFI build per model.
    """

    def __init__(self, model_name, *, clock=None, slots=2, capacity=8,
                 seed=0, device_seconds=1e-4, fail=None):
        model = servable_model(model_name)
        self.net = model.network
        weights = WeightStore.initialize(self.net, seed=seed)
        self.golden = ReferenceEngine(self.net, weights)
        self.clock = clock if clock is not None else VirtualClock()
        self.config = _StubConfig(capacity)
        self.slots = list(range(slots))
        self.instances = ["stub-instance"]
        self.device_seconds = device_seconds
        #: Optional exception raised instead of executing.
        self.fail = fail
        self.batch_sizes: list[int] = []

    def submit(self, images, *, verify=False, wait=False):
        if self.fail is not None:
            raise self.fail
        batch = np.asarray(images, dtype=np.float32)
        self.batch_sizes.append(batch.shape[0])
        outputs = self.golden.forward_batch(batch) \
            .reshape(batch.shape[0], -1)
        return Submission(outputs=outputs,
                          device_seconds=self.device_seconds
                          * batch.shape[0],
                          slot="stub.slot0", attempts=1)

    def stats(self):
        return {"instances": len(self.instances),
                "healthy_slots": len(self.slots)}
