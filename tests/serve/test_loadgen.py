"""The seeded load generator: determinism, the ROADMAP demo numbers,
quota shedding and autoscaler integration — all on the virtual clock."""

import json

import pytest

from repro.cloud.f1 import F1Instance
from repro.resilience.boundary import reset_breakers
from repro.resilience.clock import VirtualClock
from repro.serve import (
    Autoscaler,
    AutoscalerConfig,
    InferenceServer,
    LoadSpec,
    ServeConfig,
    TenantSpec,
    build_serving_fleet,
    run_load,
)


def serve_tc1(name, spec, *, instances=2,
              instance_type="f1.4xlarge", config=None,
              autoscale=None):
    clock = VirtualClock()
    fleet, service = build_serving_fleet(
        "tc1", instances=instances, instance_type=instance_type,
        clock=clock)
    server = InferenceServer(
        fleet, spec.tenants,
        config=config if config is not None else ServeConfig(name=name))
    scaler = None
    if autoscale is not None:
        scaler = Autoscaler(
            server, lambda: F1Instance(instance_type, service),
            config=autoscale)
    return run_load(server, spec, autoscaler=scaler)


class TestDeterminism:
    def test_same_seed_same_report(self, server_name):
        spec = LoadSpec(rate_rps=2000.0, duration_s=0.5, seed=7)
        first = serve_tc1(server_name, spec)
        reset_breakers()
        second = serve_tc1(server_name, spec)
        assert json.dumps(first.to_dict(), sort_keys=True) == \
            json.dumps(second.to_dict(), sort_keys=True)

    def test_different_seeds_differ(self, server_name):
        spec_a = LoadSpec(rate_rps=2000.0, duration_s=0.5, seed=7)
        spec_b = LoadSpec(rate_rps=2000.0, duration_s=0.5, seed=8)
        first = serve_tc1(server_name + "-a", spec_a)
        reset_breakers()
        second = serve_tc1(server_name + "-b", spec_b)
        assert first.offered != second.offered or \
            first.latency != second.latency


class TestDemoNumbers:
    def test_thousand_rps_with_tail_latency(self, server_name):
        """The ROADMAP demo: >= 1000 synthetic req/s with p50/p99."""
        spec = LoadSpec(rate_rps=2000.0, duration_s=1.0, seed=0)
        report = serve_tc1(server_name, spec)
        assert report.completed == report.offered
        assert report.failed == 0
        assert report.shed == {}
        assert report.throughput_rps >= 1000.0
        assert report.latency["count"] == report.completed
        assert 0.0 < report.latency["p50_s"] <= report.latency["p99_s"]
        assert report.latency["p99_s"] <= report.latency["max_s"]
        # coalescing happened: some batches bigger than one request
        assert any(size > 1 for size in report.batches)
        assert report.model == "tc1"
        # both demo tenants saw traffic at the 3:1 configured mix
        assert report.tenants["alpha"]["offered"] > \
            report.tenants["beta"]["offered"]

    def test_requests_kept_only_on_demand(self, server_name):
        spec = LoadSpec(rate_rps=1000.0, duration_s=0.2, seed=1)
        clock = VirtualClock()
        fleet, _ = build_serving_fleet("tc1", clock=clock)
        server = InferenceServer(
            fleet, spec.tenants, config=ServeConfig(name=server_name))
        report = run_load(server, spec, keep_requests=True)
        assert len(report.requests) == report.offered
        assert all(r.ok for r in report.requests)
        assert "requests" not in report.to_dict()


class TestShedding:
    def test_tight_quota_sheds_with_reason(self, server_name):
        tenants = (TenantSpec("alpha", quota_rps=100.0, burst=4,
                              weight=1.0),)
        spec = LoadSpec(rate_rps=2000.0, duration_s=0.5, seed=2,
                        tenants=tenants)
        report = serve_tc1(server_name, spec)
        assert report.shed.get("quota", 0) > 0
        assert report.tenants["alpha"]["shed"] == \
            sum(report.shed.values())
        # roughly quota * duration + burst requests got through
        assert report.completed < report.offered
        assert report.completed <= 100.0 * spec.duration_s + 4 + 8


class TestAutoscaleIntegration:
    def test_saturation_scales_the_fleet_up(self, server_name):
        # one single-slot instance serves tc1 at ~39k images/s; an
        # offered 100k req/s saturates it and p99 blows the watermark
        autoscale = AutoscalerConfig(interval_s=0.01, cooldown_s=0.02,
                                     depth_high=512, p99_high_s=0.020,
                                     idle_evals=4, max_instances=4)
        spec = LoadSpec(rate_rps=100000.0, duration_s=0.05, seed=3)
        report = serve_tc1(server_name, spec, instances=1,
                           instance_type="f1.2xlarge",
                           autoscale=autoscale)
        ups = [e for e in report.autoscale if e["direction"] == "up"]
        assert ups, report.autoscale
        assert report.fleet["instances"] > 1
        assert report.completed == report.offered

    def test_report_records_autoscale_timeline(self, server_name):
        autoscale = AutoscalerConfig(interval_s=0.01, cooldown_s=0.02,
                                     depth_high=512, p99_high_s=0.020,
                                     idle_evals=4, max_instances=2)
        spec = LoadSpec(rate_rps=100000.0, duration_s=0.03, seed=4)
        report = serve_tc1(server_name, spec, instances=1,
                           instance_type="f1.2xlarge",
                           autoscale=autoscale)
        for event in report.autoscale:
            assert set(event) == {"t", "direction", "detail"}
            assert event["direction"] in ("up", "down")
            assert event["t"] == pytest.approx(event["t"])
