"""Token buckets and admission control on the virtual timeline."""

import math

import pytest

from repro.errors import ServeError, ShedError
from repro.serve import AdmissionController, TenantSpec, TokenBucket


class TestTokenBucket:
    def test_burst_then_continuous_refill(self):
        bucket = TokenBucket(10.0, 2, start_s=0.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)  # burst exhausted
        assert not bucket.try_take(0.05)  # only half a token back
        assert bucket.try_take(0.1)  # 10 rps -> one token per 100ms

    def test_tokens_cap_at_burst(self):
        bucket = TokenBucket(1000.0, 4, start_s=0.0)
        assert bucket.tokens(100.0) == 4.0

    def test_time_never_runs_backwards(self):
        bucket = TokenBucket(10.0, 1, start_s=5.0)
        assert bucket.try_take(5.0)
        # a stale timestamp neither refills nor corrupts the bucket
        assert not bucket.try_take(0.0)
        assert bucket.tokens(5.05) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ServeError, match="rate must be positive"):
            TokenBucket(0.0, 4)
        with pytest.raises(ServeError, match="burst must be >= 1"):
            TokenBucket(10.0, 0)


class TestAdmissionController:
    def test_unknown_tenant_is_a_caller_bug(self):
        gate = AdmissionController([TenantSpec("alpha")])
        with pytest.raises(ServeError, match="unknown tenant"):
            gate.admit("nobody", 0.0, 0)

    def test_infinite_quota_never_sheds_on_rate(self):
        gate = AdmissionController([TenantSpec("alpha")])
        for _ in range(1000):
            assert gate.admit("alpha", 0.0, 0).name == "alpha"

    def test_quota_shed_reason(self):
        gate = AdmissionController(
            [TenantSpec("alpha", quota_rps=10.0, burst=1)], start_s=0.0)
        gate.admit("alpha", 0.0, 0)
        with pytest.raises(ShedError) as info:
            gate.admit("alpha", 0.0, 0)
        assert info.value.tenant == "alpha"
        assert info.value.reason == "quota"
        # the bucket refills on the virtual clock
        assert gate.admit("alpha", 0.1, 0).name == "alpha"

    def test_queue_shed_happens_before_the_quota_is_charged(self):
        gate = AdmissionController(
            [TenantSpec("alpha", quota_rps=10.0, burst=1)],
            max_queue_depth=4, start_s=0.0)
        with pytest.raises(ShedError) as info:
            gate.admit("alpha", 0.0, 4)
        assert info.value.reason == "queue"
        # the token survived the queue shed and still admits
        assert gate.admit("alpha", 0.0, 0).name == "alpha"

    def test_validation(self):
        with pytest.raises(ServeError, match="at least one tenant"):
            AdmissionController([])
        with pytest.raises(ServeError, match="duplicate tenant"):
            AdmissionController([TenantSpec("a"), TenantSpec("a")])
        with pytest.raises(ServeError, match="depth bound"):
            AdmissionController([TenantSpec("a")], max_queue_depth=0)

    def test_spec_defaults(self):
        spec = TenantSpec("alpha")
        assert math.isinf(spec.quota_rps)
        assert spec.burst == 32
        assert spec.weight == 1.0
