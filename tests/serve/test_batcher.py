"""DynamicBatcher: bucket snapping and deterministic flush triggers."""

import numpy as np
import pytest

from repro.errors import ServeError
from repro.serve import DEFAULT_BUCKETS, DynamicBatcher
from repro.serve.batcher import ServeRequest


def request(i, arrival_s=0.0):
    return ServeRequest(tenant="t", image=np.zeros(2, np.float32),
                        arrival_s=arrival_s, request_id=i,
                        deadline_s=arrival_s)


class TestLadder:
    def test_default_ladder_matches_plan_cache_bound(self):
        assert DEFAULT_BUCKETS == (1, 2, 4, 8)

    def test_bucket_for_snaps_up(self):
        batcher = DynamicBatcher()
        assert [batcher.bucket_for(n) for n in range(1, 9)] == \
            [1, 2, 4, 4, 8, 8, 8, 8]

    def test_bucket_for_rejects_oversize(self):
        batcher = DynamicBatcher(buckets=(1, 2))
        with pytest.raises(ServeError, match="no bucket covers"):
            batcher.bucket_for(3)

    def test_ladder_is_sorted_and_deduped(self):
        batcher = DynamicBatcher(buckets=(4, 1, 4, 2))
        assert batcher.buckets == (1, 2, 4)
        assert batcher.max_batch == 4

    def test_invalid_config_rejected(self):
        with pytest.raises(ServeError, match="SLO must be positive"):
            DynamicBatcher(slo_s=0.0)
        with pytest.raises(ServeError, match="invalid bucket ladder"):
            DynamicBatcher(buckets=())
        with pytest.raises(ServeError, match="invalid bucket ladder"):
            DynamicBatcher(buckets=(0, 2))


class TestSizeTrigger:
    def test_full_largest_bucket_flushes_immediately(self):
        batcher = DynamicBatcher(buckets=(1, 2, 4))
        flushes = [batcher.offer(request(i)) for i in range(4)]
        assert flushes[:3] == [None, None, None]
        flush = flushes[3]
        assert flush.trigger == "size"
        assert flush.bucket == 4
        assert flush.padding == 0
        # FIFO order preserved
        assert [r.request_id for r in flush.requests] == [0, 1, 2, 3]
        assert batcher.depth == 0

    def test_offer_stamps_the_slo_deadline(self):
        batcher = DynamicBatcher(slo_s=0.25)
        batcher.offer(request(0, arrival_s=1.0))
        assert batcher.next_deadline() == pytest.approx(1.25)


class TestSloTrigger:
    def test_due_respects_the_oldest_deadline(self):
        batcher = DynamicBatcher(slo_s=0.010)
        batcher.offer(request(0, arrival_s=0.0))
        batcher.offer(request(1, arrival_s=0.004))
        batcher.offer(request(2, arrival_s=0.008))
        assert batcher.due(0.009) is None  # oldest deadline is 0.010
        flush = batcher.due(0.010)
        assert flush is not None
        assert flush.trigger == "slo"
        # three requests snap to bucket 4 with one pad row
        assert flush.bucket == 4
        assert flush.padding == 1
        assert [r.request_id for r in flush.requests] == [0, 1, 2]
        assert batcher.depth == 0
        assert batcher.next_deadline() is None

    def test_empty_batcher_is_never_due(self):
        batcher = DynamicBatcher()
        assert batcher.next_deadline() is None
        assert batcher.due(1e9) is None


class TestDrain:
    def test_drain_flushes_everything_in_fifo_chunks(self):
        batcher = DynamicBatcher(buckets=(1, 2, 4, 8))
        for i in range(5):
            batcher.offer(request(i))
        flushes = batcher.drain()
        assert [f.trigger for f in flushes] == ["drain"]
        assert flushes[0].bucket == 8
        assert flushes[0].padding == 3
        assert [r.request_id for r in flushes[0].requests] == \
            [0, 1, 2, 3, 4]
        assert batcher.depth == 0

    def test_drain_chunks_at_max_batch(self):
        batcher = DynamicBatcher(buckets=(1, 2))
        for i in range(5):
            flush = batcher.offer(request(i))
            if flush is not None:  # size flushes at depth 2
                assert flush.bucket == 2
        flushes = batcher.drain()
        assert [f.bucket for f in flushes] == [1]
        assert batcher.depth == 0
