"""``condor serve``: the demo command, its report and its telemetry."""

import json

import pytest

from repro.cli import main
from repro.errors import CondorError
from repro.cli import _parse_tenants
from repro.serve import TenantSpec


def run_serve(tmp_path, capsys, *extra):
    code = main(["--workdir", str(tmp_path / "w"), "serve",
                 "--model", "tc1", "--rate", "2000",
                 "--duration", "1", "--seed", "0", *extra])
    return code, capsys.readouterr()


class TestServeCommand:
    def test_demo_meets_the_roadmap_floor(self, tmp_path, capsys):
        code, captured = run_serve(
            tmp_path, capsys, "--format", "json",
            "--fail-under-rps", "1000")
        assert code == 0
        doc = json.loads(captured.out)
        assert doc["throughput_rps"] >= 1000.0
        assert doc["completed"] == doc["offered"]
        assert doc["latency"]["p50_s"] is not None
        assert doc["latency"]["p99_s"] is not None

    def test_telemetry_carries_serve_metrics(self, tmp_path, capsys):
        code, _ = run_serve(tmp_path, capsys)
        assert code == 0
        manifest = json.loads(
            (tmp_path / "w" / "telemetry.json").read_text())
        assert manifest["serve"]["model"] == "tc1"
        metrics = manifest["metrics"]
        for name in ("condor_serve_requests_total",
                     "condor_serve_batches_total",
                     "condor_serve_latency_seconds",
                     "condor_serve_queue_depth_count",
                     "condor_serve_slots_count"):
            assert name in metrics, sorted(metrics)

    def test_report_artifact_written(self, tmp_path, capsys):
        report = tmp_path / "out" / "serve-report.json"
        code, captured = run_serve(tmp_path, capsys,
                                   "--report", str(report))
        assert code == 0
        doc = json.loads(report.read_text())
        assert doc["server"] == "tc1"
        assert doc["batches"]
        # human output mentions the throughput line
        assert "req/s" in captured.out

    def test_fail_under_rps_gates(self, tmp_path, capsys):
        code, captured = run_serve(tmp_path, capsys,
                                   "--fail-under-rps", "1000000")
        assert code == 1
        assert "--fail-under-rps" in captured.err

    def test_autoscale_flag_runs(self, tmp_path, capsys):
        code, captured = run_serve(
            tmp_path, capsys, "--format", "json", "--instances", "1",
            "--autoscale", "--max-instances", "2")
        assert code == 0
        doc = json.loads(captured.out)
        assert "autoscale" in doc

    def test_bad_buckets_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--model", "vgg16"])  # not servable
        code = main(["--workdir", str(tmp_path / "w"), "serve",
                     "--buckets", "1,x"])
        assert code == 1  # CondorError surfaces as exit 1


class TestParseTenants:
    def test_default_mix_shape(self):
        tenants = _parse_tenants("alpha:3,beta:1")
        assert tenants == (TenantSpec("alpha", weight=3.0),
                           TenantSpec("beta", weight=1.0))

    def test_quota_parses_and_zero_means_unlimited(self):
        (tenant,) = _parse_tenants("gold:2:500")
        assert tenant.quota_rps == 500.0
        (free,) = _parse_tenants("free:1:0")
        assert free.quota_rps == float("inf")

    def test_bad_spec_rejected(self):
        with pytest.raises(CondorError, match="tenant"):
            _parse_tenants("")
        with pytest.raises(CondorError, match="tenant"):
            _parse_tenants("a:b:c")
