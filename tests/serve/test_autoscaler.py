"""Autoscaler: registry-driven scale up/down with cooldown and bounds."""

import numpy as np
import pytest

from repro.cloud.f1 import F1Instance
from repro.obs import REGISTRY
from repro.resilience.clock import VirtualClock
from repro.serve import (
    Autoscaler,
    AutoscalerConfig,
    InferenceServer,
    ServeConfig,
    TenantSpec,
)
from tests.serve.conftest import make_fleet

CONFIG = AutoscalerConfig(interval_s=0.25, cooldown_s=0.5,
                          depth_high=4, p99_high_s=0.050,
                          idle_evals=2, min_instances=1,
                          max_instances=3)


def build(image, weights, name, *, count=1):
    clock = VirtualClock()
    fleet = make_fleet(image, weights, clock=clock, count=count,
                       instance_type="f1.2xlarge")
    server = InferenceServer(
        fleet, (TenantSpec("alpha"),),
        config=ServeConfig(name=name, buckets=(1, 2, 4, 8)))
    service, _, _ = image

    def launch():
        return F1Instance("f1.2xlarge", service)

    return clock, fleet, server, Autoscaler(server, launch,
                                            config=CONFIG)


def queue_up(server, fleet, n, now=0.0):
    shape = fleet.net.input_shape().as_tuple()
    rng = np.random.default_rng(21)
    for _ in range(n):
        server.submit(
            "alpha", rng.standard_normal(shape).astype(np.float32),
            now=now)


class TestScaleUp:
    def test_queue_depth_triggers_growth(self, image, weights,
                                         server_name):
        clock, fleet, server, scaler = build(image, weights,
                                             server_name)
        queue_up(server, fleet, CONFIG.depth_high)  # gauge hits high
        assert scaler.evaluate(0.25) == "up"
        assert len(fleet.instances) == 2
        assert server.stats()["lanes"] == len(fleet.slots)
        assert scaler.events[0][1] == "up"

    def test_cooldown_blocks_back_to_back_actions(self, image, weights,
                                                  server_name):
        clock, fleet, server, scaler = build(image, weights,
                                             server_name)
        queue_up(server, fleet, CONFIG.depth_high)
        assert scaler.evaluate(0.25) == "up"
        assert scaler.evaluate(0.5) is None  # still hot, inside cooldown
        assert scaler.evaluate(0.25 + CONFIG.cooldown_s) == "up"
        assert len(fleet.instances) == 3

    def test_max_instances_bounds_growth(self, image, weights,
                                         server_name):
        clock, fleet, server, scaler = build(image, weights,
                                             server_name,
                                             count=CONFIG.max_instances)
        queue_up(server, fleet, CONFIG.depth_high)
        assert scaler.evaluate(0.25) is None
        assert len(fleet.instances) == CONFIG.max_instances

    def test_p99_latency_triggers_growth(self, image, weights,
                                         server_name):
        clock, fleet, server, scaler = build(image, weights,
                                             server_name)
        latency = REGISTRY.summary(
            "condor_serve_latency_seconds",
            "End-to-end request latency on the virtual timeline,"
            " per server")
        for _ in range(8):
            latency.observe(CONFIG.p99_high_s * 2, server=server_name)
        assert scaler.signals(0.25)["queue_depth"] == 0.0
        assert scaler.evaluate(0.25) == "up"


class TestScaleDown:
    def test_observed_idleness_drains_an_instance(self, image, weights,
                                                  server_name):
        clock, fleet, server, scaler = build(image, weights,
                                             server_name, count=2)
        # two idle evaluations past the cooldown window drain one
        assert scaler.evaluate(1.0) is None
        assert scaler.evaluate(1.25) == "down"
        assert len(fleet.instances) == 1
        assert server.stats()["lanes"] == len(fleet.slots)
        assert scaler.events[0][1] == "down"

    def test_min_instances_is_a_floor(self, image, weights,
                                      server_name):
        clock, fleet, server, scaler = build(image, weights,
                                             server_name, count=1)
        for step in range(6):
            assert scaler.evaluate(1.0 + 0.25 * step) is None
        assert len(fleet.instances) == 1

    def test_backlog_defers_idleness(self, image, weights,
                                     server_name):
        clock, fleet, server, scaler = build(image, weights,
                                             server_name, count=2)
        queue_up(server, fleet, 8)  # size flush: queue 0, backlog > 0
        backlog = server.backlog_s(0.0)
        assert backlog > 0.0
        assert scaler.evaluate(backlog / 2) is None  # busy: streak 0
        assert scaler.evaluate(backlog + 1.00) is None  # idle streak 1
        assert scaler.evaluate(backlog + 1.25) == "down"
