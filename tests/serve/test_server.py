"""InferenceServer: batching correctness, shedding, the lane model.

The acceptance bar for the serving layer is bit-identity: a request
served out of a coalesced (and possibly padded) batch must produce
exactly the output the same image gets from a per-request run.  The
zoo-wide cases run on the engine-backed :class:`StubFleet`; one case
runs the full path over a real tc1 fleet.
"""

import numpy as np
import pytest

from repro.errors import FleetError, ServeError, ShedError
from repro.obs import REGISTRY
from repro.resilience.clock import VirtualClock
from repro.serve import InferenceServer, ServeConfig, TenantSpec
from tests.serve.conftest import StubFleet, make_fleet

TENANTS = (TenantSpec("alpha"), TenantSpec("beta"))


def make_server(fleet, name, **overrides):
    config = ServeConfig(name=name, **overrides)
    return InferenceServer(fleet, TENANTS, config=config)


def images_for(fleet, rng, n):
    shape = (n,) + fleet.net.input_shape().as_tuple()
    return rng.standard_normal(shape).astype(np.float32)


class TestBatchingCorrectness:
    @pytest.mark.parametrize("model", ["tc1", "lenet", "cifar10"])
    def test_coalesced_outputs_bit_identical_across_zoo(
            self, model, server_name):
        fleet = StubFleet(model)
        server = make_server(fleet, server_name, slo_s=0.010)
        rng = np.random.default_rng(11)
        pool = images_for(fleet, rng, 11)
        requests = []
        # eight back-to-back arrivals fill the largest bucket (size
        # trigger); three stragglers flush at their SLO (padded)
        for i in range(11):
            requests.append(
                server.submit("alpha", pool[i], now=0.001 * i))
        assert server.pump(0.010 + 0.010) == 1
        assert [r.trigger for r in requests] == ["size"] * 8 + \
            ["slo"] * 3
        assert requests[8].bucket == 4  # 3 requests snapped up
        assert fleet.batch_sizes == [8, 4]  # the padded flush
        for i, request in enumerate(requests):
            single = fleet.golden.forward_batch(pool[i][None]) \
                .reshape(1, -1)[0]
            assert request.ok
            assert np.array_equal(request.output, single)

    def test_padding_rows_never_leak_into_outputs(self, server_name):
        fleet = StubFleet("tc1")
        server = make_server(fleet, server_name, buckets=(4,))
        rng = np.random.default_rng(12)
        pool = images_for(fleet, rng, 1)
        request = server.submit("alpha", pool[0], now=0.0)
        server.pump(1.0)  # SLO flush: 1 request padded to bucket 4
        assert request.bucket == 4
        assert fleet.batch_sizes == [4]
        single = fleet.golden.forward_batch(pool[0][None]) \
            .reshape(1, -1)[0]
        assert np.array_equal(request.output, single)
        stats = server.stats()
        assert stats["padded_samples"] == 3
        assert stats["completed"] == 1  # pad rows are not requests

    def test_flush_triggers_are_deterministic_on_the_clock(
            self, server_name):
        fleet = StubFleet("tc1")
        server = make_server(fleet, server_name, slo_s=0.010,
                             buckets=(1, 2, 4, 8))
        rng = np.random.default_rng(13)
        pool = images_for(fleet, rng, 10)
        reqs = [server.submit("alpha", pool[i], now=0.0)
                for i in range(8)]
        assert all(r.trigger == "size" for r in reqs)  # instant flush
        late = [server.submit("beta", pool[8 + i], now=0.020 + 1e-4 * i)
                for i in range(2)]
        assert server.batcher.next_deadline() == pytest.approx(0.030)
        assert server.pump(0.0299) == 0  # a tick early: nothing due
        assert server.pump(0.030) == 1
        assert [r.trigger for r in late] == ["slo", "slo"]
        assert [r.bucket for r in late] == [2, 2]
        stats = server.stats()
        assert stats["triggers"] == {"size": 1, "slo": 1}
        assert stats["batches"] == {2: 1, 8: 1}


class TestAdmissionPath:
    def test_queue_bound_sheds_typed(self, server_name):
        fleet = StubFleet("tc1")
        server = make_server(fleet, server_name, buckets=(8,),
                             max_queue_depth=4)
        rng = np.random.default_rng(14)
        pool = images_for(fleet, rng, 5)
        for i in range(4):
            server.submit("alpha", pool[i], now=0.0)
        with pytest.raises(ShedError) as info:
            server.submit("alpha", pool[4], now=0.0)
        assert info.value.reason == "queue"
        assert server.stats()["shed"] == {"queue": 1}

    def test_unknown_tenant_raises_serve_error(self, server_name):
        fleet = StubFleet("tc1")
        server = make_server(fleet, server_name)
        with pytest.raises(ServeError, match="unknown tenant"):
            server.submit("nobody",
                          images_for(fleet,
                                     np.random.default_rng(0), 1)[0])

    def test_oversize_bucket_ladder_rejected(self, server_name):
        fleet = StubFleet("tc1", capacity=4)
        with pytest.raises(ServeError, match="exceeds fleet"):
            make_server(fleet, server_name, buckets=(1, 8))


class TestFailureAndLanes:
    def test_fleet_error_marks_requests_failed_not_raised(
            self, server_name):
        fleet = StubFleet("tc1", fail=FleetError("all slots down"))
        server = make_server(fleet, server_name, buckets=(1,))
        rng = np.random.default_rng(15)
        request = server.submit("alpha",
                                images_for(fleet, rng, 1)[0], now=0.0)
        assert not request.ok
        assert "all slots down" in request.error
        assert server.stats()["failed"] == 1

    def test_single_lane_serializes_completions(self, server_name):
        fleet = StubFleet("tc1", slots=1, device_seconds=1e-4)
        server = make_server(fleet, server_name, buckets=(1,))
        rng = np.random.default_rng(16)
        pool = images_for(fleet, rng, 2)
        first = server.submit("alpha", pool[0], now=0.0)
        second = server.submit("alpha", pool[1], now=0.0)
        assert first.completion_s == pytest.approx(1e-4)
        # the second flush queued behind the first on the only lane
        assert second.completion_s == pytest.approx(2e-4)
        assert second.latency_s == pytest.approx(2e-4)
        assert server.backlog_s(0.0) == pytest.approx(2e-4)
        assert server.backlog_s(1.0) == 0.0

    def test_metrics_land_in_the_registry(self, server_name):
        fleet = StubFleet("tc1")
        server = make_server(fleet, server_name, buckets=(1,))
        rng = np.random.default_rng(17)
        server.submit("alpha", images_for(fleet, rng, 1)[0], now=0.0)
        latency = REGISTRY.summary(
            "condor_serve_latency_seconds",
            "End-to-end request latency on the virtual timeline,"
            " per server")
        assert latency.quantile(0.99, server=server_name) is not None
        depth = REGISTRY.gauge(
            "condor_serve_queue_depth_count",
            "Requests waiting in the batcher, per server")
        assert depth.value(server=server_name) == 0.0


class TestRealFleetServing:
    def test_coalesced_equals_per_request_on_the_fleet(
            self, image, weights, server_name):
        fleet = make_fleet(image, weights, clock=VirtualClock())
        server = make_server(fleet, server_name, slo_s=0.010)
        rng = np.random.default_rng(18)
        pool = images_for(fleet, rng, 11)
        requests = [server.submit("alpha", pool[i], now=0.001 * i)
                    for i in range(11)]
        server.pump(1.0)
        assert all(r.ok for r in requests)
        for i, request in enumerate(requests):
            assert np.array_equal(request.output,
                                  fleet.run(pool[i][None])[0])
        stats = server.stats()
        assert stats["completed"] == 11
        assert stats["batches"] == {4: 1, 8: 1}
        assert stats["triggers"] == {"size": 1, "slo": 1}
