"""Code generation tests: structure and metadata of the emitted HLS C."""

import re

import pytest

from repro.codegen import (
    generate_datamover_source,
    generate_filter_source,
    generate_host_source,
    generate_pe_source,
    generate_sources,
)
from repro.codegen.filters import filter_inequalities
from repro.frontend.condor_format import CondorModel, LayerHints
from repro.frontend.zoo import lenet_model, tc1_model
from repro.hw.accelerator import build_accelerator
from repro.toolchain.hls import parse_condor_metadata


@pytest.fixture(scope="module")
def tc1_acc():
    return build_accelerator(tc1_model())


class TestPESource:
    def test_conv_pe_structure(self, tc1_acc):
        src = generate_pe_source(tc1_acc, tc1_acc.pe("pe_conv1"))
        assert "void pe_conv1(" in src
        assert "hls::stream<float> &in_stream0" in src
        assert "hls::stream<float> &out_stream0" in src
        assert "hls::stream<float> &weight_stream" in src
        assert "#pragma HLS PIPELINE II=1" in src
        assert "#pragma HLS UNROLL" in src
        assert "static float weights_conv1[300];" in src
        assert "static float bias_conv1[12];" in src
        # window loop bound = 5*5
        assert "k < 25" in src

    def test_metadata_roundtrip(self, tc1_acc):
        src = generate_pe_source(tc1_acc, tc1_acc.pe("pe_conv2"))
        meta = parse_condor_metadata(src)
        assert meta["kind"] == "pe"
        assert meta["pe.kind"] == "conv"
        assert meta["pe.layers"] == "conv2"
        assert meta["pe.window"] == "5x5"
        assert int(meta["pe.weight_words"]) == 12 * 12 * 25 + 12

    def test_fc_pe_is_1x1_conv_form(self, tc1_acc):
        src = generate_pe_source(tc1_acc, tc1_acc.pe("pe_fc"))
        assert "single-input/single-output" in src
        assert "weight_stream" in src
        meta = parse_condor_metadata(src)
        assert meta["pe.kind"] == "fc"

    def test_pool_pe_has_no_weights(self, tc1_acc):
        src = generate_pe_source(tc1_acc, tc1_acc.pe("pe_pool1"))
        assert "weight_stream" not in src
        assert "fmaxf" in src  # max pooling comparator

    def test_fused_pe_layer_select_loop(self):
        model = tc1_model()
        model.hints = {"conv1": LayerHints(cluster="f"),
                       "pool1": LayerHints(cluster="f")}
        acc = build_accelerator(model)
        src = generate_pe_source(acc, acc.pe_for_layer("conv1"))
        assert "layer_loop:" in src
        assert "if (layer == 0)" in src
        assert "if (layer == 1)" in src

    def test_parallel_ports_in_signature(self):
        model = lenet_model()
        model.hints = {"conv2": LayerHints(in_ports=2, out_ports=4)}
        acc = build_accelerator(model)
        src = generate_pe_source(acc, acc.pe_for_layer("conv2"))
        assert "in_stream1" in src and "out_stream3" in src
        assert "#pragma HLS INTERFACE axis port=in_stream1" in src


class TestFilterSource:
    def test_inequalities_for_access(self, tc1_acc):
        pe = tc1_acc.pe("pe_conv1")
        subsystem = pe.memory[0]
        node = subsystem.filters[-1]  # access (0, 0)
        conds = filter_inequalities(subsystem.spec, node, 16)
        assert "row >= 0" in conds
        assert "row <= 11" in conds  # 16 - 5 + 0
        assert "col <= 11" in conds

    def test_stride_conditions(self, tc1_acc):
        pe = tc1_acc.pe("pe_conv1")
        subsystem = pe.memory[0]
        node = subsystem.filters[0]
        conds = filter_inequalities(subsystem.spec, node, 16, stride=(2, 2))
        assert any("% 2 == 0" in c for c in conds)

    def test_last_filter_does_not_forward(self, tc1_acc):
        pe = tc1_acc.pe("pe_conv1")
        subsystem = pe.memory[0]
        last = generate_filter_source(subsystem, subsystem.filters[-1], 16)
        first = generate_filter_source(subsystem, subsystem.filters[0], 16)
        assert "to_next" not in last
        assert "to_next.write(v);" in first

    def test_metadata(self, tc1_acc):
        pe = tc1_acc.pe("pe_conv1")
        subsystem = pe.memory[0]
        meta = parse_condor_metadata(
            generate_filter_source(subsystem, subsystem.filters[3], 16))
        assert meta["kind"] == "filter"
        assert meta["filter.position"] == "3"
        assert meta["filter.window"] == "5x5"


class TestDatamoverAndHost:
    def test_datamover_ports(self, tc1_acc):
        src = generate_datamover_source(tc1_acc)
        assert "m_axi" in src
        assert "weights_pe_conv1" in src
        assert "weights_pe_fc" in src
        assert "weights_pe_pool1" not in src
        meta = parse_condor_metadata(src)
        assert meta["kind"] == "datamover"
        assert int(meta["dm.input_words"]) == 256

    def test_host_program(self, tc1_acc):
        src = generate_host_source(tc1_acc)
        assert "cl::Kernel kernel(program, \"tc1\")" in src
        assert "us/image" in src  # the Figure 5 measurement loop
        assert 'int main' in src


class TestBundle:
    def test_bundle_contents(self, tc1_acc):
        bundle = generate_sources(tc1_acc)
        # conv PEs have 5x5 chains (25 filters), pool PEs 2x2 chains (4):
        # pooling layers use the memory subsystem too (paper 3.2)
        filter_files = [p for p in bundle.paths() if "/filters/" in p]
        assert len(filter_files) == 25 + 25 + 4 + 4
        assert "datamover/datamover.cpp" in bundle
        assert "host/host.cpp" in bundle
        pe_files = [p for p in bundle.paths()
                    if p.startswith("pe/") and "/filters/" not in p]
        assert len(pe_files) == 6

    def test_write_to_disk(self, tc1_acc, tmp_path):
        bundle = generate_sources(tc1_acc)
        bundle.write_to(tmp_path)
        for path in bundle.paths():
            assert (tmp_path / path).is_file()

    def test_total_lines_positive(self, tc1_acc):
        bundle = generate_sources(tc1_acc)
        assert bundle.total_lines() > 1000

    def test_every_file_is_parsable_c_shape(self, tc1_acc):
        """Cheap syntactic sanity: balanced braces in every source."""
        bundle = generate_sources(tc1_acc)
        for path in bundle.paths():
            text = bundle[path]
            assert text.count("{") == text.count("}"), path
            assert text.count("(") == text.count(")"), path

    def test_all_kernel_sources_have_metadata(self, tc1_acc):
        bundle = generate_sources(tc1_acc)
        for path in bundle.paths():
            if path.startswith("host/"):
                continue
            meta = parse_condor_metadata(bundle[path])
            assert meta.get("kind") in ("pe", "filter", "datamover"), path
