"""The runtime lock sanitizer: held stacks, the observed order graph,
and the three failure modes (inversion, double-acquire, slow-hold)."""

import threading

import pytest

from repro.errors import SanitizerError
from repro.obs.metrics import MetricsRegistry
from repro.sanitizer import (
    InstrumentedLock,
    InstrumentedRLock,
    SanitizerState,
)
from repro.util.sync import ENABLE_ENV, new_lock, new_rlock, tsan_enabled


def _locks(state, *names, rlock=()):
    return [InstrumentedRLock(n, state) if n in rlock
            else InstrumentedLock(n, state) for n in names]


def test_acquire_release_bookkeeping():
    state = SanitizerState()
    (a,) = _locks(state, "A")
    with a:
        assert state.held_names() == ["A"]
        assert a.locked()
    assert state.held_names() == []
    assert not a.locked()
    assert state.acquire_count() == 1
    assert state.lock_names() == {"A"}
    assert state.findings() == []


def test_nested_acquire_records_order_edge():
    state = SanitizerState()
    a, b = _locks(state, "A", "B")
    with a:
        with b:
            assert state.held_names() == ["A", "B"]
    assert state.order_edges() == {("A", "B")}
    assert state.findings() == []


def test_rlock_reentry_is_clean():
    state = SanitizerState()
    (r,) = _locks(state, "R", rlock={"R"})
    with r:
        with r:
            assert state.held_names() == ["R", "R"]
        assert state.held_names() == ["R"]
    assert state.held_names() == []
    assert state.order_edges() == set()  # re-entry orders nothing
    assert state.findings() == []


def test_double_acquire_raises_instead_of_deadlocking():
    state = SanitizerState()
    (a,) = _locks(state, "A")
    a.acquire()
    with pytest.raises(SanitizerError, match="double-acquire"):
        a.acquire()
    kinds = [f.kind for f in state.findings()]
    assert kinds == ["double-acquire"]
    assert state.error_count() == 1
    a.release()


def test_order_inversion_detected():
    state = SanitizerState()
    a, b = _locks(state, "A", "B")
    with a:
        with b:
            pass
    with b:
        with a:  # A before B elsewhere: classic inversion
            pass
    findings = state.findings(severity="error")
    assert [f.kind for f in findings] == ["order-inversion"]
    assert findings[0].lock == "A"
    assert "'B'" in findings[0].detail


def test_transitive_inversion_detected():
    state = SanitizerState()
    a, b, c = _locks(state, "A", "B", "C")
    with a:
        with b:
            pass
    with b:
        with c:
            pass
    with c:
        with a:  # closes the A -> B -> C cycle
            pass
    assert [f.kind for f in state.findings(severity="error")] \
        == ["order-inversion"]


def test_same_name_distinct_instances_nesting_flagged():
    # two PlanCache instances nested = same-rank nesting: a peer thread
    # nesting them the other way round deadlocks
    state = SanitizerState()
    first, second = _locks(state, "cache", "cache")
    with first:
        with second:
            pass
    assert [f.kind for f in state.findings()] == ["order-inversion"]


def test_slow_hold_warning():
    state = SanitizerState(hold_threshold=0.0001)
    (a,) = _locks(state, "A")
    with a:
        threading.Event().wait(0.005)
    findings = state.findings()
    assert [f.kind for f in findings] == ["slow-hold"]
    assert findings[0].severity == "warning"
    assert state.error_count() == 0


def test_cross_thread_inversion_detected():
    state = SanitizerState()
    a, b = _locks(state, "A", "B")

    def forward():
        with a:
            with b:
                pass

    t = threading.Thread(target=forward)
    t.start()
    t.join()
    with b:
        with a:
            pass
    assert [f.kind for f in state.findings(severity="error")] \
        == ["order-inversion"]


def test_reset_clears_graph_but_not_held_stacks():
    state = SanitizerState()
    a, b = _locks(state, "A", "B")
    with a:
        with b:
            pass
    a.acquire()
    state.reset()
    assert state.order_edges() == set()
    assert state.acquire_count() == 0
    assert state.held_names() == ["A"]  # genuinely still held
    a.release()


def test_snapshot_and_publish_gauges():
    state = SanitizerState()
    a, b = _locks(state, "A", "B")
    with a:
        with b:
            pass
    snap = state.snapshot()
    assert snap["acquires"] == 2
    assert snap["order_edges"] == [["A", "B"]]
    assert snap["findings"] == []
    registry = MetricsRegistry(gated=False)
    state.publish(registry)
    scalars = registry.scalars()
    assert scalars["condor_tsan_acquires_count"] == 2
    assert scalars["condor_tsan_order_edges_count"] == 1
    # findings gauge carries one labelled series per kind, all zero
    metric = registry.get("condor_tsan_findings_count")
    values = metric.snapshot()["values"]
    assert len(values) == 3  # one series per finding kind
    assert {entry["value"] for entry in values} == {0}


def test_finding_render_and_dict_roundtrip():
    state = SanitizerState()
    (a,) = _locks(state, "A")
    a.acquire()
    with pytest.raises(SanitizerError):
        a.acquire()
    a.release()
    (finding,) = state.findings()
    assert "double-acquire" in finding.render()
    doc = finding.to_dict()
    assert doc["lock"] == "A" and doc["severity"] == "error"


def test_factory_env_gating(monkeypatch):
    monkeypatch.delenv(ENABLE_ENV, raising=False)
    assert not tsan_enabled()
    assert isinstance(new_lock("x"), type(threading.Lock()))
    monkeypatch.setenv(ENABLE_ENV, "1")
    assert tsan_enabled()
    lock = new_lock("x")
    rlock = new_rlock("y")
    assert isinstance(lock, InstrumentedLock)
    assert isinstance(rlock, InstrumentedRLock)
    assert (lock.name, rlock.name) == ("x", "y")
