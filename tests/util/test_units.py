"""Unit parsing/formatting tests."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.util.units import (
    format_bytes,
    format_freq,
    format_seconds,
    format_si,
    parse_freq,
)


class TestParseFreq:
    @pytest.mark.parametrize("text,expected", [
        ("100MHz", 100e6),
        ("180 MHz", 180e6),
        ("1.5GHz", 1.5e9),
        ("250 khz", 250e3),
        ("42Hz", 42.0),
        ("0.5 THz", 0.5e12),
    ])
    def test_strings(self, text, expected):
        assert parse_freq(text) == pytest.approx(expected)

    def test_numeric_passthrough(self):
        assert parse_freq(123e6) == 123e6
        assert parse_freq(5) == 5.0

    @pytest.mark.parametrize("bad", ["", "MHz", "100", "100 Mhzz", "-5MHz"])
    def test_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_freq(bad)

    @pytest.mark.parametrize("bad", [0, -1.0, float("nan"), float("inf")])
    def test_invalid_numbers(self, bad):
        with pytest.raises(ValueError):
            parse_freq(bad)

    @given(st.floats(min_value=1.0, max_value=1e11),
           st.sampled_from(["Hz", "kHz", "MHz", "GHz"]))
    def test_roundtrip_prefixes(self, value, unit):
        mult = {"Hz": 1, "kHz": 1e3, "MHz": 1e6, "GHz": 1e9}[unit]
        parsed = parse_freq(f"{value}{unit}")
        assert math.isclose(parsed, value * mult, rel_tol=1e-9)


class TestFormatting:
    def test_format_freq(self):
        assert format_freq(100e6) == "100.00 MHz"
        assert format_freq(1.8e8) == "180.00 MHz"

    def test_format_si_zero(self):
        assert format_si(0, "W") == "0 W"

    def test_format_si_small(self):
        assert format_si(2.5e-3, "s") == "2.50 ms"

    def test_format_seconds(self):
        assert format_seconds(2.0) == "2.000 s"
        assert "ms" in format_seconds(0.002)
        assert "us" in format_seconds(2e-6)

    def test_format_bytes(self):
        assert format_bytes(0) == "0 B"
        assert format_bytes(1023) == "1023 B"
        assert format_bytes(1024) == "1.00 KiB"
        assert format_bytes(5 * 1024 * 1024) == "5.00 MiB"

    def test_format_bytes_negative(self):
        with pytest.raises(ValueError):
            format_bytes(-1)
