"""Logging helper tests."""

import logging
import threading

from repro.util.logging import (
    _ContextFilter,
    current_context,
    get_logger,
    log_context,
)


def test_namespacing():
    assert get_logger("toolchain.hls").name == "repro.toolchain.hls"
    assert get_logger("repro.flow").name == "repro.flow"


def test_log_context_nesting():
    assert current_context() == ""
    with log_context("step1"):
        assert current_context() == "step1"
        with log_context("step2"):
            assert current_context() == "step2"
        assert current_context() == "step1"
    assert current_context() == ""


def test_filter_installed_once():
    logger = get_logger("x.y")
    n = len(logger.filters)
    get_logger("x.y")
    assert len(logger.filters) == n


def test_context_label_reaches_emitted_records():
    """The filter is load-bearing: %(condor_ctx)s must carry the active
    label into handler output, and be empty outside any context."""
    logger = get_logger("test.ctx_records")
    logger.setLevel(logging.INFO)
    records = []

    class Capture(logging.Handler):
        def emit(self, record):
            records.append((record.condor_ctx, self.format(record)))

    handler = Capture()
    handler.setFormatter(logging.Formatter("%(condor_ctx)s%(message)s"))
    logger.addHandler(handler)
    try:
        with log_context("7-deployment-on-board"):
            logger.info("linking")
        logger.info("done")
    finally:
        logger.removeHandler(handler)

    assert records[0] == ("[7-deployment-on-board] ",
                          "[7-deployment-on-board] linking")
    assert records[1] == ("", "done")


def test_get_logger_idempotent_under_concurrent_first_calls():
    """Racing first-calls for a brand-new logger name must not stack
    duplicate filters."""
    name = "test.concurrent_install"
    barrier = threading.Barrier(8)

    def hammer():
        barrier.wait()
        for _ in range(50):
            get_logger(name)

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    logger = logging.getLogger(f"repro.{name}")
    installed = [f for f in logger.filters
                 if isinstance(f, _ContextFilter)]
    assert len(installed) == 1
