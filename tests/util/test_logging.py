"""Logging helper tests."""

from repro.util.logging import current_context, get_logger, log_context


def test_namespacing():
    assert get_logger("toolchain.hls").name == "repro.toolchain.hls"
    assert get_logger("repro.flow").name == "repro.flow"


def test_log_context_nesting():
    assert current_context() == ""
    with log_context("step1"):
        assert current_context() == "step1"
        with log_context("step2"):
            assert current_context() == "step2"
        assert current_context() == "step1"
    assert current_context() == ""


def test_filter_installed_once():
    logger = get_logger("x.y")
    n = len(logger.filters)
    get_logger("x.y")
    assert len(logger.filters) == n
