"""Identifier sanitation tests."""

import keyword
import re

from hypothesis import given, strategies as st

from repro.util.naming import sanitize_identifier, unique_name

_IDENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class TestSanitize:
    def test_caffe_style_names(self):
        assert sanitize_identifier("conv1/3x3_reduce") == "conv1_3x3_reduce"
        assert sanitize_identifier("fire2/squeeze1x1") == "fire2_squeeze1x1"

    def test_leading_digit(self):
        assert sanitize_identifier("3conv") == "m_3conv"

    def test_c_keyword(self):
        assert sanitize_identifier("float") == "m_float"
        assert sanitize_identifier("while") == "m_while"

    def test_empty(self):
        assert sanitize_identifier("") == "m"

    def test_idempotent_on_valid(self):
        assert sanitize_identifier("conv1") == "conv1"

    @given(st.text(max_size=40))
    def test_always_valid_c_identifier(self, name):
        result = sanitize_identifier(name)
        assert _IDENT.match(result), result

    @given(st.text(max_size=40))
    def test_deterministic(self, name):
        assert sanitize_identifier(name) == sanitize_identifier(name)


class TestUniqueName:
    def test_no_collision(self):
        taken: set[str] = set()
        assert unique_name("pe", taken) == "pe"
        assert taken == {"pe"}

    def test_collisions_numbered(self):
        taken = {"pe"}
        assert unique_name("pe", taken) == "pe_1"
        assert unique_name("pe", taken) == "pe_2"

    @given(st.lists(st.sampled_from(["a", "b", "c"]), max_size=30))
    def test_never_repeats(self, bases):
        taken: set[str] = set()
        seen = [unique_name(b, taken) for b in bases]
        assert len(seen) == len(set(seen))
