"""TextTable rendering tests."""

import pytest

from repro.util.tables import TextTable


def test_basic_render():
    t = TextTable(["net", "GFLOPS"])
    t.add_row(["TC1", 8.36])
    t.add_row(["LeNet", 3.35])
    out = t.render()
    lines = out.splitlines()
    assert lines[0].startswith("net")
    assert "8.36" in out and "3.35" in out
    assert set(lines[1]) <= {"-", "+"}


def test_column_alignment():
    t = TextTable(["a", "b"])
    t.add_row(["xxxxxx", 1.0])
    lines = t.render().splitlines()
    # all rows have the same separator column position
    positions = {line.find("|") for line in lines if "|" in line}
    assert len(positions) == 1


def test_wrong_arity_rejected():
    t = TextTable(["a", "b"])
    with pytest.raises(ValueError):
        t.add_row([1])


def test_float_format_override():
    t = TextTable(["x"], float_format="{:.4f}")
    t.add_row([1.23456])
    assert "1.2346" in t.render()


def test_str_protocol():
    t = TextTable(["x"])
    t.add_row([1])
    assert str(t) == t.render()
