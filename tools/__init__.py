"""Repo maintenance tooling (not shipped with :mod:`repro`)."""
