"""CLI: ``python -m tools.lint [--select rule,...] [--root PATH]``."""

from __future__ import annotations

import argparse
import sys

from tools.lint import DEFAULT_ROOT, RULE_REGISTRY, run_lint


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.lint",
        description="run the repo lint rules over a source tree")
    parser.add_argument("--root", default=str(DEFAULT_ROOT),
                        help="tree to lint (default: src/repro)")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids (default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list the registered rules and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        width = max(len(rule_id) for rule_id in RULE_REGISTRY)
        for rule_id, cls in RULE_REGISTRY.items():
            scope = f" [scope: {cls.scope}]" if cls.scope else ""
            print(f"{rule_id:<{width}}  {cls.description}{scope}")
        return 0

    select = args.select.split(",") if args.select else None
    try:
        found = run_lint(args.root, select)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for violation in sorted(found, key=lambda v: (v.path, v.line)):
        print(violation.render())
    if found:
        print(f"\n{len(found)} lint violation(s)")
        return 1
    print(f"lint: ok ({len(RULE_REGISTRY) if select is None else len(select)}"
          " rule(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
