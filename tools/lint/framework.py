"""AST-visitor lint framework for the repo's own conventions.

A :class:`LintRule` inspects one parsed module and yields
:class:`Violation` objects.  Rules register with the ``@register_rule``
decorator; :func:`run_lint` walks a source root, parses each file once,
and feeds the tree to every selected rule.  Per-rule *allowlists* name
files (posix paths relative to the lint root) where the rule is
intentionally off; a rule's *scope* restricts it to a subtree (e.g. only
``sim/``).

Run as ``python -m tools.lint`` (see ``__main__.py``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

#: Default tree the linter walks (the shipped package).
DEFAULT_ROOT = Path(__file__).resolve().parent.parent.parent \
    / "src" / "repro"


@dataclass(frozen=True)
class Violation:
    """One finding of one rule in one file."""

    rule_id: str
    path: str  # relative posix path
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule_id}] {self.message}"


class LintRule:
    """Base class: subclass, set ``id``/``description``, implement
    :meth:`check`.

    ``allow`` lists relative posix paths exempt from the rule;
    ``scope`` (when set) restricts the rule to paths under that prefix.
    """

    id: str = ""
    description: str = ""
    allow: frozenset[str] = frozenset()
    scope: str | None = None

    def applies_to(self, rel_path: str,
                   abs_path: Path | None = None) -> bool:
        if rel_path in self.allow and self._allow_matches(rel_path,
                                                          abs_path):
            return False
        if self.scope is not None and not rel_path.startswith(self.scope):
            return False
        return True

    @staticmethod
    def _allow_matches(rel_path: str, abs_path: Path | None) -> bool:
        """Allow entries are anchored to the shipped tree: ``cli.py``
        exempts exactly ``DEFAULT_ROOT/cli.py``, never a same-named
        file in some other lint root (tests lint temp trees)."""
        if abs_path is None:
            return True  # no anchor available: legacy behaviour
        try:
            return abs_path.resolve() == (DEFAULT_ROOT / rel_path).resolve()
        except OSError:  # pragma: no cover - unresolvable path
            return False

    def check(self, tree: ast.Module, rel_path: str) \
            -> Iterator[Violation]:  # pragma: no cover - interface
        raise NotImplementedError

    def violation(self, rel_path: str, node: ast.AST, message: str) \
            -> Violation:
        return Violation(rule_id=self.id, path=rel_path,
                         line=getattr(node, "lineno", 0), message=message)


#: Registered rule classes, in registration order.
RULE_REGISTRY: dict[str, type[LintRule]] = {}


def register_rule(cls: type[LintRule]) -> type[LintRule]:
    if not cls.id:
        raise ValueError(f"lint rule {cls.__name__} has no id")
    if cls.id in RULE_REGISTRY:
        raise ValueError(f"duplicate lint rule id {cls.id!r}")
    RULE_REGISTRY[cls.id] = cls
    return cls


def _resolve(select: Iterable[str] | None) -> list[LintRule]:
    if select is None:
        return [cls() for cls in RULE_REGISTRY.values()]
    unknown = [r for r in select if r not in RULE_REGISTRY]
    if unknown:
        raise ValueError(f"unknown lint rule(s) {sorted(set(unknown))};"
                         f" known: {sorted(RULE_REGISTRY)}")
    chosen = set(select)
    return [cls() for rule_id, cls in RULE_REGISTRY.items()
            if rule_id in chosen]


def lint_file(path: Path, rel_path: str, rules: list[LintRule]) \
        -> list[Violation]:
    """Parse one file and run every applicable rule over it."""
    applicable = [r for r in rules if r.applies_to(rel_path, path)]
    if not applicable:
        return []
    tree = ast.parse(path.read_text(), filename=rel_path)
    found: list[Violation] = []
    for rule in applicable:
        found.extend(rule.check(tree, rel_path))
    return found


def run_lint(root: Path | str = DEFAULT_ROOT,
             select: Iterable[str] | None = None) -> list[Violation]:
    """Lint every ``*.py`` under ``root`` with the selected rules."""
    root = Path(root)
    rules = _resolve(select)
    found: list[Violation] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        found.extend(lint_file(path, rel, rules))
    return found
