"""The repo's lint rules.

Importing this module registers every rule with
:data:`tools.lint.framework.RULE_REGISTRY`.
"""

from __future__ import annotations

import ast
import re

from tools.lint.framework import LintRule, register_rule


@register_rule
class TelemetryPrintRule(LintRule):
    """Library code reports through ``repro.obs`` / the logging front
    door; ``print`` is reserved for the CLI (its stdout *is* the user
    interface)."""

    id = "telemetry-print"
    description = "ban print() outside the CLI"
    allow = frozenset({"cli.py"})

    def check(self, tree, rel_path):
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id == "print":
                yield self.violation(
                    rel_path, node,
                    "bare print() — route output through"
                    " repro.util.logging / repro.obs")


@register_rule
class TelemetryGetLoggerRule(LintRule):
    """``repro.util.logging.get_logger`` attaches the flow-step context;
    raw ``logging.getLogger`` loses it."""

    id = "telemetry-getlogger"
    description = "ban logging.getLogger() outside the logging front door"
    allow = frozenset({"util/logging.py"})

    def check(self, tree, rel_path):
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "getLogger" and \
                    isinstance(node.func.value, ast.Name) and \
                    node.func.value.id == "logging":
                yield self.violation(
                    rel_path, node,
                    "direct logging.getLogger() — use"
                    " repro.util.logging.get_logger")


_BROAD = {"Exception", "BaseException"}


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(n, ast.Raise) and n.exc is None
               for n in ast.walk(handler))


def _names_in_handler_type(node: ast.expr | None):
    if node is None:
        yield None  # bare except:
    elif isinstance(node, ast.Tuple):
        for element in node.elts:
            yield from _names_in_handler_type(element)
    elif isinstance(node, ast.Name):
        yield node.id
    elif isinstance(node, ast.Attribute):
        yield node.attr


@register_rule
class BroadExceptRule(LintRule):
    """Broad catch-and-swallow hides failures the typed
    ``repro.errors`` hierarchy exists to surface.  A broad handler is
    allowed only when it re-raises (telemetry record-and-rethrow)."""

    id = "broad-except"
    description = "ban bare/broad except unless the handler re-raises"

    def check(self, tree, rel_path):
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            names = set(_names_in_handler_type(node.type))
            if None in names and not _handler_reraises(node):
                yield self.violation(
                    rel_path, node,
                    "bare 'except:' — catch a repro.errors type")
            elif names & _BROAD and not _handler_reraises(node):
                caught = ", ".join(sorted(names & _BROAD))
                yield self.violation(
                    rel_path, node,
                    f"broad 'except {caught}' without re-raise — catch"
                    " a repro.errors type (CondorError at the outermost"
                    " boundary)")


_GENERIC_RAISES = {"Exception", "BaseException", "RuntimeError"}


@register_rule
class GenericRaiseRule(LintRule):
    """API boundaries raise the typed hierarchy so callers can catch
    ``CondorError`` (builtin ValueError/KeyError/NotImplementedError
    keep their usual contract-violation/abstract-method meanings)."""

    id = "generic-raise"
    description = "ban raising Exception/BaseException/RuntimeError"

    def check(self, tree, rel_path):
        for node in ast.walk(tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name = None
            if isinstance(exc, ast.Call) and \
                    isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in _GENERIC_RAISES:
                yield self.violation(
                    rel_path, node,
                    f"raise {name} — use a repro.errors type")


_WALLCLOCK_TIME_ATTRS = {"time", "monotonic", "perf_counter",
                         "monotonic_ns", "perf_counter_ns", "time_ns"}
_WALLCLOCK_DT_ATTRS = {"now", "utcnow", "today"}


@register_rule
class SimWallclockRule(LintRule):
    """The event simulator is deterministic virtual time; wall-clock
    reads make runs irreproducible."""

    id = "sim-wallclock"
    description = "ban wall-clock time sources inside src/repro/sim/"
    scope = "sim/"

    def check(self, tree, rel_path):
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call) and
                    isinstance(node.func, ast.Attribute)):
                continue
            func = node.func
            if isinstance(func.value, ast.Name) and \
                    func.value.id == "time" and \
                    func.attr in _WALLCLOCK_TIME_ATTRS:
                yield self.violation(
                    rel_path, node,
                    f"time.{func.attr}() in the simulator — use the"
                    " event clock (Simulator.now)")
            elif func.attr in _WALLCLOCK_DT_ATTRS and \
                    isinstance(func.value, ast.Name) and \
                    func.value.id in ("datetime", "date"):
                yield self.violation(
                    rel_path, node,
                    f"{func.value.id}.{func.attr}() in the simulator —"
                    " use the event clock (Simulator.now)")


@register_rule
class WallclockSleepRule(LintRule):
    """Blocking the process on real time makes runs slow and
    irreproducible: backoff and poll pacing go through the injectable
    :class:`repro.resilience.clock.VirtualClock` instead, so an AFI
    wait or a retry schedule is testable in microseconds."""

    id = "wallclock-sleep"
    description = "ban time.sleep() — sleep on the resilience clock"

    def check(self, tree, rel_path):
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "sleep" and \
                    isinstance(node.func.value, ast.Name) and \
                    node.func.value.id == "time":
                yield self.violation(
                    rel_path, node,
                    "time.sleep() — sleep on a"
                    " repro.resilience.clock.VirtualClock instead")
            elif isinstance(node, ast.ImportFrom) and \
                    node.module == "time" and \
                    any(alias.name == "sleep" for alias in node.names):
                yield self.violation(
                    rel_path, node,
                    "'from time import sleep' — sleep on a"
                    " repro.resilience.clock.VirtualClock instead")


@register_rule
class MutableDefaultRule(LintRule):
    """A mutable default is shared across calls — the classic aliasing
    bug."""

    id = "mutable-default"
    description = "ban mutable default argument values"

    _MUTABLE_CALLS = {"list", "dict", "set"}

    def _is_mutable(self, default: ast.expr) -> bool:
        if isinstance(default, (ast.List, ast.Dict, ast.Set,
                                ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        return (isinstance(default, ast.Call) and
                isinstance(default.func, ast.Name) and
                default.func.id in self._MUTABLE_CALLS and
                not default.args and not default.keywords)

    def check(self, tree, rel_path):
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            args = node.args
            for default in (*args.defaults, *args.kw_defaults):
                if default is not None and self._is_mutable(default):
                    yield self.violation(
                        rel_path, default,
                        f"mutable default in {node.name}() — default to"
                        " None and create inside the body")


def _has_slots_assignment(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        targets = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


def _is_slotted_dataclass(cls: ast.ClassDef) -> bool:
    for deco in cls.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        func = deco.func
        name = func.id if isinstance(func, ast.Name) else \
            func.attr if isinstance(func, ast.Attribute) else None
        if name != "dataclass":
            continue
        for kw in deco.keywords:
            if kw.arg == "slots" and \
                    isinstance(kw.value, ast.Constant) and \
                    kw.value.value is True:
                return True
    return False


#: Base classes that manage their own storage layout; requiring
#: ``__slots__`` on top of them is wrong or redundant.
_SLOTS_EXEMPT_BASES = {"NamedTuple", "Enum", "IntEnum", "Flag",
                       "Protocol", "TypedDict"}


@register_rule
class SimSlotsRule(LintRule):
    """The simulator allocates events, processes and channel records on
    every scheduler step; a slot-less class there pays a per-instance
    ``__dict__`` on the hottest allocation path in the repo."""

    id = "sim-slots"
    description = ("require __slots__ (or dataclass(slots=True)) on"
                   " classes in src/repro/sim/")
    scope = "sim/"

    def check(self, tree, rel_path):
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = {b.id for b in node.bases if isinstance(b, ast.Name)}
            if bases & _SLOTS_EXEMPT_BASES:
                continue
            if _has_slots_assignment(node) or _is_slotted_dataclass(node):
                continue
            yield self.violation(
                rel_path, node,
                f"class {node.name} has no __slots__ — simulator"
                " objects are allocated per event; add __slots__ or"
                " @dataclass(slots=True)")


#: numpy constructors that allocate (or re-stride) from shape arithmetic.
#: Inside the engine hot loops every such buffer must come from a
#: compiled execution plan (:mod:`repro.nn.plan`), where it is allocated
#: once per (shape, dtype) configuration and replayed.
_PLAN_ALLOC_CALLS = {"pad", "empty", "zeros", "ones", "full",
                     "concatenate", "stack", "empty_like", "zeros_like",
                     "full_like", "as_strided"}


@register_rule
class EnginePlanAllocRule(LintRule):
    """The reference engine's forward loops are the serving hot path:
    ad-hoc shape-derived allocations there defeat the execution-plan
    cache (scratch reuse is the whole point).  Allocations belong in
    ``nn/plan.py`` plan compilation or in the ``nn/functional`` oracle
    kernels the unplanned fallback calls."""

    id = "engine-plan-alloc"
    description = ("ban ad-hoc numpy allocations in the engine hot"
                   " loops — scratch must come from an execution plan")
    scope = "nn/engine.py"

    def check(self, tree, rel_path):
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call) and
                    isinstance(node.func, ast.Attribute)):
                continue
            func = node.func
            if func.attr not in _PLAN_ALLOC_CALLS:
                continue
            if isinstance(func.value, ast.Name) and \
                    func.value.id in ("np", "numpy"):
                yield self.violation(
                    rel_path, node,
                    f"np.{func.attr}() in the engine — allocate scratch"
                    " inside an execution plan (repro.nn.plan)")
            elif func.attr == "as_strided":
                yield self.violation(
                    rel_path, node,
                    "as_strided() in the engine — precompute a gather"
                    " index map in an execution plan (repro.nn.plan)")


_METRIC_NAME = re.compile(r"^condor_[a-z][a-z0-9_]*$")

#: Allowed unit/semantic suffixes per declaration kind.  Counters count
#: events (``_total``); gauges and distribution metrics say what they
#: measure so the series is self-describing on a dashboard.
_METRIC_SUFFIXES = {
    "counter": ("_total",),
    "gauge": ("_entries", "_bytes", "_seconds", "_ratio", "_count",
              "_percent"),
    "histogram": ("_seconds", "_bytes", "_cycles", "_ratio"),
    "summary": ("_seconds", "_bytes", "_cycles", "_ratio"),
}


@register_rule
class MetricNameRule(LintRule):
    """Prometheus metric names are an API: the shared ``condor_`` prefix
    keeps every series greppable to this codebase, and the unit suffix
    (``_seconds``, ``_bytes``, ``_total``, ...) is what makes a bare
    number on a dashboard interpretable.  Checked at the registry
    declaration site — the only place a name is ever spelled."""

    id = "metric-name"
    description = ("enforce condor_* snake-case metric names with a"
                   " unit suffix at registry declaration sites")

    def check(self, tree, rel_path):
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call) and
                    isinstance(node.func, ast.Attribute) and
                    node.func.attr in _METRIC_SUFFIXES and
                    node.args):
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Constant) and
                    isinstance(first.value, str)):
                continue
            kind, name = node.func.attr, first.value
            if not _METRIC_NAME.match(name):
                yield self.violation(
                    rel_path, node,
                    f"metric name {name!r} — use"
                    " condor_<subsystem>_<what>_<unit> (lower-case"
                    " snake_case, condor_ prefix)")
            elif not name.endswith(_METRIC_SUFFIXES[kind]):
                allowed = "/".join(_METRIC_SUFFIXES[kind])
                yield self.violation(
                    rel_path, node,
                    f"{kind} {name!r} lacks a unit suffix — end it in"
                    f" {allowed}")


#: Calls that do real work inside the flow driver; each must run inside
#: a ``with self._step(...)`` (or a raw ``with span(...)``) so the
#: telemetry manifest accounts for it.
_HEAVY_CALLS = {
    "build_accelerator", "generate_sources", "build_network_ip",
    "xocc_link", "package_xo", "explore", "estimate_accelerator",
    "estimate_performance", "estimate_power_watts",
    "generate_kernel_xml", "write_xclbin", "generate_host_source",
    "check_model",
}


def _is_span_with(with_node: ast.With) -> bool:
    for item in with_node.items:
        call = item.context_expr
        if not isinstance(call, ast.Call):
            continue
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr == "_step":
            return True
        if isinstance(func, ast.Name) and func.id in ("span", "recording"):
            return True
    return False


class _SpanVisitor(ast.NodeVisitor):
    def __init__(self):
        self.depth = 0
        self.naked: list[ast.Call] = []

    def visit_With(self, node: ast.With):
        if _is_span_with(node):
            self.depth += 1
            self.generic_visit(node)
            self.depth -= 1
        else:
            self.generic_visit(node)

    def visit_Call(self, node: ast.Call):
        name = None
        if isinstance(node.func, ast.Name):
            name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            name = node.func.attr
        if name in _HEAVY_CALLS and self.depth == 0:
            self.naked.append(node)
        self.generic_visit(node)


@register_rule
class FlowStepSpanRule(LintRule):
    """Flow steps must be span-instrumented: heavy generator/toolchain
    calls inside ``src/repro/flow/`` belong under ``self._step(...)``
    (or an explicit ``span(...)``) so ``telemetry.json`` stays
    complete."""

    id = "flow-step-span"
    description = ("require span instrumentation around heavy calls in"
                   " src/repro/flow/")
    scope = "flow/"

    def check(self, tree, rel_path):
        visitor = _SpanVisitor()
        visitor.visit(tree)
        for call in visitor.naked:
            name = (call.func.id if isinstance(call.func, ast.Name)
                    else call.func.attr)
            yield self.violation(
                rel_path, call,
                f"{name}() outside a step span — wrap it in 'with"
                " self._step(...)' (or 'with span(...)')")
