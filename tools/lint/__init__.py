"""The repo linter: an AST rule framework plus the house rules.

Importing the package registers the built-in rules.  ``python -m
tools.lint`` runs them over ``src/repro/``.
"""

from tools.lint.framework import (
    DEFAULT_ROOT,
    RULE_REGISTRY,
    LintRule,
    Violation,
    lint_file,
    register_rule,
    run_lint,
)
from tools.lint import rules as _rules  # noqa: F401  (registers rules)

__all__ = [
    "DEFAULT_ROOT",
    "LintRule",
    "RULE_REGISTRY",
    "Violation",
    "lint_file",
    "register_rule",
    "run_lint",
]
