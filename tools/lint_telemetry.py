#!/usr/bin/env python3
"""Enforce the telemetry layer as the single front door.

Library code under ``src/repro/`` must log through
``repro.util.logging.get_logger`` (so records carry the flow-step
context) and report through ``repro.obs`` — not scatter ``print(`` /
``logging.getLogger(`` calls.  This linter fails CI on new offenders.

Allowlisted:

* ``util/logging.py`` — the one place that may call
  ``logging.getLogger`` (it *is* the front door);
* ``cli.py`` — the CLI's stdout *is* its user interface;
* ``util/tables.py`` — ``print`` appears only in a doctest.

Run:  python tools/lint_telemetry.py   (exits 1 on violations)
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

ALLOW_GETLOGGER = {"util/logging.py"}
ALLOW_PRINT = {"cli.py", "util/tables.py"}

_PRINT = re.compile(r"(?<![\w.])print\(")
_GETLOGGER = re.compile(r"logging\.getLogger\(")
_COMMENT = re.compile(r"^\s*#")


def violations() -> list[str]:
    found: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC).as_posix()
        for lineno, line in enumerate(
                path.read_text().splitlines(), start=1):
            if _COMMENT.match(line):
                continue
            if rel not in ALLOW_PRINT and _PRINT.search(line):
                found.append(
                    f"{rel}:{lineno}: bare print() — route output"
                    " through repro.util.logging / repro.obs")
            if rel not in ALLOW_GETLOGGER and _GETLOGGER.search(line):
                found.append(
                    f"{rel}:{lineno}: direct logging.getLogger() — use"
                    " repro.util.logging.get_logger")
    return found


def main() -> int:
    found = violations()
    for violation in found:
        print(violation)
    if found:
        print(f"\n{len(found)} telemetry-layer violation(s)")
        return 1
    print("telemetry lint: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
