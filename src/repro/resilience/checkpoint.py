"""Flow checkpoints: what ``condor build --resume`` skips from.

Each completed flow step persists a small JSON record under
``workdir/checkpoints/``: the step's *chained input digest* (a hash over
the run inputs and every upstream step's configuration), the SHA-256 of
each artifact the step wrote, and a free-form ``state`` dict with
whatever downstream steps need to rehydrate.  On resume, a step is
skipped iff its recorded digest matches the recomputed chain *and* every
artifact is still on disk with the recorded hash — the first stale,
missing or failed step re-runs, and everything after it re-runs too.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import CheckpointError
from repro.util.logging import get_logger

__all__ = ["Checkpoint", "CheckpointStore", "chain_digest", "file_digest"]

_log = get_logger("resilience.checkpoint")

CHECKPOINT_SCHEMA = 1
CHECKPOINT_DIRNAME = "checkpoints"


def chain_digest(prev: str | None, *parts: str) -> str:
    """Extend a digest chain: ``sha256(prev || part || ...)``."""
    h = hashlib.sha256()
    if prev:
        h.update(prev.encode())
    for part in parts:
        h.update(b"\x00")
        h.update(part.encode())
    return h.hexdigest()


def file_digest(path: Path) -> str:
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


@dataclass
class Checkpoint:
    """One step's persisted completion record."""

    step: str
    digest: str
    #: Workdir-relative artifact path -> sha256 hex digest.
    artifacts: dict[str, str] = field(default_factory=dict)
    state: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"schema": CHECKPOINT_SCHEMA, "step": self.step,
                "digest": self.digest, "artifacts": self.artifacts,
                "state": self.state}

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "Checkpoint":
        try:
            if doc["schema"] != CHECKPOINT_SCHEMA:
                raise CheckpointError(
                    f"unsupported checkpoint schema {doc['schema']!r}")
            return cls(step=doc["step"], digest=doc["digest"],
                       artifacts=dict(doc["artifacts"]),
                       state=dict(doc.get("state", {})))
        except (KeyError, TypeError) as exc:
            raise CheckpointError(
                f"malformed checkpoint document: {exc}") from exc


class CheckpointStore:
    """The ``workdir/checkpoints/`` directory."""

    def __init__(self, workdir: Path | str):
        self.workdir = Path(workdir)
        self.directory = self.workdir / CHECKPOINT_DIRNAME

    def _path(self, step: str) -> Path:
        return self.directory / f"{step}.json"

    # -- writing --------------------------------------------------------------

    def save(self, step: str, digest: str, *,
             artifacts: list[Path | str] = (),
             state: dict[str, Any] | None = None) -> Checkpoint:
        """Record a completed step (artifact hashes taken now)."""
        workdir = self.workdir.resolve()
        hashed: dict[str, str] = {}
        for artifact in artifacts:
            resolved = Path(artifact).resolve()
            try:
                rel = resolved.relative_to(workdir)
            except ValueError:
                # a workdir-relative name like "kernel.xml"
                resolved = (self.workdir / artifact).resolve()
                rel = resolved.relative_to(workdir)
            hashed[rel.as_posix()] = file_digest(resolved)
        checkpoint = Checkpoint(step=step, digest=digest,
                                artifacts=hashed, state=state or {})
        self.directory.mkdir(parents=True, exist_ok=True)
        self._path(step).write_text(
            json.dumps(checkpoint.to_dict(), indent=2) + "\n")
        return checkpoint

    def discard(self, step: str) -> None:
        self._path(step).unlink(missing_ok=True)

    # -- reading --------------------------------------------------------------

    def load(self, step: str) -> Checkpoint | None:
        path = self._path(step)
        if not path.is_file():
            return None
        try:
            doc = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"unreadable checkpoint {path}: {exc}") from exc
        return Checkpoint.from_dict(doc)

    def valid(self, step: str, digest: str) -> Checkpoint | None:
        """The checkpoint iff it is fresh: digest matches and every
        artifact is intact on disk.  Returns ``None`` otherwise."""
        try:
            checkpoint = self.load(step)
        except CheckpointError as exc:
            _log.warning("ignoring %s: %s", step, exc)
            return None
        if checkpoint is None:
            return None
        if checkpoint.digest != digest:
            _log.info("checkpoint %s is stale (inputs changed)", step)
            return None
        for rel, expected in checkpoint.artifacts.items():
            path = self.workdir / rel
            if not path.is_file() or file_digest(path) != expected:
                _log.info("checkpoint %s: artifact %s missing or"
                          " modified", step, rel)
                return None
        return checkpoint

    def steps(self) -> list[str]:
        if not self.directory.is_dir():
            return []
        return sorted(p.stem for p in self.directory.glob("*.json"))
