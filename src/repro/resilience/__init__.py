"""Resilience layer: retry/backoff, circuit breaking, fault injection
and flow checkpoints.

The paper's step 8 rides on long, flaky infrastructure — an hour-scale
HLS/xocc build followed by a ~30-50 minute AFI creation loop over S3 and
``describe-fpga-images`` polling.  This package is what lets the flow
survive that weather instead of discarding completed work:

* :mod:`repro.resilience.clock` — the injectable virtual clock (no
  wall-clock sleeps anywhere, enforced by the ``wallclock-sleep`` lint
  rule);
* :mod:`repro.resilience.retry` — :class:`RetryPolicy`, exponential
  backoff with deterministic seeded jitter;
* :mod:`repro.resilience.breaker` — :class:`CircuitBreaker` per
  boundary;
* :mod:`repro.resilience.faults` — seeded :class:`FaultPlan` chaos
  injection (``condor chaos``);
* :mod:`repro.resilience.boundary` — :func:`run_boundary`, the harness
  the production cloud/toolchain edges call through;
* :mod:`repro.resilience.checkpoint` — the per-step checkpoint store
  behind ``condor build --resume``.
"""

from repro.resilience.boundary import (
    BoundaryStats,
    breaker_for,
    breaker_states,
    collecting_stats,
    current_stats,
    inject_faults,
    reset_breakers,
    run_boundary,
)
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.checkpoint import (
    Checkpoint,
    CheckpointStore,
    chain_digest,
    file_digest,
)
from repro.resilience.clock import DEFAULT_CLOCK, VirtualClock
from repro.resilience.faults import (
    ALL_BOUNDARIES,
    CLOUD_BOUNDARIES,
    DEVICE_FAULT_KINDS,
    DEVICE_PATTERN,
    FaultKind,
    FaultPlan,
    FaultSpec,
    active_plan,
)
from repro.resilience.retry import DEFAULT_POLICY, RetryPolicy, is_transient

__all__ = [
    "ALL_BOUNDARIES",
    "BoundaryStats",
    "CLOUD_BOUNDARIES",
    "Checkpoint",
    "CheckpointStore",
    "CircuitBreaker",
    "DEFAULT_CLOCK",
    "DEFAULT_POLICY",
    "DEVICE_FAULT_KINDS",
    "DEVICE_PATTERN",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "VirtualClock",
    "active_plan",
    "breaker_for",
    "breaker_states",
    "chain_digest",
    "collecting_stats",
    "current_stats",
    "file_digest",
    "inject_faults",
    "is_transient",
    "reset_breakers",
    "run_boundary",
]
