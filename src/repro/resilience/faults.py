"""Seeded fault injection for chaos testing.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries that fire at
the named retryable boundaries (the *same* boundaries production code
runs through — see :mod:`repro.resilience.boundary`), so chaos runs
exercise the exact retry / breaker / degradation paths a real
infrastructure outage would:

``transient``
    raises :class:`~repro.errors.TransientError` for the first ``times``
    invocations of the boundary, then clears — survivable via retry;
``permanent``
    raises the boundary's native error type (``AFIError`` for the AFI
    service, ``HLSError`` for csynth, ...) on every invocation — the
    kind of failure retry cannot fix;
``slow``
    advances the virtual clock by ``delay_s`` before the call — latency
    weather that exercises breaker recovery windows;
``corrupt-payload``
    deterministically flips bytes in the payload a boundary transfers
    (S3 upload) for ``times`` invocations — caught by the upload
    integrity check and survivable via retry.

Everything is driven by a seeded RNG and per-spec counters, so a plan
with a fixed seed replays the exact same fault sequence.  A plan is
*stateful*: build a fresh one per run.
"""

from __future__ import annotations

import contextlib
import contextvars
import enum
import fnmatch
import random
import zlib
from collections import Counter
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.errors import (
    AFIError,
    CondorError,
    HLSError,
    LinkError,
    PackagingError,
    S3Error,
    TransientError,
)
from repro.obs import REGISTRY
from repro.resilience.clock import VirtualClock
from repro.util.logging import get_logger

__all__ = [
    "ALL_BOUNDARIES",
    "CLOUD_BOUNDARIES",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "active_plan",
]

_log = get_logger("resilience.faults")

_INJECTED = REGISTRY.counter(
    "condor_resilience_faults_injected_total",
    "Faults injected into boundaries, by boundary and kind")

#: Native error type per boundary — what a *permanent* fault raises, so
#: the caller sees exactly what the real subsystem would throw.
BOUNDARY_ERRORS: dict[str, type[CondorError]] = {
    "cloud.upload": S3Error,
    "cloud.create-fpga-image": AFIError,
    "cloud.wait-for-afi": AFIError,
    "toolchain.hls-csynth": HLSError,
    "toolchain.xocc-link": LinkError,
    "toolchain.package-xo": PackagingError,
}

ALL_BOUNDARIES: tuple[str, ...] = tuple(BOUNDARY_ERRORS)
CLOUD_BOUNDARIES: tuple[str, ...] = tuple(
    b for b in ALL_BOUNDARIES if b.startswith("cloud."))


class FaultKind(enum.Enum):
    TRANSIENT = "transient"
    PERMANENT = "permanent"
    SLOW = "slow"
    CORRUPT = "corrupt-payload"


@dataclass
class FaultSpec:
    """One fault: where, what, and how often it fires."""

    boundary: str  # exact boundary name, or an fnmatch pattern ("cloud.*")
    kind: FaultKind
    #: Invocations the fault fires on (ignored for PERMANENT: always).
    times: int = 1
    #: Virtual latency added by SLOW faults.
    delay_s: float = 30.0
    message: str = ""

    def matches(self, boundary: str) -> bool:
        return fnmatch.fnmatchcase(boundary, self.boundary)

    def to_dict(self) -> dict:
        return {"boundary": self.boundary, "kind": self.kind.value,
                "times": self.times, "delay_s": self.delay_s}


class FaultPlan:
    """A seeded set of faults plus the injection bookkeeping."""

    def __init__(self, specs: Iterator[FaultSpec] | list[FaultSpec] = (),
                 seed: int = 0):
        self.specs = list(specs)
        self.seed = seed
        self._rng = random.Random(
            seed * 0x1_0000_0000 + zlib.crc32(b"fault-payload"))
        self._remaining = [spec.times for spec in self.specs]
        #: (boundary, kind-value) -> injection count.
        self.injected: Counter[tuple[str, str]] = Counter()

    # -- the hooks run_boundary calls --------------------------------------

    def on_attempt(self, boundary: str, clock: VirtualClock) -> None:
        """Fire SLOW / TRANSIENT / PERMANENT faults for one attempt."""
        for index, spec in enumerate(self.specs):
            if not spec.matches(boundary):
                continue
            if spec.kind is FaultKind.SLOW and self._remaining[index] > 0:
                self._remaining[index] -= 1
                self._record(boundary, spec)
                clock.sleep(spec.delay_s)
            elif spec.kind is FaultKind.TRANSIENT and \
                    self._remaining[index] > 0:
                self._remaining[index] -= 1
                self._record(boundary, spec)
                raise TransientError(
                    spec.message or
                    f"injected transient fault at {boundary}")
            elif spec.kind is FaultKind.PERMANENT:
                self._record(boundary, spec)
                exc_type = BOUNDARY_ERRORS.get(boundary, CondorError)
                raise exc_type(
                    spec.message or
                    f"injected permanent fault at {boundary}")

    def corrupt(self, boundary: str, payload: bytes) -> bytes:
        """Apply any armed CORRUPT fault to a payload in transit."""
        for index, spec in enumerate(self.specs):
            if spec.kind is not FaultKind.CORRUPT or \
                    not spec.matches(boundary) or \
                    self._remaining[index] <= 0 or not payload:
                continue
            self._remaining[index] -= 1
            self._record(boundary, spec)
            mutated = bytearray(payload)
            flips = max(1, len(mutated) // 4096)
            for pos in self._rng.sample(range(len(mutated)),
                                        min(flips, len(mutated))):
                mutated[pos] ^= 0xFF
            return bytes(mutated)
        return payload

    def _record(self, boundary: str, spec: FaultSpec) -> None:
        self.injected[(boundary, spec.kind.value)] += 1
        _INJECTED.inc(boundary=boundary, kind=spec.kind.value)
        _log.info("fault injected at %s: %s", boundary, spec.kind.value)

    # -- reporting ----------------------------------------------------------

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def stats(self) -> dict:
        by_kind: Counter[str] = Counter()
        by_boundary: Counter[str] = Counter()
        for (boundary, kind), count in self.injected.items():
            by_kind[kind] += count
            by_boundary[boundary] += count
        return {
            "seed": self.seed,
            "specs": [spec.to_dict() for spec in self.specs],
            "injected_total": self.total_injected,
            "injected_by_kind": dict(sorted(by_kind.items())),
            "injected_by_boundary": dict(sorted(by_boundary.items())),
        }

    # -- generation ----------------------------------------------------------

    @classmethod
    def random(cls, seed: int,
               boundaries: tuple[str, ...] = ALL_BOUNDARIES, *,
               max_transient: int = 2,
               allow_permanent: bool = True) -> "FaultPlan":
        """A seeded chaos plan (what ``condor chaos`` runs).

        Transient/slow/corrupt faults land anywhere; permanent faults
        are confined to cloud boundaries, where the flow degrades to a
        partial run instead of dying.  ``max_transient`` stays below the
        default retry budget so transient weather remains survivable.
        """
        rng = random.Random(
            seed * 0x1_0000_0000 + zlib.crc32(b"fault-plan"))
        specs: list[FaultSpec] = []
        for boundary in boundaries:
            roll = rng.random()
            if roll < 0.45:
                specs.append(FaultSpec(
                    boundary, FaultKind.TRANSIENT,
                    times=rng.randint(1, max(1, max_transient))))
            elif roll < 0.60:
                specs.append(FaultSpec(
                    boundary, FaultKind.SLOW,
                    delay_s=round(rng.uniform(5.0, 45.0), 1)))
            if boundary == "cloud.upload" and rng.random() < 0.35:
                specs.append(FaultSpec(boundary, FaultKind.CORRUPT))
        cloud = [b for b in boundaries if b in CLOUD_BOUNDARIES]
        if allow_permanent and cloud and rng.random() < 0.3:
            specs.append(FaultSpec(rng.choice(cloud),
                                   FaultKind.PERMANENT))
        return cls(specs, seed=seed)


_active_plan: contextvars.ContextVar[FaultPlan | None] = \
    contextvars.ContextVar("repro_resilience_fault_plan", default=None)


def active_plan() -> FaultPlan | None:
    """The fault plan installed by ``inject_faults``, if any."""
    return _active_plan.get()


@contextlib.contextmanager
def _activate(plan: FaultPlan) -> Iterator[FaultPlan]:
    token = _active_plan.set(plan)
    try:
        yield plan
    finally:
        _active_plan.reset(token)
