"""Seeded fault injection for chaos testing.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries that fire at
the named retryable boundaries (the *same* boundaries production code
runs through — see :mod:`repro.resilience.boundary`), so chaos runs
exercise the exact retry / breaker / degradation paths a real
infrastructure outage would:

``transient``
    raises :class:`~repro.errors.TransientError` for the first ``times``
    invocations of the boundary, then clears — survivable via retry;
``permanent``
    raises the boundary's native error type (``AFIError`` for the AFI
    service, ``HLSError`` for csynth, ...) on every invocation — the
    kind of failure retry cannot fix;
``slow``
    advances the virtual clock by ``delay_s`` before the call — latency
    weather that exercises breaker recovery windows;
``corrupt-payload``
    deterministically flips bytes in the payload a boundary transfers
    (S3 upload) for ``times`` invocations — caught by the upload
    integrity check and survivable via retry.

A second family of *device-level* kinds fires at the run-path
boundaries (``device.<instance>.slot<k>``, the simulated FPGA cards in
:mod:`repro.runtime.opencl`) instead of the build-path ones:

``seu-bitflip``
    flips bits in the loaded weight buffer of a programmed slot —
    *silent* corruption, caught only by the fleet's scrubbing;
``slot-crash``
    kills the card mid-invocation (``DeviceLostError``); the device
    stays dead until an AFI re-load reprograms it;
``kernel-hang``
    the kernel never returns — modeled as the invocation consuming
    ``delay_s`` of virtual time so the fleet watchdog trips;
``slow-device``
    like a hang but survivable latency weather (smaller ``delay_s``).

``permanent`` at a device boundary means a dead card every attempt —
re-loads do not revive it (whole-instance loss).

Everything is driven by a seeded RNG and per-spec counters, so a plan
with a fixed seed replays the exact same fault sequence.  A plan is
*stateful*: build a fresh one per run.
"""

from __future__ import annotations

import contextlib
import contextvars
import enum
import fnmatch
import random
import zlib
from collections import Counter
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.errors import (
    AFIError,
    CondorError,
    DeviceLostError,
    HLSError,
    LinkError,
    PackagingError,
    S3Error,
    TransientError,
)
from repro.obs import REGISTRY
from repro.resilience.clock import VirtualClock
from repro.util.logging import get_logger

__all__ = [
    "ALL_BOUNDARIES",
    "CLOUD_BOUNDARIES",
    "DEVICE_FAULT_KINDS",
    "DEVICE_PATTERN",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "active_plan",
]

_log = get_logger("resilience.faults")

_INJECTED = REGISTRY.counter(
    "condor_resilience_faults_injected_total",
    "Faults injected into boundaries, by boundary and kind")

#: Native error type per boundary — what a *permanent* fault raises, so
#: the caller sees exactly what the real subsystem would throw.
BOUNDARY_ERRORS: dict[str, type[CondorError]] = {
    "cloud.upload": S3Error,
    "cloud.create-fpga-image": AFIError,
    "cloud.wait-for-afi": AFIError,
    "toolchain.hls-csynth": HLSError,
    "toolchain.xocc-link": LinkError,
    "toolchain.package-xo": PackagingError,
}

ALL_BOUNDARIES: tuple[str, ...] = tuple(BOUNDARY_ERRORS)
CLOUD_BOUNDARIES: tuple[str, ...] = tuple(
    b for b in ALL_BOUNDARIES if b.startswith("cloud."))


class FaultKind(enum.Enum):
    TRANSIENT = "transient"
    PERMANENT = "permanent"
    SLOW = "slow"
    CORRUPT = "corrupt-payload"
    # device-level kinds (fire at device.* boundaries only)
    BITFLIP = "seu-bitflip"
    SLOT_CRASH = "slot-crash"
    KERNEL_HANG = "kernel-hang"
    SLOW_DEVICE = "slow-device"


#: Kinds that fire at the run-path ``device.*`` boundaries (plus
#: PERMANENT, which means a dead card there); :meth:`FaultPlan.on_attempt`
#: ignores these, :meth:`FaultPlan.on_device_attempt` ignores the rest.
DEVICE_FAULT_KINDS: frozenset[FaultKind] = frozenset({
    FaultKind.BITFLIP,
    FaultKind.SLOT_CRASH,
    FaultKind.KERNEL_HANG,
    FaultKind.SLOW_DEVICE,
})

#: The fnmatch pattern covering every simulated FPGA slot.
DEVICE_PATTERN = "device.*"


@dataclass
class FaultSpec:
    """One fault: where, what, and how often it fires."""

    boundary: str  # exact boundary name, or an fnmatch pattern ("cloud.*")
    kind: FaultKind
    #: Invocations the fault fires on (ignored for PERMANENT: always).
    times: int = 1
    #: Virtual latency added by SLOW faults.
    delay_s: float = 30.0
    message: str = ""

    def matches(self, boundary: str) -> bool:
        return fnmatch.fnmatchcase(boundary, self.boundary)

    def to_dict(self) -> dict:
        return {"boundary": self.boundary, "kind": self.kind.value,
                "times": self.times, "delay_s": self.delay_s}


class FaultPlan:
    """A seeded set of faults plus the injection bookkeeping."""

    def __init__(self, specs: Iterator[FaultSpec] | list[FaultSpec] = (),
                 seed: int = 0):
        self.specs = list(specs)
        self.seed = seed
        self._rng = random.Random(
            seed * 0x1_0000_0000 + zlib.crc32(b"fault-payload"))
        self._remaining = [spec.times for spec in self.specs]
        #: (boundary, kind-value) -> injection count.
        self.injected: Counter[tuple[str, str]] = Counter()

    # -- the hooks run_boundary calls --------------------------------------

    def on_attempt(self, boundary: str, clock: VirtualClock) -> None:
        """Fire SLOW / TRANSIENT / PERMANENT faults for one attempt."""
        for index, spec in enumerate(self.specs):
            if spec.kind in DEVICE_FAULT_KINDS or \
                    not spec.matches(boundary):
                continue
            if spec.kind is FaultKind.SLOW and self._remaining[index] > 0:
                self._remaining[index] -= 1
                self._record(boundary, spec)
                clock.sleep(spec.delay_s)
            elif spec.kind is FaultKind.TRANSIENT and \
                    self._remaining[index] > 0:
                self._remaining[index] -= 1
                self._record(boundary, spec)
                raise TransientError(
                    spec.message or
                    f"injected transient fault at {boundary}")
            elif spec.kind is FaultKind.PERMANENT:
                self._record(boundary, spec)
                exc_type = BOUNDARY_ERRORS.get(boundary, CondorError)
                raise exc_type(
                    spec.message or
                    f"injected permanent fault at {boundary}")

    def on_device_attempt(self, boundary: str, clock: VirtualClock, *,
                          device=None) -> None:
        """Fire device-level faults for one kernel invocation.

        ``boundary`` is the slot's fault boundary
        (``device.<instance>.slot<k>``); ``device`` is the
        :class:`~repro.runtime.opencl.SimDevice` being launched on, so
        crash faults can mark the card dead.  A ``PERMANENT`` spec at a
        device boundary means the card dies on *every* attempt — AFI
        re-loads revive it only until the next launch.
        """
        for index, spec in enumerate(self.specs):
            if not spec.matches(boundary):
                continue
            if spec.kind is FaultKind.SLOW_DEVICE and \
                    self._remaining[index] > 0:
                self._remaining[index] -= 1
                self._record(boundary, spec)
                clock.sleep(spec.delay_s)
            elif spec.kind is FaultKind.KERNEL_HANG and \
                    self._remaining[index] > 0:
                # a hung kernel never returns: the invocation soaks up
                # delay_s of virtual time, which the fleet watchdog
                # deadline then converts into a WatchdogTimeoutError
                self._remaining[index] -= 1
                self._record(boundary, spec)
                clock.sleep(spec.delay_s)
            elif spec.kind is FaultKind.SLOT_CRASH and \
                    self._remaining[index] > 0:
                self._remaining[index] -= 1
                self._record(boundary, spec)
                if device is not None:
                    device.alive = False
                raise DeviceLostError(
                    spec.message or
                    f"injected slot crash at {boundary}")
            elif spec.kind is FaultKind.PERMANENT:
                self._record(boundary, spec)
                if device is not None:
                    device.alive = False
                raise DeviceLostError(
                    spec.message or
                    f"injected permanent device loss at {boundary}")

    def corrupt_device_weights(self, boundary: str, flat) -> int:
        """Apply any armed SEU fault to a loaded weight buffer in place.

        ``flat`` is the slot's float32 weight array (a
        :class:`~repro.runtime.opencl.Buffer` backing store); random
        bits of random words are flipped through a ``uint32`` view.
        Returns the number of words corrupted — silently: no error is
        raised and no health signal fires, exactly the failure mode the
        fleet's scrubbing exists to catch.
        """
        flipped = 0
        for index, spec in enumerate(self.specs):
            if spec.kind is not FaultKind.BITFLIP or \
                    not spec.matches(boundary) or \
                    self._remaining[index] <= 0 or flat.size == 0:
                continue
            self._remaining[index] -= 1
            self._record(boundary, spec)
            words = flat.view("uint32")
            count = min(max(1, words.size // 1024), 8)
            for pos in self._rng.sample(range(words.size), count):
                words[pos] ^= 1 << self._rng.randrange(31)
            flipped += count
        return flipped

    def corrupt(self, boundary: str, payload: bytes) -> bytes:
        """Apply any armed CORRUPT fault to a payload in transit."""
        for index, spec in enumerate(self.specs):
            if spec.kind is not FaultKind.CORRUPT or \
                    not spec.matches(boundary) or \
                    self._remaining[index] <= 0 or not payload:
                continue
            self._remaining[index] -= 1
            self._record(boundary, spec)
            mutated = bytearray(payload)
            flips = max(1, len(mutated) // 4096)
            for pos in self._rng.sample(range(len(mutated)),
                                        min(flips, len(mutated))):
                mutated[pos] ^= 0xFF
            return bytes(mutated)
        return payload

    def _record(self, boundary: str, spec: FaultSpec) -> None:
        self.injected[(boundary, spec.kind.value)] += 1
        _INJECTED.inc(boundary=boundary, kind=spec.kind.value)
        _log.info("fault injected at %s: %s", boundary, spec.kind.value)

    # -- reporting ----------------------------------------------------------

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def stats(self) -> dict:
        by_kind: Counter[str] = Counter()
        by_boundary: Counter[str] = Counter()
        for (boundary, kind), count in self.injected.items():
            by_kind[kind] += count
            by_boundary[boundary] += count
        return {
            "seed": self.seed,
            "specs": [spec.to_dict() for spec in self.specs],
            "injected_total": self.total_injected,
            "injected_by_kind": dict(sorted(by_kind.items())),
            "injected_by_boundary": dict(sorted(by_boundary.items())),
        }

    # -- generation ----------------------------------------------------------

    @classmethod
    def random(cls, seed: int,
               boundaries: tuple[str, ...] = ALL_BOUNDARIES, *,
               max_transient: int = 2,
               allow_permanent: bool = True,
               include_devices: bool = False) -> "FaultPlan":
        """A seeded chaos plan (what ``condor chaos`` runs).

        Transient/slow/corrupt faults land anywhere; permanent faults
        are confined to cloud boundaries, where the flow degrades to a
        partial run instead of dying.  ``max_transient`` stays below the
        default retry budget so transient weather remains survivable.
        ``include_devices`` adds run-path weather over the FPGA slots
        (``device.*``): recoverable SEU bit-flips, crashes, hangs and
        slowdowns — never a permanent device loss, so a healthy fleet
        must always fully recover.
        """
        rng = random.Random(
            seed * 0x1_0000_0000 + zlib.crc32(b"fault-plan"))
        specs: list[FaultSpec] = []
        for boundary in boundaries:
            roll = rng.random()
            if roll < 0.45:
                specs.append(FaultSpec(
                    boundary, FaultKind.TRANSIENT,
                    times=rng.randint(1, max(1, max_transient))))
            elif roll < 0.60:
                specs.append(FaultSpec(
                    boundary, FaultKind.SLOW,
                    delay_s=round(rng.uniform(5.0, 45.0), 1)))
            if boundary == "cloud.upload" and rng.random() < 0.35:
                specs.append(FaultSpec(boundary, FaultKind.CORRUPT))
        cloud = [b for b in boundaries if b in CLOUD_BOUNDARIES]
        if allow_permanent and cloud and rng.random() < 0.3:
            specs.append(FaultSpec(rng.choice(cloud),
                                   FaultKind.PERMANENT))
        if include_devices:
            if rng.random() < 0.5:
                specs.append(FaultSpec(DEVICE_PATTERN, FaultKind.BITFLIP))
            if rng.random() < 0.35:
                specs.append(FaultSpec(
                    DEVICE_PATTERN, FaultKind.KERNEL_HANG,
                    delay_s=round(rng.uniform(300.0, 900.0), 1)))
            if rng.random() < 0.5:
                specs.append(FaultSpec(
                    DEVICE_PATTERN, FaultKind.SLOW_DEVICE,
                    times=rng.randint(1, 2),
                    delay_s=round(rng.uniform(15.0, 50.0), 1)))
            if rng.random() < 0.35:
                specs.append(FaultSpec(DEVICE_PATTERN,
                                       FaultKind.SLOT_CRASH))
        return cls(specs, seed=seed)


_active_plan: contextvars.ContextVar[FaultPlan | None] = \
    contextvars.ContextVar("repro_resilience_fault_plan", default=None)


def active_plan() -> FaultPlan | None:
    """The fault plan installed by ``inject_faults``, if any."""
    return _active_plan.get()


@contextlib.contextmanager
def _activate(plan: FaultPlan) -> Iterator[FaultPlan]:
    token = _active_plan.set(plan)
    try:
        yield plan
    finally:
        _active_plan.reset(token)
