"""The injectable clock every resilience primitive runs on.

Retry backoff, circuit-breaker recovery windows and injected *slow*
faults all need a notion of elapsed time — but a reproduction that
``time.sleep``-s is both slow and nondeterministic (the ``wallclock-sleep``
lint rule bans it from ``src/repro`` outright).  Instead, everything takes
a :class:`VirtualClock`: ``sleep`` *advances* the clock and records the
interval, so a chaos run that "waits" through three exponential backoffs
finishes in microseconds of real time while the simulated timeline stays
exact and replayable.
"""

from __future__ import annotations

__all__ = ["VirtualClock", "DEFAULT_CLOCK"]


class VirtualClock:
    """Deterministic simulated time: ``sleep`` advances ``now``."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        #: Every interval slept, in order (diagnostics / tests).
        self.sleeps: list[float] = []

    @property
    def now(self) -> float:
        """The current simulated time in seconds."""
        return self._now

    def sleep(self, seconds: float) -> None:
        """Advance simulated time (no real sleeping happens)."""
        if seconds < 0:
            raise ValueError(f"cannot sleep {seconds!r} seconds")
        self._now += seconds
        self.sleeps.append(seconds)

    @property
    def total_slept(self) -> float:
        return sum(self.sleeps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.3f}, sleeps={len(self.sleeps)})"


#: The process-wide default timeline.  Boundaries that are not handed an
#: explicit clock share this one, so backoff waits and breaker recovery
#: windows interact on a single consistent timeline.
DEFAULT_CLOCK = VirtualClock()
