"""Circuit breaker: stop hammering a boundary that keeps failing.

Classic three-state machine (closed → open → half-open) over the
injectable virtual clock.  The breaker only counts *transient* failures
— deterministic design errors (a kernel that genuinely does not fit) are
not weather and must not poison the boundary for later, unrelated calls.
"""

from __future__ import annotations

from repro.errors import CircuitOpenError
from repro.obs import REGISTRY
from repro.resilience.clock import DEFAULT_CLOCK, VirtualClock
from repro.util.logging import get_logger

__all__ = ["CircuitBreaker"]

_log = get_logger("resilience.breaker")

_OPENED = REGISTRY.counter(
    "condor_resilience_breaker_opened_total",
    "Circuit breakers tripped open, by boundary")
_REJECTED = REGISTRY.counter(
    "condor_resilience_breaker_rejected_total",
    "Calls rejected by an open circuit breaker, by boundary")

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Breaker for one named boundary.

    After ``failure_threshold`` consecutive failures the circuit opens
    and :meth:`allow` raises :class:`~repro.errors.CircuitOpenError`
    until ``recovery_s`` has elapsed on ``clock``; the next call is then
    admitted as a half-open probe — success recloses the circuit, failure
    reopens it for another recovery window.
    """

    def __init__(self, boundary: str, *, failure_threshold: int = 5,
                 recovery_s: float = 60.0,
                 clock: VirtualClock | None = None):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.boundary = boundary
        self.failure_threshold = failure_threshold
        self.recovery_s = recovery_s
        self.clock = clock if clock is not None else DEFAULT_CLOCK
        self._failures = 0
        self._state = CLOSED
        self._opened_at = 0.0
        self._opened_count = 0

    @property
    def state(self) -> str:
        """Current state, accounting for an elapsed recovery window."""
        if self._state == OPEN and \
                self.clock.now - self._opened_at >= self.recovery_s:
            return HALF_OPEN
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._failures

    @property
    def opened_count(self) -> int:
        """Times this breaker has tripped closed/half-open -> open."""
        return self._opened_count

    def allow(self) -> None:
        """Admit or reject the next call (raises when open)."""
        state = self.state
        if state == OPEN:
            _REJECTED.inc(boundary=self.boundary)
            remaining = self.recovery_s - (self.clock.now - self._opened_at)
            raise CircuitOpenError(
                self.boundary,
                f"{self._failures} consecutive failures; retry in"
                f" {max(remaining, 0.0):.1f}s (virtual)")
        if state == HALF_OPEN:
            # admit exactly one probe: materialize the half-open state so
            # a probe failure reopens with a fresh recovery window
            self._state = HALF_OPEN

    def record_success(self) -> None:
        if self._state != CLOSED:
            _log.info("breaker %s: probe succeeded, closing",
                      self.boundary)
        self._failures = 0
        self._state = CLOSED

    def record_failure(self) -> None:
        self._failures += 1
        if self._state == HALF_OPEN or \
                self._failures >= self.failure_threshold:
            if self._state != OPEN:
                self._opened_count += 1
                _OPENED.inc(boundary=self.boundary)
                _log.warning(
                    "breaker %s: open after %d consecutive failure(s)",
                    self.boundary, self._failures)
            self._state = OPEN
            self._opened_at = self.clock.now

    def reset(self) -> None:
        self._failures = 0
        self._state = CLOSED
        self._opened_at = 0.0
