"""Retry with exponential backoff and deterministic, seeded jitter.

A :class:`RetryPolicy` is a *value*: given the same seed and boundary
name it always produces the same backoff schedule, so a chaos run is
bit-replayable.  Sleeping happens on an injectable
:class:`~repro.resilience.clock.VirtualClock` — never the wall clock.

Only :class:`~repro.errors.TransientError` (or exceptions flagged with a
truthy ``transient`` attribute) are retried: the simulated toolchain and
cloud are deterministic, so a typed design error (``LinkError`` from a
resource check, ``HLSError`` from a bad pragma) will fail identically on
every attempt and must surface immediately.
"""

from __future__ import annotations

import random
import zlib
from collections.abc import Callable, Iterator
from dataclasses import dataclass
from typing import Any

from repro.errors import TransientError
from repro.obs import REGISTRY
from repro.resilience.clock import DEFAULT_CLOCK, VirtualClock
from repro.util.logging import get_logger

__all__ = ["RetryPolicy", "is_transient"]

_log = get_logger("resilience.retry")

_RETRIES = REGISTRY.counter(
    "condor_resilience_retries_total",
    "Attempts re-run after a transient failure, by boundary")
_GIVEUPS = REGISTRY.counter(
    "condor_resilience_giveups_total",
    "Retry loops that exhausted their attempts, by boundary")


def is_transient(exc: BaseException) -> bool:
    """The default retryability classifier."""
    return isinstance(exc, TransientError) or \
        bool(getattr(exc, "transient", False))


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff: ``base_delay_s * multiplier**n``, capped at
    ``max_delay_s``, with ±``jitter`` relative spread drawn from a RNG
    seeded by ``(seed, boundary)`` — deterministic, but decorrelated
    across boundaries."""

    max_attempts: int = 3
    base_delay_s: float = 1.0
    multiplier: float = 2.0
    max_delay_s: float = 60.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def _rng(self, boundary: str) -> random.Random:
        return random.Random(
            self.seed * 0x1_0000_0000 + zlib.crc32(boundary.encode()))

    def delays(self, boundary: str = "") -> Iterator[float]:
        """The (infinite) backoff schedule for one boundary."""
        rng = self._rng(boundary)
        attempt = 0
        while True:
            base = min(self.max_delay_s,
                       self.base_delay_s * self.multiplier ** attempt)
            spread = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            yield base * spread
            attempt += 1

    def call(self, fn: Callable[[], Any], *, boundary: str = "",
             clock: VirtualClock | None = None,
             retryable: Callable[[BaseException], bool] = is_transient,
             on_retry: Callable[[int, BaseException], None] | None = None) \
            -> Any:
        """Run ``fn`` under this policy.

        Transient failures are retried up to ``max_attempts`` total
        attempts, sleeping the backoff schedule on ``clock`` between
        attempts.  The final failure is re-raised *unchanged*, so callers
        keep the typed ``repro.errors`` hierarchy.
        """
        clock = clock if clock is not None else DEFAULT_CLOCK
        delays = self.delays(boundary)
        attempt = 1
        while True:
            try:
                return fn()
            except Exception as exc:
                if not retryable(exc) or attempt >= self.max_attempts:
                    if retryable(exc):
                        _GIVEUPS.inc(boundary=boundary or "-")
                        _log.warning(
                            "boundary %s: giving up after %d attempt(s):"
                            " %s", boundary or "-", attempt, exc)
                    raise
                delay = next(delays)
                _RETRIES.inc(boundary=boundary or "-")
                if on_retry is not None:
                    on_retry(attempt, exc)
                _log.info(
                    "boundary %s: attempt %d/%d failed (%s); retrying"
                    " after %.2fs (virtual)", boundary or "-", attempt,
                    self.max_attempts, exc, delay)
                clock.sleep(delay)
                attempt += 1


#: The stock policy applied at toolchain/cloud boundaries when none is
#: configured explicitly.
DEFAULT_POLICY = RetryPolicy()
