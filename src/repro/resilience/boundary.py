"""The retryable-boundary harness.

Every flaky edge of the flow — the S3 upload, ``create-fpga-image``,
the ``describe-fpga-images`` poll loop, HLS csynth, ``xocc`` link and
``.xo`` packaging — funnels through :func:`run_boundary`, which stacks
(outermost first):

1. a per-boundary :class:`~repro.resilience.breaker.CircuitBreaker`
   (open circuit → reject immediately),
2. the active :class:`~repro.resilience.faults.FaultPlan` hook (chaos
   faults fire here, *inside* the retry loop, so injection exercises the
   production retry path),
3. a :class:`~repro.resilience.retry.RetryPolicy` around the attempt.

:func:`inject_faults` installs a plan for a dynamic extent and swaps in
a fresh breaker realm, so chaos runs never poison the process-wide
breakers (and vice versa).
"""

from __future__ import annotations

import contextlib
import contextvars
from collections import Counter
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from typing import Any

from repro.errors import CircuitOpenError
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.clock import VirtualClock
from repro.resilience.faults import FaultPlan, _activate, active_plan
from repro.resilience.retry import DEFAULT_POLICY, RetryPolicy, is_transient
from repro.util.sync import new_lock

__all__ = [
    "BoundaryStats",
    "breaker_for",
    "breaker_states",
    "collecting_stats",
    "current_stats",
    "inject_faults",
    "reset_breakers",
    "run_boundary",
]

#: The process-wide breaker realm (boundary name -> breaker).
_BREAKERS: dict[str, CircuitBreaker] = {}
#: Guards realm membership (get-or-create, reset, the chaos swap) — a
#: serving fleet drives boundaries from many threads at once.
_BREAKERS_LOCK = new_lock("resilience.boundary.breakers")


def breaker_for(boundary: str, *,
                clock: VirtualClock | None = None,
                failure_threshold: int | None = None,
                recovery_s: float | None = None) -> CircuitBreaker:
    """The realm's breaker for a boundary (created on first use).

    ``failure_threshold`` / ``recovery_s`` apply only when this call
    creates the breaker — an existing breaker keeps its configuration
    (callers sharing a boundary must agree on it, and the fleet's slot
    boundaries have exactly one creator each).
    """
    with _BREAKERS_LOCK:
        breaker = _BREAKERS.get(boundary)
        if breaker is None:
            kwargs: dict = {}
            if failure_threshold is not None:
                kwargs["failure_threshold"] = failure_threshold
            if recovery_s is not None:
                kwargs["recovery_s"] = recovery_s
            breaker = _BREAKERS[boundary] = \
                CircuitBreaker(boundary, clock=clock, **kwargs)
        return breaker


def reset_breakers() -> None:
    """Drop every breaker in the current realm (tests / fresh runs)."""
    with _BREAKERS_LOCK:
        _BREAKERS.clear()


def breaker_states() -> dict[str, dict]:
    """Snapshot of every breaker in the current realm, by boundary.

    The manifest records this so a post-mortem can tell *which* edge
    tripped and how often, not just the per-run rejection counters.
    """
    with _BREAKERS_LOCK:
        realm = sorted(_BREAKERS.items())
    return {
        name: {
            "state": b.state,
            "opened_count": b.opened_count,
            "consecutive_failures": b.consecutive_failures,
        }
        for name, b in realm
    }


@dataclass
class BoundaryStats:
    """Per-run resilience accounting (collected via contextvar)."""

    retries: Counter = field(default_factory=Counter)
    giveups: Counter = field(default_factory=Counter)
    breaker_rejections: Counter = field(default_factory=Counter)
    calls: Counter = field(default_factory=Counter)

    @property
    def total_retries(self) -> int:
        return sum(self.retries.values())

    def to_dict(self) -> dict:
        return {
            "calls": dict(sorted(self.calls.items())),
            "retries": dict(sorted(self.retries.items())),
            "giveups": dict(sorted(self.giveups.items())),
            "breaker_rejections":
                dict(sorted(self.breaker_rejections.items())),
        }

    @property
    def any_activity(self) -> bool:
        return bool(self.retries or self.giveups
                    or self.breaker_rejections)


_stats: contextvars.ContextVar[BoundaryStats | None] = \
    contextvars.ContextVar("repro_resilience_stats", default=None)


def current_stats() -> BoundaryStats | None:
    return _stats.get()


@contextlib.contextmanager
def collecting_stats(stats: BoundaryStats | None = None) \
        -> Iterator[BoundaryStats]:
    """Collect boundary accounting for the dynamic extent."""
    collected = stats if stats is not None else BoundaryStats()
    token = _stats.set(collected)
    try:
        yield collected
    finally:
        _stats.reset(token)


@contextlib.contextmanager
def inject_faults(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Arm a fault plan for the dynamic extent.

    The breaker realm is swapped for a fresh one while the plan is
    active: injected failures must not leave production breakers open,
    and pre-existing breaker state must not skew a seeded chaos run.
    """
    global _BREAKERS
    with _BREAKERS_LOCK:
        saved = _BREAKERS
        _BREAKERS = {}
    try:
        with _activate(plan):
            yield plan
    finally:
        with _BREAKERS_LOCK:
            _BREAKERS = saved


def run_boundary(boundary: str, fn: Callable[[], Any], *,
                 policy: RetryPolicy | None = None,
                 breaker: CircuitBreaker | None = None,
                 clock: VirtualClock | None = None) -> Any:
    """Run one boundary call under breaker + fault hook + retry."""
    policy = policy if policy is not None else DEFAULT_POLICY
    breaker = breaker if breaker is not None \
        else breaker_for(boundary, clock=clock)
    clock = clock if clock is not None else breaker.clock
    stats = _stats.get()
    if stats is not None:
        stats.calls[boundary] += 1

    def attempt() -> Any:
        try:
            breaker.allow()
        except CircuitOpenError:
            if stats is not None:
                stats.breaker_rejections[boundary] += 1
            raise
        plan = active_plan()
        try:
            if plan is not None:
                plan.on_attempt(boundary, clock)
            result = fn()
        except Exception as exc:
            if is_transient(exc):
                breaker.record_failure()
            raise
        breaker.record_success()
        return result

    def on_retry(attempt_no: int, exc: BaseException) -> None:
        if stats is not None:
            stats.retries[boundary] += 1

    try:
        return policy.call(attempt, boundary=boundary, clock=clock,
                           on_retry=on_retry)
    except Exception as exc:
        if stats is not None and is_transient(exc):
            stats.giveups[boundary] += 1
        raise
