"""Shape-specialized execution plans for the reference engine.

Steady-state serving (the AFI's whole reason to exist) runs the *same*
layer shapes millions of times, yet the stride-trick kernels in
:mod:`repro.nn.functional` re-derive im2col geometry, padding and weight
layout on every call.  Following the sejits_caffe idea — lazily
specialize each kernel per (shape, dtype) configuration and cache the
compiled result — this module compiles each layer once into an
:class:`ExecutionPlan`:

* a flat gather-index map (:func:`~repro.nn.functional.im2col_index_map`
  / :func:`~repro.nn.functional.pool_index_map`) shared by the single
  and batched paths;
* pre-packed weight matrices and pre-broadcast bias columns;
* pre-allocated padded-input / patch-matrix / output scratch buffers;
* a fused conv+bias+ReLU step list replayed with in-place kernels.

Replay is **bit-identical** to the unplanned kernels: gathers move the
same values into the same logical order, the GEMMs see the same 2-D
operands, and max is an exact (order-independent) reduction.  Average
pooling is the one windowed kernel whose accumulation order *would*
change under a gathered copy (``mean`` pairs partial sums differently on
contiguous data than on a strided view), so avg-pool plans replay the
stride-trick kernel unchanged.

:class:`PlanCache` is a bounded LRU keyed by (weight-store token,
per-layer weight version, layer config, input shape, dtype).  Mutating a
layer's blobs through :meth:`~repro.frontend.weights.WeightStore.set`
bumps its version, so stale plans can never be replayed; they age out of
the LRU.  ``REPRO_NO_PLAN_CACHE=1`` disables planning engine-wide (the
escape hatch the equivalence tests exercise), and
``REPRO_PLAN_CACHE_SIZE`` overrides the default LRU capacity.

Plans are safe to replay from multiple threads at once: the compiled
geometry (index maps, packed weights, bias columns) is immutable and
shared, while the mutable scratch buffers live in per-thread storage
(:class:`_PerThread`), allocated lazily on each thread's first replay.
Engines on different threads may therefore share one :class:`PlanCache`
— including the process-wide :func:`default_plan_cache` — at the cost
of one scratch set per (plan, thread) pair.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.errors import ShapeError
from repro.ir.layers import (
    Activation,
    ActivationLayer,
    ConvLayer,
    FlattenLayer,
    FullyConnectedLayer,
    InputLayer,
    Layer,
    PoolLayer,
    PoolOp,
    SoftmaxLayer,
)
from repro.nn import functional as F
from repro.obs import REGISTRY, span
from repro.util.sync import new_lock, new_rlock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.frontend.weights import WeightStore

__all__ = [
    "DISABLE_ENV",
    "SIZE_ENV",
    "ExecutionPlan",
    "PlanCache",
    "compile_plan",
    "default_plan_cache",
    "plans_disabled",
]

DISABLE_ENV = "REPRO_NO_PLAN_CACHE"
SIZE_ENV = "REPRO_PLAN_CACHE_SIZE"
DEFAULT_CAPACITY = 256

#: Distinct batch sizes a plan keeps scratch for (serving traffic runs a
#: few stable batch sizes; anything beyond rotates out LRU-style).
MAX_BATCH_VARIANTS = 4

PLAN_HITS = REGISTRY.counter(
    "condor_plan_cache_hits_total",
    "Execution-plan cache hits (plan replayed without recompiling)")
PLAN_MISSES = REGISTRY.counter(
    "condor_plan_cache_misses_total",
    "Execution-plan cache misses (a plan had to be compiled)")
PLAN_COMPILES = REGISTRY.counter(
    "condor_plan_compiles_total",
    "Execution plans compiled, by layer kind")
PLAN_EVICTIONS = REGISTRY.counter(
    "condor_plan_cache_evictions_total",
    "Execution plans evicted by the LRU capacity bound")
PLAN_INVALIDATIONS = REGISTRY.counter(
    "condor_plan_cache_invalidations_total",
    "Execution plans dropped by explicit invalidation")
PLAN_ENTRIES = REGISTRY.gauge(
    "condor_plan_cache_entries",
    "Execution plans currently cached (all caches in the process)")
PLAN_COMPILE_SECONDS = REGISTRY.histogram(
    "condor_plan_compile_seconds",
    "Wall seconds spent compiling execution plans")


def plans_disabled() -> bool:
    """True when ``REPRO_NO_PLAN_CACHE=1`` (the escape hatch)."""
    return os.environ.get(DISABLE_ENV, "") == "1"


def _env_capacity() -> int:
    raw = os.environ.get(SIZE_ENV, "")
    if not raw:
        return DEFAULT_CAPACITY
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_CAPACITY
    return value if value >= 1 else DEFAULT_CAPACITY


# -- plan objects -------------------------------------------------------------


class ExecutionPlan:
    """One compiled layer: precomputed geometry + scratch + replay steps.

    ``run`` / ``run_batch`` return arrays that may alias plan-owned
    scratch (``returns_scratch``); the engine copies the final network
    output before handing it to callers.
    """

    kind = "plan"
    returns_scratch = False

    def __init__(self, layer: Layer, in_shape: tuple[int, ...],
                 dtype: np.dtype, steps: tuple[str, ...]):
        self.layer_name = layer.name
        self.in_shape = in_shape
        self.dtype = dtype
        self.steps = steps

    def _check(self, shape: tuple[int, ...], batched: bool) -> None:
        got = shape[1:] if batched else shape
        if got != self.in_shape:
            raise ShapeError(
                f"plan for layer {self.layer_name!r} expects input shape"
                f" {self.in_shape}, got {got}")

    def run(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def run_batch(self, xb: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.layer_name!r},"
                f" in={self.in_shape}, steps={'+'.join(self.steps)})")


class _InputPlan(ExecutionPlan):
    """Shape validation only — the declared network input."""

    kind = "input"

    def __init__(self, layer: InputLayer, in_shape, dtype):
        super().__init__(layer, tuple(layer.shape.as_tuple()), dtype,
                         ("check",))

    def run(self, x):
        self._check(tuple(x.shape), batched=False)
        return x

    def run_batch(self, xb):
        self._check(tuple(xb.shape), batched=True)
        return xb


class _BatchScratch:
    """Per-batch-size scratch buffers, bounded to MAX_BATCH_VARIANTS.

    Always owned by exactly one thread (see :class:`_PerThread`), so the
    LRU bookkeeping needs no lock.
    """

    def __init__(self, make: Callable[[int], tuple]):
        self._make = make
        self._bufs: OrderedDict[int, tuple] = OrderedDict()

    def get(self, n: int) -> tuple:
        bufs = self._bufs.get(n)
        if bufs is None:
            bufs = self._make(n)
            self._bufs[n] = bufs
            while len(self._bufs) > MAX_BATCH_VARIANTS:
                self._bufs.popitem(last=False)
        else:
            self._bufs.move_to_end(n)
        return bufs


class _PerThread:
    """Lazily-built per-thread value (one ``make()`` result per thread).

    Replay scratch is write-hot, so a plan shared through a
    :class:`PlanCache` gives every replaying thread its own buffers;
    everything else on the plan is immutable after compilation.
    """

    __slots__ = ("_make", "_tls")

    def __init__(self, make: Callable[[], object]):
        self._make = make
        self._tls = threading.local()

    def get(self):
        value = getattr(self._tls, "value", None)
        if value is None:
            value = self._tls.value = self._make()
        return value


class _ConvPlan(ExecutionPlan):
    """im2col gather + packed-weight GEMM with fused bias and activation."""

    kind = "conv"
    returns_scratch = True

    def __init__(self, layer: ConvLayer, in_shape, dtype,
                 weights: np.ndarray, bias: np.ndarray | None):
        c, h, w = in_shape
        f = weights.shape[0]
        kh, kw = layer.kernel
        ph, pw = layer.pad
        hp, wp = h + 2 * ph, w + 2 * pw
        oh = (hp - kh) // layer.stride[0] + 1
        ow = (wp - kw) // layer.stride[1] + 1
        out_dtype = np.result_type(dtype, weights.dtype)

        self._index_map = F.im2col_index_map(in_shape, layer.kernel,
                                             layer.stride, layer.pad)
        self._packed = np.ascontiguousarray(
            weights.reshape(f, -1).astype(out_dtype, copy=False))
        self._bias_col = None if bias is None else \
            np.ascontiguousarray(bias[:, None].astype(out_dtype,
                                                      copy=False))
        self._activation = layer.activation
        self._padded_shape = (c, hp, wp)
        self._needs_pad = (ph, pw) != (0, 0)
        if self._needs_pad:
            self._interior = (slice(None), slice(ph, ph + h),
                              slice(pw, pw + w))
        self._out_shape = (f, oh * ow)
        self._out3_shape = (f, oh, ow)
        self._out_dtype = out_dtype
        self._single = _PerThread(self._make_single)
        self._batch = _PerThread(
            lambda: _BatchScratch(self._make_batch))
        steps = ["pad"] if self._needs_pad else []
        steps += ["gather", "gemm"]
        if self._bias_col is not None:
            steps.append("bias")
        if self._activation is not Activation.NONE:
            steps.append(self._activation.value)
        super().__init__(layer, tuple(in_shape), dtype, tuple(steps))

    def _make_single(self) -> tuple:
        pad_buf = pad_flat = None
        if self._needs_pad:
            pad_buf = np.zeros(self._padded_shape, self.dtype)
            pad_flat = pad_buf.reshape(-1)
        cols = np.empty(self._index_map.shape, self.dtype)
        out = np.empty(self._out_shape, self._out_dtype)
        return pad_buf, pad_flat, cols, out, out.reshape(self._out3_shape)

    def _make_batch(self, n: int) -> tuple:
        f, m = self._out_shape
        pad_buf = None
        if self._needs_pad:
            pad_buf = np.zeros((n,) + self._padded_shape, self.dtype)
        cols = np.empty((n,) + self._index_map.shape, self.dtype)
        out = np.empty((n, f, m), self._out_dtype)
        return pad_buf, cols, out, out.reshape((n,) + self._out3_shape)

    def _finish(self, out: np.ndarray) -> np.ndarray:
        if self._activation is Activation.RELU:
            return np.maximum(out, 0.0, out=out)
        if self._activation is Activation.SIGMOID:
            return F.sigmoid(out)
        if self._activation is Activation.TANH:
            return np.tanh(out)
        return out

    def run(self, x):
        self._check(tuple(x.shape), batched=False)
        pad_buf, pad_flat, cols, out, out3d = self._single.get()
        if pad_buf is not None:
            pad_buf[self._interior] = x
            flat = pad_flat
        else:
            flat = x.reshape(-1)
        flat.take(self._index_map, out=cols)
        np.matmul(self._packed, cols, out=out)
        if self._bias_col is not None:
            np.add(out, self._bias_col, out=out)
        return self._finish(out3d)

    def run_batch(self, xb):
        self._check(tuple(xb.shape), batched=True)
        n = xb.shape[0]
        pad_buf, cols, out, out4d = self._batch.get().get(n)
        if pad_buf is not None:
            pad_buf[(slice(None),) + self._interior] = xb
            flat = pad_buf.reshape(n, -1)
        else:
            flat = xb.reshape(n, -1)
        np.take(flat, self._index_map, axis=1, out=cols)
        np.matmul(self._packed, cols, out=out)
        if self._bias_col is not None:
            np.add(out, self._bias_col, out=out)
        return self._finish(out4d)


class _MaxPoolPlan(ExecutionPlan):
    """Transposed window gather + one exact ``maximum.reduce`` pass."""

    kind = "max-pool"
    returns_scratch = True

    def __init__(self, layer: PoolLayer, in_shape, dtype):
        c, h, w = in_shape
        stride = layer.stride
        assert stride is not None
        ph, pw, eh, ew = F.pool_pad_amounts((h, w), layer.kernel, stride,
                                            layer.pad, layer.ceil_mode)
        hp, wp = h + 2 * ph + eh, w + 2 * pw + ew
        self._padded_shape = (c, hp, wp)
        self._index_map = F.pool_index_map(self._padded_shape,
                                           layer.kernel, stride)
        oh = (hp - layer.kernel[0]) // stride[0] + 1
        ow = (wp - layer.kernel[1]) // stride[1] + 1
        self._needs_pad = (hp, wp) != (h, w)
        if self._needs_pad:
            self._interior = (slice(None), slice(ph, ph + h),
                              slice(pw, pw + w))
        self._out_len = c * oh * ow
        self._out3_shape = (c, oh, ow)
        self._single = _PerThread(self._make_single)
        self._batch = _PerThread(
            lambda: _BatchScratch(self._make_batch))
        steps = ["pad"] if self._needs_pad else []
        super().__init__(layer, tuple(in_shape), np.dtype(dtype),
                         tuple(steps + ["gather", "max"]))

    def _make_single(self) -> tuple:
        pad_buf = pad_flat = None
        if self._needs_pad:
            pad_buf = np.full(self._padded_shape, -np.inf, self.dtype)
            pad_flat = pad_buf.reshape(-1)
        gathered = np.empty(self._index_map.shape, self.dtype)
        out = np.empty(self._out_len, self.dtype)
        return (pad_buf, pad_flat, gathered, out,
                out.reshape(self._out3_shape))

    def _make_batch(self, n: int) -> tuple:
        pad_buf = None
        if self._needs_pad:
            pad_buf = np.full((n,) + self._padded_shape, -np.inf,
                              self.dtype)
        gathered = np.empty((n,) + self._index_map.shape, self.dtype)
        out = np.empty((n, self._out_len), self.dtype)
        c, oh, ow = self._out3_shape
        return pad_buf, gathered, out, out.reshape(n, c, oh, ow)

    def run(self, x):
        self._check(tuple(x.shape), batched=False)
        pad_buf, pad_flat, gathered, out, out3d = self._single.get()
        if pad_buf is not None:
            pad_buf[self._interior] = x
            flat = pad_flat
        else:
            flat = x.reshape(-1)
        flat.take(self._index_map, out=gathered)
        np.maximum.reduce(gathered, axis=0, out=out)
        return out3d

    def run_batch(self, xb):
        self._check(tuple(xb.shape), batched=True)
        n = xb.shape[0]
        pad_buf, gathered, out, out4d = self._batch.get().get(n)
        if pad_buf is not None:
            pad_buf[(slice(None),) + self._interior] = xb
            flat = pad_buf.reshape(n, -1)
        else:
            flat = xb.reshape(n, -1)
        np.take(flat, self._index_map, axis=1, out=gathered)
        np.maximum.reduce(gathered, axis=1, out=out)
        return out4d


class _FCPlan(ExecutionPlan):
    """Bound-weight GEMV with fused bias and activation."""

    kind = "fc"
    returns_scratch = True

    def __init__(self, layer: FullyConnectedLayer, in_shape, dtype,
                 weights: np.ndarray, bias: np.ndarray | None):
        k = int(np.prod(in_shape))
        if weights.shape[1] != k:
            raise ShapeError(
                f"fc weights must be (N, {k}), got {weights.shape}")
        f = weights.shape[0]
        out_dtype = np.result_type(dtype, weights.dtype)
        self._weights = np.ascontiguousarray(
            weights.astype(out_dtype, copy=False))
        self._bias = None if bias is None else \
            np.ascontiguousarray(bias.astype(out_dtype, copy=False))
        self._activation = layer.activation
        self._features = f
        self._out_dtype = out_dtype
        self._single = _PerThread(self._make_single)
        self._batch = _PerThread(
            lambda: _BatchScratch(self._make_batch))
        steps = ["gemv"]
        if self._bias is not None:
            steps.append("bias")
        if self._activation is not Activation.NONE:
            steps.append(self._activation.value)
        super().__init__(layer, tuple(in_shape), np.dtype(dtype),
                         tuple(steps))

    def _make_single(self) -> tuple:
        out = np.empty(self._features, self._out_dtype)
        return out, out.reshape(self._features, 1, 1)

    def _make_batch(self, n: int) -> tuple:
        f = self._features
        out = np.empty((n, f, 1), self._out_dtype)
        return out, out.reshape(n, f), out.reshape(n, f, 1, 1)

    def _finish(self, out: np.ndarray) -> np.ndarray:
        if self._activation is Activation.RELU:
            return np.maximum(out, 0.0, out=out)
        if self._activation is Activation.SIGMOID:
            return F.sigmoid(out)
        if self._activation is Activation.TANH:
            return np.tanh(out)
        return out

    def run(self, x):
        self._check(tuple(x.shape), batched=False)
        out, out3d = self._single.get()
        np.matmul(self._weights, x.reshape(-1), out=out)
        if self._bias is not None:
            np.add(out, self._bias, out=out)
        self._finish(out)
        return out3d

    def run_batch(self, xb):
        self._check(tuple(xb.shape), batched=True)
        n = xb.shape[0]
        out3, out2, out4 = self._batch.get().get(n)
        np.matmul(self._weights, xb.reshape(n, -1)[:, :, None], out=out3)
        if self._bias is not None:
            np.add(out2, self._bias, out=out2)
        self._finish(out2)
        return out4


class _FlattenPlan(ExecutionPlan):
    """Pure reshape — a view of the predecessor's output."""

    kind = "flatten"
    returns_scratch = True

    def __init__(self, layer: FlattenLayer, in_shape, dtype):
        super().__init__(layer, tuple(in_shape), np.dtype(dtype),
                         ("reshape",))

    def run(self, x):
        return x.reshape(-1, 1, 1)

    def run_batch(self, xb):
        return xb.reshape(xb.shape[0], -1, 1, 1)


class _OraclePlan(ExecutionPlan):
    """Replays an unplanned kernel with pre-bound arguments.

    Used where precomputation cannot help (point-wise activations,
    softmax) or would break bit-identity (avg pooling: ``mean`` over a
    gathered contiguous copy pairs partial sums differently than over
    the strided window view).
    """

    kind = "oracle"

    def __init__(self, layer: Layer, in_shape, dtype, step: str,
                 fn: Callable[[np.ndarray], np.ndarray],
                 fn_batch: Callable[[np.ndarray], np.ndarray]):
        super().__init__(layer, tuple(in_shape), np.dtype(dtype),
                         (step,))
        self._fn = fn
        self._fn_batch = fn_batch

    def run(self, x):
        return self._fn(x)

    def run_batch(self, xb):
        return self._fn_batch(xb)


# -- compilation --------------------------------------------------------------

_ACTIVATION_FNS = {
    Activation.RELU: F.relu,
    Activation.SIGMOID: F.sigmoid,
    Activation.TANH: F.tanh,
}


def _compile(layer: Layer, in_shape: tuple[int, ...], dtype: np.dtype,
             weights: "WeightStore") -> ExecutionPlan:
    if isinstance(layer, InputLayer):
        return _InputPlan(layer, in_shape, dtype)
    if isinstance(layer, ConvLayer):
        return _ConvPlan(
            layer, in_shape, dtype,
            weights.get(layer.name, "weights"),
            weights.get(layer.name, "bias") if layer.bias else None)
    if isinstance(layer, PoolLayer):
        assert layer.stride is not None
        if layer.op is PoolOp.MAX and np.issubdtype(dtype, np.floating):
            return _MaxPoolPlan(layer, in_shape, dtype)
        pool = F.max_pool2d if layer.op is PoolOp.MAX else F.avg_pool2d
        pool_b = F.max_pool2d_batch if layer.op is PoolOp.MAX \
            else F.avg_pool2d_batch
        kernel, stride, pad = layer.kernel, layer.stride, layer.pad
        ceil = layer.ceil_mode
        return _OraclePlan(
            layer, in_shape, dtype, f"oracle-{layer.op.value}-pool",
            lambda x: pool(x, kernel, stride, pad, ceil_mode=ceil),
            lambda xb: pool_b(xb, kernel, stride, pad, ceil_mode=ceil))
    if isinstance(layer, ActivationLayer):
        fn = _ACTIVATION_FNS[layer.kind]
        return _OraclePlan(layer, in_shape, dtype, layer.kind.value,
                           fn, fn)
    if isinstance(layer, FlattenLayer):
        return _FlattenPlan(layer, in_shape, dtype)
    if isinstance(layer, FullyConnectedLayer):
        return _FCPlan(
            layer, in_shape, dtype,
            weights.get(layer.name, "weights"),
            weights.get(layer.name, "bias") if layer.bias else None)
    if isinstance(layer, SoftmaxLayer):
        if layer.log:
            return _OraclePlan(layer, in_shape, dtype, "log-softmax",
                               F.log_softmax, F.log_softmax_batch)
        return _OraclePlan(layer, in_shape, dtype, "softmax",
                           F.softmax, F.softmax_batch)
    raise TypeError(f"unknown layer type {type(layer).__name__}")


def compile_plan(layer: Layer, in_shape: tuple[int, ...],
                 weights: "WeightStore",
                 dtype: np.dtype | type = np.float32) -> ExecutionPlan:
    """Compile one layer for one (input shape, dtype) configuration."""
    dtype = np.dtype(dtype)
    start = time.perf_counter()
    with span("plan.compile", layer=layer.name, kind=layer.type_name):
        plan = _compile(layer, tuple(in_shape), dtype, weights)
    PLAN_COMPILE_SECONDS.observe(time.perf_counter() - start)
    PLAN_COMPILES.inc(kind=plan.kind)
    return plan


# -- the cache ----------------------------------------------------------------


class PlanCache:
    """Bounded LRU of compiled execution plans.

    Keys are ``(store token, layer weight version, layer, input shape,
    dtype)`` — layers are frozen dataclasses, so the layer itself hashes
    its full configuration (kind, kernel, stride, pad, activation).  The
    weight version makes stale plans unreachable the moment a blob is
    replaced; :meth:`invalidate` additionally drops them eagerly.
    """

    def __init__(self, capacity: int | None = None):
        if capacity is None:
            capacity = _env_capacity()
        if capacity < 1:
            raise ValueError(f"plan cache capacity must be >= 1,"
                             f" got {capacity}")
        self.capacity = capacity
        self._plans: OrderedDict[tuple, ExecutionPlan] = OrderedDict()
        self._lock = new_rlock("nn.plan.PlanCache")
        self._stats = {"hits": 0, "misses": 0, "compiles": 0,
                       "evictions": 0, "invalidations": 0}
        self._compile_seconds = 0.0

    @staticmethod
    def _key(layer: Layer, in_shape: tuple[int, ...],
             store: "WeightStore", dtype: np.dtype) -> tuple:
        return (store.token, store.version_of(layer.name), layer,
                tuple(in_shape), dtype.str)

    def record_hit(self) -> None:
        """Count a replay served without touching the cache dict (the
        engine memoizes resolved plans per layer and version)."""
        with self._lock:
            self._stats["hits"] += 1
        PLAN_HITS.inc()

    def lookup(self, layer: Layer, in_shape: tuple[int, ...],
               store: "WeightStore",
               dtype: np.dtype | type = np.float32) -> ExecutionPlan:
        """Return the cached plan for this configuration, compiling on
        miss and evicting the least recently used entry when full."""
        dtype = np.dtype(dtype)
        key = self._key(layer, in_shape, store, dtype)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self._stats["hits"] += 1
                PLAN_HITS.inc()
                return plan
            self._stats["misses"] += 1
            PLAN_MISSES.inc()
        start = time.perf_counter()
        plan = compile_plan(layer, in_shape, store, dtype)
        elapsed = time.perf_counter() - start
        with self._lock:
            self._stats["compiles"] += 1
            self._compile_seconds += elapsed
            if key not in self._plans:
                self._plans[key] = plan
                PLAN_ENTRIES.inc()
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
                self._stats["evictions"] += 1
                PLAN_EVICTIONS.inc()
                PLAN_ENTRIES.dec()
        return plan

    def invalidate(self, store: "WeightStore | None" = None,
                   layer: str | None = None) -> int:
        """Drop cached plans for ``store`` and/or ``layer`` (both
        ``None`` drops everything).  Returns the number dropped."""
        with self._lock:
            doomed = [
                key for key, plan in self._plans.items()
                if (store is None or key[0] == store.token)
                and (layer is None or plan.layer_name == layer)
            ]
            for key in doomed:
                del self._plans[key]
        if doomed:
            PLAN_INVALIDATIONS.inc(len(doomed))
            PLAN_ENTRIES.dec(len(doomed))
            with self._lock:
                self._stats["invalidations"] += len(doomed)
        return len(doomed)

    def clear(self) -> None:
        self.invalidate()

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def stats(self) -> dict:
        """Counters + current size (the ``plan_stats`` payload)."""
        with self._lock:
            out = dict(self._stats)
            out["entries"] = len(self._plans)
            out["capacity"] = self.capacity
            out["compile_seconds"] = self._compile_seconds
        return out


_DEFAULT_CACHE: PlanCache | None = None
_DEFAULT_LOCK = new_lock("nn.plan.default-cache")


def default_plan_cache() -> PlanCache:
    """The process-wide cache engines share unless given their own.

    Double-checked initialization: the steady-state path is a single
    unlocked read (the cache is published only after ``PlanCache()``
    returns, so a non-None value is always fully constructed), and
    racing first calls serialize on the module lock so exactly one
    instance is ever built.
    """
    global _DEFAULT_CACHE
    cache = _DEFAULT_CACHE
    if cache is not None:
        return cache
    with _DEFAULT_LOCK:
        if _DEFAULT_CACHE is None:
            _DEFAULT_CACHE = PlanCache()
        return _DEFAULT_CACHE
