"""The reference engine: execute an IR network with numpy kernels.

This is the functional oracle for the generated accelerator and the software
baseline for the evaluation harness.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.frontend.weights import WeightStore
from repro.ir.layers import (
    Activation,
    ActivationLayer,
    ConvLayer,
    FlattenLayer,
    FullyConnectedLayer,
    InputLayer,
    Layer,
    PoolLayer,
    PoolOp,
    SoftmaxLayer,
)
from repro.ir.network import Network
from repro.nn import functional as F

_ACTIVATIONS = {
    Activation.RELU: F.relu,
    Activation.SIGMOID: F.sigmoid,
    Activation.TANH: F.tanh,
}


class ReferenceEngine:
    """Forward inference over a network with a weight store."""

    def __init__(self, net: Network, weights: WeightStore):
        weights.validate(net)
        self.net = net
        self.weights = weights

    # -- single-layer dispatch ---------------------------------------------

    def run_layer(self, layer: Layer, x: np.ndarray) -> np.ndarray:
        """Execute one layer on a (C, H, W) activation."""
        if isinstance(layer, InputLayer):
            expected = layer.shape.as_tuple()
            if tuple(x.shape) != expected:
                raise ShapeError(
                    f"input shape {tuple(x.shape)} does not match declared"
                    f" {expected}")
            return x
        if isinstance(layer, ConvLayer):
            out = F.conv2d(
                x,
                self.weights.get(layer.name, "weights"),
                self.weights.get(layer.name, "bias") if layer.bias else None,
                stride=layer.stride,
                pad=layer.pad,
            )
            if layer.activation is not Activation.NONE:
                out = _ACTIVATIONS[layer.activation](out)
            return out
        if isinstance(layer, PoolLayer):
            assert layer.stride is not None
            pool = F.max_pool2d if layer.op is PoolOp.MAX else F.avg_pool2d
            return pool(x, layer.kernel, layer.stride, layer.pad,
                        ceil_mode=layer.ceil_mode)
        if isinstance(layer, ActivationLayer):
            return _ACTIVATIONS[layer.kind](x)
        if isinstance(layer, FlattenLayer):
            return x.reshape(-1, 1, 1)
        if isinstance(layer, FullyConnectedLayer):
            out = F.fully_connected(
                x,
                self.weights.get(layer.name, "weights"),
                self.weights.get(layer.name, "bias") if layer.bias else None,
            )
            if layer.activation is not Activation.NONE:
                out = _ACTIVATIONS[layer.activation](out)
            return out.reshape(-1, 1, 1)
        if isinstance(layer, SoftmaxLayer):
            fn = F.log_softmax if layer.log else F.softmax
            return fn(x)
        raise TypeError(f"unknown layer type {type(layer).__name__}")

    def run_layer_batch(self, layer: Layer, x: np.ndarray) -> np.ndarray:
        """Execute one layer on an (N, C, H, W) batch.

        Bit-identical to mapping :meth:`run_layer` over the batch (see the
        accumulation-order notes in :mod:`repro.nn.functional`).
        """
        if isinstance(layer, InputLayer):
            expected = layer.shape.as_tuple()
            if tuple(x.shape[1:]) != expected:
                raise ShapeError(
                    f"input shape {tuple(x.shape[1:])} does not match"
                    f" declared {expected}")
            return x
        if isinstance(layer, ConvLayer):
            out = F.conv2d_batch(
                x,
                self.weights.get(layer.name, "weights"),
                self.weights.get(layer.name, "bias") if layer.bias else None,
                stride=layer.stride,
                pad=layer.pad,
            )
            if layer.activation is not Activation.NONE:
                out = _ACTIVATIONS[layer.activation](out)
            return out
        if isinstance(layer, PoolLayer):
            assert layer.stride is not None
            pool = F.max_pool2d_batch if layer.op is PoolOp.MAX \
                else F.avg_pool2d_batch
            return pool(x, layer.kernel, layer.stride, layer.pad,
                        ceil_mode=layer.ceil_mode)
        if isinstance(layer, ActivationLayer):
            return _ACTIVATIONS[layer.kind](x)
        if isinstance(layer, FlattenLayer):
            return x.reshape(x.shape[0], -1, 1, 1)
        if isinstance(layer, FullyConnectedLayer):
            out = F.fully_connected_batch(
                x,
                self.weights.get(layer.name, "weights"),
                self.weights.get(layer.name, "bias") if layer.bias else None,
            )
            if layer.activation is not Activation.NONE:
                out = _ACTIVATIONS[layer.activation](out)
            return out.reshape(x.shape[0], -1, 1, 1)
        if isinstance(layer, SoftmaxLayer):
            fn = F.log_softmax_batch if layer.log else F.softmax_batch
            return fn(x)
        raise TypeError(f"unknown layer type {type(layer).__name__}")

    # -- network-level API ----------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run one sample through the whole network."""
        x = np.asarray(x, dtype=np.float32)
        for layer in self.net.layers:
            x = self.run_layer(layer, x)
        return x

    def run_batch(self, batch: np.ndarray) -> np.ndarray:
        """Run an (N, C, H, W) batch through the batched kernels.

        The whole batch moves through each layer at once (one im2col GEMM
        per conv layer, vectorized pool/activation/softmax), which amortizes
        the per-layer dispatch and GEMM setup over the batch; outputs are
        bit-identical to :meth:`forward` of each sample.
        """
        batch = np.asarray(batch, dtype=np.float32)
        if batch.ndim != 4:
            raise ShapeError(
                f"run_batch expects (N, C, H, W), got {batch.shape}")
        for layer in self.net.layers:
            batch = self.run_layer_batch(layer, batch)
        return batch

    def forward_batch(self, batch: np.ndarray) -> np.ndarray:
        """Run an (N, C, H, W) batch (alias of :meth:`run_batch`)."""
        return self.run_batch(batch)

    def predict_batch(self, batch: np.ndarray) -> np.ndarray:
        """Class indices of the most probable outputs, shape ``(N,)``."""
        out = self.run_batch(batch)
        return np.argmax(out.reshape(out.shape[0], -1), axis=1)

    def activations(self, x: np.ndarray) -> dict[str, np.ndarray]:
        """Per-layer output activations for one sample (keyed by name)."""
        x = np.asarray(x, dtype=np.float32)
        outputs: dict[str, np.ndarray] = {}
        for layer in self.net.layers:
            x = self.run_layer(layer, x)
            outputs[layer.name] = x
        return outputs

    def predict(self, x: np.ndarray) -> int:
        """Class index of the most probable output."""
        return int(np.argmax(self.forward(x)))
