"""The reference engine: execute an IR network with numpy kernels.

This is the functional oracle for the generated accelerator and the software
baseline for the evaluation harness.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.frontend.weights import WeightStore
from repro.ir.layers import (
    Activation,
    ActivationLayer,
    ConvLayer,
    FlattenLayer,
    FullyConnectedLayer,
    InputLayer,
    Layer,
    PoolLayer,
    PoolOp,
    SoftmaxLayer,
)
from repro.ir.network import Network
from repro.nn import functional as F

_ACTIVATIONS = {
    Activation.RELU: F.relu,
    Activation.SIGMOID: F.sigmoid,
    Activation.TANH: F.tanh,
}


class ReferenceEngine:
    """Forward inference over a network with a weight store."""

    def __init__(self, net: Network, weights: WeightStore):
        weights.validate(net)
        self.net = net
        self.weights = weights

    # -- single-layer dispatch ---------------------------------------------

    def run_layer(self, layer: Layer, x: np.ndarray) -> np.ndarray:
        """Execute one layer on a (C, H, W) activation."""
        if isinstance(layer, InputLayer):
            expected = layer.shape.as_tuple()
            if tuple(x.shape) != expected:
                raise ShapeError(
                    f"input shape {tuple(x.shape)} does not match declared"
                    f" {expected}")
            return x
        if isinstance(layer, ConvLayer):
            out = F.conv2d(
                x,
                self.weights.get(layer.name, "weights"),
                self.weights.get(layer.name, "bias") if layer.bias else None,
                stride=layer.stride,
                pad=layer.pad,
            )
            if layer.activation is not Activation.NONE:
                out = _ACTIVATIONS[layer.activation](out)
            return out
        if isinstance(layer, PoolLayer):
            assert layer.stride is not None
            pool = F.max_pool2d if layer.op is PoolOp.MAX else F.avg_pool2d
            return pool(x, layer.kernel, layer.stride, layer.pad,
                        ceil_mode=layer.ceil_mode)
        if isinstance(layer, ActivationLayer):
            return _ACTIVATIONS[layer.kind](x)
        if isinstance(layer, FlattenLayer):
            return x.reshape(-1, 1, 1)
        if isinstance(layer, FullyConnectedLayer):
            out = F.fully_connected(
                x,
                self.weights.get(layer.name, "weights"),
                self.weights.get(layer.name, "bias") if layer.bias else None,
            )
            if layer.activation is not Activation.NONE:
                out = _ACTIVATIONS[layer.activation](out)
            return out.reshape(-1, 1, 1)
        if isinstance(layer, SoftmaxLayer):
            fn = F.log_softmax if layer.log else F.softmax
            return fn(x)
        raise TypeError(f"unknown layer type {type(layer).__name__}")

    # -- network-level API ----------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run one sample through the whole network."""
        x = np.asarray(x, dtype=np.float32)
        for layer in self.net.layers:
            x = self.run_layer(layer, x)
        return x

    def forward_batch(self, batch: np.ndarray) -> np.ndarray:
        """Run a (N, C, H, W) batch, sample by sample."""
        batch = np.asarray(batch, dtype=np.float32)
        if batch.ndim != 4:
            raise ShapeError(
                f"forward_batch expects (N, C, H, W), got {batch.shape}")
        return np.stack([self.forward(sample) for sample in batch])

    def activations(self, x: np.ndarray) -> dict[str, np.ndarray]:
        """Per-layer output activations for one sample (keyed by name)."""
        x = np.asarray(x, dtype=np.float32)
        outputs: dict[str, np.ndarray] = {}
        for layer in self.net.layers:
            x = self.run_layer(layer, x)
            outputs[layer.name] = x
        return outputs

    def predict(self, x: np.ndarray) -> int:
        """Class index of the most probable output."""
        return int(np.argmax(self.forward(x)))
