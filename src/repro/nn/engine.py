"""The reference engine: execute an IR network with numpy kernels.

This is the functional oracle for the generated accelerator and the software
baseline for the evaluation harness.

Two execution paths produce bit-identical outputs:

* the **oracle** path (:meth:`ReferenceEngine.run_layer` /
  :meth:`~ReferenceEngine.run_layer_batch`) — stride-trick kernels from
  :mod:`repro.nn.functional` that re-derive geometry on every call;
* the **planned** path — each (layer, input shape, dtype) configuration
  is compiled once into an :class:`repro.nn.plan.ExecutionPlan`
  (precomputed gather-index maps, packed weights, scratch buffers) and
  replayed from a process-wide LRU cache on every subsequent call.

Plans are on by default; ``REPRO_NO_PLAN_CACHE=1`` or
``ReferenceEngine(..., use_plans=False)`` falls back to the oracle.  The
engine hot loops deliberately allocate nothing shape-derived — all
scratch lives inside plans (enforced by the ``engine-plan-alloc`` lint
rule).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.frontend.weights import WeightStore
from repro.ir.layers import (
    Activation,
    ActivationLayer,
    ConvLayer,
    FlattenLayer,
    FullyConnectedLayer,
    InputLayer,
    Layer,
    PoolLayer,
    PoolOp,
    SoftmaxLayer,
)
from repro.ir.network import Network
from repro.nn import functional as F
from repro.nn.plan import (
    ExecutionPlan,
    PlanCache,
    default_plan_cache,
    plans_disabled,
)
from repro.obs import current_recorder, span

_ACTIVATIONS = {
    Activation.RELU: F.relu,
    Activation.SIGMOID: F.sigmoid,
    Activation.TANH: F.tanh,
}


class ReferenceEngine:
    """Forward inference over a network with a weight store.

    ``plan_cache`` defaults to the process-wide cache, which is safe to
    share across threads — compiled plans keep their replay scratch in
    per-thread storage; pass a private
    :class:`~repro.nn.plan.PlanCache` only to isolate cache statistics
    or eviction behaviour.  ``use_plans`` forces the
    planned path on (``True``) or off (``False``); the default ``None``
    follows the ``REPRO_NO_PLAN_CACHE`` environment escape hatch.
    """

    def __init__(self, net: Network, weights: WeightStore, *,
                 plan_cache: PlanCache | None = None,
                 use_plans: bool | None = None):
        weights.validate(net)
        self.net = net
        self.weights = weights
        self.plan_cache = plan_cache if plan_cache is not None \
            else default_plan_cache()
        self._use_plans = use_plans
        #: layer name -> (weight version, in_shape, dtype, plan) — the
        #: steady-state fast path that skips the cache dict entirely.
        self._resolved: dict[str, tuple[int, tuple[int, ...], np.dtype,
                                        ExecutionPlan]] = {}

    # -- single-layer dispatch (the oracle path) -----------------------------

    def run_layer(self, layer: Layer, x: np.ndarray) -> np.ndarray:
        """Execute one layer on a (C, H, W) activation."""
        if isinstance(layer, InputLayer):
            expected = layer.shape.as_tuple()
            if tuple(x.shape) != expected:
                raise ShapeError(
                    f"input shape {tuple(x.shape)} does not match declared"
                    f" {expected}")
            return x
        if isinstance(layer, ConvLayer):
            out = F.conv2d(
                x,
                self.weights.get(layer.name, "weights"),
                self.weights.get(layer.name, "bias") if layer.bias else None,
                stride=layer.stride,
                pad=layer.pad,
            )
            if layer.activation is not Activation.NONE:
                out = _ACTIVATIONS[layer.activation](out)
            return out
        if isinstance(layer, PoolLayer):
            assert layer.stride is not None
            pool = F.max_pool2d if layer.op is PoolOp.MAX else F.avg_pool2d
            return pool(x, layer.kernel, layer.stride, layer.pad,
                        ceil_mode=layer.ceil_mode)
        if isinstance(layer, ActivationLayer):
            return _ACTIVATIONS[layer.kind](x)
        if isinstance(layer, FlattenLayer):
            return x.reshape(-1, 1, 1)
        if isinstance(layer, FullyConnectedLayer):
            out = F.fully_connected(
                x,
                self.weights.get(layer.name, "weights"),
                self.weights.get(layer.name, "bias") if layer.bias else None,
            )
            if layer.activation is not Activation.NONE:
                out = _ACTIVATIONS[layer.activation](out)
            return out.reshape(-1, 1, 1)
        if isinstance(layer, SoftmaxLayer):
            fn = F.log_softmax if layer.log else F.softmax
            return fn(x)
        raise TypeError(f"unknown layer type {type(layer).__name__}")

    def run_layer_batch(self, layer: Layer, x: np.ndarray) -> np.ndarray:
        """Execute one layer on an (N, C, H, W) batch.

        Bit-identical to mapping :meth:`run_layer` over the batch (see the
        accumulation-order notes in :mod:`repro.nn.functional`).
        """
        if isinstance(layer, InputLayer):
            expected = layer.shape.as_tuple()
            if tuple(x.shape[1:]) != expected:
                raise ShapeError(
                    f"input shape {tuple(x.shape[1:])} does not match"
                    f" declared {expected}")
            return x
        if isinstance(layer, ConvLayer):
            out = F.conv2d_batch(
                x,
                self.weights.get(layer.name, "weights"),
                self.weights.get(layer.name, "bias") if layer.bias else None,
                stride=layer.stride,
                pad=layer.pad,
            )
            if layer.activation is not Activation.NONE:
                out = _ACTIVATIONS[layer.activation](out)
            return out
        if isinstance(layer, PoolLayer):
            assert layer.stride is not None
            pool = F.max_pool2d_batch if layer.op is PoolOp.MAX \
                else F.avg_pool2d_batch
            return pool(x, layer.kernel, layer.stride, layer.pad,
                        ceil_mode=layer.ceil_mode)
        if isinstance(layer, ActivationLayer):
            return _ACTIVATIONS[layer.kind](x)
        if isinstance(layer, FlattenLayer):
            return x.reshape(x.shape[0], -1, 1, 1)
        if isinstance(layer, FullyConnectedLayer):
            out = F.fully_connected_batch(
                x,
                self.weights.get(layer.name, "weights"),
                self.weights.get(layer.name, "bias") if layer.bias else None,
            )
            if layer.activation is not Activation.NONE:
                out = _ACTIVATIONS[layer.activation](out)
            return out.reshape(x.shape[0], -1, 1, 1)
        if isinstance(layer, SoftmaxLayer):
            fn = F.log_softmax_batch if layer.log else F.softmax_batch
            return fn(x)
        raise TypeError(f"unknown layer type {type(layer).__name__}")

    # -- execution plans ------------------------------------------------------

    def plans_active(self) -> bool:
        """Whether forward passes replay compiled execution plans."""
        if self._use_plans is not None:
            return self._use_plans
        return not plans_disabled()

    def _plan_for(self, layer: Layer, in_shape: tuple[int, ...],
                  dtype: np.dtype) -> ExecutionPlan:
        """Resolve the plan for one layer configuration.

        The per-engine memo makes the steady-state path a dict probe and
        a version compare; the shared LRU cache is only consulted when
        the memo misses (first call, weight mutation, shape change).
        """
        version = self.weights.version_of(layer.name)
        memo = self._resolved.get(layer.name)
        if memo is not None:
            if memo[0] == version and memo[1] == in_shape \
                    and memo[2] == dtype:
                self.plan_cache.record_hit()
                return memo[3]
        plan = self.plan_cache.lookup(layer, in_shape, self.weights, dtype)
        self._resolved[layer.name] = (version, in_shape, dtype, plan)
        return plan

    def _post_layer(self, layer: Layer, out: np.ndarray) -> np.ndarray:
        """Per-sample/per-batch hook applied after every planned layer.

        The base engine is the identity; :class:`~repro.quant.apply.
        QuantizedEngine` rounds activations here so its dynamic
        per-tensor scales stay outside the shape-keyed plans.
        """
        return out

    def plan_stats(self) -> dict:
        """Plan-cache counters + this engine's resolution state."""
        stats = self.plan_cache.stats()
        stats["plans_active"] = self.plans_active()
        stats["resolved_layers"] = len(self._resolved)
        return stats

    def invalidate_plans(self) -> int:
        """Drop this engine's memo and its store's cached plans."""
        self._resolved.clear()
        return self.plan_cache.invalidate(store=self.weights)

    # -- network-level API ----------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run one sample through the whole network."""
        x = np.asarray(x, dtype=np.float32)
        if not self.plans_active():
            for layer in self.net.layers:
                x = self.run_layer(layer, x)
            return x
        owns_output = True
        for layer in self.net.layers:
            plan = self._plan_for(layer, tuple(x.shape), x.dtype)
            out = plan.run(x)
            x = self._post_layer(layer, out)
            owns_output = not plan.returns_scratch or x is not out
        # never hand plan-owned scratch to the caller — the next forward
        # pass would overwrite it in place
        return x if owns_output else x.copy()

    def run(self, x: np.ndarray) -> np.ndarray:
        """Single-sample forward through the batched kernels."""
        x = np.asarray(x, dtype=np.float32)
        return self.run_batch(x[None])[0]

    def run_batch(self, batch: np.ndarray) -> np.ndarray:
        """Run an (N, C, H, W) batch through the batched kernels.

        The whole batch moves through each layer at once (one im2col GEMM
        per conv layer, vectorized pool/activation/softmax), which amortizes
        the per-layer dispatch and GEMM setup over the batch; outputs are
        bit-identical to :meth:`forward` of each sample.
        """
        batch = np.asarray(batch, dtype=np.float32)
        if batch.ndim != 4:
            raise ShapeError(
                f"run_batch expects (N, C, H, W), got {batch.shape}")
        if current_recorder() is not None:
            return self._run_batch_traced(batch)
        if not self.plans_active():
            for layer in self.net.layers:
                batch = self.run_layer_batch(layer, batch)
            return batch
        x = batch
        owns_output = True
        for layer in self.net.layers:
            plan = self._plan_for(layer, tuple(x.shape[1:]), x.dtype)
            out = plan.run_batch(x)
            x = self._post_layer(layer, out)
            owns_output = not plan.returns_scratch or x is not out
        return x if owns_output else x.copy()

    def _run_batch_traced(self, batch: np.ndarray) -> np.ndarray:
        """The :meth:`run_batch` body with per-layer spans.

        Kept as a separate method so the untraced hot path stays free
        of span plumbing: the engine only pays for tracing while a
        recorder is active (and the worker thread running this batch
        inherited it via ``contextvars.copy_context``, so these spans
        nest under the submitting request's span).  Same calls in the
        same order — outputs are bit-identical to the untraced path.
        """
        with span("engine.run_batch", batch=int(batch.shape[0]),
                  layers=len(self.net.layers)):
            if not self.plans_active():
                for layer in self.net.layers:
                    with span("engine.layer", layer=layer.name):
                        batch = self.run_layer_batch(layer, batch)
                return batch
            x = batch
            owns_output = True
            for layer in self.net.layers:
                with span("engine.layer", layer=layer.name):
                    plan = self._plan_for(layer, tuple(x.shape[1:]),
                                          x.dtype)
                    out = plan.run_batch(x)
                    x = self._post_layer(layer, out)
                    owns_output = not plan.returns_scratch or x is not out
            return x if owns_output else x.copy()

    def forward_batch(self, batch: np.ndarray) -> np.ndarray:
        """Run an (N, C, H, W) batch (alias of :meth:`run_batch`)."""
        return self.run_batch(batch)

    def predict_batch(self, batch: np.ndarray) -> np.ndarray:
        """Class indices of the most probable outputs, shape ``(N,)``."""
        out = self.run_batch(batch)
        return np.argmax(out.reshape(out.shape[0], -1), axis=1)

    def activations(self, x: np.ndarray) -> dict[str, np.ndarray]:
        """Per-layer output activations for one sample (keyed by name).

        Always runs the oracle kernels: every layer output must survive
        the whole pass, which is exactly what plan scratch reuse forbids.
        """
        x = np.asarray(x, dtype=np.float32)
        outputs: dict[str, np.ndarray] = {}
        for layer in self.net.layers:
            x = self.run_layer(layer, x)
            outputs[layer.name] = x
        return outputs

    def predict(self, x: np.ndarray) -> int:
        """Class index of the most probable output.

        Routed through :meth:`run_batch` with a singleton batch so
        single-sample serving shares the batched kernels and the plan
        cache (bit-identical to ``argmax(forward(x))``).
        """
        x = np.asarray(x, dtype=np.float32)
        return int(self.predict_batch(x[None])[0])
