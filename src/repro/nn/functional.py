"""Vectorized numpy kernels for the IR layer set.

Layout convention: activations are ``(C, H, W)`` float arrays (one sample —
the accelerator processes a stream of single images).  Convolution is
implemented with an im2col lowering (stride-trick view + one GEMM), the
standard way to get near-BLAS throughput out of numpy; the window view
avoids materializing patch copies until the single reshape before the GEMM,
per the "views not copies" guidance.

Every kernel also has a ``*_batch`` variant over ``(N, C, H, W)`` arrays.
The batched variants are **bit-identical** to mapping the per-sample kernel
over the batch — the property the evaluation harness asserts with
``np.array_equal`` — which constrains how they may vectorize:

* windowed reductions (pooling) and row-wise reductions (softmax) keep the
  same per-element reduction runs, so adding a leading batch axis does not
  change any accumulation order;
* the conv GEMM concatenates the per-sample patch matrices column-wise and
  issues one GEMM — BLAS accumulates over K identically for every output
  column regardless of how many columns the GEMM has — *except* when the
  per-sample GEMM has a single output column (``OH*OW == 1``), where numpy
  dispatches a matrix-vector product with a different accumulation order;
  that case falls back to the per-sample kernel;
* the fully-connected layer is always the single-column case, so its batch
  variant loops the per-sample matrix-vector product.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.errors import ShapeError


def _check_chw(x: np.ndarray, who: str) -> None:
    if x.ndim != 3:
        raise ShapeError(f"{who} expects a (C, H, W) array, got shape"
                         f" {x.shape}")


def _check_nchw(x: np.ndarray, who: str) -> None:
    if x.ndim != 4:
        raise ShapeError(f"{who} expects an (N, C, H, W) array, got shape"
                         f" {x.shape}")


def _pad_hw(x: np.ndarray, pad: tuple[int, int]) -> np.ndarray:
    """Zero-pad the trailing two (spatial) axes of a CHW or NCHW array."""
    if pad == (0, 0):
        return x
    lead = ((0, 0),) * (x.ndim - 2)
    return np.pad(x, lead + ((pad[0], pad[0]), (pad[1], pad[1])))


def sliding_windows(x: np.ndarray, kernel: tuple[int, int],
                    stride: tuple[int, int]) -> np.ndarray:
    """Return a strided view ``(C, OH, OW, KH, KW)`` of all windows of ``x``.

    The view shares memory with ``x``; callers must not write through it.
    """
    _check_chw(x, "sliding_windows")
    c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    if kh > h or kw > w:
        raise ShapeError(
            f"window {kernel} does not fit input of shape {x.shape}")
    oh = (h - kh) // sh + 1
    ow = (w - kw) // sw + 1
    sc, srow, scol = x.strides
    return as_strided(
        x,
        shape=(c, oh, ow, kh, kw),
        strides=(sc, srow * sh, scol * sw, srow, scol),
        writeable=False,
    )


def im2col(x: np.ndarray, kernel: tuple[int, int],
           stride: tuple[int, int] = (1, 1),
           pad: tuple[int, int] = (0, 0)) -> np.ndarray:
    """Lower ``x`` to a ``(C*KH*KW, OH*OW)`` patch matrix."""
    x = _pad_hw(x, pad)
    windows = sliding_windows(x, kernel, stride)
    c, oh, ow, kh, kw = windows.shape
    # (C, KH, KW, OH, OW) -> (C*KH*KW, OH*OW); the transpose is a view, the
    # reshape makes the single necessary copy.
    cols = windows.transpose(0, 3, 4, 1, 2).reshape(c * kh * kw, oh * ow)
    return cols


def conv2d(x: np.ndarray, weights: np.ndarray,
           bias: np.ndarray | None = None,
           stride: tuple[int, int] = (1, 1),
           pad: tuple[int, int] = (0, 0)) -> np.ndarray:
    """2-D cross-correlation over all input channels — paper eq. (1).

    ``weights`` has shape ``(F, C, KH, KW)``; the result has shape
    ``(F, OH, OW)``.  (Like Caffe and every accelerator in this space, the
    "convolution" does not flip the kernel.)
    """
    _check_chw(x, "conv2d")
    if weights.ndim != 4:
        raise ShapeError(
            f"conv2d weights must be (F, C, KH, KW), got {weights.shape}")
    f, c, kh, kw = weights.shape
    if c != x.shape[0]:
        raise ShapeError(
            f"conv2d channel mismatch: input has {x.shape[0]}, weights"
            f" expect {c}")
    cols = im2col(x, (kh, kw), stride, pad)
    out = weights.reshape(f, c * kh * kw) @ cols
    if bias is not None:
        if bias.shape != (f,):
            raise ShapeError(
                f"conv2d bias must have shape ({f},), got {bias.shape}")
        out += bias[:, None]
    h = x.shape[1] + 2 * pad[0]
    w = x.shape[2] + 2 * pad[1]
    oh = (h - kh) // stride[0] + 1
    ow = (w - kw) // stride[1] + 1
    return out.reshape(f, oh, ow)


def sliding_windows_batch(x: np.ndarray, kernel: tuple[int, int],
                          stride: tuple[int, int]) -> np.ndarray:
    """Batched :func:`sliding_windows`: ``(N, C, OH, OW, KH, KW)`` view."""
    _check_nchw(x, "sliding_windows_batch")
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    if kh > h or kw > w:
        raise ShapeError(
            f"window {kernel} does not fit input of shape {x.shape}")
    oh = (h - kh) // sh + 1
    ow = (w - kw) // sw + 1
    sn, sc, srow, scol = x.strides
    return as_strided(
        x,
        shape=(n, c, oh, ow, kh, kw),
        strides=(sn, sc, srow * sh, scol * sw, srow, scol),
        writeable=False,
    )


def im2col_batch(x: np.ndarray, kernel: tuple[int, int],
                 stride: tuple[int, int] = (1, 1),
                 pad: tuple[int, int] = (0, 0)) -> np.ndarray:
    """Lower a batch to an ``(N, C*KH*KW, OH*OW)`` patch-matrix stack.

    ``im2col_batch(x, ...)[n]`` equals ``im2col(x[n], ...)``, so a stacked
    matmul against this array covers the whole batch in one call.
    """
    x = _pad_hw(x, pad)
    windows = sliding_windows_batch(x, kernel, stride)
    n, c, oh, ow, kh, kw = windows.shape
    # (N, C, KH, KW, OH, OW) -> (N, C*KH*KW, OH*OW); the transpose is a
    # view, the reshape makes the single necessary copy.
    return windows.transpose(0, 1, 4, 5, 2, 3).reshape(
        n, c * kh * kw, oh * ow)


def conv2d_batch(x: np.ndarray, weights: np.ndarray,
                 bias: np.ndarray | None = None,
                 stride: tuple[int, int] = (1, 1),
                 pad: tuple[int, int] = (0, 0)) -> np.ndarray:
    """Batched :func:`conv2d`: ``(N, C, H, W)`` → ``(N, F, OH, OW)``.

    Bit-identical to stacking per-sample :func:`conv2d` results: the
    stacked ``(F, K) @ (N, K, OH*OW)`` matmul runs the *same* BLAS kernel
    on the same 2-D operands per sample as the per-sample GEMM, so every
    accumulation order is preserved (concatenating the batch into one wide
    GEMM would not be — BLAS picks different kernels by column count).
    The batch win is one im2col/pad/bias/dispatch per layer instead of N.
    """
    _check_nchw(x, "conv2d_batch")
    if weights.ndim != 4:
        raise ShapeError(
            f"conv2d weights must be (F, C, KH, KW), got {weights.shape}")
    f, c, kh, kw = weights.shape
    if c != x.shape[1]:
        raise ShapeError(
            f"conv2d channel mismatch: input has {x.shape[1]}, weights"
            f" expect {c}")
    if bias is not None and bias.shape != (f,):
        raise ShapeError(
            f"conv2d bias must have shape ({f},), got {bias.shape}")
    n = x.shape[0]
    h = x.shape[2] + 2 * pad[0]
    w = x.shape[3] + 2 * pad[1]
    oh = (h - kh) // stride[0] + 1
    ow = (w - kw) // stride[1] + 1
    cols = im2col_batch(x, (kh, kw), stride, pad)
    out = np.matmul(weights.reshape(f, c * kh * kw), cols)
    if bias is not None:
        out += bias[:, None]
    return out.reshape(n, f, oh, ow)


def pool_pad_amounts(hw: tuple[int, int], kernel: tuple[int, int],
                     stride: tuple[int, int], pad: tuple[int, int],
                     ceil_mode: bool) -> tuple[int, int, int, int]:
    """Per-edge spatial padding for pooling: ``(ph, pw, extra_h, extra_w)``.

    ``extra_*`` is the ceil-mode extension on the bottom/right edge so the
    last window fits.  Shared by :func:`_pool_pad` and the execution-plan
    compiler (:mod:`repro.nn.plan`), which bakes the padded geometry into
    a reusable scratch buffer.
    """
    h, w = hw
    ph, pw = pad
    extra_h = extra_w = 0
    if ceil_mode:
        def need(size: int, k: int, s: int, p: int) -> int:
            span = size + 2 * p - k
            steps = -(-span // s)  # ceil division
            out = steps + 1
            if p > 0 and (out - 1) * s >= size + p:
                out -= 1
            return max(0, (out - 1) * s + k - (size + 2 * p))
        extra_h = need(h, kernel[0], stride[0], ph)
        extra_w = need(w, kernel[1], stride[1], pw)
    return ph, pw, extra_h, extra_w


def _pool_pad(x: np.ndarray, kernel: tuple[int, int], stride: tuple[int, int],
              pad: tuple[int, int], fill: float,
              ceil_mode: bool) -> np.ndarray:
    """Pad the spatial axes for pooling; with ceil_mode, extend so the last
    window fits.  Works on ``(C, H, W)`` and ``(N, C, H, W)`` alike."""
    ph, pw, extra_h, extra_w = pool_pad_amounts(
        x.shape[-2:], kernel, stride, pad, ceil_mode)
    if ph == 0 and pw == 0 and extra_h == 0 and extra_w == 0:
        return x
    lead = ((0, 0),) * (x.ndim - 2)
    return np.pad(x, lead + ((ph, ph + extra_h), (pw, pw + extra_w)),
                  constant_values=fill)


def max_pool2d(x: np.ndarray, kernel: tuple[int, int],
               stride: tuple[int, int] | None = None,
               pad: tuple[int, int] = (0, 0),
               *, ceil_mode: bool = True) -> np.ndarray:
    """Max pooling — eq. (3) with the max operator."""
    _check_chw(x, "max_pool2d")
    stride = kernel if stride is None else stride
    padded = _pool_pad(x, kernel, stride, pad, -np.inf, ceil_mode)
    windows = sliding_windows(padded, kernel, stride)
    return windows.max(axis=(3, 4))


def avg_pool2d(x: np.ndarray, kernel: tuple[int, int],
               stride: tuple[int, int] | None = None,
               pad: tuple[int, int] = (0, 0),
               *, ceil_mode: bool = True) -> np.ndarray:
    """Average pooling — eq. (3) with the mean operator.

    Padding elements (zeros) participate in the average, matching Caffe.
    """
    _check_chw(x, "avg_pool2d")
    stride = kernel if stride is None else stride
    padded = _pool_pad(x, kernel, stride, pad, 0.0, ceil_mode)
    windows = sliding_windows(padded, kernel, stride)
    return windows.mean(axis=(3, 4))


def max_pool2d_batch(x: np.ndarray, kernel: tuple[int, int],
                     stride: tuple[int, int] | None = None,
                     pad: tuple[int, int] = (0, 0),
                     *, ceil_mode: bool = True) -> np.ndarray:
    """Batched :func:`max_pool2d` (bit-identical per sample)."""
    _check_nchw(x, "max_pool2d_batch")
    stride = kernel if stride is None else stride
    padded = _pool_pad(x, kernel, stride, pad, -np.inf, ceil_mode)
    windows = sliding_windows_batch(padded, kernel, stride)
    return windows.max(axis=(4, 5))


def avg_pool2d_batch(x: np.ndarray, kernel: tuple[int, int],
                     stride: tuple[int, int] | None = None,
                     pad: tuple[int, int] = (0, 0),
                     *, ceil_mode: bool = True) -> np.ndarray:
    """Batched :func:`avg_pool2d` (bit-identical per sample)."""
    _check_nchw(x, "avg_pool2d_batch")
    stride = kernel if stride is None else stride
    padded = _pool_pad(x, kernel, stride, pad, 0.0, ceil_mode)
    windows = sliding_windows_batch(padded, kernel, stride)
    return windows.mean(axis=(4, 5))


def fully_connected(x: np.ndarray, weights: np.ndarray,
                    bias: np.ndarray | None = None) -> np.ndarray:
    """Fully-connected layer — eq. (4).  ``x`` is flattened implicitly."""
    flat = x.reshape(-1)
    if weights.ndim != 2 or weights.shape[1] != flat.shape[0]:
        raise ShapeError(
            f"fc weights must be (N, {flat.shape[0]}), got {weights.shape}")
    out = weights @ flat
    if bias is not None:
        if bias.shape != (weights.shape[0],):
            raise ShapeError(
                f"fc bias must have shape ({weights.shape[0]},), got"
                f" {bias.shape}")
        out = out + bias
    return out


def fully_connected_batch(x: np.ndarray, weights: np.ndarray,
                          bias: np.ndarray | None = None) -> np.ndarray:
    """Batched :func:`fully_connected`: ``(N, ...)`` → ``(N, F)``.

    The per-sample kernel is a matrix-vector product; fusing the batch into
    one wide GEMM would change the BLAS accumulation order (gemv vs gemm
    kernels), so the batch runs as a stacked ``(F, K) @ (N, K, 1)`` matmul
    — the same per-sample kernel, dispatched once — which keeps the result
    bit-identical to the per-sample path.
    """
    n = x.shape[0]
    flat = x.reshape(n, -1)
    if weights.ndim != 2 or weights.shape[1] != flat.shape[1]:
        raise ShapeError(
            f"fc weights must be (N, {flat.shape[1]}), got {weights.shape}")
    if bias is not None and bias.shape != (weights.shape[0],):
        raise ShapeError(
            f"fc bias must have shape ({weights.shape[0]},), got"
            f" {bias.shape}")
    out = np.matmul(weights, flat[:, :, None])[:, :, 0]
    if bias is not None:
        out = out + bias
    return out


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit f(x) = max(0, x)."""
    return np.maximum(x, 0.0)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Logistic sigmoid f(x) = 1 / (1 + e^-x), numerically stabilized."""
    out = np.empty_like(x, dtype=np.result_type(x, np.float32))
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def tanh(x: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent."""
    return np.tanh(x)


def softmax(x: np.ndarray) -> np.ndarray:
    """Softmax normalization — eq. (5) without the log."""
    flat = x.reshape(-1)
    shifted = flat - flat.max()
    ex = np.exp(shifted)
    return (ex / ex.sum()).reshape(x.shape)


def log_softmax(x: np.ndarray) -> np.ndarray:
    """LogSoftMax — the paper's normalization operator (eq. 5, log form)."""
    flat = x.reshape(-1)
    shifted = flat - flat.max()
    return (shifted - np.log(np.exp(shifted).sum())).reshape(x.shape)


def softmax_batch(x: np.ndarray) -> np.ndarray:
    """Batched :func:`softmax`: normalizes each sample independently.

    Row-wise max/sum reductions over the contiguous trailing axis run the
    same per-row accumulation as the 1-D reductions of the per-sample
    kernel, so the result is bit-identical.
    """
    flat = x.reshape(x.shape[0], -1)
    shifted = flat - flat.max(axis=1, keepdims=True)
    ex = np.exp(shifted)
    return (ex / ex.sum(axis=1, keepdims=True)).reshape(x.shape)


def log_softmax_batch(x: np.ndarray) -> np.ndarray:
    """Batched :func:`log_softmax` (bit-identical per sample)."""
    flat = x.reshape(x.shape[0], -1)
    shifted = flat - flat.max(axis=1, keepdims=True)
    return (shifted -
            np.log(np.exp(shifted).sum(axis=1, keepdims=True))) \
        .reshape(x.shape)


# -- gather-index kernels (the execution-plan path) ---------------------------
#
# The stride-trick kernels above re-derive the window geometry on every
# call.  When the same (shape, dtype) configuration recurs — steady-state
# serving runs identical layer shapes millions of times — the geometry can
# be compiled once into a flat gather-index map and replayed with a single
# ``take``.  The maps below index into the *flattened padded* activation,
# so one map serves both the single-sample path (``flat.take(map)``) and
# the batched path (``np.take(flat2d, map, axis=1)``).  Output values are
# bit-identical to the stride-trick kernels: a gather is a pure data
# movement, and the downstream GEMM / max reduction sees the same operand
# values in the same logical order.  (Average pooling is the exception:
# ``mean`` over a gathered contiguous copy pairs partial sums differently
# than over the strided window view, so avg-pool plans replay the
# stride-trick kernel — see :mod:`repro.nn.plan`.)


def im2col_index_map(in_shape: tuple[int, int, int],
                     kernel: tuple[int, int],
                     stride: tuple[int, int] = (1, 1),
                     pad: tuple[int, int] = (0, 0)) -> np.ndarray:
    """Gather map for :func:`im2col`: ``(C*KH*KW, OH*OW)`` flat indices.

    Indexes into the flattened zero-padded ``(C, H+2PH, W+2PW)`` input;
    ``padded.reshape(-1).take(map)`` equals ``im2col(x, ...)`` bit for
    bit.
    """
    c, h, w = in_shape
    kh, kw = kernel
    sh, sw = stride
    hp, wp = h + 2 * pad[0], w + 2 * pad[1]
    if kh > hp or kw > wp:
        raise ShapeError(
            f"window {kernel} does not fit padded input ({c}, {hp}, {wp})")
    oh = (hp - kh) // sh + 1
    ow = (wp - kw) // sw + 1
    ci = np.arange(c).reshape(c, 1, 1, 1, 1)
    khi = np.arange(kh).reshape(1, kh, 1, 1, 1)
    kwi = np.arange(kw).reshape(1, 1, kw, 1, 1)
    ohi = np.arange(oh).reshape(1, 1, 1, oh, 1)
    owi = np.arange(ow).reshape(1, 1, 1, 1, ow)
    flat = ci * (hp * wp) + (ohi * sh + khi) * wp + (owi * sw + kwi)
    return np.ascontiguousarray(flat.reshape(c * kh * kw, oh * ow))


def pool_index_map(padded_shape: tuple[int, int, int],
                   kernel: tuple[int, int],
                   stride: tuple[int, int]) -> np.ndarray:
    """Gather map for windowed reductions: ``(KH*KW, C*OH*OW)`` indices.

    Transposed relative to :func:`im2col_index_map` so the reduction runs
    over the *leading* axis — ``np.maximum.reduce(flat.take(map), axis=0)``
    reduces KH·KW contiguous rows with one vectorized pass per row, which
    is what makes the planned max-pool several times faster than the
    strided-view reduction.  Sound for max (order-independent, exact);
    not used for mean (accumulation order differs).
    """
    c, hp, wp = padded_shape
    kh, kw = kernel
    sh, sw = stride
    if kh > hp or kw > wp:
        raise ShapeError(
            f"window {kernel} does not fit input of shape {padded_shape}")
    oh = (hp - kh) // sh + 1
    ow = (wp - kw) // sw + 1
    khi = np.arange(kh).reshape(kh, 1, 1, 1, 1)
    kwi = np.arange(kw).reshape(1, kw, 1, 1, 1)
    ci = np.arange(c).reshape(1, 1, c, 1, 1)
    ohi = np.arange(oh).reshape(1, 1, 1, oh, 1)
    owi = np.arange(ow).reshape(1, 1, 1, 1, ow)
    flat = ci * (hp * wp) + (ohi * sh + khi) * wp + (owi * sw + kwi)
    return np.ascontiguousarray(flat.reshape(kh * kw, c * oh * ow))
