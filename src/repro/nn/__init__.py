"""Reference CNN inference engine.

A vectorized numpy implementation of every IR layer.  It plays the role
Caffe's CPU path plays in the original work: the functional oracle against
which the generated dataflow accelerator is validated, and the source of the
software baseline in the evaluation harness.
"""

from repro.nn.functional import (
    avg_pool2d,
    conv2d,
    fully_connected,
    im2col,
    log_softmax,
    max_pool2d,
    relu,
    sigmoid,
    softmax,
    tanh,
)
from repro.nn.engine import ReferenceEngine

__all__ = [
    "avg_pool2d",
    "conv2d",
    "fully_connected",
    "im2col",
    "log_softmax",
    "max_pool2d",
    "relu",
    "sigmoid",
    "softmax",
    "tanh",
    "ReferenceEngine",
]
