"""Reference CNN inference engine.

A vectorized numpy implementation of every IR layer.  It plays the role
Caffe's CPU path plays in the original work: the functional oracle against
which the generated dataflow accelerator is validated, and the source of the
software baseline in the evaluation harness.
"""

from repro.nn.functional import (
    avg_pool2d,
    conv2d,
    fully_connected,
    im2col,
    log_softmax,
    max_pool2d,
    relu,
    sigmoid,
    softmax,
    tanh,
)
from repro.nn.engine import ReferenceEngine
from repro.nn.plan import (
    ExecutionPlan,
    PlanCache,
    compile_plan,
    default_plan_cache,
    plans_disabled,
)

__all__ = [
    "avg_pool2d",
    "conv2d",
    "fully_connected",
    "im2col",
    "log_softmax",
    "max_pool2d",
    "relu",
    "sigmoid",
    "softmax",
    "tanh",
    "ExecutionPlan",
    "PlanCache",
    "ReferenceEngine",
    "compile_plan",
    "default_plan_cache",
    "plans_disabled",
]
