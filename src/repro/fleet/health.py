"""Per-slot health state for the fleet.

Health is *derived*, not stored: each managed slot owns a
:class:`~repro.resilience.breaker.CircuitBreaker` (registered in the
current breaker realm, so ``breaker_states()`` snapshots and ``condor
obs diff`` see fleet health for free), and the three-level health state
is a read of that breaker:

========== ====================================================
OK         breaker closed with no consecutive failures
SUSPECT    breaker closed but failing, or half-open (probing)
QUARANTINED breaker open — the slot gets no work until its
           recovery window elapses and a recovery probe passes
========== ====================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.resilience.breaker import HALF_OPEN, OPEN, CircuitBreaker

__all__ = ["ManagedSlot", "SlotState"]


class SlotState(enum.Enum):
    OK = "ok"
    SUSPECT = "suspect"
    QUARANTINED = "quarantined"


@dataclass
class ManagedSlot:
    """One FPGA slot under fleet management.

    Bundles the cloud-side slot handle with the runtime objects the
    fleet drives it through (context, kernel, queue, buffers) and the
    health bookkeeping.  Mutable fields (``busy`` and the counters) are
    guarded by the owning :class:`~repro.fleet.manager.FleetManager`'s
    lock; the runtime objects are only touched by the thread that holds
    the slot (``busy`` acts as the exclusivity token).
    """

    label: str          # fleet-ordinal label, e.g. "i0.slot1" (stable
    #                     across runs, unlike raw instance ids)
    instance: Any       # F1Instance
    slot: Any           # FpgaSlot
    breaker: CircuitBreaker
    context: Any = None
    kernel: Any = None
    queue: Any = None
    in_buf: Any = None
    out_buf: Any = None
    w_buf: Any = None
    busy: bool = False
    #: Set by ``FleetManager.drain_instance``: the slot takes no new
    #: work and is detached once its in-flight submission releases.
    draining: bool = False
    submissions: int = 0
    failures: int = 0
    reloads: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def health(self) -> SlotState:
        state = self.breaker.state
        if state == OPEN:
            return SlotState.QUARANTINED
        if state == HALF_OPEN or self.breaker.consecutive_failures > 0:
            return SlotState.SUSPECT
        return SlotState.OK

    def snapshot(self) -> dict:
        return {
            "health": self.health.value,
            "breaker": self.breaker.state,
            "opened_count": self.breaker.opened_count,
            "submissions": self.submissions,
            "failures": self.failures,
            "reloads": self.reloads,
        }
