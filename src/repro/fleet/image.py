"""Build a deployable AFI for a zoo model — shared fleet plumbing.

Both the survival drill and the serving layer need the same prologue:
push a model through the simulated toolchain (HLS → network IP → xo →
xclbin), park the bitstream in S3, register it with the AFI service and
wait until it is available — exactly the paper's steps 5-8.  This
module is that prologue, factored out so every fleet consumer builds
images one way.
"""

from __future__ import annotations

from repro.cloud.afi import AFIService
from repro.cloud.s3 import S3Store
from repro.errors import FleetError
from repro.frontend.condor_format import DeploymentOption
from repro.frontend.zoo import cifar10_model, lenet_model, tc1_model
from repro.hw.accelerator import build_accelerator
from repro.hw.resources import device_for_board
from repro.toolchain.assemble import build_network_ip
from repro.toolchain.hls import VivadoHLS
from repro.toolchain.sdaccel import (
    generate_kernel_xml,
    package_xo,
    xocc_link,
)
from repro.toolchain.xclbin import write_xclbin

__all__ = ["SERVABLE_MODELS", "build_fleet_image", "servable_model"]

#: Zoo models small enough to deploy on one F1 slot (VGG-16 is not).
SERVABLE_MODELS = {
    "tc1": tc1_model,
    "lenet": lenet_model,
    "cifar10": cifar10_model,
}


def servable_model(name: str):
    """The named zoo model with the AWS-F1 deployment intent."""
    try:
        builder = SERVABLE_MODELS[name]
    except KeyError:
        raise FleetError(
            f"model {name!r} is not servable on the fleet; known:"
            f" {sorted(SERVABLE_MODELS)}") from None
    return builder(DeploymentOption.AWS_F1)


def build_fleet_image(model, *, name: str = "fleet") \
        -> tuple[AFIService, str, bytes]:
    """Build ``model``'s AWS-F1 xclbin and register it as an AFI.

    Returns ``(afi_service, agfi_id, xclbin_bytes)``; callers launch
    F1 instances against the returned service and hand the agfi to
    :class:`~repro.fleet.manager.FleetManager`.
    """
    acc = build_accelerator(model)
    hls = VivadoHLS("xcvu9p", model.frequency_hz)
    assembly = build_network_ip(acc, hls)
    xo = package_xo(assembly.accelerator_ip,
                    generate_kernel_xml(assembly.accelerator_ip),
                    model=model)
    xclbin_bytes = write_xclbin(
        xocc_link(xo, device_for_board("aws-f1-xcvu9p"),
                  model.frequency_hz))
    s3 = S3Store()
    bucket = f"{name}-images"
    s3.create_bucket(bucket)
    key = f"dcp/{name}.xclbin"
    s3.put_object(bucket, key, xclbin_bytes)
    service = AFIService(s3)
    record = service.create_fpga_image(
        name=f"{name}-afi",
        input_storage_location=f"s3://{bucket}/{key}")
    service.wait_until_available(record.afi_id)
    return service, record.agfi_id, xclbin_bytes
