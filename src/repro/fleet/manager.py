"""The fleet manager: watchdogs, scrubbing, quarantine and failover.

:class:`FleetManager` owns every FPGA slot of a set of F1 instances
loaded with the same AFI and the same weights, and exposes one verb —
:meth:`FleetManager.run` — that executes a batch on *some* healthy slot
and returns bit-correct outputs or raises
:class:`~repro.errors.FleetError`.  Between those two outcomes sits the
health machinery:

* **watchdog** — every kernel invocation is deadlined on the fleet's
  virtual clock; a hung or pathologically slow device trips
  :class:`~repro.errors.WatchdogTimeoutError` instead of wedging the
  caller;
* **scrubbing** — every ``scrub_every``-th submission per slot (and
  every ``verify=True`` submission) checks the slot's loaded weight
  buffer digest against the golden digest recorded at attach, and the
  submission's outputs against the reference engine's golden results.
  Silent SEU corruption is repaired on the spot (AFI re-load + weight
  rewrite) and the tainted submission is retried elsewhere;
* **quarantine** — each slot's failures feed a
  :class:`~repro.resilience.breaker.CircuitBreaker` registered in the
  current realm (boundary ``fleet.<label>``), so fleet health shows up
  in ``breaker_states()`` snapshots, manifests and ``condor obs diff``.
  An open breaker removes the slot from rotation; once its recovery
  window elapses the manager re-loads the AFI, rewrites the weights and
  re-probes the slot against the golden engine before trusting it again;
* **failover** — a failed invocation moves to the next healthy slot
  (round-robin), up to ``max_attempts``; a fleet with no healthy slot
  degrades to :class:`~repro.errors.FleetError` rather than hanging.

Nothing here sleeps on the wall clock, so drills over hours of modeled
weather run in milliseconds.
"""

from __future__ import annotations

import hashlib
import threading
from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.errors import (
    DeviceLostError,
    FleetError,
    ScrubMismatchError,
    WatchdogTimeoutError,
)
from repro.frontend.condor_format import model_from_json
from repro.nn.engine import ReferenceEngine
from repro.obs import REGISTRY
from repro.resilience.boundary import breaker_for
from repro.resilience.breaker import HALF_OPEN, OPEN
from repro.resilience.clock import DEFAULT_CLOCK, VirtualClock
from repro.runtime.opencl import (
    Buffer,
    CommandQueue,
    Context,
    Kernel,
    Program,
    pack_weights,
)
from repro.toolchain.xclbin import read_xclbin
from repro.util.logging import get_logger
from repro.util.sync import new_lock

from repro.fleet.health import ManagedSlot, SlotState

__all__ = ["FleetConfig", "FleetManager", "Submission"]

_log = get_logger("fleet.manager")

_SUBMISSIONS = REGISTRY.counter(
    "condor_fleet_submissions_total",
    "Batches submitted to the fleet, by final status")
_FAILOVERS = REGISTRY.counter(
    "condor_fleet_failovers_total",
    "In-flight work moved off a failing slot, by failure reason")
_WATCHDOG_TRIPS = REGISTRY.counter(
    "condor_fleet_watchdog_trips_total",
    "Kernel invocations killed by the watchdog deadline")
_SCRUB_CATCHES = REGISTRY.counter(
    "condor_fleet_scrub_catches_total",
    "Corruption caught by scrubbing, by check (digest|golden)")
_QUARANTINES = REGISTRY.counter(
    "condor_fleet_quarantines_total",
    "Slots quarantined (circuit opened), by slot label")
_RELOADS = REGISTRY.counter(
    "condor_fleet_reloads_total",
    "AFI re-loads issued for repair or recovery")
_HEALTHY_SLOTS = REGISTRY.gauge(
    "condor_fleet_healthy_slots_count",
    "Slots currently not quarantined")

#: Failure types that trigger failover (everything else propagates —
#: a shape error is the caller's bug, not slot weather).
FAILOVER_ERRORS = (DeviceLostError, WatchdogTimeoutError,
                   ScrubMismatchError)


@dataclass(frozen=True)
class FleetConfig:
    """Fleet policy knobs (all times in virtual seconds)."""

    #: Kernel invocation deadline; hung devices trip this.
    watchdog_s: float = 60.0
    #: Scrub every Nth submission per slot (0 disables periodic scrubs;
    #: ``verify=True`` submissions are always scrubbed).
    scrub_every: int = 4
    #: Consecutive slot failures before quarantine.
    failure_threshold: int = 2
    #: Quarantine duration before a recovery probe is attempted.
    recovery_s: float = 240.0
    #: Failover budget per submission.
    max_attempts: int = 12
    #: Largest batch a submission may carry (sizes the device buffers).
    capacity: int = 8
    #: Seed for the golden probe input used by recovery checks.
    probe_seed: int = 7


@dataclass(frozen=True)
class Submission:
    """Receipt for one completed fleet submission.

    ``device_seconds`` is the *modeled* time the serving slot spent on
    the batch (queue delay + kernel cycles at the accelerator clock) —
    the serving layer uses it to place completions on its virtual
    timeline.  ``attempts`` counts invocations including failovers.
    """

    outputs: np.ndarray
    device_seconds: float
    slot: str
    attempts: int


class FleetManager:
    """Health-managed execution over the slots of ``instances``.

    All instances are loaded with ``agfi_id`` and the packed ``weights``
    at attach time; attach performs no kernel launches, so building a
    fleet under an armed fault plan is deterministic and fault-free.
    """

    def __init__(self, instances, agfi_id: str, weights, *,
                 config: FleetConfig | None = None,
                 clock: VirtualClock | None = None):
        if not instances:
            raise FleetError("a fleet needs at least one instance")
        self.instances = list(instances)
        self.agfi_id = agfi_id
        self.config = config if config is not None else FleetConfig()
        self.clock = clock if clock is not None else DEFAULT_CLOCK

        record = self.instances[0].afi_service.resolve_agfi(agfi_id)
        if record.xclbin_bytes is None:
            raise FleetError(
                f"AFI {agfi_id} is not available; wait for it first")
        self._xclbin = read_xclbin(record.xclbin_bytes)
        self.net = model_from_json(self._xclbin.network_json).network
        self.golden = ReferenceEngine(self.net, weights)
        self._packed = pack_weights(self.net, weights)
        self._golden_digest = hashlib.sha256(
            self._packed.tobytes()).hexdigest()
        self._in_size = int(np.prod(self.net.input_shape().as_tuple()))
        self._out_size = self.net.output_shape().size
        rng = np.random.default_rng(self.config.probe_seed)
        self._probe_in = rng.standard_normal(
            (1,) + self.net.input_shape().as_tuple()).astype(np.float32)
        self._probe_out = self.golden.forward_batch(self._probe_in) \
            .reshape(1, self._out_size)

        #: Guards the round-robin cursor, slot busy flags and counters,
        #: and the action tally.  Never held across device work or
        #: metric increments.
        self._lock = new_lock("fleet.manager.FleetManager")
        #: Pulsed (outside the lock) whenever a slot goes idle or joins
        #: the rotation, so ``submit(..., wait=True)`` callers blocked
        #: on an all-busy fleet re-scan promptly.  Waits are bounded,
        #: so a missed pulse costs latency, never liveness.
        self._slot_freed = threading.Event()
        self._cursor = 0
        self._actions: Counter[str] = Counter()
        self.slots: list[ManagedSlot] = []
        for j, instance in enumerate(self.instances):
            for slot in instance.slots:
                self.slots.append(
                    self._attach(f"i{j}.slot{slot.index}", instance,
                                 slot))
        #: Monotonic instance ordinal for slot labels — never reused,
        #: so labels stay unique across add/drain cycles.
        self._next_ordinal = len(self.instances)
        self._update_health_gauge()
        _log.info("fleet attached: %d slot(s) across %d instance(s)",
                  len(self.slots), len(self.instances))

    # -- attach / repair ----------------------------------------------------

    def _attach(self, label: str, instance, slot) -> ManagedSlot:
        """Load the AFI and build the runtime plumbing for one slot."""
        instance.load_afi(slot.index, self.agfi_id)
        context = Context(slot.device)
        program = Program(context, self._xclbin)
        kernel = Kernel(program, program.kernel_names()[0])
        capacity = self.config.capacity
        in_buf = Buffer(context, Buffer.READ_ONLY,
                        capacity * self._in_size * 4)
        out_buf = Buffer(context, Buffer.WRITE_ONLY,
                         capacity * self._out_size * 4)
        w_buf = Buffer(context, Buffer.READ_ONLY, self._packed.size * 4)
        queue = CommandQueue(context, emulation="fast", clock=self.clock)
        queue.enqueue_write_buffer(w_buf, self._packed)
        kernel.set_arg(0, in_buf)
        kernel.set_arg(1, out_buf)
        kernel.set_arg(2, w_buf)
        kernel.set_arg(3, 1)
        breaker = breaker_for(
            f"fleet.{label}", clock=self.clock,
            failure_threshold=self.config.failure_threshold,
            recovery_s=self.config.recovery_s)
        return ManagedSlot(label=label, instance=instance, slot=slot,
                           breaker=breaker, context=context,
                           kernel=kernel, queue=queue, in_buf=in_buf,
                           out_buf=out_buf, w_buf=w_buf)

    def _repair(self, managed: ManagedSlot) -> None:
        """Re-load the AFI and rewrite golden weights on a held slot."""
        managed.instance.load_afi(managed.slot.index, self.agfi_id)
        managed.queue.enqueue_write_buffer(managed.w_buf, self._packed)
        _RELOADS.inc()
        with self._lock:
            managed.reloads += 1
            self._actions["reload"] += 1
        _log.info("slot %s: AFI re-loaded, weights rewritten",
                  managed.label)

    # -- the public verb ----------------------------------------------------

    def run(self, images, *, verify: bool = False) -> np.ndarray:
        """Execute one batch on a healthy slot; outputs are
        ``(batch, output_size)`` float32, bit-identical to the golden
        reference engine.

        ``verify=True`` forces a scrub on the serving slot before the
        outputs are accepted.  Raises :class:`FleetError` when the
        failover budget is exhausted or no healthy slot remains.
        """
        return self.submit(images, verify=verify).outputs

    def submit(self, images, *, verify: bool = False,
               wait: bool = False) -> Submission:
        """Like :meth:`run`, but returns a :class:`Submission` receipt
        (outputs + modeled device seconds + serving slot).

        ``wait=True`` is the concurrent-submitter mode: when every
        healthy slot is busy the caller blocks (bounded re-scans on the
        slot-freed signal) until one frees up, instead of failing.  A
        fleet with no healthy slot still raises :class:`FleetError` —
        waiting is for contention, not for quarantine recovery.
        """
        batch = np.asarray(images, dtype=np.float32)
        batch = batch.reshape((batch.shape[0],) +
                              self.net.input_shape().as_tuple())
        if not 1 <= batch.shape[0] <= self.config.capacity:
            raise FleetError(
                f"batch of {batch.shape[0]} exceeds fleet capacity"
                f" {self.config.capacity}")
        failures = 0
        attempts = 0
        last_error: Exception | None = None
        while failures < self.config.max_attempts:
            self._heal()
            managed = self._acquire(wait=wait)
            if managed is None:
                break
            attempts += 1
            try:
                outputs, device_seconds = self._invoke(
                    managed, batch, verify=verify)
            except FAILOVER_ERRORS as exc:
                last_error = exc
                failures += 1
                self._record_failure(managed, exc)
                _FAILOVERS.inc(reason=type(exc).__name__)
                with self._lock:
                    self._actions["failover"] += 1
                continue
            finally:
                self._release(managed)
            managed.breaker.record_success()
            self._update_health_gauge()
            _SUBMISSIONS.inc(status="ok")
            with self._lock:
                self._actions["submission"] += 1
            return Submission(outputs=outputs,
                              device_seconds=device_seconds,
                              slot=managed.label, attempts=attempts)
        _SUBMISSIONS.inc(status="failed")
        detail = f" (last error: {last_error})" if last_error else ""
        raise FleetError(
            f"submission failed after {failures} attempt(s);"
            f" {self.healthy_slot_count()} healthy slot(s)"
            f" remain{detail}") from last_error

    # -- slot selection -----------------------------------------------------

    def _next_idle_locked(self) -> ManagedSlot | None:
        """The next idle, healthy, non-draining slot (lock held)."""
        count = len(self.slots)
        for offset in range(count):
            index = (self._cursor + offset) % count
            managed = self.slots[index]
            if managed.busy or managed.draining or \
                    managed.breaker.state == OPEN:
                continue
            self._cursor = (index + 1) % count
            return managed
        return None

    def _acquire(self, *, wait: bool = False) -> ManagedSlot | None:
        """Claim the next non-quarantined idle slot, round-robin.

        ``wait=True``: while no slot is idle but at least one is busy
        (so a release is coming), block on the slot-freed signal and
        re-scan.  The wait is time-bounded, so a signal lost to the
        benign clear/set race below costs one re-scan interval, never
        a hang; and a fleet whose busy slots all quarantined on release
        is noticed at the next re-scan and gives up cleanly.
        """
        while True:
            with self._lock:
                managed = self._next_idle_locked()
                if managed is not None:
                    managed.busy = True
                    return managed
                if not wait or not any(s.busy for s in self.slots):
                    return None
                self._slot_freed.clear()
            self._slot_freed.wait(timeout=0.05)

    def _release(self, managed: ManagedSlot) -> None:
        with self._lock:
            managed.busy = False
            if managed.draining:
                self._reap_drained_locked()
        self._slot_freed.set()

    def _record_failure(self, managed: ManagedSlot,
                        exc: Exception) -> None:
        opened_before = managed.breaker.opened_count
        managed.breaker.record_failure()
        quarantined = managed.breaker.opened_count > opened_before
        if quarantined:
            _QUARANTINES.inc(slot=managed.label)
            _log.warning("slot %s quarantined: %s", managed.label, exc)
        else:
            _log.info("slot %s failure (%s): %s", managed.label,
                      managed.breaker.state, exc)
        with self._lock:
            managed.failures += 1
            if quarantined:
                self._actions["quarantine"] += 1
        self._update_health_gauge()

    # -- recovery -----------------------------------------------------------

    def _heal(self) -> None:
        """Probe every quarantined slot whose recovery window elapsed."""
        with self._lock:
            snapshot = list(self.slots)
        for managed in snapshot:
            with self._lock:
                if managed.busy or managed.draining or \
                        managed.breaker.state != HALF_OPEN:
                    continue
                managed.busy = True
            try:
                self._recover(managed)
            finally:
                self._release(managed)

    def _recover(self, managed: ManagedSlot) -> None:
        """Half-open recovery probe: re-load, rewrite, verify golden."""
        managed.breaker.allow()  # materialize the half-open probe
        with self._lock:
            self._actions["recovery"] += 1
        try:
            self._repair(managed)
            self._probe(managed)
        except FAILOVER_ERRORS as exc:
            self._record_failure(managed, exc)
            return
        managed.breaker.record_success()
        self._update_health_gauge()
        _log.info("slot %s recovered", managed.label)

    def _probe(self, managed: ManagedSlot) -> None:
        """Run the golden probe batch; raises on any divergence."""
        outputs, _ = self._execute(managed, self._probe_in)
        if not np.array_equal(outputs, self._probe_out):
            raise ScrubMismatchError(
                f"slot {managed.label}: probe outputs diverge from the"
                " golden reference")

    # -- execution ----------------------------------------------------------

    def _execute(self, managed: ManagedSlot,
                 batch: np.ndarray) -> tuple[np.ndarray, float]:
        """One watchdogged kernel invocation on a held slot.

        Returns ``(outputs, elapsed)`` where ``elapsed`` is the modeled
        device seconds the invocation took (the watchdogged quantity).
        """
        count = batch.shape[0]
        managed.queue.enqueue_write_buffer(managed.in_buf, batch)
        managed.kernel.set_arg(3, count)
        start = self.clock.now
        event = managed.queue.enqueue_task(managed.kernel)
        elapsed = (self.clock.now - start) + event.device_seconds
        if elapsed > self.config.watchdog_s:
            _WATCHDOG_TRIPS.inc()
            with self._lock:
                self._actions["watchdog_trip"] += 1
            raise WatchdogTimeoutError(
                f"slot {managed.label}: invocation took {elapsed:.1f}s"
                f" (virtual), watchdog deadline is"
                f" {self.config.watchdog_s:.1f}s")
        outputs = managed.queue.enqueue_read_buffer(
            managed.out_buf, count * self._out_size) \
            .reshape(count, self._out_size)
        return outputs, elapsed

    def _invoke(self, managed: ManagedSlot, batch: np.ndarray, *,
                verify: bool) -> tuple[np.ndarray, float]:
        with self._lock:
            managed.submissions += 1
            serial = managed.submissions
        outputs, elapsed = self._execute(managed, batch)
        every = self.config.scrub_every
        if verify or (every > 0 and serial % every == 0):
            self._scrub(managed, batch, outputs)
        return outputs, elapsed

    def _scrub(self, managed: ManagedSlot, batch: np.ndarray,
               outputs: np.ndarray) -> None:
        """Spot-check a held slot: weight digest + golden outputs.

        A mismatch repairs the slot immediately (re-load + rewrite) and
        raises :class:`ScrubMismatchError` so the tainted submission is
        retried; the repair means the slot is trustworthy again as soon
        as its breaker lets it back into rotation.
        """
        digest = hashlib.sha256(
            managed.w_buf.data[:self._packed.size].tobytes()).hexdigest()
        if digest != self._golden_digest:
            _SCRUB_CATCHES.inc(check="digest")
            with self._lock:
                self._actions["scrub_catch"] += 1
            self._repair(managed)
            raise ScrubMismatchError(
                f"slot {managed.label}: weight buffer digest mismatch"
                " (SEU corruption); slot repaired")
        golden = self.golden.forward_batch(batch) \
            .reshape(outputs.shape)
        if not np.array_equal(golden, outputs):
            _SCRUB_CATCHES.inc(check="golden")
            with self._lock:
                self._actions["scrub_catch"] += 1
            self._repair(managed)
            raise ScrubMismatchError(
                f"slot {managed.label}: outputs diverge from the golden"
                " reference; slot repaired")

    # -- elastic capacity ---------------------------------------------------

    def add_instance(self, instance) -> list[str]:
        """Attach every slot of a new instance and put it in rotation.

        The autoscaler's scale-up verb.  AFI load + weight rewrite
        happen outside the fleet lock (attach performs no kernel
        launches); the slots only become acquirable once appended.
        Returns the new slot labels.
        """
        with self._lock:
            ordinal = self._next_ordinal
            self._next_ordinal += 1
        attached = [
            self._attach(f"i{ordinal}.slot{slot.index}", instance, slot)
            for slot in instance.slots]
        with self._lock:
            self.instances.append(instance)
            self.slots.extend(attached)
        self._slot_freed.set()
        self._update_health_gauge()
        _log.info("instance %s joined the fleet: %d new slot(s)",
                  instance.instance_id, len(attached))
        return [m.label for m in attached]

    def drain_instance(self) -> str:
        """Remove the most recently added instance from rotation.

        The autoscaler's scale-down verb.  Idle slots detach
        immediately; busy slots finish their in-flight submission and
        are reaped on release (no work is ever aborted).  The last
        instance cannot be drained.  Returns the drained instance id.
        """
        with self._lock:
            if len(self.instances) <= 1:
                raise FleetError("cannot drain the last fleet instance")
            instance = self.instances.pop()
            for managed in self.slots:
                if managed.instance is instance:
                    managed.draining = True
            self._reap_drained_locked()
        self._update_health_gauge()
        _log.info("instance %s draining out of the fleet",
                  instance.instance_id)
        return instance.instance_id

    def _reap_drained_locked(self) -> None:
        """Drop idle draining slots from the rotation (lock held)."""
        keep = [s for s in self.slots if s.busy or not s.draining]
        if len(keep) != len(self.slots):
            self.slots[:] = keep
            self._cursor %= max(1, len(self.slots))

    # -- introspection ------------------------------------------------------

    def _snapshot_slots(self) -> "list[ManagedSlot]":
        """A point-in-time copy of the slot list (it resizes under the
        lock on ``add_instance``/``drain_instance``)."""
        with self._lock:
            return list(self.slots)

    def healthy_slot_count(self) -> int:
        return sum(1 for s in self._snapshot_slots()
                   if s.breaker.state != OPEN and not s.draining)

    def _update_health_gauge(self) -> None:
        _HEALTHY_SLOTS.set(self.healthy_slot_count())

    def health(self) -> dict[str, SlotState]:
        return {s.label: s.health for s in self._snapshot_slots()}

    def stats(self) -> dict:
        """Deterministic snapshot for reports and manifests."""
        with self._lock:
            actions = dict(sorted(self._actions.items()))
            snapshot = list(self.slots)
            instances = len(self.instances)
        return {
            "instances": instances,
            "slots": {s.label: s.snapshot() for s in snapshot},
            "actions": actions,
            "healthy_slots": sum(
                1 for s in snapshot
                if s.breaker.state != OPEN and not s.draining),
            "quarantined": sorted(
                s.label for s in snapshot
                if s.health is SlotState.QUARANTINED),
        }
