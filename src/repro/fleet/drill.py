"""The fleet survival drill behind ``condor fleet drill``.

A drill builds one real tc1 AFI (through the simulated toolchain + S3 +
AFI service, exactly like the flow does), then runs a seeded
fault-kind × recovery-action × result-correctness matrix: for each
(fault kind, seed) cell a fresh two-instance fleet serves a paced
workload while that kind's device faults fire, recovery windows elapse
on a per-cell virtual clock, and a final *verified* submission is
compared bit-exactly against the reference engine.

Expectations encoded in the report:

* every **recoverable** kind (``seu-bitflip``, ``kernel-hang``,
  ``slow-device``, ``slot-crash``) ends ``ok`` — no quarantined slots
  remain and the final outputs are bit-correct;
* **instance-loss** (a permanent whole-instance fault) ends
  ``degraded`` — the dead instance's slots stay quarantined, work
  survives on the sibling instance, nothing hangs.

Reports are deterministic per seed: slots are labeled by fleet ordinal
(``i0.slot1``), never by raw instance id, and only kind-level injection
tallies are included.
"""

from __future__ import annotations

import numpy as np

from repro.cloud.afi import AFIService
from repro.cloud.f1 import F1Instance
from repro.errors import FleetError
from repro.frontend.condor_format import DeploymentOption, model_from_json
from repro.frontend.weights import WeightStore
from repro.frontend.zoo import tc1_model
from repro.resilience.boundary import breaker_states, inject_faults
from repro.resilience.clock import VirtualClock
from repro.resilience.faults import (
    DEVICE_PATTERN,
    FaultKind,
    FaultPlan,
    FaultSpec,
)
from repro.toolchain.xclbin import read_xclbin
from repro.util.logging import get_logger

from repro.fleet.image import build_fleet_image
from repro.fleet.manager import FleetConfig, FleetManager

__all__ = ["DRILL_KINDS", "RECOVERABLE_KINDS", "run_drill"]

_log = get_logger("fleet.drill")

#: Kinds a healthy fleet must fully absorb: final state ``ok``.
RECOVERABLE_KINDS: tuple[str, ...] = (
    FaultKind.BITFLIP.value,      # seu-bitflip
    FaultKind.KERNEL_HANG.value,  # kernel-hang
    FaultKind.SLOW_DEVICE.value,  # slow-device
    FaultKind.SLOT_CRASH.value,   # slot-crash
)

#: All drilled kinds; ``instance-loss`` must degrade gracefully.
DRILL_KINDS: tuple[str, ...] = RECOVERABLE_KINDS + ("instance-loss",)

#: Drill-tuned fleet policy: tight scrub cadence and a short quarantine
#: so a ten-step paced workload exercises catch → quarantine → recover.
DRILL_CONFIG = FleetConfig(watchdog_s=60.0, scrub_every=2,
                           failure_threshold=2, recovery_s=120.0,
                           max_attempts=12, capacity=4)

#: Paced workload shape (virtual seconds between submissions).
WORKLOAD_STEPS = 10
WORKLOAD_BATCH = 2
WORKLOAD_PACE_S = 30.0


def build_drill_image() -> tuple[AFIService, str, bytes]:
    """Build the tc1 AWS-F1 xclbin and register it as an available AFI.

    Returns ``(afi_service, agfi_id, xclbin_bytes)``; every drill cell
    launches fresh instances against this shared service.
    """
    return build_fleet_image(tc1_model(DeploymentOption.AWS_F1),
                             name="fleet-drill-tc1")


def _specs_for(kind: str, instances: list[F1Instance]) \
        -> list[FaultSpec]:
    """The seeded fault specs one drill cell arms."""
    if kind == FaultKind.BITFLIP.value:
        return [FaultSpec(DEVICE_PATTERN, FaultKind.BITFLIP)]
    if kind == FaultKind.KERNEL_HANG.value:
        return [FaultSpec(DEVICE_PATTERN, FaultKind.KERNEL_HANG,
                          delay_s=600.0)]
    if kind == FaultKind.SLOW_DEVICE.value:
        # sub-watchdog latency weather: absorbed, never tripped
        return [FaultSpec(DEVICE_PATTERN, FaultKind.SLOW_DEVICE,
                          times=2, delay_s=45.0)]
    if kind == FaultKind.SLOT_CRASH.value:
        return [FaultSpec(DEVICE_PATTERN, FaultKind.SLOT_CRASH)]
    if kind == "instance-loss":
        # every slot of the first instance dies on every launch —
        # AFI re-loads revive the card only until the next kernel
        return [FaultSpec(f"device.{instances[0].instance_id}.*",
                          FaultKind.PERMANENT)]
    raise FleetError(f"unknown drill fault kind {kind!r}; known:"
                     f" {list(DRILL_KINDS)}")


def _run_cell(kind: str, seed: int, service: AFIService, agfi_id: str,
              net, weights) -> dict:
    """One (fault kind, seed) drill cell on a fresh two-instance fleet."""
    clock = VirtualClock()
    instances = [F1Instance("f1.4xlarge", service),
                 F1Instance("f1.4xlarge", service)]
    plan = FaultPlan(_specs_for(kind, instances), seed=seed)
    rng = np.random.default_rng(seed * 977 + 11)
    in_shape = net.input_shape().as_tuple()
    workload_errors = 0
    with inject_faults(plan):
        fleet = FleetManager(instances, agfi_id, weights,
                             config=DRILL_CONFIG, clock=clock)
        for _ in range(WORKLOAD_STEPS):
            images = rng.standard_normal(
                (WORKLOAD_BATCH,) + in_shape).astype(np.float32)
            try:
                fleet.run(images)
            except FleetError:
                workload_errors += 1
            clock.sleep(WORKLOAD_PACE_S)
        # settle: let quarantine recovery windows elapse, then keep
        # serving so healing probes fire
        clock.sleep(DRILL_CONFIG.recovery_s)
        for _ in range(len(fleet.slots)):
            images = rng.standard_normal(
                (WORKLOAD_BATCH,) + in_shape).astype(np.float32)
            try:
                fleet.run(images)
            except FleetError:
                workload_errors += 1
            clock.sleep(WORKLOAD_PACE_S)
        # final verified submission, compared bit-exactly to golden
        final = rng.standard_normal(
            (WORKLOAD_BATCH,) + in_shape).astype(np.float32)
        golden = fleet.golden.forward_batch(final) \
            .reshape(WORKLOAD_BATCH, -1)
        try:
            outputs = fleet.run(final, verify=True)
            bit_correct = bool(np.array_equal(outputs, golden))
            final_error = None
        except FleetError as exc:
            bit_correct = False
            final_error = str(exc)
        stats = fleet.stats()
        breakers = breaker_states()

    if bit_correct and workload_errors == 0 and final_error is None:
        status = "ok" if not stats["quarantined"] else "degraded"
    else:
        status = "failed"
    expected = "ok" if kind in RECOVERABLE_KINDS else "degraded"
    injected_by_kind: dict[str, int] = {}
    for (_, fault_kind), count in sorted(plan.injected.items()):
        injected_by_kind[fault_kind] = \
            injected_by_kind.get(fault_kind, 0) + count
    return {
        "kind": kind,
        "seed": seed,
        "recoverable": kind in RECOVERABLE_KINDS,
        "status": status,
        "expected": expected,
        "as_expected": status == expected,
        "bit_correct": bit_correct,
        "workload_errors": workload_errors,
        "final_error": final_error,
        "injected_total": plan.total_injected,
        "injected_by_kind": injected_by_kind,
        "recovery_actions": sorted(
            action for action, count in stats["actions"].items()
            if count > 0 and action not in ("submission",)),
        "actions": stats["actions"],
        "slots": stats["slots"],
        "quarantined": stats["quarantined"],
        "healthy_slots": stats["healthy_slots"],
        "breakers": breakers,
        "virtual_seconds": round(clock.now, 3),
    }


def run_drill(seeds=(0,), kinds: tuple[str, ...] | None = None) -> dict:
    """The full survival matrix: ``kinds`` × ``seeds``.

    Deterministic per (kinds, seeds): rerunning yields an identical
    report.
    """
    kinds = tuple(kinds) if kinds else DRILL_KINDS
    for kind in kinds:
        if kind not in DRILL_KINDS:
            raise FleetError(f"unknown drill fault kind {kind!r};"
                             f" known: {list(DRILL_KINDS)}")
    service, agfi_id, xclbin_bytes = build_drill_image()
    net = model_from_json(read_xclbin(xclbin_bytes).network_json).network
    weights = WeightStore.initialize(net, seed=0)
    cells = []
    for seed in seeds:
        for kind in kinds:
            _log.info("drill cell: kind=%s seed=%d", kind, seed)
            cells.append(_run_cell(kind, seed, service, agfi_id, net,
                                   weights))
    recoverable = [c for c in cells if c["recoverable"]]
    return {
        "model": "tc1",
        "seeds": [int(s) for s in seeds],
        "kinds": list(kinds),
        "cells": cells,
        "cells_total": len(cells),
        "survived_recoverable": all(
            c["status"] == "ok" for c in recoverable),
        "all_as_expected": all(c["as_expected"] for c in cells),
        "any_failed": any(c["status"] == "failed" for c in cells),
    }
