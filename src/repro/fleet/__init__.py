"""Fault-tolerant fleet substrate over simulated F1 instances.

The paper's deployment story ends at "load the AFI on an FPGA slot";
a serving deployment starts there.  This package turns a set of
:class:`~repro.cloud.f1.F1Instance` objects into a health-managed
execution fleet:

* :mod:`repro.fleet.health` — per-slot health state
  (OK → SUSPECT → QUARANTINED) derived from the slot's circuit breaker;
* :mod:`repro.fleet.manager` — :class:`FleetManager`: watchdog
  deadlines on every kernel invocation (virtual clock, no wall-clock
  sleeps), periodic scrubbing against the reference engine's golden
  results and weight-buffer digests, automatic AFI re-load on recovery,
  and failover of in-flight work to healthy slots;
* :mod:`repro.fleet.drill` — the seeded survival drill behind
  ``condor fleet drill``: a fault-kind × recovery-action matrix over
  the device-level chaos kinds.
"""

from repro.fleet.drill import DRILL_KINDS, RECOVERABLE_KINDS, run_drill
from repro.fleet.health import ManagedSlot, SlotState
from repro.fleet.image import (
    SERVABLE_MODELS,
    build_fleet_image,
    servable_model,
)
from repro.fleet.manager import FleetConfig, FleetManager, Submission

__all__ = [
    "DRILL_KINDS",
    "FleetConfig",
    "FleetManager",
    "ManagedSlot",
    "RECOVERABLE_KINDS",
    "SERVABLE_MODELS",
    "SlotState",
    "Submission",
    "build_fleet_image",
    "run_drill",
    "servable_model",
]
