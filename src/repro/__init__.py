"""Condor reproduction — CNN-to-FPGA dataflow acceleration with cloud
integration.

A from-scratch Python implementation of the framework of Raspa, Natale,
Bacis & Santambrogio, *A Framework with Cloud Integration for CNN
Acceleration on FPGA Devices* (RAW/IPDPSW 2018), with the Xilinx
toolchain and AWS F1 substituted by faithful simulated substrates (see
DESIGN.md).

The convenient top-level surface::

    from repro import CondorFlow, FlowInputs, DeploymentOption
    result = CondorFlow("work").run(FlowInputs(prototxt="lenet.prototxt"))

Heavier subsystems (simulator, toolchain, cloud, DSE, quantization) are
imported from their subpackages; see the README for the map.
"""

from repro.errors import CondorError
from repro.flow.condor import CondorFlow, FlowInputs, FlowResult
from repro.frontend.condor_format import (
    CondorModel,
    DeploymentOption,
    LayerHints,
    load_condor_json,
    save_condor_json,
)
from repro.frontend.weights import WeightStore
from repro.ir.network import Network, chain

__version__ = "0.1.0"

__all__ = [
    "CondorError",
    "CondorFlow",
    "FlowInputs",
    "FlowResult",
    "CondorModel",
    "DeploymentOption",
    "LayerHints",
    "load_condor_json",
    "save_condor_json",
    "WeightStore",
    "Network",
    "chain",
    "__version__",
]
