"""Layer→PE mapping and parallelism configuration (paper §3.2).

A PE can implement multiple subsequent logical layers, "so long as they
implement a similar computation (that is, we cluster together in a single PE
either layers from the features extraction part or fully-connected layers)".
Unfolded fully, there is a 1:1 mapping of layers onto PEs — full intra-layer
parallelism.  Orthogonally, each features PE can read ``in_parallel`` input
feature maps and compute ``out_parallel`` output feature maps concurrently
(inter-layer parallelism).  Fully-connected layers are implemented as
single-input/single-output 1×1-convolution PEs (§3.3 step 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MappingError
from repro.frontend.condor_format import CondorModel
from repro.hw.components import PEKind
from repro.ir.layers import (
    ActivationLayer,
    ConvLayer,
    FlattenLayer,
    FullyConnectedLayer,
    Layer,
    PoolLayer,
    SoftmaxLayer,
)
from repro.ir.network import Network
from repro.ir.shapes import TensorShape


@dataclass(frozen=True, slots=True)
class PEMapping:
    """One PE: the (contiguous) layers it implements and its parallelism."""

    name: str
    layer_names: tuple[str, ...]
    in_parallel: int = 1
    out_parallel: int = 1

    def __post_init__(self) -> None:
        if not self.layer_names:
            raise MappingError(f"PE mapping {self.name!r} has no layers")
        if self.in_parallel < 1 or self.out_parallel < 1:
            raise MappingError(
                f"PE mapping {self.name!r}: parallelism must be >= 1")


@dataclass(slots=True)
class MappingConfig:
    """An ordered list of PE mappings covering every compute layer."""

    pes: list[PEMapping] = field(default_factory=list)

    def pe_of(self, layer_name: str) -> PEMapping:
        for pe in self.pes:
            if layer_name in pe.layer_names:
                return pe
        raise KeyError(f"layer {layer_name!r} is not mapped")


def _kind_of_cluster(layers: list[Layer]) -> PEKind:
    if any(isinstance(l, ConvLayer) for l in layers):
        return PEKind.CONV
    if any(isinstance(l, PoolLayer) for l in layers):
        return PEKind.POOL
    if any(isinstance(l, FullyConnectedLayer) for l in layers):
        return PEKind.FC
    if any(isinstance(l, SoftmaxLayer) for l in layers):
        return PEKind.SOFTMAX
    if any(isinstance(l, ActivationLayer) for l in layers):
        return PEKind.ACTIVATION
    raise MappingError(
        f"cannot classify PE for layers {[l.name for l in layers]}")


_FEATURES_TYPES = (ConvLayer, PoolLayer, ActivationLayer)
_CLASSIFIER_TYPES = (FullyConnectedLayer, SoftmaxLayer)


def validate_mapping(net: Network, config: MappingConfig) -> None:
    """Check a mapping against the network and the template's rules.

    * every compute layer mapped exactly once, clusters contiguous and in
      network order;
    * a cluster holds either features-extraction layers or classifier
      layers, never both (§3.2);
    * classifier PEs are single-input/single-output (§3.3 step 4);
    * parallelism degrees cannot exceed the channel counts they unfold;
    * pooling-only PEs preserve channels, so ``in == out``.
    """
    compute = [l.name for l in net.compute_layers()]
    mapped = [name for pe in config.pes for name in pe.layer_names]
    if mapped != compute:
        raise MappingError(
            f"mapping covers {mapped}, network compute layers are"
            f" {compute} (order and coverage must match exactly)")
    names = [pe.name for pe in config.pes]
    if len(set(names)) != len(names):
        raise MappingError(f"duplicate PE names in mapping: {names}")

    for pe in config.pes:
        layers = [net[name] for name in pe.layer_names]
        is_features = all(isinstance(l, _FEATURES_TYPES) for l in layers)
        is_classifier = all(isinstance(l, _CLASSIFIER_TYPES) for l in layers)
        if not (is_features or is_classifier):
            raise MappingError(
                f"PE {pe.name!r} mixes features-extraction and classifier"
                f" layers: {list(pe.layer_names)}")
        kind = _kind_of_cluster(layers)
        if kind is PEKind.FC and (pe.in_parallel != 1 or
                                  pe.out_parallel != 1):
            raise MappingError(
                f"PE {pe.name!r}: fully-connected PEs are single-input/"
                "single-output")
        in_shape = net.input_shape(pe.layer_names[0])
        out_shape = net.output_shape(pe.layer_names[-1])
        if is_features:
            if pe.in_parallel > in_shape.channels:
                raise MappingError(
                    f"PE {pe.name!r}: in_parallel {pe.in_parallel} exceeds"
                    f" input channels {in_shape.channels}")
            if pe.out_parallel > out_shape.channels:
                raise MappingError(
                    f"PE {pe.name!r}: out_parallel {pe.out_parallel}"
                    f" exceeds output channels {out_shape.channels}")
        if kind is PEKind.POOL and pe.in_parallel != pe.out_parallel:
            raise MappingError(
                f"PE {pe.name!r}: pooling preserves feature maps, so"
                " in_parallel must equal out_parallel")


def default_mapping(net: Network) -> MappingConfig:
    """The Table 1 configuration: 1:1 layer→PE, sequential feature maps
    (in = out = 1), full intra-layer parallelism."""
    pes = [PEMapping(name=f"pe_{layer.name}", layer_names=(layer.name,))
           for layer in net.compute_layers()]
    config = MappingConfig(pes=pes)
    validate_mapping(net, config)
    return config


def mapping_from_model(model: CondorModel) -> MappingConfig:
    """Build a mapping from the Condor JSON hints.

    Layers sharing a ``cluster`` id fuse into one PE; ``in_ports`` /
    ``out_ports`` set the parallelism (a cluster takes the max hint of its
    members).  Unhinted layers get their own PE with degree 1.
    """
    net = model.network
    groups: list[tuple[str | None, list[str]]] = []
    for layer in net.compute_layers():
        hint = model.hint_for(layer.name)
        if groups and hint.cluster is not None and \
                groups[-1][0] == hint.cluster:
            groups[-1][1].append(layer.name)
        else:
            groups.append((hint.cluster, [layer.name]))
    taken: set[str] = set()
    pes = []
    for cluster, layer_names in groups:
        from repro.util.naming import unique_name
        base = f"pe_{cluster}" if cluster else f"pe_{layer_names[0]}"
        in_par = max((model.hint_for(n).in_ports or 1) for n in layer_names)
        out_par = max((model.hint_for(n).out_ports or 1)
                      for n in layer_names)
        pes.append(PEMapping(
            name=unique_name(base, taken),
            layer_names=tuple(layer_names),
            in_parallel=in_par,
            out_parallel=out_par,
        ))
    config = MappingConfig(pes=pes)
    validate_mapping(net, config)
    return config
