"""FPGA resource vectors and the device catalog.

The paper deploys on AWS F1, whose FPGA is a Xilinx Virtex UltraScale+
XCVU9P; Table 1 reports utilization as percentages of that device.  A couple
of on-premise boards are included for the ON_PREMISE deployment option.
BRAM is counted in 18 Kb half-blocks (the granularity Vivado reports).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ResourceError

_FIELDS = ("lut", "ff", "dsp", "bram_18k")


@dataclass(frozen=True)
class ResourceVector:
    """An amount of FPGA fabric: LUTs, flip-flops, DSP slices, BRAM (18 Kb)."""

    lut: float = 0.0
    ff: float = 0.0
    dsp: float = 0.0
    bram_18k: float = 0.0

    # Arithmetic is spelled out field by field: these operators run
    # hundreds of thousands of times per DSE sweep and the getattr
    # generator-expression form showed up as a top-five profile entry.

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(self.lut + other.lut,
                              self.ff + other.ff,
                              self.dsp + other.dsp,
                              self.bram_18k + other.bram_18k)

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(self.lut - other.lut,
                              self.ff - other.ff,
                              self.dsp - other.dsp,
                              self.bram_18k - other.bram_18k)

    def __mul__(self, scale: float) -> "ResourceVector":
        return ResourceVector(self.lut * scale, self.ff * scale,
                              self.dsp * scale, self.bram_18k * scale)

    __rmul__ = __mul__

    def ceil(self) -> "ResourceVector":
        """Round every component up to an integer (hardware is discrete)."""
        import math
        return ResourceVector(float(math.ceil(self.lut - 1e-9)),
                              float(math.ceil(self.ff - 1e-9)),
                              float(math.ceil(self.dsp - 1e-9)),
                              float(math.ceil(self.bram_18k - 1e-9)))

    def fits_in(self, capacity: "ResourceVector") -> bool:
        return (self.lut <= capacity.lut and self.ff <= capacity.ff and
                self.dsp <= capacity.dsp and
                self.bram_18k <= capacity.bram_18k)

    def check_fits(self, capacity: "ResourceVector", *,
                   context: str = "design") -> None:
        """Raise :class:`ResourceError` naming the first violated resource."""
        for f in _FIELDS:
            required = getattr(self, f)
            available = getattr(capacity, f)
            if required > available:
                raise ResourceError(
                    f"{context} does not fit on the device",
                    resource=f, required=required, available=available)

    def utilization(self, capacity: "ResourceVector") -> dict[str, float]:
        """Per-resource utilization percentages against ``capacity``."""
        out = {}
        for f in _FIELDS:
            total = getattr(capacity, f)
            out[f] = 100.0 * getattr(self, f) / total if total else 0.0
        return out

    def as_dict(self) -> dict[str, float]:
        return {f: getattr(self, f) for f in _FIELDS}

    def __str__(self) -> str:
        return (f"LUT={self.lut:.0f} FF={self.ff:.0f} DSP={self.dsp:.0f}"
                f" BRAM18={self.bram_18k:.0f}")


@dataclass(frozen=True)
class Device:
    """A target FPGA."""

    name: str
    part: str
    family: str
    capacity: ResourceVector
    #: Highest clock the fabric model allows (Hz).
    fmax_hz: float
    #: Static (leakage + always-on shell) power in watts.
    static_power_w: float
    #: DDR interface count (the F1 card exposes 4 DDR4 channels).
    ddr_channels: int = 1
    #: Bytes/s per DDR channel.
    ddr_bandwidth: float = 16e9
    #: Static platform region (SDAccel shell / PS interface) as counted in
    #: the utilization reports.
    shell: ResourceVector = ResourceVector()


#: Catalog of supported devices, keyed by part name.
DEVICES: dict[str, Device] = {
    "xcvu9p": Device(
        name="AWS F1 (Virtex UltraScale+ VU9P)",
        part="xcvu9p-flgb2104-2-i",
        family="virtexuplus",
        capacity=ResourceVector(lut=1_182_240, ff=2_364_480, dsp=6_840,
                                bram_18k=4_320),
        fmax_hz=250e6,
        static_power_w=3.0,
        ddr_channels=4,
        ddr_bandwidth=16e9,
        shell=ResourceVector(lut=86_000, ff=160_000, dsp=12, bram_18k=14),
    ),
    "xcku115": Device(
        name="Xilinx KCU1500 (Kintex UltraScale KU115)",
        part="xcku115-flvb2104-2-e",
        family="kintexu",
        capacity=ResourceVector(lut=663_360, ff=1_326_720, dsp=5_520,
                                bram_18k=4_320),
        fmax_hz=250e6,
        static_power_w=2.2,
        ddr_channels=4,
        ddr_bandwidth=12e9,
        shell=ResourceVector(lut=62_000, ff=115_000, dsp=10, bram_18k=12),
    ),
    "xc7z020": Device(
        name="Zynq-7020 (PYNQ-Z1 / ZedBoard)",
        part="xc7z020-clg484-1",
        family="zynq",
        capacity=ResourceVector(lut=53_200, ff=106_400, dsp=220,
                                bram_18k=280),
        fmax_hz=150e6,
        static_power_w=0.3,
        ddr_channels=1,
        ddr_bandwidth=4.2e9,
        shell=ResourceVector(lut=9_000, ff=14_000, dsp=2, bram_18k=6),
    ),
}

#: Board name (as written in Condor JSON) -> device part.
BOARDS: dict[str, str] = {
    "aws-f1-xcvu9p": "xcvu9p",
    "aws-f1": "xcvu9p",
    "kcu1500": "xcku115",
    "pynq-z1": "xc7z020",
    "zedboard": "xc7z020",
}


def device_for_board(board: str) -> Device:
    """Resolve a board name (or a bare part name) to a :class:`Device`."""
    part = BOARDS.get(board, board)
    try:
        return DEVICES[part]
    except KeyError:
        known = sorted(set(BOARDS) | set(DEVICES))
        raise ResourceError(
            f"unknown board or part {board!r}; known: {known}") from None
