"""Closed-form performance and power models.

The accelerator is a high-level pipeline of PEs: with a batch of images
streaming through, each PE works on a different image concurrently (this is
what Figure 5 of the paper measures).  For batch size ``B``::

    total cycles  =  Σ_i latency_i  +  (B − 1) · II
    II            =  max_i cycles_i            (the bottleneck stage)

so the mean time per image, ``total / B``, decreases with the batch size and
converges to ``II / f`` — and since per-stage latencies are of the same
order as II, convergence is reached once ``B`` exceeds roughly the number of
pipeline stages, exactly the paper's observation ("convergence is reached
approximately when the batch size is bigger than the total number of layers
of the network").

Per-PE cycle counts follow from the architecture: the window loop is fully
unrolled (one output point per cycle per in×out port pair), feature maps are
processed in sequential groups of the parallelism degree, and a PE that
fuses several logical layers iterates them in its outer loop (their cycles
add up).  These counts are cross-validated against the discrete-event
simulator in the A4 ablation bench.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hw.calibration import DEFAULT_CALIBRATION, Calibration
from repro.hw.components import Accelerator, PEKind, ProcessingElement
from repro.hw.estimate import ResourceEstimate, estimate_accelerator
from repro.hw.resources import device_for_board
from repro.ir.flops import layer_flops
from repro.ir.layers import (
    ActivationLayer,
    ConvLayer,
    FullyConnectedLayer,
    Layer,
    PoolLayer,
    SoftmaxLayer,
)
from repro.ir.network import Network


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def layer_cycles(net: Network, layer: Layer, in_parallel: int,
                 out_parallel: int) -> int:
    """Steady-state cycles one layer contributes to its PE, per image."""
    in_shape = net.input_shape(layer)
    out_shape = net.output_shape(layer)
    if isinstance(layer, ConvLayer):
        out_groups = _ceil_div(layer.num_output, out_parallel)
        in_groups = _ceil_div(in_shape.channels, in_parallel)
        compute = out_groups * in_groups * out_shape.spatial_size
        # the input stream must be ingested once regardless of compute
        ingest = in_groups * in_shape.spatial_size
        return max(compute, ingest)
    if isinstance(layer, PoolLayer):
        groups = _ceil_div(in_shape.channels, in_parallel)
        # the pool PE is ingest-bound: one input element per cycle per port
        return groups * in_shape.spatial_size
    if isinstance(layer, FullyConnectedLayer):
        # single-input/single-output 1×1-conv PE: one MAC per cycle
        return layer.num_output * in_shape.size
    if isinstance(layer, (ActivationLayer, SoftmaxLayer)):
        return in_shape.size
    return 0


def pe_cycles(net: Network, pe: ProcessingElement,
              cal: Calibration = DEFAULT_CALIBRATION) -> int:
    """Steady-state cycles of a PE per image (fused layers add up)."""
    return sum(layer_cycles(net, net[name], pe.in_parallel, pe.out_parallel)
               for name in pe.layer_names)


def pe_fill_cycles(pe: ProcessingElement,
                   cal: Calibration = DEFAULT_CALIBRATION) -> int:
    """Pipeline fill (latency beyond the steady-state cycles)."""
    if pe.kind is PEKind.CONV:
        depth = cal.conv_pipeline_depth
    elif pe.kind is PEKind.FC:
        depth = cal.fc_pipeline_depth
    else:
        depth = cal.pool_pipeline_depth
    # the filter chain adds its buffered span before the first window is
    # complete
    buffered = max((m.spec.buffered_words for m in pe.memory), default=0)
    return depth + buffered


@dataclass
class AcceleratorPerformance:
    """The evaluated performance of one accelerator."""

    accelerator: Accelerator
    frequency_hz: float
    #: Steady-state cycles per PE, in pipeline order.
    stage_cycles: list[int]
    #: Per-PE latency (cycles incl. fill).
    stage_latency: list[int]
    #: FLOPs of one forward pass.
    flops_per_image: int
    #: One-off configuration cycles (weight preload through the datamover).
    config_cycles: int
    #: Cycles the DDR interface needs per image (streamed weights,
    #: spilled buffers, network I/O); part of the II when it dominates.
    ddr_cycles: int = 0

    @property
    def ii_cycles(self) -> int:
        """Steady-state initiation interval: the bottleneck stage, or the
        DDR interface when the design is bandwidth-bound."""
        return max(max(self.stage_cycles), self.ddr_cycles)

    @property
    def bandwidth_bound(self) -> bool:
        return self.ddr_cycles > max(self.stage_cycles)

    @property
    def pipeline_latency_cycles(self) -> int:
        """Cycles for a single image to traverse the empty pipeline."""
        return sum(self.stage_latency)

    def batch_cycles(self, batch: int) -> int:
        if batch < 1:
            raise ValueError("batch must be >= 1")
        return self.pipeline_latency_cycles + (batch - 1) * self.ii_cycles

    def mean_time_per_image(self, batch: int) -> float:
        """Seconds per image at the given batch size (Figure 5's metric)."""
        return self.batch_cycles(batch) / batch / self.frequency_hz

    def throughput_images_per_s(self, batch: int | None = None) -> float:
        if batch is None:
            return self.frequency_hz / self.ii_cycles
        return 1.0 / self.mean_time_per_image(batch)

    def gflops(self, batch: int | None = None) -> float:
        """GFLOP/s; ``batch=None`` gives the steady-state (large-batch)
        value, which is what Tables 1 and 2 report."""
        return (self.flops_per_image *
                self.throughput_images_per_s(batch)) / 1e9


def ddr_bytes_per_image(acc: Accelerator) -> int:
    """DDR bytes moved per image in steady state.

    Always: the network input and output.  Additionally, PEs whose
    weights are spilled stream their full weight set once per image, and
    PEs whose re-read buffer is spilled fetch the input once per extra
    output group (the re-reads an on-chip buffer would have served).
    Fixed-point datapaths move proportionally fewer bytes — the bandwidth
    benefit quantization exists for.
    """
    from repro.quant.scheme import PRECISIONS

    net = acc.network
    word_bytes = (PRECISIONS[acc.pes[0].precision]["bits"] / 8
                  if acc.pes else 4)
    total = (net.input_shape().size + net.output_shape().size) * word_bytes
    for pe in acc.pes:
        bytes_per_word = PRECISIONS[pe.precision]["bits"] / 8
        if pe.weight_words and not pe.weights_on_chip:
            total += pe.weight_words * bytes_per_word
        if pe.buffer_words and not pe.buffer_on_chip:
            out_channels = net.output_shape(pe.layer_names[0]).channels
            groups = _ceil_div(out_channels, pe.out_parallel)
            total += pe.buffer_words * max(groups - 1, 0) * bytes_per_word
    return math.ceil(total)


def ddr_words_per_image(acc: Accelerator) -> int:
    """Backwards-compatible word count (32-bit equivalents)."""
    return math.ceil(ddr_bytes_per_image(acc) / 4)


def estimate_performance(acc: Accelerator,
                         cal: Calibration = DEFAULT_CALIBRATION,
                         *, pe_cache: dict | None = None) \
        -> AcceleratorPerformance:
    """Evaluate the closed-form model for an accelerator.

    ``pe_cache`` maps a :class:`ProcessingElement` to its
    ``(cycles, latency, flops)`` triple so repeated evaluations of
    neighbouring designs (the DSE explorer) skip the per-layer walks for
    PEs that did not change.  Entries assume a fixed network and
    calibration.
    """
    from repro.obs import span

    with span("hw.perf", accelerator=acc.name):
        return _estimate_performance(acc, cal, pe_cache=pe_cache)


def _pe_perf(net: Network, pe: ProcessingElement,
             cal: Calibration) -> tuple[int, int, int]:
    cycles = pe_cycles(net, pe, cal)
    latency = cycles + pe_fill_cycles(pe, cal)
    flops = sum(layer_flops(net[name], net.input_shape(name))
                for name in pe.layer_names)
    return cycles, latency, flops


def _estimate_performance(acc: Accelerator, cal: Calibration,
                          *, pe_cache: dict | None = None) \
        -> AcceleratorPerformance:
    net = acc.network
    triples = []
    for pe in acc.pes:
        if pe_cache is None:
            triple = _pe_perf(net, pe, cal)
        else:
            triple = pe_cache.get(pe)
            if triple is None:
                triple = _pe_perf(net, pe, cal)
                pe_cache[pe] = triple
        triples.append(triple)
    cycles = [t[0] for t in triples]
    latency = [t[1] for t in triples]
    flops = sum(t[2] for t in triples)
    onchip_weight_words = sum(pe.weight_words for pe in acc.pes
                              if pe.weights_on_chip)
    config = math.ceil(onchip_weight_words *
                       cal.weight_load_cycles_per_word)
    device = device_for_board(acc.device_part)
    bytes_per_cycle = (device.ddr_channels * device.ddr_bandwidth /
                       acc.frequency_hz)
    ddr = math.ceil(ddr_bytes_per_image(acc) / bytes_per_cycle)
    return AcceleratorPerformance(
        accelerator=acc,
        frequency_hz=acc.frequency_hz,
        stage_cycles=cycles,
        stage_latency=latency,
        flops_per_image=flops,
        config_cycles=config,
        ddr_cycles=ddr,
    )


def batch_latency_cycles(perf: AcceleratorPerformance, batch: int) -> int:
    """Convenience alias used by the Figure 5 bench."""
    return perf.batch_cycles(batch)


def estimate_power_watts(acc: Accelerator,
                         estimate: ResourceEstimate | None = None,
                         cal: Calibration = DEFAULT_CALIBRATION) -> float:
    """Total power: device static + resource-proportional dynamic + DDR.

    The dynamic term scales with the clock; Table 1's GFLOPS/W column is
    GFLOPS divided by this number.
    """
    device = device_for_board(acc.device_part)
    if estimate is None:
        estimate = estimate_accelerator(acc, cal)
    total = estimate.total
    f = acc.frequency_hz
    dynamic = f * (total.lut * cal.power_per_lut_hz +
                   total.ff * cal.power_per_ff_hz +
                   total.dsp * cal.power_per_dsp_hz +
                   total.bram_18k * cal.power_per_bram18_hz)
    return device.static_power_w + cal.ddr_active_power_w + dynamic
