"""Hardware generation: the spatial dataflow accelerator (paper §3.2).

Sub-modules:

* :mod:`repro.hw.resources` — FPGA device catalog and resource vectors;
* :mod:`repro.hw.calibration` — model constants (fitted once, see DESIGN.md);
* :mod:`repro.hw.components` — PEs, filters, FIFOs, datamover descriptions;
* :mod:`repro.hw.partitioning` — non-uniform memory partitioning [28];
* :mod:`repro.hw.mapping` — layer clustering and parallelism configuration;
* :mod:`repro.hw.accelerator` — the full accelerator graph builder;
* :mod:`repro.hw.estimate` — resource estimation;
* :mod:`repro.hw.perf` — performance (cycles, GFLOPS) and power models.
"""

from repro.hw.resources import DEVICES, Device, ResourceVector, device_for_board
from repro.hw.components import (
    Accelerator,
    DataMover,
    Fifo,
    FilterNode,
    ProcessingElement,
    StreamEdge,
)
from repro.hw.partitioning import FilterChainSpec, partition_window_accesses
from repro.hw.mapping import MappingConfig, PEMapping, default_mapping, mapping_from_model
from repro.hw.accelerator import build_accelerator
from repro.hw.estimate import estimate_accelerator, estimate_pe
from repro.hw.perf import (
    AcceleratorPerformance,
    batch_latency_cycles,
    estimate_performance,
    estimate_power_watts,
)

__all__ = [
    "DEVICES",
    "Device",
    "ResourceVector",
    "device_for_board",
    "Accelerator",
    "DataMover",
    "Fifo",
    "FilterNode",
    "ProcessingElement",
    "StreamEdge",
    "FilterChainSpec",
    "partition_window_accesses",
    "MappingConfig",
    "PEMapping",
    "default_mapping",
    "mapping_from_model",
    "build_accelerator",
    "estimate_accelerator",
    "estimate_pe",
    "AcceleratorPerformance",
    "batch_latency_cycles",
    "estimate_performance",
    "estimate_power_watts",
]
