"""Build the spatial accelerator graph from a network and a mapping.

This is the structural half of flow steps 3–5: every PE is created with its
memory subsystem (filter chain per parallel input map), the inter-PE stream
FIFOs are instantiated, and the datamover is wired for input, output and
weight streams.  The result is consumed by the estimator, the performance
model, the simulator, and the code generator.
"""

from __future__ import annotations

from repro.errors import MappingError
from repro.frontend.condor_format import CondorModel
from repro.hw.components import (
    Accelerator,
    DataMover,
    Fifo,
    FilterNode,
    MemorySubsystem,
    PEKind,
    ProcessingElement,
    StreamEdge,
)
from repro.hw.mapping import (
    MappingConfig,
    _kind_of_cluster,
    default_mapping,
    validate_mapping,
)
from repro.hw.partitioning import partition_window_accesses
from repro.hw.resources import device_for_board
from repro.ir.layers import (
    ConvLayer,
    FullyConnectedLayer,
    Layer,
    PoolLayer,
)
from repro.ir.network import Network
from repro.util.naming import sanitize_identifier

#: Minimum depth of inter-PE / datamover decoupling FIFOs (words).
_STREAM_FIFO_MIN_DEPTH = 32


#: Cap on the decoupling FIFO depth: two maps of slack is cheap for the
#: small feature maps of LeNet/TC1-class networks, but two 224×224 maps
#: would burn hundreds of BRAMs per edge; past this cap the decoupling is
#: partial (large layers stream near-synchronously, as the real design
#: does once maps stop fitting on chip).
_STREAM_FIFO_MAX_DEPTH = 4096


def _stream_depth(consumer_spatial: int) -> int:
    """Inter-PE FIFO sizing rule: two input feature maps of the consumer.

    A PE that computes its output maps in sequential groups ingests in
    bursts (it replays its on-chip buffer between bursts); two maps of
    slack decouple the producer's emission phase from the consumer's
    ingest phase, so the pipeline initiation interval is set by the
    slowest PE rather than by phase alignment.  (Cross-validated against
    the event simulator — see the A4 ablation.)
    """
    return max(_STREAM_FIFO_MIN_DEPTH,
               min(2 * consumer_spatial, _STREAM_FIFO_MAX_DEPTH))


def _max_window(layers: list[Layer]) -> tuple[int, int]:
    kh = kw = 1
    for layer in layers:
        if isinstance(layer, (ConvLayer, PoolLayer)):
            kh = max(kh, layer.kernel[0])
            kw = max(kw, layer.kernel[1])
    return (kh, kw)


def _max_input_width(net: Network, layers: list[Layer]) -> int:
    """Width used to size the filter-chain FIFOs: "the layer with the
    greatest input feature maps size" (§3.2)."""
    widths = [net.input_shape(l).width + 2 * getattr(l, "pad", (0, 0))[1]
              for l in layers if isinstance(l, (ConvLayer, PoolLayer))]
    return max(widths, default=1)


def _weight_words(net: Network, layers: list[Layer]) -> int:
    words = 0
    for layer in layers:
        for shape in layer.weight_shapes(net.input_shape(layer)).values():
            size = 1
            for d in shape:
                size *= d
            words += size
    return words


def _buffer_words(net: Network, layers: list[Layer],
                  out_parallel: int) -> int:
    """On-chip input-activation buffering.

    A conv layer whose output maps are computed in ``g > 1`` sequential
    groups must re-read its input feature maps ``g`` times, so the PE
    buffers the whole input locally.  A fully-connected PE likewise sweeps
    the input once per output neuron.
    """
    words = 0
    for layer in layers:
        in_shape = net.input_shape(layer)
        if isinstance(layer, ConvLayer):
            groups = -(-layer.num_output // out_parallel)
            if groups > 1:
                words = max(words, in_shape.size)
        elif isinstance(layer, FullyConnectedLayer):
            words = max(words, in_shape.size)
    return words


def build_pe(net: Network, pe_map, precision: str) -> ProcessingElement:
    """Construct one PE from its mapping entry.

    Pure in ``(net, pe_map, precision)``: the result carries the default
    storage placement (everything on chip) — :func:`build_accelerator`
    applies the spill policy afterwards via ``dataclasses.replace``, so a
    PE built here is safe to share across accelerator builds.  The DSE
    evaluator caches these keyed by ``(pe_map, precision)``: a candidate
    move changes a single PE's parallelism, so every other PE of the
    configuration is a cache hit.
    """
    layers = [net[name] for name in pe_map.layer_names]
    kind = _kind_of_cluster(layers)
    window = _max_window(layers) if kind in (PEKind.CONV, PEKind.POOL) \
        else (1, 1)
    memory: tuple[MemorySubsystem, ...] = ()
    if kind in (PEKind.CONV, PEKind.POOL):
        width = _max_input_width(net, layers)
        spec = partition_window_accesses(window, width)
        subsystems = []
        for port in range(pe_map.in_parallel):
            base = f"{sanitize_identifier(pe_map.name)}_mem{port}"
            filters = tuple(
                FilterNode(name=f"{base}_f{i}", offset=offset,
                           position=i)
                for i, offset in enumerate(spec.accesses))
            fifos = tuple(
                Fifo(name=f"{base}_fifo{i}", depth=depth)
                for i, depth in enumerate(spec.fifo_depths))
            subsystems.append(MemorySubsystem(
                name=base, filters=filters, fifos=fifos, spec=spec))
        memory = tuple(subsystems)
    return ProcessingElement(
        name=sanitize_identifier(pe_map.name),
        kind=kind,
        layer_names=pe_map.layer_names,
        in_parallel=pe_map.in_parallel,
        out_parallel=pe_map.out_parallel,
        memory=memory,
        window=window,
        weight_words=_weight_words(net, layers),
        buffer_words=_buffer_words(net, layers, pe_map.out_parallel),
        precision=precision,
    )


def build_accelerator(model: CondorModel,
                      mapping: MappingConfig | None = None,
                      *, pe_cache: dict | None = None) -> Accelerator:
    """Construct the accelerator for ``model``.

    When ``mapping`` is omitted it is derived from the model's hardware
    hints (falling back to the 1:1 default when there are none).
    ``pe_cache`` (keyed ``(pe_map, precision)`` → :class:`ProcessingElement`)
    lets a caller that builds many neighbouring configurations — the DSE
    explorer — reuse the PEs that did not change between them.
    """
    net = model.network
    device = device_for_board(model.board)
    if mapping is None:
        from repro.hw.mapping import mapping_from_model
        mapping = mapping_from_model(model) if model.hints \
            else default_mapping(net)
    validate_mapping(net, mapping)

    acc = Accelerator(
        name=sanitize_identifier(net.name),
        network=net,
        device_part=device.part.split("-")[0],
        frequency_hz=model.frequency_hz,
    )

    for pe_map in mapping.pes:
        if pe_cache is None:
            pe = build_pe(net, pe_map, model.precision)
        else:
            key = (pe_map, model.precision)
            pe = pe_cache.get(key)
            if pe is None:
                pe = build_pe(net, pe_map, model.precision)
                pe_cache[key] = pe
        acc.pes.append(pe)

    _assign_storage_placement(acc, device)
    _wire_streams(acc)
    return acc


def _assign_storage_placement(acc: Accelerator, device) -> None:
    """Spill-to-DDR policy (§3.2).

    All weights and re-read buffers start on chip; while the total exceeds
    the allowed fraction of device BRAM, the single largest on-chip
    consumer moves to DDR streaming.  For small networks (TC1, LeNet)
    nothing spills — Table 1's BRAM column depends on that — while VGG-16
    sheds its large conv weights and early activation buffers.
    """
    import dataclasses

    from repro.hw.calibration import DEFAULT_CALIBRATION as _cal

    budget_words = (device.capacity.bram_18k * _cal.bram18_words *
                    _cal.onchip_storage_fraction)

    def consumers() -> list[tuple[float, int, str]]:
        out = []
        for i, pe in enumerate(acc.pes):
            if pe.weight_words and pe.weights_on_chip:
                out.append((pe.weight_words * _cal.weight_pingpong, i,
                            "weights"))
            if pe.buffer_words and pe.buffer_on_chip:
                out.append((float(pe.buffer_words), i, "buffer"))
        return out

    while True:
        live = consumers()
        total = sum(words for words, _, _ in live)
        if total <= budget_words or not live:
            return
        _, index, kind = max(live)
        pe = acc.pes[index]
        if kind == "weights":
            acc.pes[index] = dataclasses.replace(pe, weights_on_chip=False)
        else:
            acc.pes[index] = dataclasses.replace(pe, buffer_on_chip=False)


def _wire_streams(acc: Accelerator) -> None:
    """Create the stream edges: datamover → first PE, PE → PE, last PE →
    datamover, plus one weight stream per weight-carrying PE."""
    if not acc.pes:
        raise MappingError("accelerator has no PEs")
    net = acc.network
    dm = acc.datamover.name

    def consumer_unit(pe: ProcessingElement) -> int:
        """The consumer's ingest unit: one *group* of feature maps
        (``in_parallel`` maps move together) for features PEs, the whole
        input vector for classifier PEs (which sweep all of it before
        producing anything)."""
        shape = net.input_shape(pe.layer_names[0])
        if pe.kind in (PEKind.FC, PEKind.SOFTMAX):
            return shape.size
        return shape.spatial_size * pe.in_parallel

    first = acc.pes[0]
    acc.edges.append(StreamEdge(
        source=dm, dest=first.name,
        fifo=Fifo(name=f"{first.name}_in",
                  depth=_stream_depth(consumer_unit(first)))))

    for producer, consumer in zip(acc.pes, acc.pes[1:]):
        acc.edges.append(StreamEdge(
            source=producer.name, dest=consumer.name,
            fifo=Fifo(name=f"{producer.name}_to_{consumer.name}",
                      depth=_stream_depth(consumer_unit(consumer)))))

    last = acc.pes[-1]
    acc.edges.append(StreamEdge(
        source=last.name, dest=dm,
        fifo=Fifo(name=f"{last.name}_out", depth=_STREAM_FIFO_MIN_DEPTH)))

    for pe in acc.pes:
        if pe.weight_words:
            acc.edges.append(StreamEdge(
                source=dm, dest=pe.name,
                fifo=Fifo(name=f"{pe.name}_weights",
                          depth=_STREAM_FIFO_MIN_DEPTH)))

    ports = sum(1 for e in acc.edges
                if dm in (e.source, e.dest))
    acc.datamover = DataMover(name=dm, stream_ports=ports)
