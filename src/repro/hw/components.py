"""Structural description of the generated accelerator (paper §3.2, Fig. 4).

The accelerator is "a composition of a set of building blocks with different
functionalities": *PEs* implement the layer computation, *filters* feed the
PEs and realize on-chip buffering via non-uniform memory partitioning,
*FIFOs* implement every communication channel, and a custom *datamover*
exchanges input/output/weights/partials with the on-board memory over
streaming connections.

These dataclasses are the shared vocabulary of the estimator, the
performance model, the simulator and the code generator; they describe
structure only — behaviour lives in those consumers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import HardwareError
from repro.hw.partitioning import FilterChainSpec
from repro.ir.network import Network
from repro.ir.shapes import TensorShape


class PEKind(enum.Enum):
    """What computation a PE implements."""

    CONV = "conv"
    POOL = "pool"
    FC = "fc"
    ACTIVATION = "activation"
    SOFTMAX = "softmax"


@dataclass(frozen=True)
class Fifo:
    """A FIFO channel: ``depth`` 32-bit words.

    FIFOs appear in two roles: inside a filter chain (where the depth equals
    the spatial distance between the two accesses at its ends, §3.2) and as
    inter-PE / datamover stream channels.
    """

    name: str
    depth: int
    width_bits: int = 32

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise HardwareError(f"fifo {self.name!r}: depth must be >= 1")
        if self.width_bits < 1:
            raise HardwareError(f"fifo {self.name!r}: width must be >= 1")

    @property
    def bits(self) -> int:
        return self.depth * self.width_bits


@dataclass(frozen=True)
class FilterNode:
    """One filter of a memory pipeline.

    Represents a single access of the sliding window: it forwards the input
    stream to the next filter and extracts the elements belonging to its
    data domain (``offset`` within the window) for the PE.
    """

    name: str
    #: (row, col) access offset inside the window.
    offset: tuple[int, int]
    #: Position in the (inverse-lexicographic) pipeline, 0 = first.
    position: int


@dataclass(frozen=True)
class MemorySubsystem:
    """The filter pipeline + interleaved FIFOs for one parallel input map."""

    name: str
    filters: tuple[FilterNode, ...]
    fifos: tuple[Fifo, ...]
    spec: FilterChainSpec

    def __post_init__(self) -> None:
        if len(self.fifos) != max(len(self.filters) - 1, 0):
            raise HardwareError(
                f"memory subsystem {self.name!r}: need exactly one FIFO"
                " between consecutive filters")


@dataclass(frozen=True)
class ProcessingElement:
    """A PE, possibly implementing several fused logical layers (§3.2).

    ``in_parallel``/``out_parallel`` are the inter-layer parallelism degrees:
    how many input feature maps are read, and output feature maps computed,
    concurrently.  ``memory`` holds one subsystem per parallel input map
    (empty for classifier PEs — the 1×1 window needs no filter chain,
    §3.3 step 4).
    """

    name: str
    kind: PEKind
    #: Names of the logical layers fused into this PE, in network order.
    layer_names: tuple[str, ...]
    in_parallel: int = 1
    out_parallel: int = 1
    memory: tuple[MemorySubsystem, ...] = ()
    #: Window fully unrolled (full intra-layer parallelism)?
    unroll_window: bool = True
    #: Max window size across fused layers (1,1 for classifier PEs).
    window: tuple[int, int] = (1, 1)
    #: Weight words of the fused layers (ping-pong excluded).
    weight_words: int = 0
    #: Input-activation buffer words (for sequential re-reads).
    buffer_words: int = 0
    #: Storage placement (paper §3.2: "we rely on the on-board memory to
    #: transfer input, output, weights and store partial results when
    #: they do not fit on the on-chip storage").  When False, the data
    #: streams from DDR through the datamover and only a small staging
    #: buffer stays on chip.
    weights_on_chip: bool = True
    buffer_on_chip: bool = True
    #: Datapath precision of the PE arithmetic and local storage.
    precision: str = "fp32"

    def __post_init__(self) -> None:
        if not self.layer_names:
            raise HardwareError(f"PE {self.name!r} implements no layers")
        if self.in_parallel < 1 or self.out_parallel < 1:
            raise HardwareError(
                f"PE {self.name!r}: parallelism degrees must be >= 1")
        if self.kind in (PEKind.CONV, PEKind.POOL) and \
                len(self.memory) != self.in_parallel:
            raise HardwareError(
                f"PE {self.name!r}: features PEs need one memory subsystem"
                f" per parallel input map ({self.in_parallel}),"
                f" got {len(self.memory)}")

    @property
    def mac_units(self) -> int:
        """Concurrent multiply-accumulate window engines."""
        if self.kind in (PEKind.POOL, PEKind.ACTIVATION, PEKind.SOFTMAX):
            return 0
        return self.in_parallel * self.out_parallel

    @property
    def window_size(self) -> int:
        return self.window[0] * self.window[1]


@dataclass(frozen=True)
class DataMover:
    """The custom datamover interfacing the accelerator with DDR."""

    name: str = "datamover"
    #: Streaming connections to the accelerator (weights, input, output,
    #: partial results).
    stream_ports: int = 2


@dataclass(frozen=True)
class StreamEdge:
    """A directed stream connection between two components, over a FIFO."""

    source: str
    dest: str
    fifo: Fifo


@dataclass
class Accelerator:
    """The complete generated accelerator for one network."""

    name: str
    network: Network
    device_part: str
    frequency_hz: float
    pes: list[ProcessingElement] = field(default_factory=list)
    datamover: DataMover = field(default_factory=DataMover)
    edges: list[StreamEdge] = field(default_factory=list)

    def pe_for_layer(self, layer_name: str) -> ProcessingElement:
        for pe in self.pes:
            if layer_name in pe.layer_names:
                return pe
        raise KeyError(f"no PE implements layer {layer_name!r}")

    def pe(self, name: str) -> ProcessingElement:
        for pe in self.pes:
            if pe.name == name:
                return pe
        raise KeyError(f"no PE named {name!r}")

    def all_fifos(self) -> list[Fifo]:
        """Every FIFO in the design (filter-chain + stream edges)."""
        fifos = [edge.fifo for edge in self.edges]
        for pe in self.pes:
            for subsystem in pe.memory:
                fifos.extend(subsystem.fifos)
        return fifos

    def input_shape_of(self, pe: ProcessingElement) -> TensorShape:
        return self.network.input_shape(pe.layer_names[0])

    def output_shape_of(self, pe: ProcessingElement) -> TensorShape:
        return self.network.output_shape(pe.layer_names[-1])

    def summary(self) -> str:
        from repro.util.tables import TextTable

        table = TextTable(
            ["PE", "kind", "layers", "in||", "out||", "window", "filters"])
        for pe in self.pes:
            n_filters = sum(len(m.filters) for m in pe.memory)
            table.add_row([
                pe.name, pe.kind.value, ",".join(pe.layer_names),
                pe.in_parallel, pe.out_parallel,
                f"{pe.window[0]}x{pe.window[1]}", n_filters,
            ])
        return table.render()
