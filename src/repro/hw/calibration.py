"""Model constants for resource, timing and power estimation.

These constants were fitted once against the paper's Table 1 (TC1 and LeNet
on the F1 VU9P at the stated frequencies and the stated mapping: one PE per
layer, sequential feature-map processing, full intra-layer parallelism) and
then frozen; every benchmark regenerates its numbers through the models, the
constants are never tuned per experiment.

The structural story the constants encode (derived in DESIGN.md):

* floating-point arithmetic on UltraScale+ costs 3 DSP per fp32 multiply and
  2 per fp32 add (the Xilinx floating-point operator defaults Vivado HLS
  uses);
* "full intra-layer parallelism" means the kernel-window MAC loop of a conv
  PE is fully unrolled — one output point per cycle — so a K×K window costs
  K² multipliers plus a (K²−1)-adder reduction tree;
* weights are held on-chip in BRAM and (re)loaded at runtime through the
  datamover (paper §3.1.1: weights are external files loaded dynamically,
  with no re-synthesis).  This is what makes LeNet's BRAM dominate Table 1:
  ip1 alone is 400 k fp32 words.  A ping-pong factor covers the update path;
* a features PE whose output maps are computed sequentially must re-read its
  input feature maps C_out times, so it buffers them on-chip;
* the SDAccel shell + datamover contribute a large constant LUT/FF term,
  which is why TC1 and LeNet report nearly the same LUT% in Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Calibration:
    """All fitted constants in one (immutable) place."""

    # -- arithmetic -----------------------------------------------------------
    dsp_per_fmul: int = 3
    dsp_per_fadd: int = 2
    #: LUT/FF that accompany each floating-point operator instance.
    lut_per_fop: float = 120.0
    ff_per_fop: float = 260.0

    # -- PEs --------------------------------------------------------------------
    pe_base_lut: float = 1_400.0
    pe_base_ff: float = 2_100.0
    #: Extra control logic per fused logical layer beyond the first
    #: (the outer layer-select loop and port conditionals of §3.2).
    pe_fused_layer_lut: float = 450.0
    pe_fused_layer_ff: float = 600.0
    #: Per stream port (AXI4-Stream interface + handshake).
    pe_port_lut: float = 320.0
    pe_port_ff: float = 480.0
    #: Pooling comparator / accumulator per parallel map (LUT-only).
    pool_op_lut: float = 90.0
    pool_op_ff: float = 140.0

    # -- filters (memory subsystem) ---------------------------------------------
    filter_lut: float = 180.0
    filter_ff: float = 240.0

    # -- FIFOs -------------------------------------------------------------------
    #: Depth (in 32-bit words) up to which a FIFO maps to LUTRAM/SRL.
    fifo_lutram_max_depth: int = 64
    fifo_lutram_lut_per_word: float = 0.6
    fifo_base_lut: float = 40.0
    fifo_base_ff: float = 60.0
    #: 18 Kb BRAM: 512 words of 36 bits; a 32-bit FIFO consumes
    #: ceil(depth/512) blocks.
    bram18_words: int = 512

    # -- on-chip weight / activation storage ---------------------------------------
    #: Ping-pong (double-buffer) factor for runtime-reloadable weights.
    weight_pingpong: float = 1.4
    #: Total fraction of device BRAM the generator may allocate to
    #: on-chip weights + re-read buffers; when exceeded, the largest
    #: consumers spill to DDR one by one (§3.2's spill rule: "we rely on
    #: the on-board memory ... when they do not fit on the on-chip
    #: storage").
    onchip_storage_fraction: float = 0.70

    # -- datamover ------------------------------------------------------------------
    datamover_lut: float = 9_000.0
    datamover_ff: float = 14_000.0
    datamover_dsp: float = 6.0
    datamover_bram: float = 16.0
    datamover_port_lut: float = 350.0
    datamover_port_ff: float = 520.0

    # -- platform shell (SDAccel static region as seen by the kernel report) -------
    shell_lut: float = 86_000.0
    shell_ff: float = 160_000.0
    shell_dsp: float = 12.0
    shell_bram: float = 14.0

    # -- timing ------------------------------------------------------------------
    #: Pipeline fill depth of a conv PE (window reduction tree + accumulate).
    conv_pipeline_depth: int = 12
    pool_pipeline_depth: int = 4
    fc_pipeline_depth: int = 10
    #: Cycles per weight word when (re)loading weights from DDR.
    weight_load_cycles_per_word: float = 1.0

    # -- frequency-closure model (used by the xocc link stage) ----------------------
    #: Fraction of device fmax reachable at low utilization.
    fmax_headroom: float = 1.0
    #: Achievable frequency degrades linearly with LUT utilization beyond
    #: this knee.
    timing_knee_utilization: float = 0.55
    timing_slope: float = 0.9

    # -- power ------------------------------------------------------------------------
    #: Dynamic power coefficients, watts per (unit × Hz).
    power_per_lut_hz: float = 4.0e-14
    power_per_ff_hz: float = 1.5e-14
    power_per_dsp_hz: float = 6.0e-12
    #: BRAM dynamic power is dominated by access activity, not capacity;
    #: most of LeNet's weight BRAM is idle in any given cycle, so the
    #: per-block coefficient is small.
    power_per_bram18_hz: float = 2.0e-12
    #: Datamover / DDR interface activity power (W, frequency-independent).
    ddr_active_power_w: float = 1.1

    # -- DSE defaults -------------------------------------------------------------------
    #: Fraction of device DSPs the explorer may allocate to MAC trees.
    dse_dsp_budget_fraction: float = 0.60
    #: Fraction of device BRAM the explorer may allocate.
    dse_bram_budget_fraction: float = 0.75
    #: Maximum stream ports per PE side (AXI interconnect practicality).
    max_ports: int = 16


#: The frozen calibration used everywhere unless a caller overrides it.
DEFAULT_CALIBRATION = Calibration()
