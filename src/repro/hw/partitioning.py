"""Non-uniform memory partitioning of the data-reuse buffer.

Implements the microarchitecture of Cong et al., DAC'14 [28], which the
paper uses for the features-extraction memory subsystem (§3.2): for each
input feature map read in parallel, a pipeline of *filters* interleaved by
FIFOs.

Each filter corresponds to one access of the sliding window — one point
(m, n) of the K_h×K_w stencil.  Data streams through the pipeline in raster
order; the FIFO between two consecutive filters buffers exactly the elements
that are *spatially located between* the two accesses, so its depth equals
the distance between the two access offsets linearized on the input row
width.  Consequently the total on-chip storage is the span between the first
and last access — ``(K_h − 1)·W + (K_w − 1)`` words, the classic reuse
distance — instead of the K_h·W full line buffer, and all K_h·K_w window
elements can be read concurrently with no memory-port contention.

For the pipeline to run without stalls, the filters are ordered in
*lexicographically inverse* order of their access offsets (the access that
sees each element latest is the first to receive it from the stream): the
stream enters at the (K_h−1, K_w−1) access and exits at (0, 0).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareError


@dataclass(frozen=True)
class FilterChainSpec:
    """The computed structure of one filter pipeline.

    ``accesses`` are window offsets in pipeline order (lexicographically
    inverse); ``fifo_depths[i]`` is the depth of the FIFO between
    ``accesses[i]`` and ``accesses[i+1]``.
    """

    window: tuple[int, int]
    input_width: int
    accesses: tuple[tuple[int, int], ...]
    fifo_depths: tuple[int, ...]

    @property
    def num_filters(self) -> int:
        return len(self.accesses)

    @property
    def buffered_words(self) -> int:
        """Total on-chip words held in the inter-filter FIFOs."""
        return sum(self.fifo_depths)

    @property
    def full_linebuffer_words(self) -> int:
        """What a conventional K_h-row line buffer would store (for the
        partitioning-ablation bench)."""
        return self.window[0] * self.input_width


def window_accesses_inverse_lex(window: tuple[int, int]) -> \
        list[tuple[int, int]]:
    """All (row, col) offsets of a window in lexicographically inverse
    order — the required filter ordering [28]."""
    kh, kw = window
    return [(m, n)
            for m in range(kh - 1, -1, -1)
            for n in range(kw - 1, -1, -1)]


def partition_window_accesses(window: tuple[int, int],
                              input_width: int) -> FilterChainSpec:
    """Build the filter-chain spec for a window sliding over rows of
    ``input_width`` elements.

    The linear position of access (m, n) in raster order is
    ``m·input_width + n``; the FIFO between consecutive accesses in the
    inverse-lex chain holds the elements between their linear positions.
    A zero distance (only possible for a 1×1 window, which yields a single
    filter and no FIFOs) never produces a FIFO.
    """
    kh, kw = window
    if kh < 1 or kw < 1:
        raise HardwareError(f"invalid window {window}")
    if input_width < kw:
        raise HardwareError(
            f"window {window} wider than the input row ({input_width})")
    accesses = window_accesses_inverse_lex(window)
    depths: list[int] = []
    for (m0, n0), (m1, n1) in zip(accesses, accesses[1:]):
        pos0 = m0 * input_width + n0
        pos1 = m1 * input_width + n1
        distance = pos0 - pos1
        if distance <= 0:
            raise HardwareError(
                "filter ordering violated: non-positive reuse distance"
                f" between {(m0, n0)} and {(m1, n1)}")
        depths.append(distance)
    return FilterChainSpec(
        window=(kh, kw),
        input_width=input_width,
        accesses=tuple(accesses),
        fifo_depths=tuple(depths),
    )
