"""Resource estimation for accelerator components.

Produces the LUT/FF/DSP/BRAM numbers the simulated Vivado HLS reports and
the xocc link stage checks against the device; Table 1's utilization
columns come from :func:`estimate_accelerator` through the full flow.
All constants live in :mod:`repro.hw.calibration`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.hw.calibration import DEFAULT_CALIBRATION, Calibration
from repro.hw.components import (
    Accelerator,
    DataMover,
    Fifo,
    PEKind,
    ProcessingElement,
)
from repro.hw.resources import ResourceVector


def _bram_blocks(words: int, cal: Calibration) -> int:
    """18 Kb blocks for ``words`` 32-bit words (512 words per block)."""
    return math.ceil(words / cal.bram18_words) if words > 0 else 0


def estimate_fifo(fifo: Fifo, cal: Calibration = DEFAULT_CALIBRATION) \
        -> ResourceVector:
    """A FIFO maps to LUTRAM/SRL up to the threshold depth, BRAM above."""
    if fifo.depth <= cal.fifo_lutram_max_depth:
        lut = cal.fifo_base_lut + cal.fifo_lutram_lut_per_word * fifo.depth
        return ResourceVector(lut=lut, ff=cal.fifo_base_ff)
    blocks = _bram_blocks(fifo.depth, cal) * math.ceil(fifo.width_bits / 36)
    return ResourceVector(lut=cal.fifo_base_lut, ff=cal.fifo_base_ff,
                          bram_18k=blocks)


def _mac_tree(pe: ProcessingElement, cal: Calibration) -> ResourceVector:
    """Arithmetic of one PE: ``mac_units`` window engines.

    With the window unrolled (full intra-layer parallelism) each engine
    has ``window_size`` multipliers, a ``window_size − 1`` adder reduction
    tree, and an accumulate/bias adder.  fp32 operators cost 3 (mul) / 2
    (add) DSP; fixed-point MACs use the packed-DSP costs of
    :data:`repro.quant.scheme.PRECISIONS` and proportionally less fabric.
    """
    if pe.mac_units == 0:
        return ResourceVector()
    ws = pe.window_size if pe.unroll_window else 1
    muls = ws
    adds = (ws - 1) + 1  # reduction tree + accumulator/bias
    if pe.precision == "fp32":
        dsp = pe.mac_units * (muls * cal.dsp_per_fmul +
                              adds * cal.dsp_per_fadd)
        op_scale = 1.0
    else:
        from repro.quant.scheme import PRECISIONS

        info = PRECISIONS[pe.precision]
        dsp = math.ceil(pe.mac_units * ws * info["dsp_per_mac"])
        op_scale = info["bits"] / 32.0
    fops = pe.mac_units * (muls + adds)
    return ResourceVector(lut=fops * cal.lut_per_fop * op_scale,
                          ff=fops * cal.ff_per_fop * op_scale,
                          dsp=dsp)


def _storage_words(pe: ProcessingElement, words: int) -> int:
    """On-chip storage scales with the datapath word width (two int16 or
    four int8 values pack per 32-bit word)."""
    from repro.quant.scheme import PRECISIONS

    bits = PRECISIONS[pe.precision]["bits"]
    return math.ceil(words * bits / 32.0)


def estimate_pe_core(pe: ProcessingElement,
                     cal: Calibration = DEFAULT_CALIBRATION) \
        -> ResourceVector:
    """Resources of the PE kernel alone (what Vivado HLS reports for the
    PE source): control, ports, MAC trees and on-chip storage — without
    the filter-chain memory subsystem, which is synthesized as separate
    filter kernels and composed at the layer-IP level."""
    total = ResourceVector(lut=cal.pe_base_lut, ff=cal.pe_base_ff)
    extra_layers = len(pe.layer_names) - 1
    total += ResourceVector(lut=extra_layers * cal.pe_fused_layer_lut,
                            ff=extra_layers * cal.pe_fused_layer_ff)
    ports = pe.in_parallel + pe.out_parallel
    total += ResourceVector(lut=ports * cal.pe_port_lut,
                            ff=ports * cal.pe_port_ff)
    total += _mac_tree(pe, cal)
    if pe.kind is PEKind.POOL:
        ops = pe.out_parallel * pe.window_size
        total += ResourceVector(lut=ops * cal.pool_op_lut,
                                ff=ops * cal.pool_op_ff)
    if pe.weight_words:
        if pe.weights_on_chip:
            words = math.ceil(pe.weight_words * cal.weight_pingpong)
        else:
            # streamed from DDR: double-buffer one output group's slice
            words = 2 * pe.window_size * pe.in_parallel * pe.out_parallel \
                * max(len(pe.layer_names), 1) * 64
            words = min(words, pe.weight_words)
        total += ResourceVector(
            bram_18k=max(1, _bram_blocks(_storage_words(pe, words), cal)))
    if pe.buffer_words:
        if pe.buffer_on_chip:
            words = pe.buffer_words
        else:
            # DDR spill: keep only a staging window of rows on chip
            words = min(pe.buffer_words, 4096)
        total += ResourceVector(
            bram_18k=_bram_blocks(_storage_words(pe, words), cal))
    return total.ceil()


def estimate_memory_subsystems(pe: ProcessingElement,
                               cal: Calibration = DEFAULT_CALIBRATION) \
        -> ResourceVector:
    """Resources of a PE's filter chains and their interleaving FIFOs."""
    total = ResourceVector()
    for subsystem in pe.memory:
        total += ResourceVector(
            lut=len(subsystem.filters) * cal.filter_lut,
            ff=len(subsystem.filters) * cal.filter_ff)
        for fifo in subsystem.fifos:
            total += estimate_fifo(fifo, cal)
    return total.ceil()


def estimate_pe(pe: ProcessingElement,
                cal: Calibration = DEFAULT_CALIBRATION) -> ResourceVector:
    """Resources of a PE including its memory subsystem and local storage."""
    return estimate_pe_core(pe, cal) + estimate_memory_subsystems(pe, cal)


def estimate_datamover(dm: DataMover,
                       cal: Calibration = DEFAULT_CALIBRATION) \
        -> ResourceVector:
    return ResourceVector(
        lut=cal.datamover_lut + dm.stream_ports * cal.datamover_port_lut,
        ff=cal.datamover_ff + dm.stream_ports * cal.datamover_port_ff,
        dsp=cal.datamover_dsp,
        bram_18k=cal.datamover_bram,
    ).ceil()


@dataclass
class ResourceEstimate:
    """Per-component breakdown plus the total."""

    components: dict[str, ResourceVector] = field(default_factory=dict)

    @property
    def total(self) -> ResourceVector:
        total = ResourceVector()
        for vec in self.components.values():
            total += vec
        return total

    def utilization(self, capacity: ResourceVector) -> dict[str, float]:
        return self.total.utilization(capacity)

    def summary(self, capacity: ResourceVector | None = None) -> str:
        from repro.util.tables import TextTable

        table = TextTable(["component", "LUT", "FF", "DSP", "BRAM18"])
        for name, vec in self.components.items():
            table.add_row([name, vec.lut, vec.ff, vec.dsp, vec.bram_18k])
        total = self.total
        table.add_row(["TOTAL", total.lut, total.ff, total.dsp,
                       total.bram_18k])
        if capacity is not None:
            util = total.utilization(capacity)
            table.add_row(["% of device", util["lut"], util["ff"],
                           util["dsp"], util["bram_18k"]])
        return table.render()


def estimate_accelerator(acc: Accelerator,
                         cal: Calibration = DEFAULT_CALIBRATION,
                         *, include_shell: bool = True,
                         pe_cache: dict | None = None) -> ResourceEstimate:
    """Estimate the whole design (optionally including the static shell,
    which Table 1's percentages contain).

    ``pe_cache`` maps a :class:`ProcessingElement` (frozen, hashable) to
    its :class:`ResourceVector`; callers that estimate many neighbouring
    designs — the DSE explorer — pass one so unchanged PEs are not
    re-estimated.  Entries are valid for a fixed calibration only.
    """
    from repro.obs import span

    with span("hw.estimate", accelerator=acc.name):
        return _estimate_accelerator(acc, cal, include_shell=include_shell,
                                     pe_cache=pe_cache)


def _estimate_accelerator(acc: Accelerator, cal: Calibration,
                          *, include_shell: bool,
                          pe_cache: dict | None = None) -> ResourceEstimate:
    estimate = ResourceEstimate()
    if include_shell:
        estimate.components["shell"] = ResourceVector(
            lut=cal.shell_lut, ff=cal.shell_ff, dsp=cal.shell_dsp,
            bram_18k=cal.shell_bram)
    estimate.components[acc.datamover.name] = estimate_datamover(
        acc.datamover, cal)
    for pe in acc.pes:
        if pe_cache is None:
            vec = estimate_pe(pe, cal)
        else:
            vec = pe_cache.get(pe)
            if vec is None:
                vec = estimate_pe(pe, cal)
                pe_cache[pe] = vec
        estimate.components[pe.name] = vec
    stream_total = ResourceVector()
    for edge in acc.edges:
        stream_total += estimate_fifo(edge.fifo, cal)
    estimate.components["stream_fifos"] = stream_total.ceil()
    return estimate
