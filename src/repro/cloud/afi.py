"""The Amazon FPGA Image (AFI) service.

"Using the AWS command line interface the AFI generation process is
started.  The framework automatically generates the AFI inside a
user-specified Amazon S3 Bucket and returns the AFI global ID, which is
used to refer to an AFI from within an F1 instance.  Once the AFI
generation completes, it can be loaded on an FPGA slot."

The service validates the design checkpoint (here: the xclbin) pulled from
S3, assigns ``afi-`` and ``agfi-`` identifiers, and transitions the image
``pending → available`` asynchronously: each :meth:`tick` advances the
backend one processing step (the flow polls exactly like the real CLI
does); malformed inputs transition to ``failed`` with an error code.
"""

from __future__ import annotations

import enum
import hashlib
import itertools
from dataclasses import dataclass, field

from repro.errors import AFIError
from repro.cloud.s3 import S3Store
from repro.errors import ArtifactError, S3Error
from repro.resilience.clock import VirtualClock
from repro.resilience.retry import RetryPolicy
from repro.toolchain.xclbin import read_xclbin
from repro.util.logging import get_logger

_log = get_logger("cloud.afi")

#: Processing steps before a valid image becomes available (the real
#: service takes ~30-50 minutes; the simulation compresses that into
#: this many poll ticks).
PENDING_TICKS = 3

#: The F1 FPGA part; AFIs for anything else are rejected.
F1_PART_PREFIX = "xcvu9p"


class AFIState(enum.Enum):
    PENDING = "pending"
    AVAILABLE = "available"
    FAILED = "failed"


@dataclass
class AFIRecord:
    afi_id: str
    agfi_id: str
    name: str
    description: str
    source_uri: str
    state: AFIState = AFIState.PENDING
    error: str | None = None
    ticks_remaining: int = PENDING_TICKS
    #: The raw design checkpoint pulled from S3 at creation time.
    payload: bytes | None = field(default=None, repr=False)
    #: The validated xclbin payload (set once available).
    xclbin_bytes: bytes | None = field(default=None, repr=False)


class AFIService:
    """The regional AFI backend."""

    def __init__(self, s3: S3Store):
        self.s3 = s3
        self._records: dict[str, AFIRecord] = {}
        self._by_agfi: dict[str, str] = {}
        self._counter = itertools.count(1)

    # -- API -----------------------------------------------------------------

    def create_fpga_image(self, *, name: str, input_storage_location: str,
                          description: str = "") -> AFIRecord:
        """Start AFI creation from a DCP/xclbin stored in S3."""
        if not name:
            raise AFIError("image name must not be empty")
        bucket, key = self.s3.parse_uri(input_storage_location)
        try:
            obj = self.s3.get_object(bucket, key)
        except S3Error as exc:
            raise AFIError(f"input storage location unreadable: {exc}") \
                from exc
        seq = next(self._counter)
        digest = hashlib.sha256(obj.data).hexdigest()
        afi_id = f"afi-{digest[:17]}"
        agfi_id = f"agfi-{digest[17:34]}"
        record = AFIRecord(afi_id=afi_id, agfi_id=agfi_id, name=name,
                           description=description,
                           source_uri=input_storage_location,
                           payload=obj.data)
        self._records[afi_id] = record
        self._by_agfi[agfi_id] = afi_id
        _log.info("AFI creation started: %s (%s) seq=%d", afi_id, agfi_id,
                  seq)
        return record

    def describe_fpga_image(self, afi_id: str) -> AFIRecord:
        try:
            return self._records[afi_id]
        except KeyError:
            raise AFIError(f"unknown AFI {afi_id!r}") from None

    def resolve_agfi(self, agfi_id: str) -> AFIRecord:
        try:
            return self._records[self._by_agfi[agfi_id]]
        except KeyError:
            raise AFIError(f"unknown AGFI {agfi_id!r}") from None

    def list_images(self) -> list[AFIRecord]:
        return list(self._records.values())

    # -- backend ------------------------------------------------------------------

    def tick(self) -> None:
        """Advance the asynchronous backend one step."""
        for record in self._records.values():
            if record.state is not AFIState.PENDING:
                continue
            record.ticks_remaining -= 1
            if record.ticks_remaining > 0:
                continue
            payload = record.payload
            try:
                xclbin = read_xclbin(payload)
            except ArtifactError as exc:
                record.state = AFIState.FAILED
                record.error = f"invalid design checkpoint: {exc}"
                _log.warning("AFI %s failed: %s", record.afi_id,
                             record.error)
                continue
            if not xclbin.part.startswith(F1_PART_PREFIX):
                record.state = AFIState.FAILED
                record.error = (f"design targets {xclbin.part}, F1"
                                f" requires {F1_PART_PREFIX}*")
                continue
            record.state = AFIState.AVAILABLE
            record.xclbin_bytes = payload
            _log.info("AFI %s available", record.afi_id)

    def wait_until_available(self, afi_id: str, max_polls: int = 100,
                             poll_policy: RetryPolicy | None = None,
                             clock: VirtualClock | None = None) \
            -> AFIRecord:
        """Poll (tick + describe) until available; raises on failure.

        ``poll_policy`` paces the polls: its backoff schedule is slept
        on the (virtual) ``clock`` between ``describe`` calls, the way
        the real CLI backs off between ``describe-fpga-images`` calls.
        """
        delays = poll_policy.delays(f"afi-poll:{afi_id}") \
            if poll_policy is not None else None
        for poll in range(max_polls):
            record = self.describe_fpga_image(afi_id)
            if record.state is AFIState.AVAILABLE:
                return record
            if record.state is AFIState.FAILED:
                raise AFIError(
                    f"AFI {afi_id} failed: {record.error}")
            self.tick()
            if delays is not None and clock is not None \
                    and poll < max_polls - 1:
                clock.sleep(next(delays))
        raise AFIError(f"AFI {afi_id} still pending after {max_polls}"
                       " polls")
