"""Simulated AWS services for the cloud deployment path (flow step 8).

* :mod:`repro.cloud.s3` — an in-process object store with buckets/keys;
* :mod:`repro.cloud.afi` — the Amazon FPGA Image service: asynchronous
  ``pending`` → ``available`` creation from an xclbin (DCP) in S3,
  ``afi-``/``agfi-`` identifiers;
* :mod:`repro.cloud.f1` — F1 instances with FPGA slots that load AFIs;
* :mod:`repro.cloud.client` — the boto/CLI-flavoured session facade the
  flow drives (``create-fpga-image``, ``describe-fpga-images``, ...).
"""

from repro.cloud.s3 import S3Store
from repro.cloud.afi import AFIService, AFIState
from repro.cloud.f1 import F1Instance, F1_INSTANCE_TYPES, FpgaSlot
from repro.cloud.client import AWSSession

__all__ = [
    "S3Store",
    "AFIService",
    "AFIState",
    "F1Instance",
    "F1_INSTANCE_TYPES",
    "FpgaSlot",
    "AWSSession",
]
