"""Simulated EC2 F1 instances.

F1 instances carry 1, 2 or 8 Virtex UltraScale+ FPGA cards; loading an
*available* AFI onto a slot programs that card's simulated device, after
which the OpenCL runtime can open it like a local board.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass

from repro.cloud.afi import AFIService, AFIState
from repro.errors import InstanceError
from repro.hw.resources import device_for_board
from repro.runtime.opencl import SimDevice
from repro.toolchain.xclbin import read_xclbin
from repro.util.logging import get_logger

_log = get_logger("cloud.f1")

#: instance type -> FPGA slot count.
F1_INSTANCE_TYPES: dict[str, int] = {
    "f1.2xlarge": 1,
    "f1.4xlarge": 2,
    "f1.16xlarge": 8,
}

#: Process-wide launch sequence: every instance gets a distinct id, so
#: fleet membership and metric labels are unambiguous.  (``next`` on an
#: ``itertools.count`` is atomic under the GIL.)
_LAUNCH_SEQUENCE = itertools.count(0)


def new_instance_id(instance_type: str) -> str:
    """A deterministic, process-unique EC2-style instance id.

    The id mixes the launch sequence number with a checksum of the
    instance type, so runs that launch the same instances in the same
    order get the same ids (seeded drills stay replayable) while two
    live instances can never collide.
    """
    seq = next(_LAUNCH_SEQUENCE)
    tag = zlib.crc32(f"{instance_type}:{seq}".encode())
    return f"i-{seq:09x}{tag:08x}"


@dataclass
class FpgaSlot:
    index: int
    device: SimDevice
    agfi_id: str | None = None


class F1Instance:
    """One running F1 instance."""

    def __init__(self, instance_type: str, afi_service: AFIService,
                 instance_id: str | None = None):
        try:
            slots = F1_INSTANCE_TYPES[instance_type]
        except KeyError:
            raise InstanceError(
                f"unknown F1 instance type {instance_type!r}; known:"
                f" {sorted(F1_INSTANCE_TYPES)}") from None
        self.instance_type = instance_type
        self.instance_id = instance_id if instance_id is not None \
            else new_instance_id(instance_type)
        self.afi_service = afi_service
        hw = device_for_board("aws-f1-xcvu9p")
        self.slots = [
            FpgaSlot(index=i,
                     device=SimDevice(f"xilinx_aws-vu9p-f1_slot{i}", hw))
            for i in range(slots)
        ]
        for slot in self.slots:
            slot.device.fault_boundary = \
                f"device.{self.instance_id}.slot{slot.index}"

    def slot(self, index: int) -> FpgaSlot:
        if not 0 <= index < len(self.slots):
            raise InstanceError(
                f"{self.instance_type} has {len(self.slots)} FPGA"
                f" slot(s); no slot {index}")
        return self.slots[index]

    def load_afi(self, slot_index: int, agfi_id: str) -> FpgaSlot:
        """``fpga-load-local-image``: program a slot with an AFI."""
        record = self.afi_service.resolve_agfi(agfi_id)
        if record.state is not AFIState.AVAILABLE:
            raise InstanceError(
                f"AFI {record.afi_id} is {record.state.value}, cannot"
                " load")
        slot = self.slot(slot_index)
        assert record.xclbin_bytes is not None
        slot.device.program(read_xclbin(record.xclbin_bytes))
        slot.agfi_id = agfi_id
        _log.info("loaded %s onto slot %d of %s", agfi_id, slot_index,
                  self.instance_id)
        return slot

    def clear_slot(self, slot_index: int) -> FpgaSlot:
        """``fpga-clear-local-image``.

        Clearing a slot that holds no image is an error (mirrors the
        real CLI's "no loaded image" failure) — it usually means two
        managers believe they own the same slot.
        """
        slot = self.slot(slot_index)
        if slot.agfi_id is None:
            raise InstanceError(
                f"slot {slot_index} of {self.instance_id} has no image"
                " loaded; nothing to clear")
        slot.device.programmed = None
        slot.agfi_id = None
        return slot

    def describe_slots(self) -> list[dict]:
        return [{"slot": s.index, "agfi": s.agfi_id,
                 "programmed": s.device.programmed is not None}
                for s in self.slots]
