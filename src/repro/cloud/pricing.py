"""F1 cost modelling.

The paper's cloud argument is economic: FPGAs' "prohibitive cost cannot
always be assumed" to be payable up front, while F1 instances rent by the
hour.  This module turns an accelerator's modeled throughput into
dollars-per-inference figures across the F1 instance family, and computes
the break-even point against buying a board outright — the numbers a
practitioner deciding between §3.1.1's deployment options actually needs.

Rates are the published 2018 us-east-1 on-demand prices (the paper's
period); they are inputs, not truths — pass your own.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.f1 import F1_INSTANCE_TYPES
from repro.errors import CloudError
from repro.hw.perf import AcceleratorPerformance
from repro.util.tables import TextTable

#: On-demand $/hour, us-east-1, early 2018.
F1_HOURLY_USD: dict[str, float] = {
    "f1.2xlarge": 1.65,
    "f1.4xlarge": 3.30,
    "f1.16xlarge": 13.20,
}

#: Rough 2018 street price of a VU9P development board (VCU1525), USD.
ON_PREMISE_BOARD_USD = 6_995.0


@dataclass(frozen=True)
class CostEstimate:
    """Cost of running one accelerator on one instance type."""

    instance_type: str
    slots: int
    hourly_usd: float
    images_per_second: float

    @property
    def aggregate_images_per_second(self) -> float:
        """All FPGA slots running the same AFI."""
        return self.images_per_second * self.slots

    @property
    def usd_per_million_images(self) -> float:
        seconds = 1e6 / self.aggregate_images_per_second
        return seconds / 3600.0 * self.hourly_usd

    @property
    def usd_per_slot_hour(self) -> float:
        return self.hourly_usd / self.slots


def estimate_costs(perf: AcceleratorPerformance,
                   *, batch: int | None = None,
                   rates: dict[str, float] | None = None) \
        -> list[CostEstimate]:
    """Cost table across the F1 family for one accelerator."""
    rates = rates or F1_HOURLY_USD
    throughput = perf.throughput_images_per_s(batch)
    estimates = []
    for instance_type, slots in sorted(F1_INSTANCE_TYPES.items()):
        if instance_type not in rates:
            raise CloudError(f"no rate for {instance_type!r}")
        estimates.append(CostEstimate(
            instance_type=instance_type,
            slots=slots,
            hourly_usd=rates[instance_type],
            images_per_second=throughput,
        ))
    return estimates


def break_even_hours(instance_type: str = "f1.2xlarge",
                     *, board_usd: float = ON_PREMISE_BOARD_USD,
                     rates: dict[str, float] | None = None) -> float:
    """Rental hours after which buying the board would have been cheaper
    (ignoring power/hosting — i.e. a lower bound on the true break-even)."""
    rates = rates or F1_HOURLY_USD
    try:
        hourly = rates[instance_type]
    except KeyError:
        raise CloudError(f"no rate for {instance_type!r}") from None
    if hourly <= 0:
        raise CloudError("hourly rate must be positive")
    return board_usd / hourly


def render_cost_table(estimates: list[CostEstimate]) -> str:
    table = TextTable(["instance", "slots", "$/hour", "images/s (aggr.)",
                       "$/1M images"], float_format="{:.2f}")
    for est in estimates:
        table.add_row([est.instance_type, est.slots, est.hourly_usd,
                       est.aggregate_images_per_second,
                       est.usd_per_million_images])
    return table.render()
