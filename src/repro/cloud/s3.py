"""An in-process S3 object store.

Buckets hold keyed byte blobs with ETags (MD5, as S3 computes for simple
puts).  Only the operations the AFI-creation flow needs are implemented,
with S3's error behaviour (missing bucket vs missing key are distinct
failures).
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass

from repro.errors import S3Error

_BUCKET_RE = re.compile(r"^[a-z0-9][a-z0-9.-]{1,61}[a-z0-9]$")


@dataclass(frozen=True)
class S3Object:
    bucket: str
    key: str
    data: bytes
    etag: str

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def uri(self) -> str:
        return f"s3://{self.bucket}/{self.key}"


class S3Store:
    """All buckets of one simulated region."""

    def __init__(self):
        self._buckets: dict[str, dict[str, S3Object]] = {}

    # -- buckets ------------------------------------------------------------

    def create_bucket(self, name: str) -> None:
        if not _BUCKET_RE.match(name):
            raise S3Error(f"invalid bucket name {name!r}")
        if name in self._buckets:
            raise S3Error(f"bucket {name!r} already exists"
                          " (BucketAlreadyOwnedByYou)")
        self._buckets[name] = {}

    def bucket_exists(self, name: str) -> bool:
        return name in self._buckets

    def list_buckets(self) -> list[str]:
        return sorted(self._buckets)

    def _bucket(self, name: str) -> dict[str, S3Object]:
        try:
            return self._buckets[name]
        except KeyError:
            raise S3Error(f"no such bucket {name!r} (NoSuchBucket)") \
                from None

    # -- objects --------------------------------------------------------------

    def put_object(self, bucket: str, key: str, data: bytes) -> S3Object:
        if not key or key.startswith("/"):
            raise S3Error(f"invalid key {key!r}")
        obj = S3Object(bucket=bucket, key=key, data=bytes(data),
                       etag=hashlib.md5(data).hexdigest())
        self._bucket(bucket)[key] = obj
        return obj

    def get_object(self, bucket: str, key: str) -> S3Object:
        objects = self._bucket(bucket)
        try:
            return objects[key]
        except KeyError:
            raise S3Error(
                f"no such key {key!r} in bucket {bucket!r} (NoSuchKey)"
            ) from None

    def head_object(self, bucket: str, key: str) -> dict:
        obj = self.get_object(bucket, key)
        return {"ContentLength": obj.size, "ETag": obj.etag}

    def delete_object(self, bucket: str, key: str) -> None:
        objects = self._bucket(bucket)
        objects.pop(key, None)  # S3 delete is idempotent

    def list_objects(self, bucket: str, prefix: str = "") -> list[str]:
        return sorted(k for k in self._bucket(bucket)
                      if k.startswith(prefix))

    def parse_uri(self, uri: str) -> tuple[str, str]:
        if not uri.startswith("s3://"):
            raise S3Error(f"not an S3 URI: {uri!r}")
        rest = uri[len("s3://"):]
        bucket, _, key = rest.partition("/")
        if not bucket or not key:
            raise S3Error(f"malformed S3 URI: {uri!r}")
        return bucket, key
