"""The AWS session facade the flow drives.

Bundles the region's S3 store + AFI service behind the CLI-flavoured verbs
the paper's step 8 uses: upload the tarball to a user-specified bucket,
``create-fpga-image``, poll ``describe-fpga-images``, launch an F1
instance, ``fpga-load-local-image``.
"""

from __future__ import annotations

from repro.cloud.afi import AFIRecord, AFIService
from repro.cloud.f1 import F1Instance
from repro.cloud.s3 import S3Store
from repro.obs import REGISTRY, span
from repro.util.logging import get_logger

_log = get_logger("cloud.client")

_API_CALLS = REGISTRY.counter(
    "condor_cloud_api_calls_total", "AWS API calls issued, by verb")
_UPLOAD_BYTES = REGISTRY.counter(
    "condor_cloud_upload_bytes_total", "Bytes uploaded to S3")


class AWSSession:
    """One simulated account/region."""

    def __init__(self, region: str = "us-east-1"):
        self.region = region
        self.s3 = S3Store()
        self.afi = AFIService(self.s3)
        self._instances: list[F1Instance] = []

    # -- S3 verbs -----------------------------------------------------------

    def ensure_bucket(self, bucket: str) -> None:
        if not self.s3.bucket_exists(bucket):
            self.s3.create_bucket(bucket)

    def upload(self, bucket: str, key: str, data: bytes) -> str:
        """``aws s3 cp`` — returns the object URI."""
        with span("cloud.s3-upload", bucket=bucket, key=key,
                  bytes=len(data)):
            _API_CALLS.inc(verb="s3-put-object")
            _UPLOAD_BYTES.inc(len(data))
            self.ensure_bucket(bucket)
            return self.s3.put_object(bucket, key, data).uri

    # -- EC2/AFI verbs ----------------------------------------------------------

    def create_fpga_image(self, *, name: str, bucket: str, key: str,
                          description: str = "") -> AFIRecord:
        """``aws ec2 create-fpga-image``."""
        with span("cloud.create-fpga-image", image_name=name):
            _API_CALLS.inc(verb="create-fpga-image")
            return self.afi.create_fpga_image(
                name=name, description=description,
                input_storage_location=f"s3://{bucket}/{key}")

    def wait_for_afi(self, afi_id: str) -> AFIRecord:
        """Poll ``describe-fpga-images`` until the AFI is available."""
        with span("cloud.wait-for-afi", afi_id=afi_id):
            _API_CALLS.inc(verb="describe-fpga-images")
            return self.afi.wait_until_available(afi_id)

    def run_f1_instance(self, instance_type: str = "f1.2xlarge") \
            -> F1Instance:
        """``aws ec2 run-instances`` for an F1 type."""
        _API_CALLS.inc(verb="run-instances")
        instance = F1Instance(
            instance_type, self.afi,
            instance_id=f"i-{len(self._instances):017x}")
        self._instances.append(instance)
        _log.info("launched %s (%s)", instance.instance_id, instance_type)
        return instance

    @property
    def instances(self) -> list[F1Instance]:
        return list(self._instances)
