"""The AWS session facade the flow drives.

Bundles the region's S3 store + AFI service behind the CLI-flavoured verbs
the paper's step 8 uses: upload the tarball to a user-specified bucket,
``create-fpga-image``, poll ``describe-fpga-images``, launch an F1
instance, ``fpga-load-local-image``.

Every verb is a *retryable boundary* (see
:mod:`repro.resilience.boundary`): calls run under the session's
:class:`~repro.resilience.retry.RetryPolicy` and a per-verb circuit
breaker, and the active chaos :class:`~repro.resilience.faults.FaultPlan`
hooks the same path.  Uploads additionally verify the stored object's
digest against the local payload, so a corrupted transfer surfaces as a
retryable :class:`~repro.errors.TransientError` instead of a poisoned
AFI forty minutes later.
"""

from __future__ import annotations

import hashlib

from repro.cloud.afi import AFIRecord, AFIService
from repro.cloud.f1 import F1Instance
from repro.cloud.s3 import S3Store
from repro.errors import TransientError
from repro.obs import REGISTRY, span
from repro.resilience.boundary import breaker_for, run_boundary
from repro.resilience.faults import active_plan
from repro.resilience.retry import DEFAULT_POLICY, RetryPolicy
from repro.util.logging import get_logger

_log = get_logger("cloud.client")

_API_CALLS = REGISTRY.counter(
    "condor_cloud_api_calls_total", "AWS API calls issued, by verb")
_UPLOAD_BYTES = REGISTRY.counter(
    "condor_cloud_upload_bytes_total", "Bytes uploaded to S3")

#: ``describe-fpga-images`` poll budget (the real loop runs ~30-50 min).
DEFAULT_AFI_MAX_POLLS = 100


class AWSSession:
    """One simulated account/region."""

    def __init__(self, region: str = "us-east-1", *,
                 retry_policy: RetryPolicy | None = None,
                 afi_max_polls: int = DEFAULT_AFI_MAX_POLLS,
                 afi_poll_policy: RetryPolicy | None = None):
        self.region = region
        self.s3 = S3Store()
        self.afi = AFIService(self.s3)
        #: Policy for the retryable API boundaries (upload / create /
        #: wait); ``None`` falls back to the stock policy.
        self.retry_policy = retry_policy if retry_policy is not None \
            else DEFAULT_POLICY
        #: Poll budget and per-poll backoff for :meth:`wait_for_afi`.
        self.afi_max_polls = afi_max_polls
        self.afi_poll_policy = afi_poll_policy if afi_poll_policy \
            is not None else RetryPolicy(max_attempts=1,
                                         base_delay_s=30.0,
                                         multiplier=1.0,
                                         max_delay_s=30.0)
        self._instances: list[F1Instance] = []

    # -- S3 verbs -----------------------------------------------------------

    def ensure_bucket(self, bucket: str) -> None:
        if not self.s3.bucket_exists(bucket):
            self.s3.create_bucket(bucket)

    def upload(self, bucket: str, key: str, data: bytes) -> str:
        """``aws s3 cp`` — returns the object URI.

        Each attempt re-sends the original payload and verifies the
        stored object's SHA-256 against it; a mismatch (corruption in
        transit) raises :class:`TransientError` and is retried.
        """
        expected = hashlib.sha256(data).hexdigest()

        def attempt() -> str:
            with span("cloud.s3-upload", bucket=bucket, key=key,
                      bytes=len(data)):
                _API_CALLS.inc(verb="s3-put-object")
                _UPLOAD_BYTES.inc(len(data))
                self.ensure_bucket(bucket)
                plan = active_plan()
                payload = plan.corrupt("cloud.upload", data) \
                    if plan is not None else data
                uri = self.s3.put_object(bucket, key, payload).uri
                stored = self.s3.get_object(bucket, key).data
                if hashlib.sha256(stored).hexdigest() != expected:
                    raise TransientError(
                        f"upload of s3://{bucket}/{key} corrupted in"
                        " transit (digest mismatch)")
                return uri

        return run_boundary("cloud.upload", attempt,
                            policy=self.retry_policy)

    # -- EC2/AFI verbs ----------------------------------------------------------

    def create_fpga_image(self, *, name: str, bucket: str, key: str,
                          description: str = "") -> AFIRecord:
        """``aws ec2 create-fpga-image``."""

        def attempt() -> AFIRecord:
            with span("cloud.create-fpga-image", image_name=name):
                _API_CALLS.inc(verb="create-fpga-image")
                return self.afi.create_fpga_image(
                    name=name, description=description,
                    input_storage_location=f"s3://{bucket}/{key}")

        return run_boundary("cloud.create-fpga-image", attempt,
                            policy=self.retry_policy)

    def wait_for_afi(self, afi_id: str, *,
                     max_polls: int | None = None,
                     poll_policy: RetryPolicy | None = None) -> AFIRecord:
        """Poll ``describe-fpga-images`` until the AFI is available.

        ``max_polls`` / ``poll_policy`` override the session defaults
        (exposed through ``FlowInputs`` for flow runs).
        """
        polls = max_polls if max_polls is not None else self.afi_max_polls
        pacing = poll_policy if poll_policy is not None \
            else self.afi_poll_policy
        breaker = breaker_for("cloud.wait-for-afi")

        def attempt() -> AFIRecord:
            with span("cloud.wait-for-afi", afi_id=afi_id,
                      max_polls=polls):
                _API_CALLS.inc(verb="describe-fpga-images")
                return self.afi.wait_until_available(
                    afi_id, max_polls=polls, poll_policy=pacing,
                    clock=breaker.clock)

        return run_boundary("cloud.wait-for-afi", attempt,
                            policy=self.retry_policy, breaker=breaker)

    def run_f1_instance(self, instance_type: str = "f1.2xlarge") \
            -> F1Instance:
        """``aws ec2 run-instances`` for an F1 type."""
        _API_CALLS.inc(verb="run-instances")
        # ids come from the process-wide launch sequence so instances
        # from different sessions never alias each other
        instance = F1Instance(instance_type, self.afi)
        self._instances.append(instance)
        _log.info("launched %s (%s)", instance.instance_id, instance_type)
        return instance

    @property
    def instances(self) -> list[F1Instance]:
        return list(self._instances)
