"""Runtime lock sanitizer — TSan-style dynamic checking of lock usage.

With ``REPRO_TSAN=1`` in the environment, the :mod:`repro.util.sync`
factories hand out :class:`InstrumentedLock` / :class:`InstrumentedRLock`
wrappers instead of plain :mod:`threading` primitives.  Every acquire
and release reports into the process-wide :data:`STATE`, which keeps:

* the per-thread *held stack* (which named locks this thread holds, in
  acquisition order);
* the *observed lock-order graph* over lock names — an edge ``A -> B``
  means some thread acquired ``B`` while holding ``A``.  The
  cross-validation tests assert this graph is a subgraph of the static
  one ``condor audit`` computes from the source;
* :class:`Finding` records for the three failure modes:

  - ``order-inversion`` (error): acquiring ``B`` while holding ``A``
    when the graph already shows ``B`` (transitively) acquired before
    ``A`` — two threads interleaving those paths can deadlock.  Nesting
    two distinct *instances* of the same lock name is reported the same
    way (same-rank nesting deadlocks against a peer doing the reverse).
  - ``double-acquire`` (error): a thread re-acquiring a non-reentrant
    lock it already holds.  The real lock would block forever, so the
    wrapper raises :class:`~repro.errors.SanitizerError` instead of
    deadlocking the suite.
  - ``slow-hold`` (warning): a lock held longer than
    ``REPRO_TSAN_HOLD_SECONDS`` (default 0.5 s) — a latency hazard for
    every thread contending on it, not a correctness bug.

The sanitizer's own bookkeeping runs under a *raw* ``threading.Lock``
(never instrumented) and never touches the metrics registry from the
acquire path — metric locks are themselves instrumented, so bumping a
counter per acquire would recurse.  Totals are copied into the
``condor_tsan_*`` gauges on demand via :meth:`SanitizerState.publish`
(the pytest fixture and CLI call it once at the end).
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass

from repro.errors import SanitizerError

__all__ = [
    "DEFAULT_HOLD_SECONDS",
    "Finding",
    "HOLD_ENV",
    "InstrumentedLock",
    "InstrumentedRLock",
    "MAX_FINDINGS",
    "STATE",
    "SanitizerState",
]

HOLD_ENV = "REPRO_TSAN_HOLD_SECONDS"
DEFAULT_HOLD_SECONDS = 0.5
#: Findings kept per state; a deadlock-prone suite would otherwise flood.
MAX_FINDINGS = 200

FINDING_KINDS = ("order-inversion", "double-acquire", "slow-hold")


def _hold_threshold() -> float:
    raw = os.environ.get(HOLD_ENV, "")
    if not raw:
        return DEFAULT_HOLD_SECONDS
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_HOLD_SECONDS
    return value if value > 0 else DEFAULT_HOLD_SECONDS


@dataclass(frozen=True)
class Finding:
    """One sanitizer observation."""

    kind: str       # one of FINDING_KINDS
    severity: str   # "error" | "warning"
    lock: str       # lock name
    thread: str
    detail: str

    def render(self) -> str:
        return (f"{self.severity}: {self.kind} on {self.lock!r}"
                f" [{self.thread}]: {self.detail}")

    def to_dict(self) -> dict:
        return {"kind": self.kind, "severity": self.severity,
                "lock": self.lock, "thread": self.thread,
                "detail": self.detail}


class SanitizerState:
    """All dynamic-checking bookkeeping for one sanitizer realm.

    The process-wide realm is :data:`STATE`; tests that provoke findings
    on purpose construct a private state so they never pollute the
    suite-failing fixture.
    """

    def __init__(self, hold_threshold: float | None = None):
        #: raw lock — the sanitizer must never instrument itself
        self._mu = threading.Lock()
        self._tls = threading.local()
        #: name -> set of names acquired while holding it
        self._edges: dict[str, set[str]] = {}
        self._findings: list[Finding] = []
        self._acquires = 0
        self._lock_names: set[str] = set()
        self._max_hold = 0.0
        self._hold_threshold = (_hold_threshold() if hold_threshold is None
                                else float(hold_threshold))

    # -- per-thread held stack ------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def held_names(self) -> list[str]:
        """Names this thread currently holds, outermost first."""
        return [entry[1] for entry in self._stack()]

    # -- the acquire/release protocol (called by the wrappers) ---------------

    def before_acquire(self, lock, *, reentrant: bool) -> None:
        """Checks that must run *before* blocking on the real lock."""
        stack = self._stack()
        thread = threading.current_thread().name
        if not reentrant:
            for entry in stack:
                if entry[0] is lock:
                    finding = Finding(
                        "double-acquire", "error", lock.name, thread,
                        "thread re-acquired a non-reentrant lock it"
                        " already holds; a real Lock would deadlock here")
                    self._record(finding)
                    raise SanitizerError(finding.render())
        name = lock.name
        with self._mu:
            self._acquires += 1
            self._lock_names.add(name)
            for entry in stack:
                held_lock, held_name = entry[0], entry[1]
                if held_lock is lock:
                    continue  # RLock re-entry: no new ordering information
                if held_name == name:
                    self._record_locked(Finding(
                        "order-inversion", "error", name, thread,
                        f"nested two distinct {name!r} locks (same-rank"
                        " nesting deadlocks against a peer thread nesting"
                        " them the other way round)"))
                    continue
                if self._reaches_locked(name, held_name):
                    self._record_locked(Finding(
                        "order-inversion", "error", name, thread,
                        f"acquired while holding {held_name!r}, but the"
                        f" observed order graph already has"
                        f" {name!r} -> ... -> {held_name!r}"))
                self._edges.setdefault(held_name, set()).add(name)

    def after_acquire(self, lock) -> None:
        self._stack().append([lock, lock.name, time.perf_counter()])

    def on_release(self, lock) -> None:
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i][0] is lock:
                entry = stack.pop(i)
                hold = time.perf_counter() - entry[2]
                with self._mu:
                    if hold > self._max_hold:
                        self._max_hold = hold
                if hold > self._hold_threshold:
                    self._record(Finding(
                        "slow-hold", "warning", lock.name,
                        threading.current_thread().name,
                        f"held for {hold:.3f}s (threshold"
                        f" {self._hold_threshold:g}s)"))
                return
        # Not held by this thread: let the inner lock raise its own error.

    # -- graph + findings -----------------------------------------------------

    def _reaches_locked(self, src: str, dst: str) -> bool:
        """True when ``src -> ... -> dst`` exists.  Call with _mu held."""
        seen = {src}
        frontier = [src]
        while frontier:
            node = frontier.pop()
            for nxt in self._edges.get(node, ()):
                if nxt == dst:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    def _record(self, finding: Finding) -> None:
        with self._mu:
            self._record_locked(finding)

    def _record_locked(self, finding: Finding) -> None:
        if len(self._findings) < MAX_FINDINGS:
            self._findings.append(finding)

    # -- queries --------------------------------------------------------------

    def findings(self, *, severity: str | None = None) -> list[Finding]:
        with self._mu:
            found = list(self._findings)
        if severity is not None:
            found = [f for f in found if f.severity == severity]
        return found

    def error_count(self) -> int:
        return len(self.findings(severity="error"))

    def order_edges(self) -> set[tuple[str, str]]:
        """The observed lock-order graph as (held, acquired) name pairs."""
        with self._mu:
            return {(src, dst) for src, dsts in self._edges.items()
                    for dst in dsts}

    def lock_names(self) -> set[str]:
        with self._mu:
            return set(self._lock_names)

    def acquire_count(self) -> int:
        with self._mu:
            return self._acquires

    def reset(self) -> None:
        """Drop the graph, findings and counters (held stacks persist —
        they reflect locks genuinely still held)."""
        with self._mu:
            self._edges.clear()
            self._findings.clear()
            self._acquires = 0
            self._lock_names.clear()
            self._max_hold = 0.0

    def snapshot(self) -> dict:
        """JSON-able summary (the ``condor audit --tsan`` payload)."""
        with self._mu:
            edges = sorted((src, dst) for src, dsts in self._edges.items()
                           for dst in dsts)
            findings = [f.to_dict() for f in self._findings]
            return {
                "acquires": self._acquires,
                "locks": sorted(self._lock_names),
                "order_edges": [list(e) for e in edges],
                "max_hold_seconds": self._max_hold,
                "findings": findings,
            }

    def publish(self, registry=None) -> None:
        """Copy totals into the ``condor_tsan_*`` gauges.

        On-demand rather than per-acquire: metric locks are instrumented
        too, so updating a metric from inside acquire bookkeeping would
        recurse.  Gauges (``set`` semantics) keep repeated publishes
        idempotent.
        """
        if registry is None:
            from repro.obs.metrics import REGISTRY
            registry = REGISTRY
        snap = self.snapshot()
        registry.gauge(
            "condor_tsan_acquires_count",
            "Lock acquisitions observed by the runtime sanitizer",
        ).set(snap["acquires"])
        registry.gauge(
            "condor_tsan_order_edges_count",
            "Distinct edges in the observed lock-order graph",
        ).set(len(snap["order_edges"]))
        registry.gauge(
            "condor_tsan_max_hold_seconds",
            "Longest single lock hold observed by the sanitizer",
        ).set(snap["max_hold_seconds"])
        findings = registry.gauge(
            "condor_tsan_findings_count",
            "Sanitizer findings by kind (order-inversion, double-acquire,"
            " slow-hold)")
        by_kind = {kind: 0 for kind in FINDING_KINDS}
        for f in snap["findings"]:
            by_kind[f["kind"]] = by_kind.get(f["kind"], 0) + 1
        for kind, count in by_kind.items():
            findings.set(count, kind=kind)


#: The process-wide sanitizer realm every factory-made lock reports to.
STATE = SanitizerState()


class InstrumentedLock:
    """A named, checked, non-reentrant mutex (drop-in for Lock)."""

    reentrant = False
    __slots__ = ("name", "_inner", "_state")

    def __init__(self, name: str, state: SanitizerState | None = None):
        self.name = name
        self._inner = threading.Lock()
        self._state = state if state is not None else STATE

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._state.before_acquire(self, reentrant=self.reentrant)
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            self._state.after_acquire(self)
        return ok

    def release(self) -> None:
        self._state.on_release(self)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> "InstrumentedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class InstrumentedRLock(InstrumentedLock):
    """A named, checked, reentrant mutex (drop-in for RLock)."""

    reentrant = True
    __slots__ = ()

    def __init__(self, name: str, state: SanitizerState | None = None):
        super().__init__(name, state)
        self._inner = threading.RLock()

    def locked(self) -> bool:  # RLock has no .locked() before 3.12
        if self._inner.acquire(blocking=False):
            self._inner.release()
            return False
        return True
