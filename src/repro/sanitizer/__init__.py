"""Runtime lock sanitizer (enabled with ``REPRO_TSAN=1``).

See :mod:`repro.sanitizer.lockcheck` for the mechanism and
:mod:`repro.util.sync` for the named-lock factory it instruments.
"""

from repro.errors import SanitizerError
from repro.sanitizer.lockcheck import (
    Finding,
    InstrumentedLock,
    InstrumentedRLock,
    STATE,
    SanitizerState,
)
from repro.util.sync import ENABLE_ENV, tsan_enabled

__all__ = [
    "ENABLE_ENV",
    "Finding",
    "InstrumentedLock",
    "InstrumentedRLock",
    "STATE",
    "SanitizerError",
    "SanitizerState",
    "tsan_enabled",
]
