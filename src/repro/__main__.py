"""``python -m repro`` — the condor CLI entry point."""

import sys

from repro.cli import main

sys.exit(main())
