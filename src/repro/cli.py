"""The ``condor`` command-line interface.

Exposes the framework the way the paper's users would drive it::

    condor info   <model>                    # parse + summarize a model
    condor check  <model>                    # static analysis (no build)
    condor build  <model> [--deploy aws-f1]  # run the full flow
    condor dse    <model>                    # explore configurations
    condor simulate <model> --batch N        # event-driven simulation
    condor profile <model>                   # flow + per-step timing
    condor bench [--quick]                   # hot-path benchmarks
    condor obs report <run>                  # span latency quantiles
    condor obs diff <base> <run>             # flag telemetry regressions
    condor obs timeseries <run>              # sampler trajectory
    condor fleet drill                       # fault-kind survival matrix
    condor serve                             # synthetic serving load demo
    condor figure5                           # regenerate Figure 5

``<model>`` is a ``.prototxt`` (with optional ``--weights x.caffemodel``),
a ``.onnx`` file, or a Condor ``.json`` file; the format is picked by
extension.

``build``, ``dse``, ``simulate`` and ``profile`` accept
``--trace-json PATH`` (Chrome trace-event JSON for
https://ui.perfetto.dev) and ``--metrics PATH`` (Prometheus text
exposition of the run's counters).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import CondorError
from repro.flow.condor import CondorFlow, FlowInputs
from repro.frontend.condor_format import DeploymentOption
from repro.obs import REGISTRY, recording, write_chrome_trace


def _model_inputs(path: str, weights: str | None) -> FlowInputs:
    p = Path(path)
    suffix = p.suffix.lower()
    if suffix == ".prototxt":
        return FlowInputs(prototxt=p, caffemodel=weights)
    if suffix == ".onnx":
        return FlowInputs(onnx=p)
    if suffix == ".json":
        return FlowInputs(condor_json=p)
    raise CondorError(
        f"cannot infer the model format of {path!r}; expected .prototxt,"
        " .onnx or .json")


def _load_model(args) -> tuple:
    """Run only the input-analysis step to get (model, weights)."""
    flow = CondorFlow(args.workdir)
    inputs = _model_inputs(args.model, getattr(args, "weights", None))
    return flow._input_analysis(inputs), flow


def _telemetry_outputs(args, recorder) -> None:
    """Honour the global ``--trace-json`` / ``--metrics`` flags."""
    if getattr(args, "trace_json", None):
        path = write_chrome_trace(args.trace_json, recorder=recorder)
        print(f"trace written to {path} (open at https://ui.perfetto.dev)")
    if getattr(args, "metrics", None):
        path = Path(args.metrics)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(REGISTRY.to_prometheus())
        print(f"metrics written to {path}")


def cmd_info(args) -> int:
    (model, weights), _ = _load_model(args)
    net = model.network
    print(f"network: {net.name}")
    print(f"input:   {net.input_shape()}   output: {net.output_shape()}")
    from repro.ir.flops import network_flops, network_macs
    print(f"MACs:    {network_macs(net):,}   FLOPs:"
          f" {network_flops(net):,}")
    print(f"parameters: {weights.total_parameters():,}")
    print()
    print(net.summary())
    return 0


def _zoo_models() -> list:
    from repro.frontend.zoo import (
        cifar10_model,
        lenet_model,
        tc1_model,
        vgg16_model,
    )
    return [tc1_model(), lenet_model(), cifar10_model(), vgg16_model()]


def cmd_check(args) -> int:
    """Run the static analyzer; no hardware is generated on disk."""
    import json as _json

    from repro.analysis import PASS_REGISTRY, Severity, check_model
    from repro.frontend.weights import WeightStore

    if args.list_passes:
        width = max(len(pass_id) for pass_id in PASS_REGISTRY)
        for pass_id, cls in PASS_REGISTRY.items():
            print(f"{pass_id:<{width}}  {cls.description}")
        return 0
    if bool(args.model) == bool(args.zoo):
        raise CondorError("provide a model file or --zoo (not both)")

    if args.zoo:
        models = [(m, None) for m in _zoo_models()]
    else:
        (model, weights), _ = _load_model(args)
        models = [(model, weights if weights.layers() else None)]

    select = args.select.split(",") if args.select else None
    fail_rank = Severity(args.fail_on).rank
    worst_rank = Severity.INFO.rank + 1
    reports = []
    with recording() as recorder:
        for model, weights in models:
            if weights is None:
                weights = WeightStore.initialize(model.network)
            report = check_model(model, weights=weights, select=select)
            reports.append(report)
    for report in reports:
        for diag in report:
            worst_rank = min(worst_rank, diag.severity.rank)
    if args.format == "json":
        docs = [r.to_dict() for r in reports]
        print(_json.dumps(docs[0] if not args.zoo else docs, indent=2))
    else:
        for report in reports:
            print(report.render())
            print()
    _telemetry_outputs(args, recorder)
    return 1 if worst_rank <= fail_rank else 0


_AUDIT_RULE_HELP = {
    "CONC001": "module-level mutable global written without a lock",
    "CONC002": "attribute guarded inconsistently / written unguarded"
               " on a thread-entry path",
    "CONC003": "cycle in the static lock-order graph (deadlock risk)",
    "CONC004": "blocking call while holding a lock",
    "CONC005": "reaching into another object's private lock",
    "CONC006": "raw threading.Lock() outside the named-lock factory",
}


def cmd_audit(args) -> int:
    """Run the concurrency audit over the package's own source tree."""
    import json as _json

    from repro.analysis import Severity
    from repro.analysis.conc import audit_tree, default_audit_root

    if args.list_rules:
        from repro.analysis.conc import RULE_PASSES
        for code, description in _AUDIT_RULE_HELP.items():
            print(f"{code}  [{RULE_PASSES[code]:<17}] {description}")
        return 0
    root = Path(args.root) if args.root else default_audit_root()
    select = set(args.select.split(",")) if args.select else None
    result = audit_tree(root, select=select)
    report = result.report
    if args.format == "json":
        doc = report.to_dict()
        doc["waived"] = [d.to_dict() for d in result.waived]
        doc["lock_order"] = sorted(
            list(edge) for edge in result.lock_order_edges())
        print(_json.dumps(doc, indent=2))
    else:
        if args.graph:
            print("static lock-order graph:")
            edges = sorted(result.program.lock_edges.items())
            for (src, dst), site in edges:
                print(f"  {src} -> {dst}   [{site}]")
            if not edges:
                print("  (no nested acquisitions)")
            print()
        print(report.render())
        if result.waived:
            print(f"({len(result.waived)} finding(s) waived by"
                  " '# conc: allow' comments)")
    fail_rank = Severity(args.fail_on).rank
    worst_rank = min((d.severity.rank for d in report),
                     default=Severity.INFO.rank + 1)
    return 1 if worst_rank <= fail_rank else 0


def cmd_build(args) -> int:
    flow = CondorFlow(args.workdir, check=not args.no_check,
                      resume=args.resume)
    inputs = _model_inputs(args.model, args.weights)
    inputs.deployment = (DeploymentOption.AWS_F1 if args.deploy == "aws-f1"
                         else DeploymentOption.ON_PREMISE)
    if args.frequency:
        from repro.util.units import parse_freq
        inputs.frequency_hz = parse_freq(args.frequency)
    if args.board:
        inputs.board = args.board
    inputs.run_dse = args.dse
    inputs.afi_max_polls = args.afi_max_polls
    result = flow.run(inputs)
    print(result.summary())
    if result.degraded:
        print(f"\nWARNING: {result.degradation}")
        print("AFI creation failed; local artifacts were kept and the"
              " run status is 'partial'.  Re-run with --resume to retry"
              " only the cloud step.")
    print(f"\nartifacts in {result.workdir}")
    for step in result.steps:
        note = "  (restored from checkpoint)" if step.skipped else ""
        print(f"  {step.name}: {step.seconds:.2f}s{note}")
    _telemetry_outputs(args, flow.recorder)
    return 0


def _chaos_fleet_exercise(flow, result, seed: int) -> dict:
    """Serve a short fleet workload under the armed fault plan.

    Runs inside the chaos ``inject_faults`` context after a flow run
    produced an AFI: one f1.4xlarge is launched from the flow's AWS
    session and a paced workload (plus a final verified submission)
    exercises the device-level fault kinds end to end.
    """
    import numpy as np

    from repro.errors import FleetError
    from repro.fleet import FleetConfig, FleetManager
    from repro.frontend.weights import WeightStore
    from repro.resilience.clock import VirtualClock

    clock = VirtualClock()
    instance = flow.aws.run_f1_instance("f1.4xlarge")
    net = result.model.network
    weights = WeightStore.initialize(net)
    config = FleetConfig(scrub_every=2, recovery_s=120.0, capacity=4)
    fleet = FleetManager([instance], result.agfi_id, weights,
                         config=config, clock=clock)
    rng = np.random.default_rng(seed * 7919 + 3)
    in_shape = net.input_shape().as_tuple()
    errors = 0
    for _ in range(6):
        images = rng.standard_normal((2,) + in_shape).astype(np.float32)
        try:
            fleet.run(images)
        except FleetError:
            errors += 1
        clock.sleep(30.0)
    clock.sleep(config.recovery_s)
    final = rng.standard_normal((2,) + in_shape).astype(np.float32)
    golden = fleet.golden.forward_batch(final).reshape(2, -1)
    try:
        bit_correct = bool(np.array_equal(
            fleet.run(final, verify=True), golden))
    except FleetError:
        bit_correct = False
    stats = fleet.stats()
    return {
        "bit_correct": bit_correct,
        "errors": errors,
        "healthy_slots": stats["healthy_slots"],
        "quarantined": stats["quarantined"],
        "actions": stats["actions"],
    }


def cmd_chaos(args) -> int:
    """Chaos-test the flow: seeded fault plans over the cloud/toolchain
    boundaries — and, unless ``--no-devices``, over the FPGA slots of a
    post-build fleet exercise — reporting survival statistics."""
    import json
    import shutil

    from repro.frontend.condor_format import CondorModel
    from repro.resilience import FaultPlan, inject_faults

    if args.zoo:
        # vgg16 is excluded: it does not fit the F1 device without DSE,
        # and the chaos matrix runs the AWS deployment end to end
        models = [m for m in _zoo_models() if m.network.name != "vgg16"]
    elif args.model:
        (model, _weights), _ = _load_model(args)
        models = [model]
    else:
        raise CondorError("provide a model file or --zoo")

    base = Path(args.workdir) / "chaos"
    runs = []
    for model in models:
        model = CondorModel(network=model.network, board=model.board,
                            frequency_hz=model.frequency_hz,
                            deployment=DeploymentOption.AWS_F1,
                            hints=model.hints)
        for seed in range(args.seeds):
            include_devices = not args.no_devices
            plan = FaultPlan.random(seed,
                                    include_devices=include_devices)
            workdir = base / f"{model.network.name}-seed{seed}"
            if workdir.exists():
                shutil.rmtree(workdir)
            flow = CondorFlow(workdir)
            status, error, fleet = "ok", None, None
            try:
                with inject_faults(plan):
                    result = flow.run(FlowInputs(model=model))
                    if include_devices and result.agfi_id:
                        fleet = _chaos_fleet_exercise(flow, result, seed)
                if result.degraded:
                    status, error = "partial", result.degradation
            except CondorError as exc:
                status, error = "error", f"{type(exc).__name__}: {exc}"
            if fleet is not None and not fleet["bit_correct"]:
                status = "error"
                error = "fleet exercise outputs diverged from golden"
            stats = flow.boundary_stats
            runs.append({
                "network": model.network.name,
                "seed": seed,
                "status": status,
                "error": error,
                "faults": plan.stats(),
                "fleet": fleet,
                "resilience": stats.to_dict() if stats else {},
            })

    survived = [r for r in runs if r["status"] in ("ok", "partial")]
    summary = {
        "runs": len(runs),
        "survived": len(survived),
        "ok": sum(1 for r in runs if r["status"] == "ok"),
        "partial": sum(1 for r in runs if r["status"] == "partial"),
        "error": sum(1 for r in runs if r["status"] == "error"),
        "faults_injected": sum(r["faults"]["injected_total"]
                               for r in runs),
        "retries": sum(sum(r["resilience"].get("retries", {}).values())
                       for r in runs),
    }
    if args.format == "json":
        print(json.dumps({"summary": summary, "runs": runs}, indent=2))
    else:
        from repro.util.tables import TextTable
        table = TextTable(["network", "seed", "status", "faults",
                           "retries", "fleet", "detail"])
        for r in runs:
            fleet = r["fleet"]
            if fleet is None:
                fleet_note = "-"
            elif fleet["bit_correct"]:
                fleet_note = "ok" if not fleet["quarantined"] \
                    else "degraded"
            else:
                fleet_note = "FAIL"
            table.add_row([
                r["network"], r["seed"], r["status"],
                r["faults"]["injected_total"],
                sum(r["resilience"].get("retries", {}).values()),
                fleet_note,
                r["error"] or "",
            ])
        print(table.render())
        print(f"\n{summary['survived']}/{summary['runs']} runs survived"
              f" ({summary['ok']} ok, {summary['partial']} partial,"
              f" {summary['error']} error);"
              f" {summary['faults_injected']} faults injected,"
              f" {summary['retries']} retries")
    return 0 if len(survived) == len(runs) else 1


def cmd_fleet_drill(args) -> int:
    """Run the fleet survival drill and render the matrix."""
    import json as _json

    from repro.fleet import run_drill

    kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip()) \
        if args.kinds else None
    report = run_drill(seeds=tuple(range(args.seeds)), kinds=kinds)
    if args.json_out:
        path = Path(args.json_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(_json.dumps(report, indent=2))
        print(f"report written to {path}", file=sys.stderr)
    if args.format == "json":
        print(_json.dumps(report, indent=2))
    else:
        from repro.util.tables import TextTable
        table = TextTable(["kind", "seed", "status", "expected",
                           "bit-correct", "faults", "recovery actions",
                           "quarantined"])
        for cell in report["cells"]:
            table.add_row([
                cell["kind"], cell["seed"], cell["status"],
                cell["expected"],
                "yes" if cell["bit_correct"] else "NO",
                cell["injected_total"],
                ",".join(cell["recovery_actions"]) or "absorbed",
                ",".join(cell["quarantined"]) or "-",
            ])
        print(table.render())
        print(f"\n{report['cells_total']} cell(s);"
              f" recoverable kinds fully recovered:"
              f" {report['survived_recoverable']};"
              f" all as expected: {report['all_as_expected']}")
    if args.fail_on == "recoverable":
        ok = report["survived_recoverable"] and not report["any_failed"]
        return 0 if ok else 1
    if args.fail_on == "failed":
        return 0 if not report["any_failed"] else 1
    return 0


def _parse_tenants(spec: str) -> tuple:
    """``name[:weight[:quota_rps]],...`` → tenant specs.

    Weight defaults to 1, quota to unlimited; ``0`` (or omitted) quota
    means unlimited.
    """
    import math

    from repro.serve import TenantSpec

    tenants = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        fields = part.split(":")
        try:
            weight = float(fields[1]) if len(fields) > 1 and fields[1] \
                else 1.0
            quota = float(fields[2]) if len(fields) > 2 and fields[2] \
                else 0.0
        except ValueError as exc:
            raise CondorError(
                f"bad tenant spec {part!r} (want"
                f" name[:weight[:quota_rps]]): {exc}") from None
        tenants.append(TenantSpec(
            fields[0], quota_rps=quota if quota > 0 else math.inf,
            weight=weight))
    if not tenants:
        raise CondorError(f"no tenants in {spec!r}")
    return tuple(tenants)


def cmd_serve(args) -> int:
    """Serve a seeded synthetic load on a simulated fleet."""
    import json as _json

    from repro.cloud.f1 import F1Instance
    from repro.obs import build_manifest, write_manifest
    from repro.resilience.clock import VirtualClock
    from repro.serve import (
        Autoscaler,
        AutoscalerConfig,
        InferenceServer,
        LoadSpec,
        ServeConfig,
        build_serving_fleet,
        run_load,
    )

    tenants = _parse_tenants(args.tenants)
    try:
        buckets = tuple(int(b) for b in args.buckets.split(",")
                        if b.strip())
    except ValueError as exc:
        raise CondorError(f"bad --buckets {args.buckets!r}: {exc}") \
            from None
    clock = VirtualClock()
    with recording() as recorder:
        fleet, service = build_serving_fleet(
            args.model, instances=args.instances,
            instance_type=args.instance_type, clock=clock)
        server = InferenceServer(
            fleet, tenants,
            config=ServeConfig(name=args.model,
                               slo_s=args.slo_ms / 1e3,
                               buckets=buckets,
                               max_queue_depth=args.max_queue),
            clock=clock)
        autoscaler = None
        if args.autoscale:
            def launch() -> F1Instance:
                return F1Instance(args.instance_type, service)
            autoscaler = Autoscaler(
                server, launch,
                config=AutoscalerConfig(
                    max_instances=args.max_instances))
        spec = LoadSpec(rate_rps=args.rate, duration_s=args.duration,
                        seed=args.seed, tenants=tenants)
        report = run_load(server, spec, autoscaler=autoscaler)
    doc = report.to_dict()
    workdir = Path(args.workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    manifest = build_manifest(
        recorder=recorder, workdir=workdir,
        run={"command": "serve", "network": args.model,
             "rate_rps": args.rate, "duration_s": args.duration,
             "seed": args.seed, "status": "ok"},
        steps=[], snapshots={"serve": doc})
    manifest_path = write_manifest(workdir, manifest)
    print(f"telemetry manifest written to {manifest_path}",
          file=sys.stderr)
    if args.report:
        report_path = Path(args.report)
        report_path.parent.mkdir(parents=True, exist_ok=True)
        report_path.write_text(_json.dumps(doc, indent=2) + "\n")
        print(f"load report written to {report_path}", file=sys.stderr)
    if args.format == "json":
        print(_json.dumps(doc, indent=2))
    else:
        def ms(value) -> str:
            return f"{value * 1e3:.2f}ms" if value is not None else "-"
        latency = doc["latency"]
        print(f"model {doc['model']}: {doc['completed']}/"
              f"{doc['offered']} requests in {doc['makespan_s']:.3f}s"
              f" virtual -> {doc['throughput_rps']:.0f} req/s")
        print(f"latency p50 {ms(latency['p50_s'])} "
              f" p95 {ms(latency['p95_s'])} "
              f" p99 {ms(latency['p99_s'])} "
              f" max {ms(latency['max_s'])}")
        print(f"batches {doc['batches']} triggers {doc['triggers']}"
              f" padded {doc['padded_samples']}")
        print(f"shed {sum(doc['shed'].values())} ({doc['shed']}) "
              f" failed {doc['failed']} "
              f" instances {doc['fleet']['instances']} "
              f" autoscale events {len(doc['autoscale'])}")
    _telemetry_outputs(args, recorder)
    if args.fail_under_rps and \
            doc["throughput_rps"] < args.fail_under_rps:
        print(f"throughput {doc['throughput_rps']:.0f} req/s is under"
              f" the --fail-under-rps {args.fail_under_rps:g} floor",
              file=sys.stderr)
        return 1
    return 0


def cmd_profile(args) -> int:
    """Run the full flow and report where the time went."""
    flow = CondorFlow(args.workdir, check=not args.no_check)
    inputs = _model_inputs(args.model, args.weights)
    if args.frequency:
        from repro.util.units import parse_freq
        inputs.frequency_hz = parse_freq(args.frequency)
    if args.board:
        inputs.board = args.board
    inputs.run_dse = args.dse
    result = flow.run(inputs)
    print(f"profile of {result.model.network.name}"
          f" ({result.xclbin.part})\n")
    print(result.profile_table())
    manifest_note = (f"  manifest:  {result.telemetry_path}"
                     if result.telemetry_path else "")
    trace_path = args.trace_json or (result.workdir / "trace.json")
    write_chrome_trace(trace_path, recorder=flow.recorder)
    print(f"\nspans recorded: {len(flow.recorder)}")
    if manifest_note:
        print(manifest_note)
    print(f"  trace:     {trace_path}"
          " (open at https://ui.perfetto.dev)")
    if args.metrics:
        path = Path(args.metrics)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(REGISTRY.to_prometheus())
        print(f"  metrics:   {path}")
    return 0


def cmd_dse(args) -> int:
    with recording() as recorder:
        (model, _), _ = _load_model(args)
        from repro.dse import explore
        result = explore(model, jobs=args.jobs)
    print(f"explored {len(result.explored)} configurations in"
          f" {result.steps} steps"
          f" ({result.cache_misses} evaluated,"
          f" {result.cache_hits} cache hits)")
    print(f"best II: {result.performance.ii_cycles} cycles "
          f"({result.performance.gflops():.2f} GFLOPS at"
          f" {model.frequency_hz / 1e6:.0f} MHz)")
    print("\nchosen mapping:")
    for pe in result.mapping.pes:
        print(f"  {pe.name}: {','.join(pe.layer_names)}"
              f"  in={pe.in_parallel} out={pe.out_parallel}")
    _telemetry_outputs(args, recorder)
    return 0


def cmd_simulate(args) -> int:
    import numpy as np

    with recording() as recorder:
        (model, weights), _ = _load_model(args)
        from repro.frontend.weights import WeightStore
        from repro.hw.accelerator import build_accelerator
        from repro.hw.perf import estimate_performance
        from repro.sim.dataflow import simulate_accelerator

        net = model.network
        if not weights.layers():
            weights = WeightStore.initialize(net)
        acc = build_accelerator(model)
        if not args.no_check:
            from repro.analysis import check_model
            from repro.errors import AnalysisError
            report = check_model(model, weights=weights, accelerator=acc)
            if not report.ok:
                print(report.render(), file=sys.stderr)
                raise AnalysisError(
                    f"static analysis found {len(report.errors)}"
                    " error(s); rerun with --no-check to simulate"
                    " anyway", report=report)
        rng = np.random.default_rng(args.seed)
        images = rng.normal(
            size=(args.batch,) + net.input_shape().as_tuple()) \
            .astype(np.float32)
        result = simulate_accelerator(acc, weights, images)
        perf = estimate_performance(acc)
    print(f"simulated batch of {args.batch}: {result.total_cycles} cycles"
          f" ({result.mean_time_per_image(acc.frequency_hz) * 1e6:.2f}"
          " us/image)")
    print(f"closed-form model: {perf.batch_cycles(args.batch)} cycles")
    print("per-PE busy cycles:")
    for name, busy in result.pe_busy_cycles.items():
        blocked = result.pe_blocked_cycles[name]
        print(f"  {name}: busy={busy} blocked={blocked}")
    _telemetry_outputs(args, recorder)
    return 0


def cmd_bench(args) -> int:
    """Time the hot paths on zoo models and gate against a baseline."""
    import json as _json

    from repro.perf.bench import (
        compare_benchmarks,
        load_benchmarks,
        merge_benchmarks,
        run_bench,
        write_benchmarks,
    )
    from repro.util.tables import TextTable

    ops = set(args.op) if args.op else None
    with recording() as recorder:
        results = run_bench(quick=args.quick, jobs=args.jobs, ops=ops,
                            progress=lambda msg: print(msg,
                                                       file=sys.stderr))

    violations = []
    notes: list[str] = []
    baseline_path = Path(args.baseline) if args.baseline else None
    if baseline_path is not None and baseline_path.exists():
        baseline = load_benchmarks(baseline_path)
        violations = compare_benchmarks(
            results, baseline, max_regression=args.max_regression,
            notes=notes)
        for note in notes:
            print(f"note: {note}", file=sys.stderr)
    elif baseline_path is not None:
        print(f"note: baseline {baseline_path} not found; nothing to"
              " compare against", file=sys.stderr)

    # load the baseline *before* writing: --output may point at it
    if args.output:
        to_write = results
        out_path = Path(args.output)
        if ops is not None and out_path.exists():
            # a partial (--op) run refreshes only its own rows
            to_write = merge_benchmarks(load_benchmarks(out_path),
                                        results)
        path = write_benchmarks(to_write, out_path)
        print(f"benchmarks written to {path}", file=sys.stderr)

    if args.format == "json":
        from dataclasses import asdict
        print(_json.dumps({"schema": "condor-bench/v1",
                           "results": [asdict(r) for r in results],
                           "violations": violations}, indent=2))
    else:
        table = TextTable(["op", "model", "wall (s)", "cycles",
                           "cache hits", "speedup"],
                          float_format="{:.4g}")
        for r in results:
            table.add_row([
                r.op, r.model, r.wall_s,
                r.cycles if r.cycles is not None else "-",
                r.cache_hits if r.cache_hits is not None else "-",
                f"{r.speedup_vs_baseline:.2f}x"
                if r.speedup_vs_baseline is not None else "-",
            ])
        print(table.render())
    _telemetry_outputs(args, recorder)
    if violations:
        print(f"\n{len(violations)} regression(s) beyond"
              f" {args.max_regression * 100:.0f}%:", file=sys.stderr)
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    return 0


def _obs_manifest(path: str) -> dict:
    """Load a manifest from a file path or a workdir containing one."""
    from repro.obs import MANIFEST_NAME
    from repro.obs.analyze import load_manifest

    p = Path(path)
    if p.is_dir():
        p = p / MANIFEST_NAME
    if not p.is_file():
        raise CondorError(
            f"no telemetry manifest at {p}; run a flow with telemetry"
            " enabled (the default) first")
    return load_manifest(p)


def cmd_obs_report(args) -> int:
    """Per-span-name latency quantiles from a run's manifest."""
    import json as _json

    from repro.obs.analyze import format_report, span_report

    rows = span_report(_obs_manifest(args.run))
    key = {"total": "total_s", "count": "count", "p50": "p50_s",
           "p95": "p95_s", "p99": "p99_s", "max": "max_s"}[args.sort]
    rows.sort(key=lambda r: r.get(key) or 0, reverse=True)
    if args.format == "json":
        print(_json.dumps(rows[:args.limit] if args.limit else rows,
                          indent=2))
    else:
        print(format_report(rows, limit=args.limit))
    return 0


def cmd_obs_diff(args) -> int:
    """Compare two manifests and flag telemetry regressions."""
    import json as _json

    from repro.obs.analyze import diff_manifests, format_diff

    findings = diff_manifests(
        _obs_manifest(args.baseline), _obs_manifest(args.run),
        latency_threshold=args.latency_threshold,
        metric_threshold=args.metric_threshold)
    if args.format == "json":
        print(_json.dumps(findings, indent=2))
    else:
        print(format_diff(findings))
    return 1 if findings and args.fail_on_regress else 0


def cmd_obs_timeseries(args) -> int:
    """Summarize a run's sampler trajectory (``timeseries.jsonl``)."""
    import json as _json

    from repro.obs import TIMESERIES_NAME
    from repro.obs.analyze import (
        format_timeseries,
        load_timeseries,
        summarize_timeseries,
    )

    p = Path(args.run)
    if p.is_dir():
        p = p / TIMESERIES_NAME
    if not p.is_file():
        raise CondorError(
            f"no time series at {p}; run a flow with telemetry enabled"
            " (the default) first")
    summary = summarize_timeseries(load_timeseries(p))
    if args.format == "json":
        print(_json.dumps(summary, indent=2))
    else:
        print(format_timeseries(summary, limit=args.limit))
    return 0


def cmd_figure5(args) -> int:
    from repro.eval.figure5 import figure5_series, render_figure5
    print(render_figure5(figure5_series()))
    return 0


def cmd_convert(args) -> int:
    """Convert between the supported model formats.

    The target format comes from the output extension: ``.onnx``,
    ``.json`` (Condor), or ``.prototxt`` (Caffe; a sibling
    ``.caffemodel`` is written when weights exist).
    """
    from pathlib import Path

    from repro.frontend.condor_format import CondorModel, save_condor_json

    (model, weights), _ = _load_model(args)
    out = Path(args.output)
    suffix = out.suffix.lower()
    if suffix == ".onnx":
        from repro.frontend.onnx import save_onnx

        save_onnx(model.network, out,
                  weights if weights.layers() else None)
        written = [out]
    elif suffix == ".json":
        save_condor_json(model, out)
        if weights.layers():
            weights.save(out.parent / (out.stem + "_weights"))
        written = [out]
    elif suffix == ".prototxt":
        from repro.frontend.caffe import save_caffe_files

        prototxt, caffemodel = save_caffe_files(
            model.network, out.parent,
            weights if weights.layers() else None,
            basename=out.stem)
        written = [prototxt] + ([caffemodel] if caffemodel else [])
    else:
        raise CondorError(
            f"unknown target format {suffix!r}; use .onnx, .json or"
            " .prototxt")
    for path in written:
        print(f"wrote {path}")
    return 0


def cmd_report(args) -> int:
    from repro.eval.report import full_report, write_report
    if args.output:
        path = write_report(args.output)
        print(f"report written to {path}")
    else:
        print(full_report())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="condor",
        description="CNN-to-FPGA dataflow acceleration framework"
                    " (Condor reproduction)")
    parser.add_argument("--workdir", default="condor-work",
                        help="artifact directory (default: condor-work)")
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="summarize a model")
    info.add_argument("model")
    info.add_argument("--weights", help="caffemodel for .prototxt input")
    info.set_defaults(func=cmd_info)

    def telemetry_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--trace-json", metavar="PATH",
                       help="write a Chrome trace-event JSON"
                            " (chrome://tracing / Perfetto)")
        p.add_argument("--metrics", metavar="PATH",
                       help="write a Prometheus text-format metrics dump")

    def check_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument("--no-check", action="store_true",
                       help="skip the static-analysis gate")

    check = sub.add_parser(
        "check", help="run the static analyzer over a model (or the"
                      " whole zoo) without building anything")
    check.add_argument("model", nargs="?",
                       help="model file; omit with --zoo")
    check.add_argument("--weights", help="caffemodel for .prototxt input")
    check.add_argument("--zoo", action="store_true",
                       help="check the built-in TC1/LeNet/CIFAR10/VGG-16"
                            " models")
    check.add_argument("--select", metavar="PASSES",
                       help="comma-separated pass ids to run (default:"
                            " all; see --list-passes)")
    check.add_argument("--list-passes", action="store_true",
                       help="list the registered analysis passes")
    check.add_argument("--format", choices=["text", "json"],
                       default="text")
    check.add_argument("--fail-on", choices=["error", "warning"],
                       default="error",
                       help="lowest severity that makes the exit code 1")
    telemetry_flags(check)
    check.set_defaults(func=cmd_check)

    audit = sub.add_parser(
        "audit", help="static concurrency audit of the repro sources:"
                      " lock guards, lock ordering, thread-entry races")
    audit.add_argument("--root", metavar="DIR",
                       help="source tree to audit (default: the"
                            " installed repro package)")
    audit.add_argument("--select", metavar="CODES",
                       help="comma-separated CONC codes to run"
                            " (default: all; see --list-rules)")
    audit.add_argument("--list-rules", action="store_true",
                       help="list the CONC rule codes")
    audit.add_argument("--graph", action="store_true",
                       help="print the static lock-order graph first")
    audit.add_argument("--format", choices=["text", "json"],
                       default="text")
    audit.add_argument("--fail-on", choices=["error", "warning"],
                       default="error",
                       help="lowest severity that makes the exit code 1")
    audit.set_defaults(func=cmd_audit)

    build = sub.add_parser("build", help="run the full automation flow")
    build.add_argument("model")
    build.add_argument("--weights")
    build.add_argument("--deploy", choices=["on-premise", "aws-f1"],
                       default="on-premise")
    build.add_argument("--frequency", help="e.g. 180MHz")
    build.add_argument("--board")
    build.add_argument("--dse", action="store_true",
                       help="run the design-space explorer")
    build.add_argument("--resume", action="store_true",
                       help="skip steps whose checkpoints are still"
                            " fresh (re-runs from the first stale or"
                            " failed step)")
    build.add_argument("--afi-max-polls", type=int, metavar="N",
                       help="describe-fpga-images poll budget for the"
                            " AFI wait (aws-f1 deployments)")
    check_flag(build)
    telemetry_flags(build)
    build.set_defaults(func=cmd_build)

    chaos = sub.add_parser(
        "chaos", help="run the flow under seeded fault injection and"
                      " report survival statistics")
    chaos.add_argument("model", nargs="?",
                       help="model file; omit with --zoo")
    chaos.add_argument("--weights", help="caffemodel for .prototxt"
                                         " input")
    chaos.add_argument("--zoo", action="store_true",
                       help="chaos-test the built-in TC1/LeNet/CIFAR10"
                            " models (vgg16 needs DSE to fit F1)")
    chaos.add_argument("--seeds", type=int, default=3, metavar="N",
                       help="fault plans per model (seeds 0..N-1,"
                            " default 3)")
    chaos.add_argument("--no-devices", action="store_true",
                       help="skip the device-level fault kinds and the"
                            " post-build fleet exercise")
    chaos.add_argument("--format", choices=["text", "json"],
                       default="text")
    chaos.set_defaults(func=cmd_chaos)

    fleet = sub.add_parser(
        "fleet", help="health-managed execution over F1 FPGA slots:"
                      " watchdogs, scrubbing, quarantine, failover")
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    drill = fleet_sub.add_parser(
        "drill", help="seeded survival matrix: device fault kind x"
                      " recovery action x result correctness")
    drill.add_argument("--seeds", type=int, default=2, metavar="N",
                       help="drill every fault kind with seeds 0..N-1"
                            " (default 2)")
    drill.add_argument("--kinds", metavar="K1,K2",
                       help="comma-separated fault kinds (default: all;"
                            " seu-bitflip, kernel-hang, slow-device,"
                            " slot-crash, instance-loss)")
    drill.add_argument("--json-out", metavar="PATH",
                       help="also write the full JSON report here")
    drill.add_argument("--format", choices=["text", "json"],
                       default="text")
    drill.add_argument("--fail-on",
                       choices=["recoverable", "failed", "none"],
                       default="recoverable",
                       help="exit 1 when a recoverable kind does not"
                            " fully recover (default), only on hard"
                            " failures, or never")
    drill.set_defaults(func=cmd_fleet_drill)

    serve = sub.add_parser(
        "serve", help="multi-tenant dynamic-batching inference serving"
                      " on a simulated fleet: seeded synthetic load,"
                      " throughput and p50/p95/p99 on the virtual"
                      " clock")
    serve.add_argument("--model", default="tc1",
                       choices=["tc1", "lenet", "cifar10"],
                       help="zoo model to build and serve"
                            " (default tc1)")
    serve.add_argument("--instances", type=int, default=2,
                       help="initial F1 instances (default 2)")
    serve.add_argument("--instance-type", default="f1.4xlarge",
                       choices=["f1.2xlarge", "f1.4xlarge",
                                "f1.16xlarge"],
                       help="instance type (default f1.4xlarge)")
    serve.add_argument("--rate", type=float, default=2000.0,
                       metavar="RPS",
                       help="offered request rate (default 2000)")
    serve.add_argument("--duration", type=float, default=4.0,
                       metavar="S",
                       help="virtual seconds of load (default 4)")
    serve.add_argument("--seed", type=int, default=0,
                       help="arrival-process seed (default 0)")
    serve.add_argument("--slo-ms", type=float, default=10.0,
                       metavar="MS",
                       help="batching latency budget (default 10ms)")
    serve.add_argument("--buckets", default="1,2,4,8",
                       metavar="B1,B2",
                       help="batch-size ladder flushes snap to"
                            " (default 1,2,4,8)")
    serve.add_argument("--max-queue", type=int, default=512,
                       metavar="N",
                       help="queue depth beyond which requests shed"
                            " (default 512)")
    serve.add_argument("--tenants", default="alpha:3,beta:1",
                       metavar="NAME[:WEIGHT[:QUOTA_RPS]],...",
                       help="tenant mix; weight shapes the synthetic"
                            " load, quota 0/omitted = unlimited"
                            " (default alpha:3,beta:1)")
    serve.add_argument("--autoscale", action="store_true",
                       help="enable the registry-driven autoscaler"
                            " (queue depth + p99)")
    serve.add_argument("--max-instances", type=int, default=4,
                       metavar="N",
                       help="autoscaler instance ceiling (default 4)")
    serve.add_argument("--report", metavar="PATH",
                       help="also write the JSON load report here")
    serve.add_argument("--format", choices=["text", "json"],
                       default="text")
    serve.add_argument("--fail-under-rps", type=float, default=0.0,
                       metavar="RPS",
                       help="exit 1 when sustained throughput falls"
                            " under this floor (default: no floor)")
    telemetry_flags(serve)
    serve.set_defaults(func=cmd_serve)

    profile = sub.add_parser(
        "profile", help="run the flow and print a per-step timing"
                        " profile")
    profile.add_argument("model")
    profile.add_argument("--weights")
    profile.add_argument("--frequency", help="e.g. 180MHz")
    profile.add_argument("--board")
    profile.add_argument("--dse", action="store_true",
                         help="include the design-space explorer")
    check_flag(profile)
    telemetry_flags(profile)
    profile.set_defaults(func=cmd_profile)

    dse = sub.add_parser("dse", help="explore parallelism configurations")
    dse.add_argument("model")
    dse.add_argument("--weights")
    dse.add_argument("--jobs", type=int, default=1,
                     help="evaluate candidate moves concurrently"
                          " (identical result for any value)")
    telemetry_flags(dse)
    dse.set_defaults(func=cmd_dse)

    simulate = sub.add_parser("simulate",
                              help="event-driven functional simulation")
    simulate.add_argument("model")
    simulate.add_argument("--weights")
    simulate.add_argument("--batch", type=int, default=4)
    simulate.add_argument("--seed", type=int, default=0)
    check_flag(simulate)
    telemetry_flags(simulate)
    simulate.set_defaults(func=cmd_simulate)

    bench = sub.add_parser(
        "bench", help="time the batched engine, DSE and simulator hot"
                      " paths on zoo models; diff against a committed"
                      " baseline")
    bench.add_argument("--quick", action="store_true",
                       help="run the small CI suite (TC1/LeNet rows"
                            " only)")
    bench.add_argument("--jobs", type=int, default=4,
                       help="DSE evaluation threads (default 4)")
    bench.add_argument("--op", action="append", metavar="OP",
                       choices=["engine", "engine-steady", "dse", "sim",
                                "serve", "obs-overhead",
                                "tsan-overhead"],
                       help="run only this operation's rows (repeatable;"
                            " e.g. --op engine-steady); a partial run"
                            " merges into --output instead of replacing"
                            " it")
    bench.add_argument("--output", metavar="PATH",
                       default="BENCH_perf.json",
                       help="write results here (default:"
                            " BENCH_perf.json; empty string to skip)")
    bench.add_argument("--baseline", metavar="PATH",
                       default="BENCH_perf.json",
                       help="baseline to diff against (default:"
                            " BENCH_perf.json; missing file skips the"
                            " comparison)")
    bench.add_argument("--max-regression", type=float, default=0.20,
                       metavar="FRAC",
                       help="fail when cycles grow or speedups decay by"
                            " more than this fraction (default 0.20)")
    bench.add_argument("--format", choices=["text", "json"],
                       default="text")
    telemetry_flags(bench)
    bench.set_defaults(func=cmd_bench)

    obs = sub.add_parser(
        "obs", help="offline analytics over telemetry artifacts"
                    " (telemetry.json / timeseries.jsonl)")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    obs_report = obs_sub.add_parser(
        "report", help="per-span-name count / total / p50 / p95 / p99")
    obs_report.add_argument("run",
                            help="telemetry.json or a workdir holding"
                                 " one")
    obs_report.add_argument("--sort", default="total",
                            choices=["total", "count", "p50", "p95",
                                     "p99", "max"])
    obs_report.add_argument("--limit", type=int, metavar="N",
                            help="show only the top N spans")
    obs_report.add_argument("--format", choices=["text", "json"],
                            default="text")
    obs_report.set_defaults(func=cmd_obs_report)

    obs_diff = obs_sub.add_parser(
        "diff", help="flag latency / metric / RSS regressions between"
                     " two runs")
    obs_diff.add_argument("baseline",
                          help="baseline telemetry.json or workdir")
    obs_diff.add_argument("run",
                          help="current telemetry.json or workdir")
    obs_diff.add_argument("--latency-threshold", type=float,
                          default=0.25, metavar="FRAC",
                          help="flag spans whose p95 grew by more than"
                               " this fraction (default 0.25)")
    obs_diff.add_argument("--metric-threshold", type=float,
                          default=0.25, metavar="FRAC",
                          help="flag counters / RSS that grew by more"
                               " than this fraction (default 0.25)")
    obs_diff.add_argument("--fail-on-regress", action="store_true",
                          help="exit 1 when any regression is flagged")
    obs_diff.add_argument("--format", choices=["text", "json"],
                          default="text")
    obs_diff.set_defaults(func=cmd_obs_diff)

    obs_ts = obs_sub.add_parser(
        "timeseries", help="summarize the background sampler's"
                           " timeseries.jsonl")
    obs_ts.add_argument("run",
                        help="timeseries.jsonl or a workdir holding one")
    obs_ts.add_argument("--limit", type=int, default=20, metavar="N",
                        help="metrics to show, biggest movers first"
                             " (default 20)")
    obs_ts.add_argument("--format", choices=["text", "json"],
                        default="text")
    obs_ts.set_defaults(func=cmd_obs_timeseries)

    figure5 = sub.add_parser("figure5",
                             help="regenerate the Figure 5 series")
    figure5.set_defaults(func=cmd_figure5)

    report = sub.add_parser(
        "report", help="regenerate the full evaluation (Tables 1-2 +"
                       " Figure 5)")
    report.add_argument("--output", help="write to a file instead of"
                                         " stdout")
    report.set_defaults(func=cmd_report)

    convert = sub.add_parser(
        "convert", help="convert a model between Caffe / ONNX / Condor"
                        " JSON formats")
    convert.add_argument("model")
    convert.add_argument("output",
                         help="target path; extension picks the format")
    convert.add_argument("--weights", help="caffemodel for .prototxt"
                                           " input")
    convert.set_defaults(func=cmd_convert)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except CondorError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
