"""Fixed-point quantization (framework extension).

The related work the paper compares against ([14], Qiu et al. FPGA'16)
shows that "data quantization is performed to reduce bandwidth
requirements and resource utilization, with negligible impact on the
resulting accuracy".  This package adds that capability to the framework:
post-training symmetric linear quantization of weights and activations,
fake-quantized inference for accuracy evaluation, and the corresponding
resource-model scaling (int16/int8 MACs cost a fraction of an fp32
DSP tree; storage shrinks with the word width).
"""

from repro.quant.scheme import (
    PRECISIONS,
    QuantScheme,
    dequantize,
    quantize,
)
from repro.quant.apply import (
    LayerQuantStats,
    QuantReport,
    QuantizedEngine,
    quantize_store,
)

__all__ = [
    "PRECISIONS",
    "QuantScheme",
    "dequantize",
    "quantize",
    "LayerQuantStats",
    "QuantReport",
    "QuantizedEngine",
    "quantize_store",
]
