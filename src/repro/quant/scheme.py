"""Symmetric per-tensor linear quantization.

A tensor ``x`` quantizes to ``q = clip(round(x / scale))`` with
``scale = max|x| / qmax`` — the standard post-training scheme.  Values
come back as ``q * scale`` (fake quantization), which is numerically what
the fixed-point datapath computes up to accumulator effects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CondorError

#: Supported datapath precisions and their MAC/storage characteristics.
#: ``dsp_per_mac``: DSP48 slices per multiply-accumulate (an int8 MAC
#: packs two per DSP; fp32 needs a 3-DSP multiplier + 2-DSP adder).
PRECISIONS: dict[str, dict[str, float]] = {
    "fp32": {"bits": 32, "dsp_per_mac": 5.0},
    "int16": {"bits": 16, "dsp_per_mac": 1.0},
    "int8": {"bits": 8, "dsp_per_mac": 0.5},
}


@dataclass(frozen=True)
class QuantScheme:
    """Bit width + derived ranges for symmetric signed quantization."""

    bits: int

    def __post_init__(self) -> None:
        if self.bits < 2 or self.bits > 32:
            raise CondorError(f"unsupported bit width {self.bits}")

    @property
    def qmax(self) -> int:
        return (1 << (self.bits - 1)) - 1

    @property
    def qmin(self) -> int:
        return -self.qmax  # symmetric: -(2^(b-1)-1), keeps zero exact

    def scale_for(self, array: np.ndarray) -> float:
        peak = float(np.max(np.abs(array))) if array.size else 0.0
        if peak == 0.0:
            return 1.0
        return peak / self.qmax

    @classmethod
    def for_precision(cls, precision: str) -> "QuantScheme":
        try:
            return cls(bits=int(PRECISIONS[precision]["bits"]))
        except KeyError:
            raise CondorError(
                f"unknown precision {precision!r}; known:"
                f" {sorted(PRECISIONS)}") from None


def quantize(array: np.ndarray, scheme: QuantScheme,
             scale: float | None = None) -> tuple[np.ndarray, float]:
    """Quantize to integers; returns ``(q, scale)``."""
    array = np.asarray(array, dtype=np.float64)
    if scale is None:
        scale = scheme.scale_for(array)
    q = np.clip(np.rint(array / scale), scheme.qmin, scheme.qmax)
    return q.astype(np.int64), float(scale)


def dequantize(q: np.ndarray, scale: float) -> np.ndarray:
    """Map integers back to the real axis."""
    return (np.asarray(q, dtype=np.float64) * scale).astype(np.float32)


def fake_quantize(array: np.ndarray, scheme: QuantScheme,
                  scale: float | None = None) -> np.ndarray:
    """quantize → dequantize in one step (the datapath's rounding)."""
    q, s = quantize(array, scheme, scale)
    return dequantize(q, s)
