"""Applying quantization to weight stores and inference.

``quantize_store`` fake-quantizes every blob and reports per-layer error
statistics; :class:`QuantizedEngine` additionally fake-quantizes the
activation stream after every layer, modelling the fixed-point datapath
end to end, so accuracy impact can be measured against the fp32 engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.frontend.weights import WeightStore
from repro.ir.layers import Layer, SoftmaxLayer
from repro.ir.network import Network
from repro.nn.engine import ReferenceEngine
from repro.quant.scheme import QuantScheme, fake_quantize, quantize


@dataclass(frozen=True)
class LayerQuantStats:
    """Quantization error of one blob."""

    layer: str
    blob: str
    scale: float
    max_abs_error: float
    snr_db: float


@dataclass
class QuantReport:
    """Per-blob statistics of one quantization pass."""

    scheme: QuantScheme
    stats: list[LayerQuantStats] = field(default_factory=list)

    def worst_snr_db(self) -> float:
        return min((s.snr_db for s in self.stats), default=float("inf"))

    def summary(self) -> str:
        from repro.util.tables import TextTable

        table = TextTable(["layer", "blob", "scale", "max |err|",
                           "SNR (dB)"], float_format="{:.4g}")
        for s in self.stats:
            table.add_row([s.layer, s.blob, s.scale, s.max_abs_error,
                           s.snr_db])
        return table.render()


def _snr_db(original: np.ndarray, quantized: np.ndarray) -> float:
    noise = float(np.sum((original - quantized) ** 2))
    signal = float(np.sum(original ** 2))
    if noise == 0.0:
        return float("inf")
    if signal == 0.0:
        return 0.0
    return 10.0 * np.log10(signal / noise)


def quantize_store(store: WeightStore, scheme: QuantScheme) \
        -> tuple[WeightStore, QuantReport]:
    """Fake-quantize every blob; returns the new store + the report."""
    out = WeightStore()
    report = QuantReport(scheme=scheme)
    for layer in store.layers():
        for blob, array in store.blobs(layer).items():
            q, scale = quantize(array, scheme)
            deq = (q * scale).astype(np.float32)
            out.set(layer, blob, deq)
            report.stats.append(LayerQuantStats(
                layer=layer, blob=blob, scale=scale,
                max_abs_error=float(np.max(np.abs(array - deq)))
                if array.size else 0.0,
                snr_db=_snr_db(array, deq),
            ))
    return out, report


class QuantizedEngine(ReferenceEngine):
    """Inference with fake-quantized weights *and* activations.

    The input and every layer output are rounded onto the activation
    grid (per-tensor dynamic scale, as a hardware block with per-layer
    calibrated shifts would); softmax stays in floating point — in the
    architecture it runs on the host-facing normalization stage.
    """

    def __init__(self, net: Network, weights: WeightStore,
                 scheme: QuantScheme, **engine_kwargs):
        quantized, self.report = quantize_store(weights, scheme)
        super().__init__(net, quantized, **engine_kwargs)
        self.scheme = scheme

    def run_layer(self, layer: Layer, x: np.ndarray) -> np.ndarray:
        out = super().run_layer(layer, x)
        if isinstance(layer, SoftmaxLayer):
            return out
        return fake_quantize(out, self.scheme)

    def _post_layer(self, layer: Layer, out: np.ndarray) -> np.ndarray:
        """Planned-path twin of the :meth:`run_layer` wrapping: round
        each layer output onto the activation grid.  The scale is
        dynamic per tensor, so it stays *outside* the shape-keyed plans
        — the plan replays the arithmetic, this hook quantizes."""
        if isinstance(layer, SoftmaxLayer):
            return out
        return fake_quantize(out, self.scheme)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = fake_quantize(np.asarray(x, dtype=np.float32), self.scheme)
        return super().forward(x)

    def run_batch(self, batch: np.ndarray) -> np.ndarray:
        """Per-sample loop, deliberately: the activation grid uses a
        dynamic per-tensor scale, so a whole-batch pass would calibrate
        one scale across the batch and change every sample's rounding."""
        batch = np.asarray(batch, dtype=np.float32)
        return np.stack([self.forward(sample) for sample in batch])


def top1_agreement(net: Network, weights: WeightStore,
                   scheme: QuantScheme, images: np.ndarray) -> float:
    """Fraction of inputs where the quantized engine picks the same class
    as the fp32 engine — the "negligible impact on accuracy" metric."""
    fp32 = ReferenceEngine(net, weights)
    fixed = QuantizedEngine(net, weights, scheme)
    images = np.asarray(images, dtype=np.float32)
    agree = fp32.predict_batch(images) == fixed.predict_batch(images)
    return float(np.mean(agree))
