"""Structural validation of IR networks.

The constructor of :class:`~repro.ir.network.Network` already enforces the
chain form, unique names, and successful shape inference.  This module adds
the *mappability* checks the core logic needs before hardware generation:
stage ordering (features extraction before classification, §2), and the
constraints the accelerator template imposes (e.g. softmax only as the final
normalization layer).

Two entry points share one rule set:

* :func:`check_network` reports **all** violations as
  :class:`~repro.analysis.diagnostics.Diagnostic` objects (codes
  ``NET001``–``NET005``) — the static analyzer's shape-legality pass
  builds on it;
* :func:`validate_network` is the historical raise-on-first-error wrapper
  (it raises :class:`~repro.errors.ValidationError` with the first
  violation's message), kept for constructors and converters that need a
  hard failure.
"""

from __future__ import annotations

import typing

from repro.errors import ValidationError
from repro.ir.layers import (
    ConvLayer,
    FlattenLayer,
    FullyConnectedLayer,
    InputLayer,
    PoolLayer,
    SoftmaxLayer,
)
from repro.ir.network import Network

if typing.TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.analysis.diagnostics import Diagnostic


def check_network(net: Network) -> "list[Diagnostic]":
    """Collect every mappability violation of ``net`` (no raising).

    Checks:

    * ``NET001`` — exactly one input layer, at position 0 (chain form is
      implied);
    * ``NET002`` — at least one compute layer;
    * ``NET003`` — no features-extraction layer (conv/pool) after the
      first classification layer — the paper's two-phase structure;
    * ``NET004`` — softmax, if present, is the final layer;
    * ``NET005`` — flatten only at the features/classifier boundary.
    """
    # local import: repro.analysis depends on repro.ir, not vice versa
    from repro.analysis.diagnostics import Diagnostic, Location, Severity

    def err(code: str, message: str, layer: str | None = None,
            hint: str = "") -> Diagnostic:
        return Diagnostic(pass_id="shape-legality", code=code,
                          severity=Severity.ERROR, message=message,
                          location=Location(layer=layer), hint=hint)

    diags: list[Diagnostic] = []
    input_layers = [l for l in net.layers if isinstance(l, InputLayer)]
    if len(input_layers) != 1 or net.layers[0] is not input_layers[0]:
        diags.append(err(
            "NET001",
            f"network {net.name!r} must have exactly one leading"
            " InputLayer",
            hint="declare the input shape once, as the first layer"))

    if not net.compute_layers():
        diags.append(err(
            "NET002", f"network {net.name!r} has no compute layers",
            hint="a mappable network needs at least one conv/pool/fc"
                 " layer"))

    seen_classifier = False
    for layer in net.layers[1:]:
        if isinstance(layer, FullyConnectedLayer):
            seen_classifier = True
        elif isinstance(layer, (ConvLayer, PoolLayer)) and seen_classifier:
            diags.append(err(
                "NET003",
                f"features-extraction layer {layer.name!r} appears after"
                " the classification stage began", layer.name,
                hint="move all conv/pool layers before the first"
                     " fully-connected layer (paper §2)"))

    for i, layer in enumerate(net.layers):
        if isinstance(layer, SoftmaxLayer) and i != len(net.layers) - 1:
            diags.append(err(
                "NET004",
                f"softmax layer {layer.name!r} must be the final layer",
                layer.name,
                hint="softmax is the output normalization (eq. 5); no"
                     " layers may follow it"))

    for i, layer in enumerate(net.layers):
        if not isinstance(layer, FlattenLayer):
            continue
        after = net.layers[i + 1:]
        if any(isinstance(l, (ConvLayer, PoolLayer)) for l in after):
            diags.append(err(
                "NET005",
                f"flatten layer {layer.name!r} is followed by"
                " features-extraction layers", layer.name,
                hint="flatten belongs at the features/classifier"
                     " boundary"))
    return diags


def validate_network(net: Network) -> None:
    """Raise :class:`ValidationError` on the first violation found.

    Thin wrapper over :func:`check_network`, kept for the call sites
    (model constructors, converters) that need raise-on-error semantics.
    """
    for diag in check_network(net):
        raise ValidationError(diag.message)
