"""Structural validation of IR networks.

The constructor of :class:`~repro.ir.network.Network` already enforces the
chain form, unique names, and successful shape inference.  This module adds
the *mappability* checks the core logic needs before hardware generation:
stage ordering (features extraction before classification, §2), and the
constraints the accelerator template imposes (e.g. softmax only as the final
normalization layer).
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.ir.layers import (
    ConvLayer,
    FlattenLayer,
    FullyConnectedLayer,
    InputLayer,
    Layer,
    PoolLayer,
    SoftmaxLayer,
    Stage,
)
from repro.ir.network import Network


def validate_network(net: Network) -> None:
    """Raise :class:`ValidationError` if ``net`` cannot be mapped.

    Checks:

    * exactly one input layer, at position 0 (chain form is implied);
    * no features-extraction layer (conv/pool) after the first
      classification layer — the paper's two-phase structure;
    * softmax, if present, is the final layer;
    * at least one compute layer.
    """
    input_layers = [l for l in net.layers if isinstance(l, InputLayer)]
    if len(input_layers) != 1 or net.layers[0] is not input_layers[0]:
        raise ValidationError(
            f"network {net.name!r} must have exactly one leading InputLayer")

    if not net.compute_layers():
        raise ValidationError(
            f"network {net.name!r} has no compute layers")

    seen_classifier = False
    for layer in net.layers[1:]:
        if isinstance(layer, FullyConnectedLayer):
            seen_classifier = True
        elif isinstance(layer, (ConvLayer, PoolLayer)) and seen_classifier:
            raise ValidationError(
                f"features-extraction layer {layer.name!r} appears after"
                " the classification stage began")

    for i, layer in enumerate(net.layers):
        if isinstance(layer, SoftmaxLayer) and i != len(net.layers) - 1:
            raise ValidationError(
                f"softmax layer {layer.name!r} must be the final layer")

    _validate_flatten_positions(net)


def _validate_flatten_positions(net: Network) -> None:
    """Flatten layers may only appear at the features/classifier boundary."""
    for i, layer in enumerate(net.layers):
        if not isinstance(layer, FlattenLayer):
            continue
        after = net.layers[i + 1:]
        if any(isinstance(l, (ConvLayer, PoolLayer)) for l in after):
            raise ValidationError(
                f"flatten layer {layer.name!r} is followed by"
                " features-extraction layers")
