"""Graphviz DOT export for networks and accelerators.

Textual analogues of the paper's Figure 1 (CNN structure) and Figure 4
(accelerator template): render with ``dot -Tpng``.  The accelerator view
shows PEs with their fused layers, the datamover, every stream edge with
its FIFO depth, and per-PE filter-chain summaries.
"""

from __future__ import annotations

from repro.hw.components import Accelerator, PEKind
from repro.ir.network import Network

_STAGE_COLORS = {
    "features": "#cfe2ff",
    "classifier": "#ffe3cf",
}

_KIND_COLORS = {
    PEKind.CONV: "#cfe2ff",
    PEKind.POOL: "#d8f3dc",
    PEKind.FC: "#ffe3cf",
    PEKind.ACTIVATION: "#ede7f6",
    PEKind.SOFTMAX: "#fde2e4",
}


def _quote(text: str) -> str:
    return '"' + text.replace('"', r"\"") + '"'


def network_to_dot(net: Network) -> str:
    """The layer chain with shapes on the edges (Figure 1 analogue)."""
    lines = [f"digraph {_quote(net.name)} {{",
             "  rankdir=LR;",
             "  node [shape=box, style=filled, fontname=Helvetica];"]
    for i, layer in enumerate(net.layers):
        if i == 0:
            color = "#f5f5f5"
        else:
            color = _STAGE_COLORS.get(net.stage_of(layer).value,
                                      "#ffffff")
        label = f"{layer.name}\\n{layer.type_name}"
        lines.append(f"  {_quote(layer.name)} [label={_quote(label)},"
                     f" fillcolor={_quote(color)}];")
    for a, b in zip(net.layers, net.layers[1:]):
        shape = net.output_shape(a)
        lines.append(f"  {_quote(a.name)} -> {_quote(b.name)}"
                     f" [label={_quote(str(shape))}];")
    lines.append("}")
    return "\n".join(lines) + "\n"


def accelerator_to_dot(acc: Accelerator) -> str:
    """The spatial accelerator (Figure 4 analogue)."""
    lines = [f"digraph {_quote(acc.name)} {{",
             "  rankdir=LR;",
             "  node [shape=record, style=filled, fontname=Helvetica];",
             f"  {_quote(acc.datamover.name)} [shape=box3d,"
             " fillcolor=\"#eeeeee\","
             f" label={_quote('datamover | ' + str(acc.datamover.stream_ports) + ' stream ports')}];"]
    for pe in acc.pes:
        parts = [pe.name, "+".join(pe.layer_names),
                 f"{pe.in_parallel}x{pe.out_parallel} ports"]
        if pe.memory:
            chain = pe.memory[0]
            parts.append(f"{len(chain.filters)} filters /"
                         f" {chain.spec.buffered_words} buffered words")
        if pe.weight_words:
            where = "on-chip" if pe.weights_on_chip else "DDR-streamed"
            parts.append(f"{pe.weight_words} weights ({where})")
        label = " | ".join(parts)
        color = _KIND_COLORS.get(pe.kind, "#ffffff")
        lines.append(f"  {_quote(pe.name)} [label={_quote(label)},"
                     f" fillcolor={_quote(color)}];")
    for edge in acc.edges:
        style = ", style=dashed" if edge.fifo.name.endswith("weights") \
            else ""
        lines.append(
            f"  {_quote(edge.source)} -> {_quote(edge.dest)}"
            f" [label={_quote('fifo[' + str(edge.fifo.depth) + ']')}"
            f"{style}];")
    lines.append("}")
    return "\n".join(lines) + "\n"
