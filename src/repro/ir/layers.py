"""Layer definitions of the Condor IR.

The layer set mirrors §2 of the paper: convolutional layers (§2.1, eq. 1),
sub-sampling layers (§2.2, eq. 3), fully-connected layers (§2.3, eq. 4) and
the LogSoftMax normalization (eq. 5), plus the point-wise activations (ReLU,
sigmoid, tanh) the paper lists.  Each layer computes its output shape from an
input shape, classifies itself into the *features extraction* or
*classification* stage, and reports its parameter blob shapes (used by the
weight store and the Caffe converter).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ShapeError
from repro.ir.shapes import TensorShape, conv_output_hw, pool_output_hw


class Stage(enum.Enum):
    """The two phases of a CNN identified in §2 of the paper."""

    FEATURES = "features"
    CLASSIFIER = "classifier"
    # Layers that belong to whichever stage surrounds them (activations,
    # flatten, softmax).
    NEUTRAL = "neutral"


class Activation(enum.Enum):
    """Point-wise non-linearities from §2.1."""

    NONE = "none"
    RELU = "relu"
    SIGMOID = "sigmoid"
    TANH = "tanh"


class PoolOp(enum.Enum):
    """Sub-sampling operators from §2.2."""

    MAX = "max"
    AVG = "avg"


def _pair(value: int | tuple[int, int]) -> tuple[int, int]:
    if isinstance(value, int):
        return (value, value)
    pair = tuple(int(v) for v in value)
    if len(pair) != 2:
        raise ShapeError(f"expected scalar or pair, got {value!r}")
    return pair  # type: ignore[return-value]


@dataclass(frozen=True)
class Layer:
    """Base class for all IR layers."""

    name: str

    #: Stage classification; overridden per subclass.
    stage: Stage = field(default=Stage.NEUTRAL, init=False, repr=False)

    def output_shape(self, in_shape: TensorShape) -> TensorShape:
        """Infer the output shape for ``in_shape`` (identity by default)."""
        return in_shape

    def weight_shapes(self, in_shape: TensorShape) -> dict[str, tuple[int, ...]]:
        """Names and shapes of this layer's learnable blobs (may be empty)."""
        return {}

    @property
    def type_name(self) -> str:
        return type(self).__name__.removesuffix("Layer").lower()


@dataclass(frozen=True)
class InputLayer(Layer):
    """Declares the network input shape (channels, height, width)."""

    shape: TensorShape = TensorShape(1, 1, 1)

    def output_shape(self, in_shape: TensorShape) -> TensorShape:
        return self.shape


@dataclass(frozen=True)
class ConvLayer(Layer):
    """A convolutional layer — eq. (1) with optional fused activation.

    ``kernel``, ``stride`` and ``pad`` take either a scalar (square window)
    or an ``(h, w)`` pair, matching Caffe's ``kernel_size`` /
    ``kernel_h``/``kernel_w`` convention.
    """

    num_output: int = 1
    kernel: tuple[int, int] = (1, 1)
    stride: tuple[int, int] = (1, 1)
    pad: tuple[int, int] = (0, 0)
    bias: bool = True
    activation: Activation = Activation.NONE

    def __post_init__(self) -> None:
        object.__setattr__(self, "kernel", _pair(self.kernel))
        object.__setattr__(self, "stride", _pair(self.stride))
        object.__setattr__(self, "pad", _pair(self.pad))
        object.__setattr__(self, "stage", Stage.FEATURES)
        if self.num_output <= 0:
            raise ShapeError(
                f"conv layer {self.name!r}: num_output must be positive")

    def output_shape(self, in_shape: TensorShape) -> TensorShape:
        h, w = conv_output_hw((in_shape.height, in_shape.width),
                              self.kernel, self.stride, self.pad)
        return TensorShape(self.num_output, h, w)

    def weight_shapes(self, in_shape: TensorShape) -> dict[str, tuple[int, ...]]:
        shapes = {
            "weights": (self.num_output, in_shape.channels,
                        self.kernel[0], self.kernel[1]),
        }
        if self.bias:
            shapes["bias"] = (self.num_output,)
        return shapes


@dataclass(frozen=True)
class PoolLayer(Layer):
    """A sub-sampling layer — eq. (3).

    ``stride`` defaults to the kernel size (non-overlapping windows, the
    common 2×2/ρ=2 configuration the paper calls the most common and
    smallest).  ``ceil_mode`` reproduces Caffe's output-size rounding.
    """

    op: PoolOp = PoolOp.MAX
    kernel: tuple[int, int] = (2, 2)
    stride: tuple[int, int] | None = None
    pad: tuple[int, int] = (0, 0)
    ceil_mode: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "kernel", _pair(self.kernel))
        stride = self.kernel if self.stride is None else _pair(self.stride)
        object.__setattr__(self, "stride", stride)
        object.__setattr__(self, "pad", _pair(self.pad))
        object.__setattr__(self, "stage", Stage.FEATURES)

    def output_shape(self, in_shape: TensorShape) -> TensorShape:
        assert self.stride is not None
        h, w = pool_output_hw((in_shape.height, in_shape.width),
                              self.kernel, self.stride, self.pad,
                              ceil_mode=self.ceil_mode)
        return TensorShape(in_shape.channels, h, w)


@dataclass(frozen=True)
class ActivationLayer(Layer):
    """A standalone point-wise non-linearity (ReLU / sigmoid / tanh)."""

    kind: Activation = Activation.RELU

    def __post_init__(self) -> None:
        if self.kind is Activation.NONE:
            raise ShapeError(
                f"activation layer {self.name!r} must specify a function")


@dataclass(frozen=True)
class FlattenLayer(Layer):
    """Reshape the feature maps into a vector for the MLP stage."""

    def output_shape(self, in_shape: TensorShape) -> TensorShape:
        return in_shape.flattened()


@dataclass(frozen=True)
class FullyConnectedLayer(Layer):
    """A fully-connected layer — eq. (4), with optional fused activation.

    Accepts either a flat or a spatial input shape (Caffe's InnerProduct
    flattens implicitly); the weight matrix is sized on the flattened input.
    """

    num_output: int = 1
    bias: bool = True
    activation: Activation = Activation.NONE

    def __post_init__(self) -> None:
        object.__setattr__(self, "stage", Stage.CLASSIFIER)
        if self.num_output <= 0:
            raise ShapeError(
                f"fc layer {self.name!r}: num_output must be positive")

    def output_shape(self, in_shape: TensorShape) -> TensorShape:
        return TensorShape(self.num_output, 1, 1)

    def weight_shapes(self, in_shape: TensorShape) -> dict[str, tuple[int, ...]]:
        shapes = {"weights": (self.num_output, in_shape.size)}
        if self.bias:
            shapes["bias"] = (self.num_output,)
        return shapes


@dataclass(frozen=True)
class SoftmaxLayer(Layer):
    """The normalization layer of eq. (5); ``log=True`` gives LogSoftMax."""

    log: bool = True

    def output_shape(self, in_shape: TensorShape) -> TensorShape:
        if not in_shape.is_vector():
            raise ShapeError(
                f"softmax layer {self.name!r} expects a flat input,"
                f" got {in_shape}")
        return in_shape
