"""Internal network representation (IR).

The IR is the hinge of the framework: the frontend lowers Caffe or Condor
JSON models into it, and the core logic maps it onto the spatial dataflow
accelerator.  Networks are linear chains of layers — the accelerator template
of the paper (§3.2) is a high-level pipeline where the output of a PE feeds
the next, so a chain is exactly the supported topology; the validator rejects
anything else at the frontend boundary.
"""

from repro.ir.shapes import TensorShape, conv_output_hw, pool_output_hw
from repro.ir.layers import (
    Activation,
    ActivationLayer,
    ConvLayer,
    FlattenLayer,
    FullyConnectedLayer,
    InputLayer,
    Layer,
    PoolLayer,
    PoolOp,
    SoftmaxLayer,
    Stage,
)
from repro.ir.network import Network
from repro.ir.flops import layer_flops, layer_macs, network_flops
from repro.ir.validate import validate_network

__all__ = [
    "TensorShape",
    "conv_output_hw",
    "pool_output_hw",
    "Activation",
    "ActivationLayer",
    "ConvLayer",
    "FlattenLayer",
    "FullyConnectedLayer",
    "InputLayer",
    "Layer",
    "PoolLayer",
    "PoolOp",
    "SoftmaxLayer",
    "Stage",
    "Network",
    "layer_flops",
    "layer_macs",
    "network_flops",
    "validate_network",
]
