"""The :class:`Network` container: an ordered chain of layers with inferred
shapes.

The accelerator template (paper §3.2) is a linear high-level pipeline, so the
IR models networks as chains.  Shape inference runs eagerly at construction;
every layer's input and output shape is available afterwards in O(1).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.errors import ValidationError
from repro.ir.layers import (
    ActivationLayer,
    ConvLayer,
    FlattenLayer,
    FullyConnectedLayer,
    InputLayer,
    Layer,
    PoolLayer,
    SoftmaxLayer,
    Stage,
)
from repro.ir.shapes import TensorShape


class Network:
    """An immutable chain of layers with pre-computed activation shapes.

    The first layer must be an :class:`InputLayer`.  Layer names must be
    unique — they key the weight store and name generated hardware modules.
    """

    def __init__(self, name: str, layers: Sequence[Layer]):
        if not layers:
            raise ValidationError("network must contain at least one layer")
        if not isinstance(layers[0], InputLayer):
            raise ValidationError(
                f"first layer must be an InputLayer, got"
                f" {type(layers[0]).__name__}")
        names = [layer.name for layer in layers]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValidationError(
                f"duplicate layer names: {sorted(duplicates)}")
        self.name = name
        self._layers: tuple[Layer, ...] = tuple(layers)
        self._by_name = {layer.name: layer for layer in layers}
        self._in_shapes: dict[str, TensorShape] = {}
        self._out_shapes: dict[str, TensorShape] = {}
        shape = layers[0].output_shape(TensorShape(1, 1, 1))
        for layer in layers:
            self._in_shapes[layer.name] = shape
            shape = layer.output_shape(shape)
            self._out_shapes[layer.name] = shape

    # -- container protocol -------------------------------------------------

    @property
    def layers(self) -> tuple[Layer, ...]:
        return self._layers

    def __iter__(self) -> Iterator[Layer]:
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)

    def __getitem__(self, key: int | str) -> Layer:
        if isinstance(key, str):
            try:
                return self._by_name[key]
            except KeyError:
                raise KeyError(
                    f"network {self.name!r} has no layer {key!r}") from None
        return self._layers[key]

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def index(self, name: str) -> int:
        for i, layer in enumerate(self._layers):
            if layer.name == name:
                return i
        raise KeyError(f"network {self.name!r} has no layer {name!r}")

    # -- shapes --------------------------------------------------------------

    def input_shape(self, layer: str | Layer | None = None) -> TensorShape:
        """Input shape of ``layer`` (or of the whole network when omitted)."""
        if layer is None:
            return self._out_shapes[self._layers[0].name]
        name = layer if isinstance(layer, str) else layer.name
        return self._in_shapes[name]

    def output_shape(self, layer: str | Layer | None = None) -> TensorShape:
        """Output shape of ``layer`` (or of the whole network when omitted)."""
        if layer is None:
            return self._out_shapes[self._layers[-1].name]
        name = layer if isinstance(layer, str) else layer.name
        return self._out_shapes[name]

    # -- stage structure -----------------------------------------------------

    def stage_of(self, layer: str | Layer) -> Stage:
        """Resolve the effective stage of a layer.

        NEUTRAL layers (activations, flatten, softmax) inherit the stage of
        the nearest preceding non-neutral layer; leading neutral layers
        belong to the features-extraction stage.
        """
        name = layer if isinstance(layer, str) else layer.name
        idx = self.index(name)
        for i in range(idx, -1, -1):
            stage = self._layers[i].stage
            if stage is not Stage.NEUTRAL:
                return stage
        return Stage.FEATURES

    def features_layers(self) -> list[Layer]:
        """Layers of the features-extraction stage (conv / pool chain)."""
        return [l for l in self._layers[1:]
                if self.stage_of(l) is Stage.FEATURES]

    def classifier_layers(self) -> list[Layer]:
        """Layers of the classification stage (the MLP)."""
        return [l for l in self._layers[1:]
                if self.stage_of(l) is Stage.CLASSIFIER]

    def features_subnetwork(self, name: str | None = None) -> "Network":
        """A new network containing only the features-extraction stage.

        Used by the Table 2 experiments, which evaluate the improved
        methodology on the sole features-extraction part.
        """
        layers: list[Layer] = [self._layers[0]]
        layers.extend(self.features_layers())
        if len(layers) == 1:
            raise ValidationError(
                f"network {self.name!r} has no features-extraction layers")
        return Network(name or f"{self.name}_features", layers)

    # -- misc -----------------------------------------------------------------

    def compute_layers(self) -> list[Layer]:
        """Layers that perform work mapped onto PEs (everything except the
        input declaration and flatten reshapes)."""
        return [l for l in self._layers[1:]
                if not isinstance(l, FlattenLayer)]

    def summary(self) -> str:
        """A human-readable per-layer table (name, type, output shape)."""
        from repro.util.tables import TextTable

        table = TextTable(["#", "layer", "type", "output", "stage"])
        for i, layer in enumerate(self._layers):
            table.add_row([
                i, layer.name, layer.type_name,
                str(self.output_shape(layer)),
                self.stage_of(layer).value if i else "-",
            ])
        return table.render()

    def __repr__(self) -> str:
        return (f"Network({self.name!r}, {len(self._layers)} layers,"
                f" {self.input_shape()} -> {self.output_shape()})")


def chain(name: str, input_shape: tuple[int, int, int],
          layers: Iterable[Layer]) -> Network:
    """Convenience constructor: prepend an input layer and build a network."""
    input_layer = InputLayer("data", shape=TensorShape(*input_shape))
    return Network(name, [input_layer, *layers])
