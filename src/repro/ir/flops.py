"""FLOP and MAC accounting.

GFLOPS numbers in the paper's Tables 1 and 2 are computed as network
floating-point operations divided by execution time; this module provides
the numerator.  Conventions (the ones common in the FPGA CNN literature the
paper compares against):

* a multiply-accumulate counts as 2 FLOPs;
* convolution MACs per output point = C_in · K_h · K_w, plus one add for an
  optional bias;
* average pooling counts one add per window element plus one divide;
  max pooling counts one compare per window element (treated as a FLOP,
  consistent with how [25] reports it);
* activations count one FLOP per element;
* softmax counts ~4 FLOPs per element (exp, add, div amortized).
"""

from __future__ import annotations

from repro.ir.layers import (
    ActivationLayer,
    ConvLayer,
    FlattenLayer,
    FullyConnectedLayer,
    InputLayer,
    Layer,
    PoolLayer,
    PoolOp,
    SoftmaxLayer,
)
from repro.ir.network import Network
from repro.ir.shapes import TensorShape


def layer_macs(layer: Layer, in_shape: TensorShape) -> int:
    """Multiply-accumulate count of a layer for one input sample."""
    if isinstance(layer, ConvLayer):
        out = layer.output_shape(in_shape)
        per_point = in_shape.channels * layer.kernel[0] * layer.kernel[1]
        return out.size * per_point
    if isinstance(layer, FullyConnectedLayer):
        return layer.num_output * in_shape.size
    return 0


def layer_flops(layer: Layer, in_shape: TensorShape) -> int:
    """Floating-point operation count of a layer for one input sample."""
    if isinstance(layer, (InputLayer, FlattenLayer)):
        return 0
    if isinstance(layer, ConvLayer):
        out = layer.output_shape(in_shape)
        flops = 2 * layer_macs(layer, in_shape)
        if layer.bias:
            flops += out.size
        if layer.activation.value != "none":
            flops += out.size
        return flops
    if isinstance(layer, FullyConnectedLayer):
        flops = 2 * layer_macs(layer, in_shape)
        if layer.bias:
            flops += layer.num_output
        if layer.activation.value != "none":
            flops += layer.num_output
        return flops
    if isinstance(layer, PoolLayer):
        out = layer.output_shape(in_shape)
        window = layer.kernel[0] * layer.kernel[1]
        if layer.op is PoolOp.AVG:
            return out.size * window  # window-1 adds + 1 divide
        return out.size * (window - 1)  # compares
    if isinstance(layer, ActivationLayer):
        return in_shape.size
    if isinstance(layer, SoftmaxLayer):
        return 4 * in_shape.size
    raise TypeError(f"unknown layer type {type(layer).__name__}")


def network_flops(net: Network) -> int:
    """Total FLOPs for one forward pass of the network."""
    return sum(layer_flops(layer, net.input_shape(layer))
               for layer in net.layers)


def network_macs(net: Network) -> int:
    """Total MACs for one forward pass of the network."""
    return sum(layer_macs(layer, net.input_shape(layer))
               for layer in net.layers)
